"""Drive the Alloy-style SAT pipeline directly (the paper's §4).

The paper compiles memory models through Alloy and Kodkod down to
MiniSAT.  This repository rebuilds that stack from scratch
(``repro.alloy`` -> ``repro.relational`` -> ``repro.sat``); this example
runs a litmus test through it and cross-checks the result against the
explicit-enumeration engine.

Run:  python examples/sat_pipeline.py
"""

from repro import ExplicitOracle, get_model
from repro.alloy import AlloyOracle
from repro.alloy.encoding import LitmusEncoding
from repro.litmus.catalog import CATALOG
from repro.relational.solve import ModelFinder


def main() -> None:
    entry = CATALOG["MP"]
    test = entry.test
    print(test.pretty())
    print()

    # -- the raw relational problem ----------------------------------------------
    encoding = LitmusEncoding(test)
    facts = encoding.facts()
    finder = ModelFinder(encoding.problem)
    executions = [
        encoding.decode(inst) for inst in finder.instances(facts)
    ]
    print(f"well-formed executions found by SAT: {len(executions)}")
    for ex in executions:
        print(f"  {ex.pretty()}")
    print()

    # -- model-level queries ---------------------------------------------------------
    alloy = AlloyOracle("tso")
    print("TSO-valid outcomes (via CDCL):")
    for outcome in sorted(
        alloy.valid_outcomes(test), key=lambda o: o.pretty(test)
    ):
        print(f"  {outcome.pretty(test)}")
    observable = alloy.observable(test, entry.forbidden)
    print(
        f"forbidden outcome {entry.forbidden.pretty(test)} observable? "
        f"{observable}"
    )
    print()

    # -- cross-validate the two engines -------------------------------------------------
    explicit = ExplicitOracle(get_model("tso"))
    assert (
        alloy.valid_outcomes(test)
        == explicit.analyze(test).model_valid
    ), "engines disagree!"
    print("explicit-enumeration engine agrees with the SAT engine.")

    stats = finder.circuit.solver.stats
    print(
        f"(solver: {finder.circuit.solver.num_vars} vars, "
        f"{stats['decisions']} decisions, "
        f"{stats['propagations']} propagations)"
    )


if __name__ == "__main__":
    main()
