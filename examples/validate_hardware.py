"""Close the loop: run a synthesized suite against an implementation.

The paper synthesizes suites so they can be "fed into any existing
testing infrastructure".  This example provides that infrastructure — an
operational x86-TSO machine with per-thread store buffers, explored
exhaustively — and demonstrates the comprehensiveness claim end to end:

1. the correct machine passes the whole synthesized suite (and, as a
   bonus, agrees with the axiomatic model *exactly* — the Owens et al.
   operational/axiomatic equivalence);
2. every injected microarchitectural bug is caught by some minimal test.

Run:  python examples/validate_hardware.py
"""

from repro import (
    EnumerationConfig,
    ExplicitOracle,
    SynthesisOptions,
    get_model,
    synthesize,
)
from repro.litmus.catalog import CATALOG
from repro.machine import Bug, explore, run_suite


def main() -> None:
    tso = get_model("tso")

    print("=== operational vs axiomatic TSO (Owens et al. equivalence) ===")
    oracle = ExplicitOracle(tso)
    for name in ("MP", "SB", "n6", "SB+mfences", "IRIW", "CoWR0"):
        test = CATALOG[name].test
        operational = explore(test)
        axiomatic = oracle.analyze(test).model_valid
        mark = "==" if operational == axiomatic else "!="
        print(
            f"  {name:12s} machine outcomes {len(operational):3d} "
            f"{mark} model outcomes {len(axiomatic):3d}"
        )
    print()

    print("=== synthesize the suite, then attack the machine ===")
    result = synthesize(
        tso,
        SynthesisOptions(
            bound=5, config=EnumerationConfig(max_events=5, max_addresses=2)
        ),
    )
    suite = result.union
    print(f"suite: {len(suite)} minimal tests (bound 5)")
    print()
    for bug in Bug:
        report = run_suite(suite, tso, bug)
        print(f"  {report.summary()}")
        for violation in report.violations[:2]:
            print(f"      e.g. {violation.pretty()}")
    print()
    print(
        "every broken mechanism that fits within the bound is exposed by "
        "a minimal test — and the correct machine survives all of them."
    )


if __name__ == "__main__":
    main()
