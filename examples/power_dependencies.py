"""Explore Power's dependency-ordering zoo (the paper's §6.2).

Power enforces ordering through address/data/control dependencies with
*subtly different* strengths; the paper credits exactly this variety for
the blow-up of its ``no_thin_air`` suite.  This example walks the
published discriminating tests and shows the preserved-program-order
(``ppo``) relation the herding-cats fixpoint computes.

Run:  python examples/power_dependencies.py
"""

from repro import ExplicitOracle, MinimalityChecker, get_model
from repro.litmus.catalog import CATALOG
from repro.models.power import power_ppo
from repro.semantics.enumerate import enumerate_executions
from repro.semantics.relations import RelationView


def judgment(oracle, name) -> str:
    entry = CATALOG[name]
    observable = oracle.observable(entry.test, entry.forbidden)
    return "ALLOWED  " if observable else "FORBIDDEN"


def main() -> None:
    power = get_model("power")
    oracle = ExplicitOracle(power)

    print("=== published Power judgments ===")
    pairs = [
        ("MP", "no ordering at all"),
        ("MP+syncs", "heavyweight fences both sides"),
        ("MP+lwsync+addr", "lwsync + address dependency"),
        ("MP+sync+ctrl", "ctrl alone does NOT order R->R"),
        ("MP+sync+ctrlisync", "ctrl+isync does"),
        ("LB+addrs", "address deps break the LB cycle"),
        ("LB+datas", "so do data deps"),
        ("LB+addrs+WW", "addr deps extend over po (addr;po)"),
        ("LB+datas+WW", "data deps do not — the §6.2 discriminator"),
        ("IRIW", "Power is not multi-copy atomic"),
    ]
    for name, why in pairs:
        print(f"  {name:18s} {judgment(oracle, name)}  # {why}")
    print()

    print("=== ppo for LB+addrs+WW vs LB+datas+WW ===")
    for name in ("LB+addrs+WW", "LB+datas+WW"):
        test = CATALOG[name].test
        execution = next(iter(enumerate_executions(test)))
        ppo = power_ppo(RelationView(execution))
        edges = ", ".join(f"e{i}->e{j}" for i, j in ppo.pairs())
        print(f"  {name:14s} ppo = {{{edges}}}")
    print()

    print("=== minimality: PPOAA needs only lwsync (paper §6.2) ===")
    checker = MinimalityChecker(power)
    for name in ("PPOAA", "PPOAA+lwsync"):
        result = checker.check(CATALOG[name].test)
        print(f"  {name:14s} minimal={result.is_minimal}")


if __name__ == "__main__":
    main()
