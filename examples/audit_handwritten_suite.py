"""Audit a hand-written litmus suite for redundancy and gaps.

Scenario (the paper's §6.1): a verification team has inherited the
Owens et al. x86-TSO suite.  Which of its tests are redundant
(over-synchronized — some weaker test covers the same pattern)?  What do
the synthesized suites contain that the hand-written one misses?

Run:  python examples/audit_handwritten_suite.py [bound]
"""

import sys

from repro import (
    EnumerationConfig,
    MinimalityChecker,
    SynthesisOptions,
    compare_suites,
    get_model,
    synthesize,
)
from repro.litmus.catalog import owens_forbidden


def main(bound: int = 5) -> None:
    tso = get_model("tso")
    checker = MinimalityChecker(tso)

    print("=== step 1: per-test audit of the Owens suite ===")
    for entry in owens_forbidden():
        result = checker.check(entry.test)
        verdict = "minimal" if result.is_minimal else "REDUNDANT"
        size = entry.test.num_events
        print(f"  {entry.name:12s} ({size} insts)  {verdict}")
    print()

    print(f"=== step 2: synthesize the TSO suite at bound {bound} ===")
    result = synthesize(
        tso,
        SynthesisOptions(bound=bound, config=EnumerationConfig(max_events=bound)),
    )
    print(result.summary())
    print()

    print("=== step 3: Table 4 — coverage comparison ===")
    comparison = compare_suites(owens_forbidden(), result.union, tso)
    print(comparison.summary())
    print()
    in_suite = len(comparison.both)
    subsumed = sum(
        1 for sub in comparison.reference_only.values() if sub is not None
    )
    too_big = sum(
        1
        for name, sub in comparison.reference_only.items()
        if sub is None
    )
    print(
        f"of {len(owens_forbidden())} Owens tests: {in_suite} synthesized "
        f"directly, {subsumed} contain a synthesized subtest, "
        f"{too_big} need a larger bound"
    )
    print(
        f"and the synthesis found {len(comparison.synthesized_only)} "
        "minimal tests the hand-written suite never included."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
