"""Quickstart: check one litmus test, then synthesize a whole suite.

Run:  python examples/quickstart.py
"""

from repro import (
    EnumerationConfig,
    LitmusTest,
    MinimalityChecker,
    SynthesisOptions,
    get_model,
    read,
    synthesize,
    write,
)

X, Y = 0, 1


def main() -> None:
    tso = get_model("tso")

    # -- 1. The message-passing test from the paper's Fig. 1 ------------------
    mp = LitmusTest(
        (
            (write(X, 1), write(Y, 1)),  # producer: data, then flag
            (read(Y), read(X)),          # consumer: flag, then data
        ),
        name="MP",
    )
    print(mp.pretty())
    print()

    checker = MinimalityChecker(tso)
    result = checker.check(mp)
    print(f"MP minimal under TSO? {result.is_minimal}")
    assert result.witness is not None
    print(f"witness forbidden outcome: {result.witness.pretty(mp)}")
    print(
        f"(quantified over {result.application_count} relaxation "
        "applications)"
    )
    print()

    # -- 2. Synthesize every minimal TSO test up to 4 instructions -------------
    result = synthesize(
        tso,
        SynthesisOptions(
            bound=4,
            config=EnumerationConfig(max_events=4, max_addresses=2),
        ),
    )
    print(result.summary())
    print()
    print("the synthesized suite:")
    for entry in sorted(
        result.union, key=lambda e: (e.num_events, repr(e.test))
    ):
        print()
        print(entry.pretty())


if __name__ == "__main__":
    main()
