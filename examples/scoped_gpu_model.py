"""Scoped synchronization and the DS relaxation (OpenCL/HSA style).

Scenario (the paper's §3.2/DS motivation): a GPU-style model lets
synchronization name a *scope* — narrower scopes are faster but only
synchronize threads within the scope.  The minimality criterion then
does double duty: it rejects tests whose scopes are wider than needed
(over-synchronized, redundant) and never emits tests whose scopes are
too narrow (nothing is forbidden, nothing to test).

Run:  python examples/scoped_gpu_model.py
"""

from repro import (
    EnumerationConfig,
    LitmusTest,
    MinimalityChecker,
    Order,
    Scope,
    SynthesisOptions,
    get_model,
    read,
    synthesize,
    write,
)

X, Y = 0, 1
WG, DEV = Scope.WORKGROUP, Scope.DEVICE


def scoped_mp(w_scope, r_scope, groups):
    return LitmusTest(
        (
            (write(X, 1), write(Y, 1, Order.REL, scope=w_scope)),
            (read(Y, Order.ACQ, scope=r_scope), read(X)),
        ),
        scopes=groups,
    )


def main() -> None:
    model = get_model("opencl")
    checker = MinimalityChecker(model)

    print("=== message passing at different scope/placement combos ===")
    cases = [
        ("same work-group, @wg/@wg", scoped_mp(WG, WG, (0, 0))),
        ("same work-group, @dev/@dev", scoped_mp(DEV, DEV, (0, 0))),
        ("cross work-group, @wg/@wg", scoped_mp(WG, WG, (0, 1))),
        ("cross work-group, @dev/@dev", scoped_mp(DEV, DEV, (0, 1))),
        ("cross work-group, @dev/@wg", scoped_mp(DEV, WG, (0, 1))),
    ]
    from repro.litmus.catalog import outcome_from_values

    for label, test in cases:
        bad = outcome_from_values(test, reads={2: 1, 3: 0})
        forbidden = not checker.oracle.observable(test, bad)
        result = checker.check(test)
        status = []
        status.append("forbids (1,0)" if forbidden else "ALLOWS (1,0)")
        if result.is_minimal:
            status.append("MINIMAL")
        elif result.blocking is not None:
            relax, target, detail = result.blocking
            status.append(f"redundant ({relax} on e{target} suffices)")
        else:
            status.append("nothing to test")
        print(f"  {label:30s} {'; '.join(status)}")
    print()

    print("=== synthesized scoped suite (4 insts, release/acquire) ===")
    from repro.models.base import Vocabulary

    class AccessOnly(type(model)):
        name = "opencl-accesses"

        @property
        def vocabulary(self):
            base = super().vocabulary
            return Vocabulary(
                read_orders=base.read_orders,
                write_orders=base.write_orders,
                order_demotions=base.order_demotions,
                allows_rmw=False,
                scopes=base.scopes,
            )

    result = synthesize(
        AccessOnly(),
        SynthesisOptions(
            bound=4,
            axioms=["causality"],
            config=EnumerationConfig(
                max_events=4,
                min_events=4,
                max_addresses=2,
                max_threads=2,
                max_thread_size=2,
                max_deps=0,
                max_rmws=0,
            ),
        ),
    )
    for entry in result.per_axiom["causality"]:
        groups = entry.test.scopes
        print()
        print(entry.test.pretty())
        print(f"work-groups: {groups}")
    print()
    print(
        "note how every emitted test uses the narrowest scope that still "
        "synchronizes its thread placement — wider would be redundant "
        "(killed by DS), narrower would forbid nothing."
    )


if __name__ == "__main__":
    main()
