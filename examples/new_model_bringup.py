"""Bring up a test suite for a brand-new memory model.

Scenario (the paper's §6.3): you have just specified a new model — here
SCC, the paper's Streamlined Causal Consistency — and need a
comprehensive litmus suite for it *before* any hand-written corpus
exists.  Synthesis gives you one per axiom, and the minimality criterion
explains exactly why each borderline variant is or isn't worth keeping
(the paper's Fig. 1 vs Fig. 2).

Run:  python examples/new_model_bringup.py
"""

from repro import (
    EnumerationConfig,
    LitmusTest,
    MinimalityChecker,
    Order,
    SynthesisOptions,
    get_model,
    read,
    synthesize,
    write,
)

X, Y = 0, 1


def fig1_vs_fig2() -> None:
    """The paper's opening example, under SCC."""
    scc = get_model("scc")
    checker = MinimalityChecker(scc)

    minimal_mp = LitmusTest(
        (
            (write(X, 1), write(Y, 1, Order.REL)),
            (read(Y, Order.ACQ), read(X)),
        ),
        name="MP (one release, one acquire — Fig. 1)",
    )
    overly_synced = LitmusTest(
        (
            (write(X, 1, Order.REL), write(Y, 1, Order.REL)),
            (read(Y, Order.ACQ), read(X, Order.ACQ)),
        ),
        name="MP (two releases, two acquires — Fig. 2)",
    )
    for test in (minimal_mp, overly_synced):
        result = checker.check(test)
        print(test.pretty())
        if result.is_minimal:
            print("-> MINIMAL: keep it in the suite")
        else:
            assert result.blocking is not None
            relax, target, detail = result.blocking
            print(
                "-> redundant: weakening instruction "
                f"e{target} via {relax}({detail or 'remove'}) forbids the "
                "same outcomes"
            )
        print()


def synthesize_scc_suite() -> None:
    scc = get_model("scc")
    result = synthesize(
        scc,
        SynthesisOptions(
            bound=4,
            config=EnumerationConfig(
                max_events=4, max_addresses=2, max_deps=1, max_rmws=1
            ),
        ),
    )
    print(result.summary())
    print()
    print("acquire/release patterns discovered per axiom:")
    for axiom, suite in result.per_axiom.items():
        annotated = sum(
            1
            for entry in suite
            if any(
                inst.order is not Order.PLAIN
                for inst in entry.test.instructions
            )
        )
        print(
            f"  {axiom:16s} {len(suite):3d} tests, "
            f"{annotated} using acquire/release/fences"
        )
    print()
    causality = result.per_axiom["causality"]
    print("sample causality tests:")
    for entry in list(causality)[:4]:
        print()
        print(entry.pretty())


if __name__ == "__main__":
    fig1_vs_fig2()
    synthesize_scc_suite()
