#!/usr/bin/env python
"""CI smoke for the transistency (vmem) synthesis path.

Synthesizes the two vmem-capable entry points — ``sc_vmem`` (enhanced
candidate stream: page-table walks, mapping updates, dirty-bit updates,
and one virtual->physical alias) and ``rvwmo`` (the newest
consistency-only model) — at a small bound, sequentially and with
``--jobs 4``, writes the measurement to ``BENCH_vmem.json`` (a
``bench-vmem`` v1 Report envelope), and fails when:

* either model's union suite is empty, or
* the parallel union suite is not byte-identical to the sequential one, or
* the sc_vmem candidate stream contained no enhanced test (vmem event
  or alias map) — a wiring regression in the enumerator, or
* any trace has an unclosed span or a phase with no wall time.

Exit status 0 on success.  Run from the repository root:

    PYTHONPATH=src python scripts/vmem_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.analysis import lint_trace_dir
from repro.core.enumerator import EnumerationConfig, enumerate_tests
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.models.registry import get_model
from repro.obs import Report, summarize_trace_dir

BOUND = int(os.environ.get("VMEM_SMOKE_BOUND", "3"))
JOBS = int(os.environ.get("VMEM_SMOKE_JOBS", "4"))
OUT = os.environ.get("VMEM_SMOKE_OUT", "BENCH_vmem.json")
TRACE_DIR = os.environ.get("VMEM_SMOKE_TRACE_DIR", "BENCH_vmem_trace")

VMEM_BENCH_SCHEMA_NAME = "bench-vmem"
VMEM_BENCH_SCHEMA = 1

MODELS = ("sc_vmem", "rvwmo")


def check_trace(label: str) -> list[str]:
    trace_dir = os.path.join(TRACE_DIR, label)
    failures = [
        f"{label}: {diag.subject}: {diag.message} [{diag.id}]"
        for diag in lint_trace_dir(trace_dir)
    ]
    payload = summarize_trace_dir(trace_dir)
    for phase in payload["phases"]:
        if not isinstance(phase.get("wall"), (int, float)):
            failures.append(
                f"{label}: phase {phase.get('name')!r} has no wall time"
            )
    return failures


def run_model(name: str) -> tuple[dict, list[str]]:
    model = get_model(name)
    failures: list[str] = []

    start = time.perf_counter()
    sequential = synthesize(model, SynthesisOptions(bound=BOUND))
    sequential_wall = time.perf_counter() - start

    trace_dir = os.path.join(TRACE_DIR, name)
    start = time.perf_counter()
    parallel = synthesize(
        model,
        SynthesisOptions(bound=BOUND, jobs=JOBS, trace_dir=trace_dir),
    )
    parallel_wall = time.perf_counter() - start

    sequential_json = sequential.union.to_json()
    byte_identical = parallel.union.to_json() == sequential_json
    if not len(sequential.union):
        failures.append(f"{name}: union suite is empty at bound {BOUND}")
    if not byte_identical:
        failures.append(
            f"{name}: jobs={JOBS} union differs from the sequential one"
        )
    failures.extend(check_trace(name))

    if model.vocabulary.has_vmem:
        config = SynthesisOptions(bound=BOUND).resolved_config(model)
        enhanced = sum(
            1
            for t in enumerate_tests(model.vocabulary, config)
            if t.addr_map is not None
            or any(i.is_vmem for i in t.instructions)
        )
        if not enhanced:
            failures.append(
                f"{name}: candidate stream contains no enhanced test"
            )
    else:
        enhanced = 0

    measurement = {
        "model": name,
        "bound": BOUND,
        "jobs": JOBS,
        "candidates": sequential.candidates,
        "enhanced_candidates": enhanced,
        "suite_counts": {
            axiom: len(suite)
            for axiom, suite in sequential.per_axiom.items()
        },
        "union": len(sequential.union),
        "sequential_wall_seconds": sequential_wall,
        "parallel_wall_seconds": parallel_wall,
        "byte_identical": byte_identical,
    }
    return measurement, failures


def main() -> int:
    measurements: dict[str, dict] = {}
    failures: list[str] = []
    for name in MODELS:
        measurement, model_failures = run_model(name)
        measurements[name] = measurement
        failures.extend(model_failures)
        print(
            f"vmem smoke: model={name} bound={BOUND} jobs={JOBS} "
            f"candidates={measurement['candidates']} "
            f"(enhanced={measurement['enhanced_candidates']}) "
            f"union={measurement['union']} "
            f"seq={measurement['sequential_wall_seconds']:.2f}s "
            f"par={measurement['parallel_wall_seconds']:.2f}s "
            f"identical={measurement['byte_identical']}"
        )
    document = Report(
        schema_name=VMEM_BENCH_SCHEMA_NAME,
        schema_version=VMEM_BENCH_SCHEMA,
        command="bench",
        payload={"models": measurements},
    ).to_json_dict()
    with open(OUT, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {OUT}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
