#!/usr/bin/env python
"""CI serve smoke: boot the synthesis daemon and exercise its contract.

Boots `repro.service` on a unix socket with one resident worker, then:

* submits two identical requests while the worker is busy and asserts
  the second coalesces onto the first (``dedup_hits`` and shared job id),
* submits one distinct request and asserts it does NOT coalesce,
* asserts the daemon's suites are byte-identical to a local
  ``synthesize`` run with the same options,
* restarts the daemon over the same CNF cache directory and asserts the
  repeated request reports a warm compile layer
  (``compile_hit_rate > 0`` over ``compile_warm_entries``) while
  streaming live progress events (at least ``start`` and ``finish``),
* races two CPU-bound relational jobs (tso + sc) through a two-worker
  thread daemon and a two-worker process daemon (fresh CNF dirs each)
  and asserts the process pool is at least 1.3x faster wall-clock,
  byte-identical, and that every job streamed >= 1 progress event,
* lints the emitted service trace directory (no orphan spans, every
  span timed) and writes the combined measurement to
  ``BENCH_serve.json`` (``bench-serve`` v2 adds the ``pools`` block).

Exit status 0 on success.  Run from the repository root:

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import tempfile
import threading
import time

from repro.analysis import lint_trace_dir
from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import OracleSpec, synthesize
from repro.models.registry import get_model
from repro.obs import Report
from repro.service import Client, JobManager, SynthesisRequest, serve_async

BOUND = int(os.environ.get("SERVE_SMOKE_BOUND", "4"))
OUT = os.environ.get("SERVE_SMOKE_OUT", "BENCH_serve.json")
TRACE_DIR = os.environ.get("SERVE_SMOKE_TRACE_DIR", "BENCH_serve_trace")
#: the process pool must beat the GIL-bound thread pool by this factor
#: on the two-job concurrent workload
MIN_POOL_SPEEDUP = float(os.environ.get("SERVE_SMOKE_MIN_SPEEDUP", "1.3"))


def request(bound: int = BOUND, model: str = "tso") -> SynthesisRequest:
    return SynthesisRequest.build(
        model,
        bound=bound,
        config=EnumerationConfig(max_events=bound, max_addresses=2),
        oracle_spec=OracleSpec(oracle="relational"),
    )


class Daemon:
    """A serve_async loop on a background thread, stoppable."""

    def __init__(self, socket_path: str, **manager_knobs):
        self.socket_path = socket_path
        self.manager = JobManager(**manager_knobs)
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def body() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await serve_async(
                self.manager,
                socket_path=self.socket_path,
                ready=lambda addr: self._ready.set(),
                stop=self._stop,
            )

        asyncio.run(body())

    def __enter__(self) -> "Daemon":
        self._thread.start()
        if not self._ready.wait(30):
            raise RuntimeError("daemon never came up")
        return self

    def __exit__(self, *exc) -> None:
        assert self._loop is not None and self._stop is not None
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10)
        self.manager.close()


def race_pool(
    pool: str, workdir: str, failures: list[str]
) -> tuple[float, dict]:
    """Race the tso + sc jobs through a two-worker ``pool`` daemon.

    Returns the wall-clock seconds from first submission to last result
    plus the per-job measurement block.  Each arm gets its own socket
    and a fresh CNF cache directory so both pools do the same (cold,
    CPU-bound) work.
    """
    socket_path = os.path.join(workdir, f"repro-{pool}.sock")
    jobs_block: dict = {}
    with Daemon(
        socket_path,
        workers=2,
        pool=pool,
        cnf_cache_dir=os.path.join(workdir, f"cnf-{pool}"),
    ):
        client = Client(socket_path)
        t0 = time.perf_counter()
        submitted = [
            (model, client.submit(request(model=model))[0])
            for model in ("tso", "sc")
        ]
        results = {
            model: client.result(status.job_id, timeout=600)
            for model, status in submitted
        }
        wall = time.perf_counter() - t0
        for model, status in submitted:
            result = results[model]
            if result.state != "done":
                failures.append(
                    f"{pool} pool: {model} job finished "
                    f"{result.state}: {result.error}"
                )
                continue
            final = client.status(status.job_id)
            if final.progress_events < 1:
                failures.append(
                    f"{pool} pool: {model} job streamed "
                    f"{final.progress_events} progress events"
                )
            local = synthesize(
                get_model(model), request(model=model).options
            )
            if result.result.union.to_json() != local.union.to_json():
                failures.append(
                    f"{pool} pool: {model} union differs from local run"
                )
            jobs_block[model] = {
                "job_id": status.job_id,
                "progress_events": final.progress_events,
            }
    return wall, jobs_block


def main() -> int:
    failures: list[str] = []
    workdir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    socket_path = os.path.join(workdir, "repro.sock")
    cnf_dir = os.path.join(workdir, "cnf")
    measurement: dict = {"bound": BOUND}

    # --- cold daemon: dedup + byte-identical contract ------------------
    with Daemon(
        socket_path, workers=1, cnf_cache_dir=cnf_dir, trace_dir=TRACE_DIR
    ):
        client = Client(socket_path)
        first, deduped_first = client.submit(request())
        second, deduped_second = client.submit(request())
        distinct, deduped_distinct = client.submit(request(bound=BOUND - 1))
        if deduped_first:
            failures.append("first submission claims to be a duplicate")
        if not deduped_second or second.job_id != first.job_id:
            failures.append(
                "identical active submission did not coalesce "
                f"({first.job_id} vs {second.job_id})"
            )
        if deduped_distinct or distinct.job_id == first.job_id:
            failures.append("distinct request coalesced onto the first job")

        cold = client.result(first.job_id, timeout=600)
        client.result(distinct.job_id, timeout=600)
        if cold.state != "done":
            failures.append(f"cold job finished {cold.state}: {cold.error}")

        metrics = client.metrics()
        measurement["cold_metrics"] = metrics
        if metrics.get("dedup_hits", 0) < 1:
            failures.append(f"dedup_hits = {metrics.get('dedup_hits')}")
        if metrics.get("jobs_submitted") != 2:
            failures.append(f"jobs_submitted = {metrics.get('jobs_submitted')}")

        local = synthesize(get_model("tso"), request().options)
        if cold.result.union.to_json() != local.union.to_json():
            failures.append("daemon union differs from local run")
        for name, suite in local.per_axiom.items():
            if cold.result.per_axiom[name].to_json() != suite.to_json():
                failures.append(f"daemon per-axiom suite differs: {name}")
        cold_stats = dict(cold.result.oracle_stats)
        measurement["cold_oracle_stats"] = cold_stats
        if cold_stats.get("compile_misses", 0) <= 0:
            failures.append("cold run reported no compile misses")

    # --- restarted daemon: the warm-compile story ----------------------
    with Daemon(
        socket_path, workers=1, cnf_cache_dir=cnf_dir
    ):
        client = Client(socket_path)
        events: list[dict] = []
        warm = client.synthesize(
            "tso", request().options, timeout=600, on_progress=events.append
        )
        phases = [event.get("phase") for event in events]
        measurement["streamed_progress_events"] = len(events)
        if len(events) < 1 or phases[0] != "start" or phases[-1] != "finish":
            failures.append(
                f"streamed synthesize saw phases {phases} (want start.."
                "finish)"
            )
        warm_stats = dict(warm.oracle_stats)
        measurement["warm_oracle_stats"] = warm_stats
        if warm_stats.get("compile_warm_entries", 0) <= 0:
            failures.append(
                "restarted daemon found no warm CNF entries "
                f"(stats: {warm_stats})"
            )
        if warm_stats.get("compile_hit_rate", 0.0) <= 0.0:
            failures.append(
                "restarted daemon reported compile_hit_rate = "
                f"{warm_stats.get('compile_hit_rate')}"
            )
        if warm.union.to_json() != local.union.to_json():
            failures.append("warm daemon union differs from local run")

    # --- thread vs process pool on a concurrent workload ---------------
    thread_wall, thread_jobs = race_pool("thread", workdir, failures)
    process_wall, process_jobs = race_pool("process", workdir, failures)
    speedup = thread_wall / process_wall if process_wall else 0.0
    # a process pool cannot beat the GIL without a second CPU to run on;
    # record the skip instead of failing on starved runners
    cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1)
    )
    measurement["pools"] = {
        "workload": {"models": ["tso", "sc"], "bound": BOUND, "workers": 2},
        "thread": {"wall_seconds": thread_wall, "jobs": thread_jobs},
        "process": {"wall_seconds": process_wall, "jobs": process_jobs},
        "speedup": speedup,
        "cpus": cpus,
        "speedup_enforced": cpus >= 2,
    }
    if cpus >= 2 and speedup < MIN_POOL_SPEEDUP:
        failures.append(
            f"process pool speedup {speedup:.2f}x over the thread pool "
            f"(want >= {MIN_POOL_SPEEDUP}x; thread {thread_wall:.2f}s, "
            f"process {process_wall:.2f}s)"
        )
    elif cpus < 2:
        print(
            f"note: single-CPU runner ({cpus} usable); measured "
            f"{speedup:.2f}x but not enforcing the "
            f">= {MIN_POOL_SPEEDUP}x pool speedup",
        )

    # --- the trace the first daemon emitted must lint clean ------------
    findings = lint_trace_dir(TRACE_DIR)
    measurement["trace_findings"] = [f.id for f in findings]
    for finding in findings:
        failures.append(f"trace lint: [{finding.id}] {finding.message}")

    report = Report(
        schema_name="bench-serve",
        schema_version=2,
        command="serve-smoke",
        payload=measurement,
    )
    with open(OUT, "w") as fh:
        json.dump(report.to_json_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"measurement written to {OUT}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    dedup = measurement["cold_metrics"]["dedup_hits"]
    rate = measurement["warm_oracle_stats"]["compile_hit_rate"]
    print(
        f"serve smoke OK: dedup_hits={dedup}, "
        f"warm compile_hit_rate={rate:.2f}, "
        f"process pool speedup {speedup:.2f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
