#!/usr/bin/env python
"""CI exercise for the sharded runtime's kill/resume path.

Flow:

1. synthesize the sequential golden suite (``--jobs 1``, no checkpoint);
2. launch a parallel checkpointed run and SIGKILL it mid-flight;
3. if the run won the race and finished anyway, truncate its shard log
   so the resume genuinely has work left to do;
4. resume against the same checkpoint directory;
5. assert the resumed union suite is byte-identical to the golden one
   and that the ``--json`` counters match.

Exit status 0 on success.  Run from the repository root:

    PYTHONPATH=src python scripts/checkpoint_resume_ci.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

MODEL = "tso"
BOUND = int(os.environ.get("RESUME_CI_BOUND", "3"))
JOBS = os.environ.get("RESUME_CI_JOBS", "2")
KILL_AFTER = float(os.environ.get("RESUME_CI_KILL_AFTER", "1.0"))


def cli(*args: str) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "synthesize",
        "--model",
        MODEL,
        "--bound",
        str(BOUND),
        "--max-addresses",
        "2",
        *args,
    ]


def run(argv: list[str], **kwargs) -> subprocess.CompletedProcess:
    print("+", " ".join(argv), flush=True)
    return subprocess.run(argv, check=True, capture_output=True, text=True, **kwargs)


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="resume-ci-")
    golden_path = os.path.join(workdir, "golden.json")
    resumed_path = os.path.join(workdir, "resumed.json")
    ckpt = os.path.join(workdir, "checkpoint")
    shards_log = os.path.join(ckpt, "shards.jsonl")

    # 1. sequential golden
    golden = run(cli("--out", golden_path, "--json"))
    golden_summary = json.loads(golden.stdout)

    # 2. parallel checkpointed run, killed mid-flight
    proc = subprocess.Popen(
        cli("--jobs", JOBS, "--checkpoint-dir", ckpt),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    time.sleep(KILL_AFTER)
    finished = proc.poll() is not None
    if not finished:
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        print(f"killed run after {KILL_AFTER}s", flush=True)

    # 3. guarantee the resume has pending shards
    done = 0
    if os.path.exists(shards_log):
        with open(shards_log) as fh:
            lines = fh.readlines()
        done = len(lines)
        if finished or done > 1:
            keep = max(1, done // 2)
            with open(shards_log, "w") as fh:
                fh.writelines(lines[:keep])
            print(f"truncated shard log {done} -> {keep} shards", flush=True)
            done = keep
    print(f"checkpoint holds {done} completed shard(s)", flush=True)

    # 4. resume
    resumed = run(
        cli("--jobs", JOBS, "--checkpoint-dir", ckpt, "--out", resumed_path, "--json")
    )
    resumed_summary = json.loads(resumed.stdout)

    # 5. byte-identical suites, matching counters
    with open(golden_path, "rb") as fh:
        golden_bytes = fh.read()
    with open(resumed_path, "rb") as fh:
        resumed_bytes = fh.read()
    if golden_bytes != resumed_bytes:
        print("FAIL: resumed union suite differs from sequential golden")
        return 1
    for key in ("candidates", "unique_candidates", "minimal_tests", "suite_counts"):
        if golden_summary[key] != resumed_summary[key]:
            print(
                f"FAIL: {key} mismatch: "
                f"{golden_summary[key]!r} != {resumed_summary[key]!r}"
            )
            return 1
    print(
        "OK: resumed parallel suite byte-identical to sequential golden "
        f"({golden_summary['suite_counts']['union']} union tests, "
        f"jobs={JOBS}, resumed from {done} checkpointed shard(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
