#!/usr/bin/env python
"""CI differential-testing smoke: fixed-seed campaigns on tso and sc.

Runs one seeded campaign per model with one injected known-buggy mutant
each, writes the combined measurement to ``BENCH_difftest.json`` (a
``bench-difftest`` v2 Report envelope whose payload maps model name to
each campaign's own envelope), and fails when:

* a stock-model discrepancy survives (the two oracles disagreed), or
* a corpus replay entry went stale, or
* an injected mutant survives (the harness is blind to that bug), or
* a shrunken kill reproducer is larger than the test that found it, or
* the ``--jobs N`` report is not byte-identical to the sequential one.

Exit status 0 on success.  Run from the repository root:

    PYTHONPATH=src python scripts/difftest_smoke.py
"""

from __future__ import annotations

import json
import os
import sys

from repro.bench import (
    DIFFTEST_BENCH_SCHEMA,
    DIFFTEST_BENCH_SCHEMA_NAME,
    difftest_campaign_report,
)
from repro.obs import Report

SEED = int(os.environ.get("DIFFTEST_SMOKE_SEED", "2017"))
BUDGET = int(os.environ.get("DIFFTEST_SMOKE_BUDGET", "2000"))
JOBS = int(os.environ.get("DIFFTEST_SMOKE_JOBS", "2"))
OUT = os.environ.get("DIFFTEST_SMOKE_OUT", "BENCH_difftest.json")

CAMPAIGNS = (
    ("tso", ("drop:sc_per_loc",)),
    ("sc", ("drop:sequential_consistency",)),
)


def check(model: str, entry: dict) -> list[str]:
    measurement = entry["payload"]
    report = measurement["report"]["payload"]
    failures = []
    if report["discrepancies"] or report["unshrunk_discrepancies"]:
        failures.append(
            f"{model}: stock oracles disagree "
            f"({len(report['discrepancies'])} discrepancies)"
        )
    if report["replay"]["stale"]:
        failures.append(f"{model}: stale corpus entries on replay")
    for tag in report["surviving_mutants"]:
        failures.append(f"{model}: injected mutant {tag} survived")
    for tag, kill in report["mutant_kills"].items():
        if kill["events"] > kill["original_events"]:
            failures.append(
                f"{model}: {tag} reproducer grew while shrinking "
                f"({kill['original_events']} -> {kill['events']} events)"
            )
    if not measurement["byte_identical"]:
        failures.append(
            f"{model}: jobs={JOBS} report differs from the sequential one"
        )
    return failures


def main() -> int:
    campaigns: dict[str, dict] = {}
    failures: list[str] = []
    for model, mutants in CAMPAIGNS:
        entry = difftest_campaign_report(
            model, seed=SEED, budget=BUDGET, mutants=mutants, jobs=JOBS
        )
        campaigns[model] = entry
        failures.extend(check(model, entry))
        measurement = entry["payload"]
        report = measurement["report"]["payload"]
        print(
            f"difftest smoke: model={model} seed={SEED} budget={BUDGET} "
            f"jobs={JOBS} wall={measurement['wall_seconds']:.2f}s "
            f"kills={sorted(report['mutant_kills'])} "
            f"clean={report['clean']}"
        )
    document = Report(
        schema_name=DIFFTEST_BENCH_SCHEMA_NAME,
        schema_version=DIFFTEST_BENCH_SCHEMA,
        command="bench",
        payload={"campaigns": campaigns},
    ).to_json_dict()
    with open(OUT, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {OUT}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
