#!/usr/bin/env python
"""CI perf smoke for the incremental SAT oracle.

Runs the x86-TSO size-4 relational-oracle synthesis workload over three
arms — incremental engine, incremental + static prefilter, and the
cold-solver baseline — writes the measurement to ``BENCH_oracle.json``
(a ``bench-oracle`` v3 Report envelope), emits a :mod:`repro.obs` trace
per arm, and fails when:

* the three arms' union suites are not byte-identical, or
* incremental mode is slower than the cold baseline, or
* the prefilter arm decided zero queries statically (hit rate 0 means
  the prefilter never ran — a wiring regression), or
* any arm's trace has a span with no recorded wall time (unclosed
  span — OBS001) or a phase row missing from the rendered report.

Exit status 0 on success.  Run from the repository root:

    PYTHONPATH=src python scripts/oracle_perf_smoke.py
"""

from __future__ import annotations

import json
import os
import sys

from repro.analysis import lint_trace_dir
from repro.bench import oracle_workload_report
from repro.obs import summarize_trace_dir

MODEL = os.environ.get("ORACLE_SMOKE_MODEL", "tso")
BOUND = int(os.environ.get("ORACLE_SMOKE_BOUND", "4"))
OUT = os.environ.get("ORACLE_SMOKE_OUT", "BENCH_oracle.json")
TRACE_DIR = os.environ.get("ORACLE_SMOKE_TRACE_DIR", "BENCH_oracle_trace")


def check_trace(arm: str) -> list[str]:
    """Every span closed, every phase's wall present in the report."""
    trace_dir = os.path.join(TRACE_DIR, arm)
    failures = [
        f"{arm}: {diag.subject}: {diag.message} [{diag.id}]"
        for diag in lint_trace_dir(trace_dir)
    ]
    payload = summarize_trace_dir(trace_dir)
    if not payload["phases"]:
        failures.append(f"{arm}: trace report has no phase rows")
    for phase in payload["phases"]:
        if not isinstance(phase.get("wall"), (int, float)):
            failures.append(
                f"{arm}: phase {phase.get('name')!r} has no wall time"
            )
    for name, slot in payload["spans"].items():
        if not isinstance(slot.get("wall"), (int, float)):
            failures.append(f"{arm}: span {name!r} has no wall time")
    return failures


def main() -> int:
    report = oracle_workload_report(MODEL, BOUND, trace_dir=TRACE_DIR)
    with open(OUT, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    payload = report["payload"]
    inc = payload["incremental"]["wall_seconds"]
    cold = payload["cold"]["wall_seconds"]
    pre = payload["prefilter"]["wall_seconds"]
    hit_rate = payload["prefilter"]["cache"].get("prefilter_hit_rate", 0.0)
    print(
        f"oracle perf smoke: model={MODEL} bound={BOUND} "
        f"incremental={inc:.3f}s prefilter={pre:.3f}s "
        f"(hit_rate={hit_rate:.0%}) cold={cold:.3f}s "
        f"speedup={payload['speedup']:.2f}x -> {OUT} (traces: {TRACE_DIR})"
    )
    failures: list[str] = []
    if not payload["byte_identical"]:
        failures.append("incremental, prefilter, and cold suites differ")
    if inc > cold:
        failures.append(
            "incremental mode is slower than the cold baseline "
            f"({inc:.3f}s > {cold:.3f}s)"
        )
    if hit_rate <= 0.0:
        failures.append(
            "prefilter arm decided zero queries statically "
            "(hit rate 0 — the prefilter never ran)"
        )
    for arm in ("incremental", "prefilter", "cold"):
        failures.extend(check_trace(arm))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
