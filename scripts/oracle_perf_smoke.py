#!/usr/bin/env python
"""CI perf smoke for the incremental SAT oracle.

Runs the x86-TSO size-4 relational-oracle synthesis workload twice —
incremental engine vs cold-solver baseline — writes the measurement to
``BENCH_oracle.json``, and fails when:

* the two modes' union suites are not byte-identical, or
* incremental mode is slower than the cold baseline.

Exit status 0 on success.  Run from the repository root:

    PYTHONPATH=src python scripts/oracle_perf_smoke.py
"""

from __future__ import annotations

import json
import os
import sys

from repro.bench import oracle_workload_report

MODEL = os.environ.get("ORACLE_SMOKE_MODEL", "tso")
BOUND = int(os.environ.get("ORACLE_SMOKE_BOUND", "4"))
OUT = os.environ.get("ORACLE_SMOKE_OUT", "BENCH_oracle.json")


def main() -> int:
    report = oracle_workload_report(MODEL, BOUND)
    with open(OUT, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    inc = report["incremental"]["wall_seconds"]
    cold = report["cold"]["wall_seconds"]
    print(
        f"oracle perf smoke: model={MODEL} bound={BOUND} "
        f"incremental={inc:.3f}s cold={cold:.3f}s "
        f"speedup={report['speedup']:.2f}x -> {OUT}"
    )
    if not report["byte_identical"]:
        print("FAIL: incremental and cold suites differ", file=sys.stderr)
        return 1
    if inc > cold:
        print(
            "FAIL: incremental mode is slower than the cold baseline "
            f"({inc:.3f}s > {cold:.3f}s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
