"""Axiomatic memory consistency models (paper §2.2, §6)."""

from repro.models.armv7 import ARMv7
from repro.models.armv8 import ARMv8
from repro.models.base import Axiom, MemoryModel, Vocabulary
from repro.models.c11 import C11
from repro.models.opencl import OpenCL
from repro.models.power import Power
from repro.models.registry import (
    MODEL_CLASSES,
    available_models,
    get_model,
    register_model,
    validate_model_class,
)
from repro.models.rvwmo import RVWMO
from repro.models.sc import SC
from repro.models.scc import SCC
from repro.models.tso import TSO

__all__ = [
    "Axiom",
    "MemoryModel",
    "Vocabulary",
    "SC",
    "TSO",
    "Power",
    "ARMv7",
    "ARMv8",
    "RVWMO",
    "SCC",
    "C11",
    "OpenCL",
    "MODEL_CLASSES",
    "available_models",
    "get_model",
    "register_model",
    "validate_model_class",
]
