"""Memory model interface.

A :class:`MemoryModel` bundles two things the synthesis pipeline needs:

* **axioms** — named predicates over a :class:`~repro.semantics.relations.
  RelationView` of a concrete execution.  The paper generates one suite
  per axiom plus a union suite, so axioms must be individually addressable.
* a **vocabulary** — which instruction shapes (memory orders, fence kinds,
  dependency kinds, RMWs, scopes) the model gives semantics to.  The
  candidate-test enumerator draws from the vocabulary, and the relaxation
  applicability matrix (paper Table 2) is derived from it.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.litmus.events import (
    VMEM_KINDS,
    DepKind,
    EventKind,
    FenceKind,
    Order,
    Scope,
)
from repro.litmus.execution import Execution
from repro.semantics.relations import RelationView

__all__ = ["Axiom", "Vocabulary", "MemoryModel"]

Axiom = Callable[[RelationView], bool]


@dataclass(frozen=True)
class Vocabulary:
    """The instruction design space of a memory model.

    Demotion maps give the *one-step* weakenings DMO/DF may take (paper
    §3.2); chains (e.g. ``seq_cst -> acq_rel -> acquire``) arise from
    repeated application during synthesis of larger suites.
    """

    read_orders: tuple[Order, ...] = (Order.PLAIN,)
    write_orders: tuple[Order, ...] = (Order.PLAIN,)
    fence_kinds: tuple[FenceKind, ...] = ()
    dep_kinds: tuple[DepKind, ...] = ()
    allows_rmw: bool = True
    order_demotions: Mapping[Order, tuple[Order, ...]] = field(
        default_factory=dict
    )
    fence_demotions: Mapping[FenceKind, tuple[FenceKind, ...]] = field(
        default_factory=dict
    )
    scopes: tuple[Scope, ...] = ()
    #: Transistency event kinds (TransForm enhanced tests) the model
    #: gives semantics to; empty for consistency-only models, which keeps
    #: their candidate space — and synthesized suites — byte-identical.
    vmem_kinds: tuple[EventKind, ...] = ()

    def __post_init__(self) -> None:
        for src, dsts in self.order_demotions.items():
            for dst in dsts:
                if dst >= src:
                    raise ValueError(f"demotion {src} -> {dst} does not weaken")
        for kind in self.vmem_kinds:
            if kind not in VMEM_KINDS:
                raise ValueError(f"{kind} is not a transistency event kind")

    @property
    def has_orders(self) -> bool:
        """True when some access carries a demotable memory order."""
        return bool(self.order_demotions)

    @property
    def has_fence_demotions(self) -> bool:
        return bool(self.fence_demotions)

    @property
    def has_deps(self) -> bool:
        return bool(self.dep_kinds)

    @property
    def has_scopes(self) -> bool:
        return bool(self.scopes)

    @property
    def has_vmem(self) -> bool:
        """True when the model supports transistency-enhanced tests."""
        return bool(self.vmem_kinds)


class MemoryModel(abc.ABC):
    """An axiomatic memory consistency model."""

    #: Short identifier used by the CLI and the registry (e.g. ``"tso"``).
    name: str = ""
    #: Human-readable name for reports.
    full_name: str = ""
    #: True when the model's axioms mention an ``sc`` total order over
    #: SC fences that must be enumerated as part of each execution (SCC).
    uses_sc_order: bool = False

    @property
    @abc.abstractmethod
    def vocabulary(self) -> Vocabulary:
        """The instruction design space this model gives semantics to."""

    @abc.abstractmethod
    def axioms(self) -> Mapping[str, Axiom]:
        """Named axioms; an execution is valid iff all of them hold."""

    def wa_axioms(self) -> Mapping[str, Axiom]:
        """Axioms for the paper's Fig. 19 workaround mode.

        Models whose axioms quantify over auxiliary relations chosen
        before relaxation (SCC's ``sc``) override this with the
        reversal-tolerant variants; everyone else just uses the normal
        axioms.
        """
        return self.axioms()

    # -- convenience entry points -------------------------------------------------

    def view(self, execution: Execution) -> RelationView:
        """Relational view of an execution (override to specialize)."""
        return RelationView(execution)

    def is_valid(self, execution: Execution) -> bool:
        """Does the execution satisfy every axiom of the model?"""
        view = self.view(execution)
        return all(axiom(view) for axiom in self.axioms().values())

    def satisfies(self, execution: Execution, axiom_name: str) -> bool:
        """Does the execution satisfy one named axiom?"""
        return self.axioms()[axiom_name](self.view(execution))

    def axiom_names(self) -> tuple[str, ...]:
        return tuple(self.axioms().keys())

    def __repr__(self) -> str:
        return f"<MemoryModel {self.name}>"
