"""A scoped memory model (OpenCL/HSA-flavoured), exercising DS.

OpenCL 2.0 lets synchronization name an explicit *scope* — the set of
threads it promises to synchronize with (work-group / device / system) —
trading generality for speed (paper §3.2, DS).  Synchronization narrower
than the communicating threads' actual distance is a no-op, which is
exactly the bug class the DS relaxation probes.

This model is the scoped extension of SCC (the paper's §6.3 model):
identical axioms, except that a release-acquire ``sync`` edge and an
``sc`` ordering edge only take effect when both endpoint instructions'
scopes are *inclusive* — each covers the other endpoint's thread.
Threads are partitioned into work-groups by ``LitmusTest.scopes``; all
work-groups share one device, so:

* same work-group: any scope (``@wg`` and up) synchronizes;
* different work-groups: both endpoints need ``@dev``.

(The ``SYSTEM`` level exists in the vocabulary enum but is not generated
— with a single device it never differs from ``DEVICE``.)
"""

from __future__ import annotations

from collections.abc import Mapping
from functools import lru_cache

from repro.litmus.events import Scope
from repro.litmus.test import LitmusTest
from repro.models.base import Axiom
from repro.models.scc import SCC, scc_sync
from repro.semantics.rel import Rel
from repro.semantics.relations import RelationView

__all__ = ["OpenCL", "inclusive_rel"]


class OpenCL(SCC):
    """Scoped SCC (OpenCL-style work-group/device scopes)."""

    name = "opencl"
    full_name = "OpenCL-style scoped model (scoped SCC)"

    @property
    def vocabulary(self):
        base = super().vocabulary
        return type(base)(
            read_orders=base.read_orders,
            write_orders=base.write_orders,
            fence_kinds=base.fence_kinds,
            dep_kinds=base.dep_kinds,
            allows_rmw=base.allows_rmw,
            order_demotions=base.order_demotions,
            fence_demotions=base.fence_demotions,
            scopes=(Scope.WORKGROUP, Scope.DEVICE),
        )

    def axioms(self) -> Mapping[str, Axiom]:
        axioms = dict(super().axioms())
        axioms["causality"] = _scoped_causality
        return axioms

    def wa_axioms(self) -> Mapping[str, Axiom]:
        axioms = dict(self.axioms())
        axioms["causality"] = _scoped_causality_wa
        return axioms


def _workgroup_of(test: LitmusTest, tid: int) -> int:
    if test.scopes is None:
        return 0  # unscoped test: everyone shares a work-group
    return test.scopes[tid]


@lru_cache(maxsize=16384)
def inclusive_rel(test: LitmusTest) -> Rel:
    """Pairs of events whose scopes mutually cover each other.

    An un-annotated (scope-``None``) event behaves as device scope —
    plain accesses never head a sync edge anyway, and treating missing
    annotations as widest keeps unscoped tests behaving exactly like
    SCC (the containment property the tests assert)."""
    n = test.num_events
    pairs = []
    for a in range(n):
        for b in range(n):
            ta, tb = test.tid_of(a), test.tid_of(b)
            if _workgroup_of(test, ta) == _workgroup_of(test, tb):
                pairs.append((a, b))
                continue
            sa = test.instruction(a).scope or Scope.DEVICE
            sb = test.instruction(b).scope or Scope.DEVICE
            if sa >= Scope.DEVICE and sb >= Scope.DEVICE:
                pairs.append((a, b))
    return Rel.from_pairs(n, pairs)


def _scoped_cause(v: RelationView, sc: Rel | None = None) -> Rel:
    if sc is None:
        sc = v.sc
    inclusive = inclusive_rel(v.test)
    po_star = v.po.star()
    effective = (sc & inclusive) | (scc_sync(v) & inclusive)
    return po_star.join(effective).join(po_star)


def _scoped_causality(v: RelationView) -> bool:
    return v.com.star().join(_scoped_cause(v).plus()).is_irreflexive()


def _scoped_causality_wa(v: RelationView) -> bool:
    """Fig. 19-style sc-reversal workaround, scope-aware."""
    if len(v.sc) > 1:
        return _scoped_causality(v)
    forward = (
        v.com.star().join(_scoped_cause(v).plus()).is_irreflexive()
    )
    backward = (
        v.com.star()
        .join(_scoped_cause(v, sc=~v.sc).plus())
        .is_irreflexive()
    )
    return forward or backward
