"""ARMv7, as the Power variant of Alglave et al. 2014.

The paper (§6.2) treats ARMv7 as "broadly similar to Power, but
differ[ing] in some of the details (e.g., ARM has no equivalent of the
Power lwsync lightweight fence)".  We model exactly that delta: the same
four-plus-atomicity axiom structure with ``dmb`` playing ``sync``'s role,
no lightweight fence, and ``ctrl+isb`` as the instruction-fence
dependency.
"""

from __future__ import annotations

from repro.litmus.events import FenceKind
from repro.models.power import Power

__all__ = ["ARMv7"]


class ARMv7(Power):
    """ARMv7 (dmb-only Power variant)."""

    name = "armv7"
    full_name = "ARMv7 (Power variant, dmb/isb)"

    # dmb behaves like sync; there is no lwsync analogue, hence no fence
    # demotion and DF does not apply (paper Table 2 footnote 1).
    _fence_kinds = (FenceKind.SYNC,)
    _fence_demotions: dict[FenceKind, tuple[FenceKind, ...]] = {}
