"""The C/C++11 memory model (atomics fragment, RC11-flavoured).

The paper's §6.4 uses the Batty et al. 2016 formulation.  That exact
``.cat`` text is not reproduced in the paper, so we implement the closely
related *repaired* C11 axiomatisation (RC11, Lahav et al. 2017), which
fixes known soundness holes while keeping the same observable behaviour on
the litmus tests at issue.  Two scoping decisions, both documented in
DESIGN.md:

* only *atomic* accesses appear in the vocabulary (``relaxed`` .. ``seq_cst``)
  — non-atomics would drag in data-race/catch-fire semantics that the
  paper's synthesis experiments do not exercise;
* out-of-thin-air is axiomatized through explicit dependencies
  (``acyclic(dep + rmw + rf)``), matching the paper's Table 2 note that RD
  applies to C/C++ "no-thin-air axioms only".
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.litmus.events import DepKind, FenceKind, Order
from repro.models.base import Axiom, MemoryModel, Vocabulary
from repro.semantics.rel import Rel
from repro.semantics.relations import RelationView

__all__ = ["C11", "c11_sw", "c11_hb", "c11_psc"]


class C11(MemoryModel):
    """C/C++11 atomics (RC11-flavoured axiomatisation)."""

    name = "c11"
    full_name = "C/C++11 (atomics, RC11-flavoured)"

    @property
    def vocabulary(self) -> Vocabulary:
        return Vocabulary(
            read_orders=(Order.RLX, Order.ACQ, Order.SC),
            write_orders=(Order.RLX, Order.REL, Order.SC),
            fence_kinds=(
                FenceKind.FENCE_ACQ,
                FenceKind.FENCE_REL,
                FenceKind.FENCE_ACQ_REL,
                FenceKind.FENCE_SC,
            ),
            dep_kinds=(DepKind.ADDR, DepKind.DATA, DepKind.CTRL),
            allows_rmw=True,
            order_demotions={
                Order.SC: (Order.ACQ, Order.REL),
                Order.ACQ: (Order.RLX,),
                Order.REL: (Order.RLX,),
            },
            fence_demotions={
                FenceKind.FENCE_SC: (FenceKind.FENCE_ACQ_REL,),
                FenceKind.FENCE_ACQ_REL: (
                    FenceKind.FENCE_ACQ,
                    FenceKind.FENCE_REL,
                ),
            },
        )

    def axioms(self) -> Mapping[str, Axiom]:
        return {
            "coherence": _coherence,
            "atomicity": _atomicity,
            "seq_cst": _seq_cst,
            "no_thin_air": _no_thin_air,
        }


# -- derived relations ------------------------------------------------------------


def _rel_fences(v: RelationView) -> int:
    return v.fences_of(
        FenceKind.FENCE_REL, FenceKind.FENCE_ACQ_REL, FenceKind.FENCE_SC
    )


def _acq_fences(v: RelationView) -> int:
    return v.fences_of(
        FenceKind.FENCE_ACQ, FenceKind.FENCE_ACQ_REL, FenceKind.FENCE_SC
    )


def _rs(v: RelationView) -> Rel:
    """Release sequence: ``[W] ; (sb & loc)? ; [W] ; (rf ; rmw)*``."""
    w = v.writes
    head = v.po_loc.opt().restrict_domain(w).restrict_range(w)
    return head.join(v.rf.join(v.rmw).star())


def c11_sw(v: RelationView) -> Rel:
    """Synchronizes-with.

    ``sw = [rel-ish] ; ([F] ; sb)? ; rs ; rf ; (sb ; [F])? ; [acq-ish]``
    where *rel-ish* is a release-or-stronger write or a release fence and
    *acq-ish* is an acquire-or-stronger read or an acquire fence.
    """
    iden = Rel.identity(v.n)
    start = iden | v.po.restrict_domain(_rel_fences(v))
    end = iden | v.po.restrict_range(_acq_fences(v))
    chain = start.join(_rs(v)).join(v.rf).join(end)
    releasers = v.releases | _rel_fences(v)
    acquirers = v.acquires | _acq_fences(v)
    return chain.restrict_domain(releasers).restrict_range(acquirers)


def c11_hb(v: RelationView) -> Rel:
    """Happens-before: ``(sb + sw)^``."""
    return (v.po | c11_sw(v)).plus()


def _eco(v: RelationView) -> Rel:
    """Extended coherence order."""
    return (v.rf | v.co | v.fr).plus()


def c11_psc(v: RelationView) -> Rel:
    """Partial SC order (RC11 ``psc``)."""
    hb = c11_hb(v)
    eco = _eco(v)
    sc_access = v.accesses_with(lambda i: i.order is Order.SC)
    f_sc = v.fences_of(FenceKind.FENCE_SC)
    e_sc = sc_access | f_sc
    iden_sc = Rel.identity(v.n).restrict_domain(e_sc)

    sb_nl = v.po - v.loc
    scb = v.po | sb_nl.join(hb).join(sb_nl) | (hb & v.loc) | v.co | v.fr
    left = iden_sc | hb.opt().restrict_domain(f_sc)
    right = iden_sc | hb.opt().restrict_range(f_sc)
    psc_base = left.join(scb).join(right)

    psc_f = (
        (hb | hb.join(eco).join(hb))
        .restrict_domain(f_sc)
        .restrict_range(f_sc)
    )
    return psc_base | psc_f


# -- axioms -------------------------------------------------------------------------


def _coherence(v: RelationView) -> bool:
    return c11_hb(v).join(_eco(v).opt()).is_irreflexive()


def _atomicity(v: RelationView) -> bool:
    return (v.fr.join(v.co) & v.rmw).is_empty()


def _seq_cst(v: RelationView) -> bool:
    return c11_psc(v).is_acyclic()


def _no_thin_air(v: RelationView) -> bool:
    return (v.all_deps | v.rmw | v.rf).is_acyclic()
