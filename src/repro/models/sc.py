"""Sequential Consistency (Lamport 1979), axiomatic formulation.

An execution is sequentially consistent iff program order and the
communication relations embed into a single total order over all events:
``acyclic(po + rf + co + fr)``.  RMW atomicity is stated separately so the
per-axiom suite generation of the paper applies uniformly.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.models.base import Axiom, MemoryModel, Vocabulary
from repro.semantics.relations import RelationView

__all__ = ["SC"]


class SC(MemoryModel):
    """Sequential consistency with atomic read-modify-writes."""

    name = "sc"
    full_name = "Sequential Consistency (Lamport 1979)"

    @property
    def vocabulary(self) -> Vocabulary:
        return Vocabulary(allows_rmw=True)

    def axioms(self) -> Mapping[str, Axiom]:
        return {
            "sequential_consistency": _sequential_consistency,
            "rmw_atomicity": _rmw_atomicity,
        }


def _sequential_consistency(v: RelationView) -> bool:
    return (v.po | v.com).is_acyclic()


def _rmw_atomicity(v: RelationView) -> bool:
    """No write intervenes between the halves of an RMW."""
    return (v.fr.join(v.co) & v.rmw).is_empty()
