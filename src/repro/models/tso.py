"""Total Store Order, following the paper's Fig. 4 Alloy model.

This is the Owens et al. / SPARC x86-TSO formulation with atomic
read-modify-writes added, exactly as the paper encodes it:

* ``sc_per_loc``:    ``acyclic(rf + co + fr + po_loc)``
* ``rmw_atomicity``: ``no (fre . coe) & rmw``
* ``causality``:     ``acyclic(rfe + co + fr + ppo + fence)`` with
  ``ppo = po - (Write -> Read)`` and ``fence = (po :> Fence) . po``.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.litmus.events import FenceKind
from repro.models.base import Axiom, MemoryModel, Vocabulary
from repro.semantics.rel import Rel
from repro.semantics.relations import RelationView

__all__ = ["TSO"]


class TSO(MemoryModel):
    """x86-TSO (Owens et al. 2009; SPARC International 1993)."""

    name = "tso"
    full_name = "Total Store Order (x86/SPARC)"

    @property
    def vocabulary(self) -> Vocabulary:
        return Vocabulary(
            fence_kinds=(FenceKind.MFENCE,),
            allows_rmw=True,
        )

    def axioms(self) -> Mapping[str, Axiom]:
        return {
            "sc_per_loc": _sc_per_loc,
            "rmw_atomicity": _rmw_atomicity,
            "causality": _causality,
        }


def _sc_per_loc(v: RelationView) -> bool:
    return (v.rf | v.co | v.fr | v.po_loc).is_acyclic()


def _rmw_atomicity(v: RelationView) -> bool:
    return (v.fre.join(v.coe) & v.rmw).is_empty()


def _causality(v: RelationView) -> bool:
    ppo = v.po - v.W_R
    fence = v.fence_rel(FenceKind.MFENCE)
    return (v.rfe | v.co | v.fr | ppo | fence).is_acyclic()


def tso_ppo(v: RelationView) -> Rel:
    """TSO preserved program order (exported for tests and docs)."""
    return v.po - v.W_R
