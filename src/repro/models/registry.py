"""Model registry: name -> MemoryModel factory.

Every class that enters the registry — the built-ins below and anything
added through :func:`register_model` — passes a structural self-check at
registration time (import time for the built-ins): it must instantiate,
carry a consistent name, expose a :class:`Vocabulary`, and declare at
least one callable axiom.  A model that would only blow up mid-synthesis
instead fails the moment it is registered, and ``repro lint`` runs the
full MDL battery over exactly this registry.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.models.armv7 import ARMv7
from repro.models.armv8 import ARMv8
from repro.models.base import MemoryModel, Vocabulary
from repro.models.c11 import C11
from repro.models.opencl import OpenCL
from repro.models.power import Power
from repro.models.rvwmo import RVWMO
from repro.models.sc import SC
from repro.models.scc import SCC
from repro.models.tso import TSO
from repro.vmem.models import SCVmem, TSOVmem

__all__ = [
    "MODEL_CLASSES",
    "get_model",
    "available_models",
    "register_model",
    "validate_model_class",
]

MODEL_CLASSES: dict[str, type[MemoryModel]] = {}


def validate_model_class(cls: type[MemoryModel]) -> None:
    """Structural registry self-check; raises ``ValueError`` on defects."""
    if not cls.name:
        raise ValueError("model classes must define a non-empty name")
    try:
        model = cls()
    except Exception as exc:  # noqa: BLE001 - rewrap with the culprit's name
        raise ValueError(
            f"model {cls.name!r} failed to instantiate: {exc}"
        ) from exc
    if not isinstance(model.vocabulary, Vocabulary):
        raise ValueError(f"model {cls.name!r} must expose a Vocabulary")
    axioms = model.axioms()
    if not isinstance(axioms, Mapping) or not axioms:
        raise ValueError(
            f"model {cls.name!r} must declare a non-empty axiom mapping"
        )
    for axiom_name, fn in axioms.items():
        if not axiom_name or not callable(fn):
            raise ValueError(
                f"model {cls.name!r} axiom {axiom_name!r} is not a named "
                "callable"
            )


def register_model(cls: type[MemoryModel]) -> type[MemoryModel]:
    """Register an additional model class (usable as a decorator)."""
    validate_model_class(cls)
    MODEL_CLASSES[cls.name] = cls
    return cls


for _cls in (SC, TSO, Power, ARMv7, SCC, C11, OpenCL, ARMv8, RVWMO,
             SCVmem, TSOVmem):
    register_model(_cls)


def get_model(name: str) -> MemoryModel:
    """Instantiate a registered model by its short name."""
    try:
        return MODEL_CLASSES[name]()
    except KeyError:
        known = ", ".join(sorted(MODEL_CLASSES))
        raise KeyError(f"unknown memory model {name!r}; known: {known}") from None


def available_models() -> tuple[str, ...]:
    return tuple(sorted(MODEL_CLASSES))
