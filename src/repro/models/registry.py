"""Model registry: name -> MemoryModel factory."""

from __future__ import annotations

from repro.models.armv7 import ARMv7
from repro.models.base import MemoryModel
from repro.models.c11 import C11
from repro.models.opencl import OpenCL
from repro.models.power import Power
from repro.models.sc import SC
from repro.models.scc import SCC
from repro.models.tso import TSO

__all__ = ["MODEL_CLASSES", "get_model", "available_models", "register_model"]

MODEL_CLASSES: dict[str, type[MemoryModel]] = {
    cls.name: cls for cls in (SC, TSO, Power, ARMv7, SCC, C11, OpenCL)
}


def register_model(cls: type[MemoryModel]) -> type[MemoryModel]:
    """Register an additional model class (usable as a decorator)."""
    if not cls.name:
        raise ValueError("model classes must define a non-empty name")
    MODEL_CLASSES[cls.name] = cls
    return cls


def get_model(name: str) -> MemoryModel:
    """Instantiate a registered model by its short name."""
    try:
        return MODEL_CLASSES[name]()
    except KeyError:
        known = ", ".join(sorted(MODEL_CLASSES))
        raise KeyError(f"unknown memory model {name!r}; known: {known}") from None


def available_models() -> tuple[str, ...]:
    return tuple(sorted(MODEL_CLASSES))
