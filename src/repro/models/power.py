"""The Power memory model of Alglave et al. 2014 ("herding cats").

This is the formulation the paper uses for its Power case study (its
Fig. 15): four axioms over derived relations, with preserved program
order (``ppo``) computed as the least fixed point of the four
mutually-recursive ``ii/ic/ci/cc`` relations.

The fence relation follows the ``cat`` file: ``sync`` orders everything
across it, ``lwsync`` orders everything except write-to-read pairs.
``ctrl+isync`` is modelled as its own dependency kind
(:attr:`~repro.litmus.events.DepKind.CTRLISYNC`), which is how the
published litmus tests (e.g. ``MP+sync+ctrlisync``) name it anyway.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.litmus.events import DepKind, FenceKind
from repro.models.base import Axiom, MemoryModel, Vocabulary
from repro.semantics.rel import Rel
from repro.semantics.relations import RelationView

__all__ = ["Power", "power_ppo", "power_fences", "power_prop", "power_hb"]


class Power(MemoryModel):
    """Power (Alglave et al. 2014; Power.org 2013)."""

    name = "power"
    full_name = "IBM Power (herding-cats formulation)"

    #: Fence strengths this model understands; ARMv7 overrides this.
    _fence_kinds: tuple[FenceKind, ...] = (FenceKind.SYNC, FenceKind.LWSYNC)
    _fence_demotions: dict[FenceKind, tuple[FenceKind, ...]] = {
        FenceKind.SYNC: (FenceKind.LWSYNC,),
    }

    @property
    def vocabulary(self) -> Vocabulary:
        return Vocabulary(
            fence_kinds=self._fence_kinds,
            dep_kinds=(
                DepKind.ADDR,
                DepKind.DATA,
                DepKind.CTRL,
                DepKind.CTRLISYNC,
            ),
            allows_rmw=True,
            fence_demotions=self._fence_demotions,
        )

    def axioms(self) -> Mapping[str, Axiom]:
        # The paper's Fig. 15 lists the four herding-cats axioms; the
        # published cat file additionally states RMW atomicity, which the
        # paper's Table 2 relies on (DRMW applies to Power), so we include
        # it as a fifth named axiom.
        return {
            "sc_per_loc": _sc_per_loc,
            "no_thin_air": _no_thin_air,
            "observation": _observation,
            "propagation": _propagation,
            "rmw_atomicity": _rmw_atomicity,
        }


# -- derived relations (herding cats, Section 6) --------------------------------


def power_ppo(v: RelationView) -> Rel:
    """Preserved program order: the ii/ic/ci/cc least fixed point."""
    dp = v.addr_dep | v.data_dep
    rdw = v.po_loc & v.fre.join(v.rfe)
    detour = v.po_loc & v.coe.join(v.rfe)

    ii0 = dp | rdw | v.rfi
    ci0 = v.ctrlisync_dep | detour
    ic0 = Rel.empty(v.n)
    cc0 = dp | v.po_loc | v.ctrl_dep | v.addr_dep.join(v.po)

    ii, ic, ci, cc = ii0, ic0, ci0, cc0
    while True:
        nii = ii0 | ci | ic.join(ci) | ii.join(ii)
        nic = ic0 | ii | cc | ic.join(cc) | ii.join(ic)
        nci = ci0 | ci.join(ii) | cc.join(ci)
        ncc = cc0 | ci | ci.join(ic) | cc.join(cc)
        if (nii, nic, nci, ncc) == (ii, ic, ci, cc):
            break
        ii, ic, ci, cc = nii, nic, nci, ncc

    return (v.R_R & ii) | (v.R_W & ic)


def power_fences(v: RelationView) -> Rel:
    """``sync`` orders everything; ``lwsync`` everything but W -> R."""
    sync = v.fence_rel(FenceKind.SYNC)
    lwsync = v.fence_rel(FenceKind.LWSYNC) - v.W_R
    return sync | lwsync


def power_hb(v: RelationView) -> Rel:
    return power_ppo(v) | power_fences(v) | v.rfe


def power_prop(v: RelationView) -> Rel:
    ffence = v.fence_rel(FenceKind.SYNC)
    fences = power_fences(v)
    hb_star = power_hb(v).star()
    prop_base = (fences | v.rfe.join(fences)).join(hb_star)
    chain = (
        v.com.star()
        .join(prop_base.star())
        .join(ffence)
        .join(hb_star)
    )
    return (prop_base & v.W_W) | chain


# -- axioms (paper Fig. 15) ----------------------------------------------------------


def _sc_per_loc(v: RelationView) -> bool:
    return (v.rf | v.co | v.fr | v.po_loc).is_acyclic()


def _no_thin_air(v: RelationView) -> bool:
    return power_hb(v).is_acyclic()


def _observation(v: RelationView) -> bool:
    rel = v.fre.join(power_prop(v)).join(power_hb(v).star())
    return rel.is_irreflexive()


def _propagation(v: RelationView) -> bool:
    return (v.co | power_prop(v)).is_acyclic()


def _rmw_atomicity(v: RelationView) -> bool:
    return (v.fre.join(v.coe) & v.rmw).is_empty()
