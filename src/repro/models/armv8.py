"""ARMv8 (AArch64), multi-copy-atomic formulation.

ARMv8's 2018 revision made the architecture *multi-copy atomic*
(Pulte et al. 2018, "Simplifying ARM concurrency"): once any other
thread observes a write, all threads do.  Axiomatically this collapses
the Power-style propagation machinery into a single *external
visibility* axiom over an ordered-before relation:

* ``sc_per_loc``:    ``acyclic(rf + co + fr + po_loc)``
* ``rmw_atomicity``: ``no (fre . coe) & rmw``
* ``external``:      ``acyclic(rfe + coe + fre + dob + bob)`` where
  ``dob`` (dependency-ordered-before) covers the dependency edges and
  ``bob`` (barrier-ordered-before) covers ``dmb`` fences plus the
  acquire/release half-barriers (``Acq -> po`` and ``po -> Rel``).

The formulation is deliberately the simplified aarch64.cat skeleton —
the same shape the relational twin in :mod:`repro.alloy.models` states
over free ``rf``/``co``, which is what the cross-oracle agreement tests
check.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.litmus.events import DepKind, FenceKind, Order
from repro.models.base import Axiom, MemoryModel, Vocabulary
from repro.semantics.rel import Rel
from repro.semantics.relations import RelationView

__all__ = ["ARMv8", "armv8_ob"]


class ARMv8(MemoryModel):
    """ARMv8 / AArch64 (multi-copy-atomic, Pulte et al. 2018)."""

    name = "armv8"
    full_name = "ARMv8 AArch64 (multi-copy atomic)"

    @property
    def vocabulary(self) -> Vocabulary:
        return Vocabulary(
            read_orders=(Order.PLAIN, Order.ACQ),
            write_orders=(Order.PLAIN, Order.REL),
            fence_kinds=(FenceKind.SYNC,),  # dmb ish
            dep_kinds=(DepKind.ADDR, DepKind.DATA, DepKind.CTRL),
            allows_rmw=True,
            order_demotions={
                Order.ACQ: (Order.PLAIN,),
                Order.REL: (Order.PLAIN,),
            },
        )

    def axioms(self) -> Mapping[str, Axiom]:
        return {
            "sc_per_loc": _sc_per_loc,
            "rmw_atomicity": _rmw_atomicity,
            "external": _external,
        }


def armv8_ob(v: RelationView) -> Rel:
    """The external part of ordered-before: communication seen by other
    threads plus dependency- and barrier-ordering."""
    dob = v.all_deps
    bob = (
        v.fence_rel(FenceKind.SYNC)
        | v.po.restrict_domain(v.acquires)
        | v.po.restrict_range(v.releases)
    )
    return v.rfe | v.coe | v.fre | dob | bob


def _sc_per_loc(v: RelationView) -> bool:
    return (v.rf | v.co | v.fr | v.po_loc).is_acyclic()


def _rmw_atomicity(v: RelationView) -> bool:
    return (v.fre.join(v.coe) & v.rmw).is_empty()


def _external(v: RelationView) -> bool:
    return armv8_ob(v).is_acyclic()
