"""RISC-V Weak Memory Ordering (RVWMO).

The RISC-V unprivileged specification (chapter 17 + appendix A) states
RVWMO as a global-memory-order model; the equivalent herd-style
axiomatization (riscv.cat) is:

* ``sc_per_loc``:    ``acyclic(rf + co + fr + po_loc)`` (load value /
  coherence axioms)
* ``rmw_atomicity``: ``no (fre . coe) & rmw`` (atomicity axiom for
  ``lr``/``sc`` pairs)
* ``ghb``:           ``acyclic(rfe + co + fr + ppo)`` (main model) with
  preserved program order covering syntactic dependencies (PPO rules
  9-11), ``fence rw,rw`` (rule 4), and the RCsc acquire/release
  annotations (rules 5-7).

Like ARMv8, RVWMO is multi-copy atomic, so only external reads-from
enters the global-happens-before cycle check.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.litmus.events import DepKind, FenceKind, Order
from repro.models.base import Axiom, MemoryModel, Vocabulary
from repro.semantics.rel import Rel
from repro.semantics.relations import RelationView

__all__ = ["RVWMO", "rvwmo_ppo"]


class RVWMO(MemoryModel):
    """RISC-V Weak Memory Ordering (RISC-V spec chapter 17)."""

    name = "rvwmo"
    full_name = "RISC-V Weak Memory Ordering (RVWMO)"

    @property
    def vocabulary(self) -> Vocabulary:
        return Vocabulary(
            read_orders=(Order.PLAIN, Order.ACQ),
            write_orders=(Order.PLAIN, Order.REL),
            fence_kinds=(FenceKind.SYNC,),  # fence rw,rw
            dep_kinds=(DepKind.ADDR, DepKind.DATA, DepKind.CTRL),
            allows_rmw=True,
            order_demotions={
                Order.ACQ: (Order.PLAIN,),
                Order.REL: (Order.PLAIN,),
            },
        )

    def axioms(self) -> Mapping[str, Axiom]:
        return {
            "sc_per_loc": _sc_per_loc,
            "rmw_atomicity": _rmw_atomicity,
            "ghb": _ghb,
        }


def rvwmo_ppo(v: RelationView) -> Rel:
    """Preserved program order: dependencies, full fences, and the RCsc
    acquire/release half-orderings."""
    return (
        v.all_deps
        | v.fence_rel(FenceKind.SYNC)
        | v.po.restrict_domain(v.acquires)
        | v.po.restrict_range(v.releases)
    )


def _sc_per_loc(v: RelationView) -> bool:
    return (v.rf | v.co | v.fr | v.po_loc).is_acyclic()


def _rmw_atomicity(v: RelationView) -> bool:
    return (v.fre.join(v.coe) & v.rmw).is_empty()


def _ghb(v: RelationView) -> bool:
    return (v.rfe | v.co | v.fr | rvwmo_ppo(v)).is_acyclic()
