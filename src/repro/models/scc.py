"""Streamlined Causal Consistency (SCC) — the model the paper introduces.

SCC (paper §6.3, Fig. 17) is a CPU-like model that keeps the relaxed
flavour of ARM/Power but replaces the complex ``ppo`` machinery with
explicit acquire/release annotations, a single dependency kind, an
acquire-release fence, and a sequentially-consistent fence whose events
are related by an ``sc`` total order:

* ``sc_per_loc``:    ``acyclic(rf + co + fr + po_loc)``
* ``no_thin_air``:   ``acyclic(rf + dep)``
* ``rmw_atomicity``: ``no (fr . co) & rmw``
* ``causality``:     ``irreflexive(*(rf + co + fr) . ^cause)`` where
  ``cause = *po . (sc + sync) . *po`` and ``sync`` chains release-ish
  prefixes through ``(rf + rmw)+`` into acquire-ish suffixes.

Because ``causality`` quantifies over the auxiliary ``sc`` order, SCC is
exactly the model that exposes the paper's Fig. 18 false-negative problem
in the Fig. 5c criterion.  :meth:`SCC.wa_axioms` implements the Fig. 19
workaround: when there are at most two SC fences (``lone sc``), accept an
execution if either the chosen ``sc`` orientation or its reversal
satisfies causality.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.litmus.events import DepKind, FenceKind, Order
from repro.models.base import Axiom, MemoryModel, Vocabulary
from repro.semantics.rel import Rel
from repro.semantics.relations import RelationView

__all__ = ["SCC", "scc_sync", "scc_cause"]


class SCC(MemoryModel):
    """Streamlined Causal Consistency (this paper, §6.3)."""

    name = "scc"
    full_name = "Streamlined Causal Consistency"
    uses_sc_order = True

    @property
    def vocabulary(self) -> Vocabulary:
        return Vocabulary(
            read_orders=(Order.PLAIN, Order.ACQ),
            write_orders=(Order.PLAIN, Order.REL),
            fence_kinds=(FenceKind.FENCE_ACQ_REL, FenceKind.FENCE_SC),
            dep_kinds=(DepKind.DATA,),
            allows_rmw=True,
            order_demotions={
                Order.ACQ: (Order.PLAIN,),
                Order.REL: (Order.PLAIN,),
            },
            fence_demotions={
                FenceKind.FENCE_SC: (FenceKind.FENCE_ACQ_REL,),
            },
        )

    def axioms(self) -> Mapping[str, Axiom]:
        return {
            "sc_per_loc": _sc_per_loc,
            "no_thin_air": _no_thin_air,
            "rmw_atomicity": _rmw_atomicity,
            "causality": _causality,
        }

    def wa_axioms(self) -> Mapping[str, Axiom]:
        axioms = dict(self.axioms())
        axioms["causality"] = _causality_wa
        return axioms


# -- derived relations (Fig. 17) ------------------------------------------------


def _sync_fences(v: RelationView) -> int:
    return v.fences_of(FenceKind.FENCE_ACQ_REL, FenceKind.FENCE_SC)


def scc_sync(v: RelationView) -> Rel:
    """Release-to-acquire synchronization edges."""
    iden = Rel.identity(v.n)
    fence_mask = _sync_fences(v)
    prefix = (
        iden
        | v.po.restrict_domain(fence_mask)
        | v.po_loc.restrict_domain(v.releases)
    )
    suffix = (
        iden
        | v.po.restrict_range(fence_mask)
        | v.po_loc.restrict_range(v.acquires)
    )
    releasers = v.releases | fence_mask
    acquirers = v.acquires | fence_mask
    chain = prefix.join((v.rf | v.rmw).plus()).join(suffix)
    return chain.restrict_domain(releasers).restrict_range(acquirers)


def scc_cause(v: RelationView, sc: Rel | None = None) -> Rel:
    if sc is None:
        sc = v.sc
    po_star = v.po.star()
    return po_star.join(sc | scc_sync(v)).join(po_star)


# -- axioms ---------------------------------------------------------------------


def _sc_per_loc(v: RelationView) -> bool:
    return (v.rf | v.co | v.fr | v.po_loc).is_acyclic()


def _no_thin_air(v: RelationView) -> bool:
    return (v.rf | v.all_deps).is_acyclic()


def _rmw_atomicity(v: RelationView) -> bool:
    return (v.fr.join(v.co) & v.rmw).is_empty()


def _causality(v: RelationView) -> bool:
    return v.com.star().join(scc_cause(v).plus()).is_irreflexive()


def _causality_wa(v: RelationView) -> bool:
    """Fig. 19: with ``lone sc``, try both orientations of ``sc``.

    With more than one ``sc`` edge (three or more SC fences) the
    workaround is unsound, so we fall back to the plain axiom — the paper
    notes its experiments never scale to tests that large anyway.
    """
    if len(v.sc) > 1:
        return _causality(v)
    forward = v.com.star().join(scc_cause(v).plus()).is_irreflexive()
    backward = (
        v.com.star().join(scc_cause(v, sc=~v.sc).plus()).is_irreflexive()
    )
    return forward or backward
