"""Run synthesized suites against an (operational) implementation.

This is the consumer side of the paper's pipeline: take a suite of
minimal tests, execute each against a machine, and flag any forbidden
outcome the machine produced.  With the bug-injection knobs of
:class:`~repro.machine.tso_machine.TsoMachine`, it demonstrates the
paper's comprehensiveness claim operationally: each injected bug is
caught by some synthesized test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.oracle import ExplicitOracle
from repro.core.suite import TestSuite
from repro.litmus.execution import Outcome
from repro.litmus.test import LitmusTest
from repro.machine.tso_machine import Bug, explore
from repro.models.base import MemoryModel

__all__ = ["Violation", "SuiteRunReport", "run_suite"]


@dataclass(frozen=True)
class Violation:
    """One forbidden outcome the machine produced."""

    test: LitmusTest
    outcome: Outcome

    def pretty(self) -> str:
        return (
            f"{self.test!r} produced forbidden outcome "
            f"{self.outcome.pretty(self.test)}"
        )


@dataclass
class SuiteRunReport:
    """Results of running one suite against one machine."""

    bug: Bug
    tests_run: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def caught(self) -> bool:
        return bool(self.violations)

    def summary(self) -> str:
        status = (
            f"CAUGHT by {len(self.violations)} test(s)"
            if self.caught
            else "no violations"
        )
        return f"machine={self.bug.value}: {self.tests_run} tests run, {status}"


def run_suite(
    suite: TestSuite,
    model: MemoryModel,
    bug: Bug = Bug.NONE,
    oracle: ExplicitOracle | None = None,
) -> SuiteRunReport:
    """Execute every suite test on the machine and check each observed
    outcome against the model."""
    if oracle is None:
        oracle = ExplicitOracle(model)
    report = SuiteRunReport(bug)
    for entry in suite:
        report.tests_run += 1
        observed = explore(entry.test, bug)
        valid = oracle.analyze(entry.test).model_valid
        for outcome in observed - valid:
            report.violations.append(Violation(entry.test, outcome))
    return report
