"""Operational TSO machine + suite-execution harness (the downstream
testing infrastructure the paper's suites feed into)."""

from repro.machine.harness import SuiteRunReport, Violation, run_suite
from repro.machine.tso_machine import Bug, TsoMachine, explore

__all__ = [
    "Bug",
    "TsoMachine",
    "explore",
    "run_suite",
    "SuiteRunReport",
    "Violation",
]
