"""An operational x86-TSO machine: the downstream testing substrate.

The paper's suites are meant to be "fed into any existing testing
infrastructure" — i.e., run against an implementation.  This module
provides that implementation side: the classic operational model of
x86-TSO (Owens et al. 2009) with one FIFO store buffer per hardware
thread, plus a family of *injected bugs* for the suite-effectiveness
experiments:

* each store enters its thread's store buffer;
* a buffered store drains to shared memory at any time, in FIFO order;
* a load reads the newest same-address entry of its own buffer
  (store-to-load forwarding), else shared memory;
* ``mfence`` drains the buffer;
* a locked RMW drains the buffer and reads+writes memory atomically.

:func:`explore` runs an *exhaustive* interleaving search (every
scheduler choice at every step), so for litmus-test-sized programs the
set of observable outcomes is exact — which is what lets the test suite
assert the operational/axiomatic equivalence of TSO empirically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.litmus.events import FenceKind
from repro.litmus.execution import Outcome
from repro.litmus.test import LitmusTest

__all__ = ["Bug", "TsoMachine", "explore"]


class Bug(enum.Enum):
    """Injectable microarchitectural bugs."""

    NONE = "correct"
    #: the store buffer drains out of order (breaks W->W ordering: MP, 2+2W)
    NON_FIFO_BUFFER = "non-fifo-buffer"
    #: mfence retires without draining the buffer (breaks SB+mfences)
    IGNORE_MFENCE = "ignore-mfence"
    #: loads never forward from the local buffer (breaks required
    #: forwarding: CoWR0 reads 0)
    NO_FORWARDING = "no-forwarding"
    #: RMWs forget to lock the bus (breaks rmw_atomicity)
    UNLOCKED_RMW = "unlocked-rmw"


@dataclass(frozen=True)
class _State:
    """One machine configuration (hashable for the visited set)."""

    pcs: tuple[int, ...]
    #: per-thread FIFO store buffer: tuples of (address, write_eid)
    buffers: tuple[tuple[tuple[int, int], ...], ...]
    #: address -> write_eid of the last committed store (None = initial)
    memory: tuple[tuple[int, int], ...]
    #: read_eid -> sourcing write_eid or None, in completion order
    loads: tuple[tuple[int, int | None], ...]


class TsoMachine:
    """Operational TSO over one litmus test (optionally with a bug)."""

    def __init__(self, test: LitmusTest, bug: Bug = Bug.NONE):
        self.test = test
        self.bug = bug

    # -- state transitions ---------------------------------------------------------

    def initial_state(self) -> _State:
        return _State(
            pcs=(0,) * len(self.test.threads),
            buffers=((),) * len(self.test.threads),
            memory=(),
            loads=(),
        )

    def successors(self, state: _State) -> list[_State]:
        """Every machine step enabled in ``state``."""
        out: list[_State] = []
        for tid in range(len(self.test.threads)):
            out.extend(self._drain_steps(state, tid))
            step = self._instruction_step(state, tid)
            if step is not None:
                out.append(step)
        return out

    def _drain_steps(self, state: _State, tid: int) -> list[_State]:
        buffer = state.buffers[tid]
        if not buffer:
            return []
        if self.bug is Bug.NON_FIFO_BUFFER:
            positions = range(len(buffer))
        else:
            positions = (0,)
        steps = []
        for pos in positions:
            addr, write_eid = buffer[pos]
            new_buffer = buffer[:pos] + buffer[pos + 1 :]
            steps.append(
                _State(
                    pcs=state.pcs,
                    buffers=_replace(state.buffers, tid, new_buffer),
                    memory=_store(state.memory, addr, write_eid),
                    loads=state.loads,
                )
            )
        return steps

    def _instruction_step(self, state: _State, tid: int) -> _State | None:
        thread = self.test.threads[tid]
        pc = state.pcs[tid]
        if pc >= len(thread):
            return None
        eid = self.test.eid(tid, pc)
        inst = thread[pc]
        buffer = state.buffers[tid]
        advance = _replace(state.pcs, tid, pc + 1)

        if inst.is_fence:
            assert inst.fence is FenceKind.MFENCE
            if buffer and self.bug is not Bug.IGNORE_MFENCE:
                return None  # stalls until the buffer drains
            return _State(advance, state.buffers, state.memory, state.loads)

        assert inst.address is not None
        if eid in self.test.rmw_reads:
            return self._rmw_read_step(state, tid, eid, inst, advance)
        if inst.is_write:
            if eid in self.test.rmw_writes:
                # the write half commits with its read half; skip here
                return self._rmw_write_step(state, tid, eid, inst, advance)
            new_buffer = buffer + ((inst.address, eid),)
            return _State(
                advance,
                _replace(state.buffers, tid, new_buffer),
                state.memory,
                state.loads,
            )
        # plain load
        value = self._load_value(state, tid, inst.address)
        return _State(
            advance,
            state.buffers,
            state.memory,
            state.loads + ((eid, value),),
        )

    def _load_value(
        self, state: _State, tid: int, addr: int
    ) -> int | None:
        if self.bug is not Bug.NO_FORWARDING:
            for a, write_eid in reversed(state.buffers[tid]):
                if a == addr:
                    return write_eid
        return dict(state.memory).get(addr)

    def _rmw_read_step(self, state, tid, eid, inst, advance):
        """A locked RMW executes read and write as ONE atomic step: the
        buffer drains first, the read takes memory's value, and the write
        half commits to memory before the bus unlocks.

        The UNLOCKED_RMW bug splits the pair back into an ordinary
        load/store sequence (the write goes through the buffer and other
        threads can interleave)."""
        if self.bug is Bug.UNLOCKED_RMW:
            value = self._load_value(state, tid, inst.address)
            return _State(
                advance,
                state.buffers,
                state.memory,
                state.loads + ((eid, value),),
            )
        if state.buffers[tid]:
            return None  # lock drains the buffer first
        value = dict(state.memory).get(inst.address)
        write_eid = eid + 1  # the po-adjacent write half
        pc = state.pcs[tid]
        return _State(
            _replace(state.pcs, tid, pc + 2),
            state.buffers,
            _store(state.memory, inst.address, write_eid),
            state.loads + ((eid, value),),
        )

    def _rmw_write_step(self, state, tid, eid, inst, advance):
        """Only reachable for UNLOCKED_RMW (the correct path consumes
        both halves in _rmw_read_step): the buggy store buffers like any
        other write."""
        assert self.bug is Bug.UNLOCKED_RMW
        new_buffer = state.buffers[tid] + ((inst.address, eid),)
        return _State(
            advance,
            _replace(state.buffers, tid, new_buffer),
            state.memory,
            state.loads,
        )

    # -- termination -----------------------------------------------------------------

    def is_final(self, state: _State) -> bool:
        return all(
            pc >= len(thread)
            for pc, thread in zip(state.pcs, self.test.threads)
        ) and all(not b for b in state.buffers)

    def outcome_of(self, state: _State) -> Outcome:
        memory = dict(state.memory)
        rf = tuple(sorted(state.loads))
        finals = tuple(
            (addr, memory.get(addr)) for addr in self.test.addresses
        )
        return Outcome(rf, finals)


def explore(test: LitmusTest, bug: Bug = Bug.NONE) -> frozenset[Outcome]:
    """Exhaustively explore every interleaving; returns the exact set of
    outcomes the (possibly buggy) machine can produce."""
    machine = TsoMachine(test, bug)
    start = machine.initial_state()
    seen = {start}
    stack = [start]
    outcomes: set[Outcome] = set()
    while stack:
        state = stack.pop()
        if machine.is_final(state):
            outcomes.add(machine.outcome_of(state))
            continue
        for nxt in machine.successors(state):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return frozenset(outcomes)


def _replace(items: tuple, index: int, value) -> tuple:
    return items[:index] + (value,) + items[index + 1 :]


def _store(memory: tuple, addr: int, write_eid: int) -> tuple:
    out = dict(memory)
    out[addr] = write_eid
    return tuple(sorted(out.items()))
