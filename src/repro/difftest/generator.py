"""Seeded random litmus test generation.

The generator samples the *same* design space the exhaustive enumerator
walks — instruction slots from :func:`repro.core.enumerator.slot_choices`
over a model's vocabulary, rmw/dependency overlays from the same
candidate functions — but draws uniformly instead of exhaustively, so a
campaign of a few hundred tests touches shapes a bounded enumeration at
the same size budget would visit in a fixed prefix order.

Generated tests respect the enumerator's structural invariants (no
boundary fences, canonical address numbering, every address communicates)
by rejection sampling with a deterministic fallback, so every draw
yields a well-formed :class:`~repro.litmus.test.LitmusTest`.  All
randomness comes from the caller's :class:`random.Random` stream; the
generator holds no state between calls, which is what lets campaign
shards generate test ``i`` identically regardless of which shard runs it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.enumerator import (
    EnumerationConfig,
    dep_candidates,
    rmw_candidates,
    slot_choices,
)
from repro.litmus.events import DepKind, Instruction
from repro.litmus.test import Dep, LitmusTest
from repro.models.base import Vocabulary

__all__ = ["GeneratorConfig", "TestGenerator"]

#: rejection-sampling budget before falling back to the fixed shape
_MAX_ATTEMPTS = 64


@dataclass(frozen=True)
class GeneratorConfig:
    """Bounds on randomly generated tests (mirrors EnumerationConfig)."""

    max_events: int = 4
    min_events: int = 2
    max_threads: int = 3
    max_addresses: int = 2
    max_deps: int = 1
    max_rmws: int = 1

    def __post_init__(self) -> None:
        if self.min_events < 2:
            raise ValueError("a differential test needs >= 2 events")
        if self.max_events < self.min_events:
            raise ValueError("max_events must be >= min_events")
        if self.max_threads < 1 or self.max_addresses < 1:
            raise ValueError("need at least one thread and one address")


class TestGenerator:
    """Draws well-formed random litmus tests over a model vocabulary."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, vocab: Vocabulary, config: GeneratorConfig | None = None):
        self.vocab = vocab
        self.config = config if config is not None else GeneratorConfig()
        enum_config = EnumerationConfig(
            max_events=self.config.max_events,
            max_threads=self.config.max_threads,
            max_addresses=self.config.max_addresses,
            max_deps=self.config.max_deps,
            max_rmws=self.config.max_rmws,
            min_events=self.config.min_events,
        )
        self._choices = slot_choices(vocab, enum_config)

    # -- sampling ------------------------------------------------------------

    def generate(self, rng) -> LitmusTest:
        """One random test; falls back to a fixed message-passing shape
        when rejection sampling exhausts its budget (pathological
        configs only — the campaign stays total either way)."""
        for _ in range(_MAX_ATTEMPTS):
            test = self._attempt(rng)
            if test is not None:
                return test
        return self._fallback()

    def _attempt(self, rng) -> LitmusTest | None:
        config = self.config
        n = rng.randint(config.min_events, config.max_events)
        threads = self._sample_threads(rng, n)
        if threads is None:
            return None
        threads = _canonical_addresses(threads)
        if not _communicates(threads):
            return None
        rmw = self._sample_rmw(rng, threads)
        deps = self._sample_deps(rng, threads, rmw)
        scopes = self._sample_scopes(rng, len(threads))
        return LitmusTest(threads, frozenset(rmw), frozenset(deps), scopes)

    def _sample_threads(
        self, rng, n: int
    ) -> tuple[tuple[Instruction, ...], ...] | None:
        num_threads = rng.randint(1, min(self.config.max_threads, n))
        cuts = sorted(rng.sample(range(1, n), num_threads - 1))
        sizes = [
            b - a for a, b in zip([0] + cuts, cuts + [n])
        ]
        threads = []
        for size in sizes:
            seq = tuple(rng.choice(self._choices) for _ in range(size))
            if seq[0].is_fence or seq[-1].is_fence:
                return None  # boundary fence: reject, like the enumerator
            threads.append(seq)
        return tuple(threads)

    def _sample_rmw(
        self, rng, threads: tuple[tuple[Instruction, ...], ...]
    ) -> set[tuple[int, int]]:
        if not self.vocab.allows_rmw or not self.config.max_rmws:
            return set()
        candidates = []
        offset = 0
        for seq in threads:
            for a, b in rmw_candidates(seq):
                candidates.append((offset + a, offset + b))
            offset += len(seq)
        chosen: set[tuple[int, int]] = set()
        used: set[int] = set()
        for pair in candidates:
            if len(chosen) >= self.config.max_rmws:
                break
            if pair[0] in used or pair[1] in used:
                continue
            if rng.random() < 0.5:
                chosen.add(pair)
                used.update(pair)
        return chosen

    def _sample_deps(
        self,
        rng,
        threads: tuple[tuple[Instruction, ...], ...],
        rmw: set[tuple[int, int]],
    ) -> set[Dep]:
        if not self.vocab.has_deps or not self.config.max_deps:
            return set()
        candidates = []
        offset = 0
        for seq in threads:
            for s, d, kind in dep_candidates(seq, self.vocab):
                candidates.append((offset + s, offset + d, kind))
            offset += len(seq)
        chosen: set[Dep] = set()
        edges: set[tuple[int, int]] = set()
        for s, d, kind in candidates:
            if len(chosen) >= self.config.max_deps:
                break
            if (s, d) in edges:
                continue  # one dependency kind per edge
            if kind is DepKind.DATA and (s, d) in rmw:
                continue  # a data dep duplicating an rmw adds nothing
            if rng.random() < 0.3:
                chosen.add(Dep(s, d, kind))
                edges.add((s, d))
        return chosen

    def _sample_scopes(self, rng, num_threads: int) -> tuple[int, ...] | None:
        if not self.vocab.has_scopes:
            return None
        # Restricted-growth assignment: thread 0 opens group 0, each
        # later thread joins an existing group or opens the next one —
        # the same canonical form the enumerator emits.
        scopes = [0]
        max_used = 0
        for _ in range(1, num_threads):
            g = rng.randint(0, max_used + 1)
            scopes.append(g)
            max_used = max(max_used, g)
        return tuple(scopes)

    def _fallback(self) -> LitmusTest:
        """A fixed store-buffering shape in the vocabulary's weakest
        orders — always well-formed for any vocabulary."""
        from repro.litmus.events import read, write

        ro = self.vocab.read_orders[0]
        wo = self.vocab.write_orders[0]
        threads = (
            (write(0, order=wo), read(1, ro)),
            (write(1, order=wo), read(0, ro)),
        )
        scopes = (0, 0) if self.vocab.has_scopes else None
        return LitmusTest(threads, frozenset(), frozenset(), scopes)


# -- structural helpers (enumerator invariants) -------------------------------


def _canonical_addresses(
    threads: tuple[tuple[Instruction, ...], ...]
) -> tuple[tuple[Instruction, ...], ...]:
    """Renumber addresses to first-appearance order (0, 1, ...)."""
    mapping: dict[int, int] = {}
    for seq in threads:
        for inst in seq:
            if inst.address is not None and inst.address not in mapping:
                mapping[inst.address] = len(mapping)
    out = []
    for seq in threads:
        out.append(
            tuple(
                inst
                if inst.address is None
                else Instruction(
                    inst.kind,
                    mapping[inst.address],
                    inst.order,
                    inst.fence,
                    inst.value,
                    inst.scope,
                )
                for inst in seq
            )
        )
    return tuple(out)


def _communicates(threads: tuple[tuple[Instruction, ...], ...]) -> bool:
    """Every address has >= 2 accessors, at least one of them a write."""
    accesses: dict[int, int] = {}
    writes: dict[int, int] = {}
    for seq in threads:
        for inst in seq:
            if inst.address is None:
                continue
            accesses[inst.address] = accesses.get(inst.address, 0) + 1
            if inst.is_write:
                writes[inst.address] = writes.get(inst.address, 0) + 1
    return bool(accesses) and all(
        accesses[a] >= 2 and writes.get(a, 0) >= 1 for a in accesses
    )
