"""Deterministic RNG streams for differential-testing campaigns.

Campaign determinism is the load-bearing property: the same ``--seed``
must produce byte-identical reports at any ``--jobs`` value.  That rules
out one shared :class:`random.Random` advanced across shards (draw order
would depend on the shard partition).  Instead every generated test gets
its *own* stream, keyed by ``(campaign seed, test index)`` — which shard
a test lands on no longer matters, and neither does the shard count.

Stream keys are hashed with BLAKE2b rather than fed to ``Random(seed)``
directly so that nearby indices yield decorrelated streams (Mersenne
Twister seeds close together start in correlated states) and so the
derivation is stable across interpreters — no salted ``hash()``.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "stream"]


def derive_seed(*parts: object) -> int:
    """A stable 64-bit seed derived from the reprs of ``parts``."""
    payload = repr(parts)
    digest = hashlib.blake2b(payload.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def stream(*parts: object) -> random.Random:
    """An independent :class:`random.Random` keyed by ``parts``."""
    return random.Random(derive_seed(*parts))
