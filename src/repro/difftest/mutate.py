"""Memory-model mutants: tagged "known-buggy" variants of stock models.

A differential campaign that finds nothing proves little by itself — the
harness might be blind.  Mutation testing closes that loop the way the
reference-vs-sloppy-implementation fuzzers do: derive a model that is
known wrong in a specific way, run the campaign against it, and require
the harness to *kill* it (observe a disagreement with the stock
semantics).  A surviving mutant is a campaign failure.

Two mutation operators, both semantics-weakening (they only ever admit
more behaviour, so the stock model's executions remain valid and the
mutant is detectable purely through extra allowed outcomes):

* ``drop:<axiom>`` — remove one named axiom.  The relational twin of
  :mod:`repro.alloy.perturb`'s axiom handling: where Fig. 5c perturbs the
  *relations* an axiom ranges over, this drops the axiom wholesale.
* ``empty:fr``     — evaluate every axiom against a view whose
  from-reads relation is empty, the classic "forgot the fr edges"
  implementation bug (coherence collapses for read-write races).

Tags are per-model: :func:`mutant_tags` lists what the registry offers
for a model, :func:`resolve_mutant` instantiates one (raising
``KeyError`` for unknown tags — surfaced as the ``DIF002`` lint), and
:func:`model_fingerprint` digests a model's observable definition so
mutant and stock configurations can never be confused in reports or
corpus entries.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping

from repro.litmus.execution import Execution
from repro.models.base import Axiom, MemoryModel, Vocabulary
from repro.semantics.rel import Rel
from repro.semantics.relations import RelationView

__all__ = [
    "MutantModel",
    "mutant_tags",
    "resolve_mutant",
    "model_fingerprint",
]

#: relation-weakening tags available for every model
_RELATION_TAGS = ("empty:fr",)


class _EmptyFrView(RelationView):
    """A relation view that forgets every from-reads edge."""

    @property
    def fr(self) -> Rel:  # type: ignore[override]
        return Rel.empty(self.n)

    @property
    def fri(self) -> Rel:  # type: ignore[override]
        return Rel.empty(self.n)

    @property
    def fre(self) -> Rel:  # type: ignore[override]
        return Rel.empty(self.n)

    @property
    def com(self) -> Rel:  # type: ignore[override]
        return self.rf | self.co


class MutantModel(MemoryModel):
    """A stock model with one tagged, deliberately-introduced bug.

    Delegates vocabulary and the ``sc``-order flag to the base model so
    mutants range over exactly the same test space; only the axiom
    evaluation differs.
    """

    def __init__(self, base: MemoryModel, tag: str):
        self.base = base
        self.tag = tag
        self.name = base.name
        self.full_name = f"{base.full_name} [mutant {tag}]"
        self.uses_sc_order = base.uses_sc_order
        if tag.startswith("drop:"):
            axiom = tag.split(":", 1)[1]
            stock = dict(base.axioms())
            if axiom not in stock:
                raise KeyError(
                    f"model {base.name!r} has no axiom {axiom!r} to drop; "
                    f"axioms: {', '.join(stock)}"
                )
            del stock[axiom]
            self._axioms: Mapping[str, Axiom] = stock
            self._mutate_view = False
        elif tag in _RELATION_TAGS:
            self._axioms = dict(base.axioms())
            self._mutate_view = True
        else:
            raise KeyError(
                f"unknown mutant tag {tag!r} for model {base.name!r}; "
                f"available: {', '.join(mutant_tags(base))}"
            )

    @property
    def vocabulary(self) -> Vocabulary:
        return self.base.vocabulary

    def axioms(self) -> Mapping[str, Axiom]:
        return self._axioms

    def wa_axioms(self) -> Mapping[str, Axiom]:
        # Mutants never re-add what they dropped: workaround mode reuses
        # the mutated axiom set.
        return self._axioms

    def view(self, execution: Execution) -> RelationView:
        if self._mutate_view:
            return _EmptyFrView(execution)
        return self.base.view(execution)

    def __repr__(self) -> str:
        return f"<MutantModel {self.name}+{self.tag}>"


def mutant_tags(model: MemoryModel) -> tuple[str, ...]:
    """Every mutant tag the registry offers for a model, sorted."""
    tags = [f"drop:{name}" for name in model.axiom_names()]
    tags.extend(_RELATION_TAGS)
    return tuple(sorted(tags))


def resolve_mutant(model: MemoryModel, tag: str) -> MutantModel:
    """Instantiate one tagged mutant; ``KeyError`` on unknown tags."""
    return MutantModel(model, tag)


def model_fingerprint(model: MemoryModel, tag: str | None = None) -> str:
    """Content digest of a (possibly mutated) model configuration.

    Covers the observable definition — name, axiom names, the tag, the
    ``sc``-order flag — in the same ``blake2b`` idiom as
    :meth:`repro.alloy.oracle.AlloyOracle.model_fingerprint`, so stock
    and mutant runs can never share corpus entries or report rows.
    ``tag`` defaults to the model's own tag (``"stock"`` for non-mutants).
    """
    if tag is None:
        tag = getattr(model, "tag", "stock")
    payload = repr(
        (
            model.name,
            tag,
            tuple(model.axiom_names()),
            model.uses_sc_order,
        )
    )
    return hashlib.blake2b(payload.encode(), digest_size=12).hexdigest()
