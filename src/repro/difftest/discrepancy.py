"""The unit of differential-testing evidence: a :class:`Discrepancy`.

A discrepancy records one test on which two things that must agree did
not.  Four kinds arise in a campaign:

* ``outcome-set``  — the explicit and relational oracles computed
  different outcome landscapes for the same test (all-outcomes,
  model-valid, or some per-axiom set differs);
* ``minimality``   — the two oracles disagreed on the keep/drop verdict
  of the minimality criterion;
* ``invariant``    — a single oracle violated an internal invariant of
  the analysis (e.g. a model-valid outcome missing from all-outcomes);
* ``mutant``       — an injected known-buggy model disagreed with the
  stock semantics.  For mutants a discrepancy is the *desired* result: a
  kill proving the harness can see the injected bug.

Discrepancies serialize through the suite JSON helpers so the corpus and
campaign reports share one wire format, and fingerprint through BLAKE2b
(never ``hash()`` — salted per interpreter) so dedup agrees across
processes and runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

from repro.core.suite import test_from_dict, test_to_dict
from repro.litmus.test import LitmusTest

__all__ = [
    "KINDS",
    "Discrepancy",
    "discrepancy_fingerprint",
]

KINDS = ("outcome-set", "minimality", "invariant", "mutant")


@dataclass(frozen=True)
class Discrepancy:
    """One observed disagreement, tied to the campaign draw that hit it."""

    kind: str
    model: str
    test: LitmusTest
    detail: str
    #: mutant tag when kind == "mutant", else None
    mutant: str | None = None
    #: campaign seed and test index that produced the original test
    seed: int = 0
    index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown discrepancy kind {self.kind!r}; one of {KINDS}"
            )
        if (self.kind == "mutant") != (self.mutant is not None):
            raise ValueError(
                "mutant discrepancies carry a tag; others must not"
            )

    def with_test(self, test: LitmusTest, detail: str | None = None) -> Discrepancy:
        """Copy bound to a (typically shrunken) test."""
        return replace(
            self, test=test, detail=self.detail if detail is None else detail
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "model": self.model,
            "mutant": self.mutant,
            "seed": self.seed,
            "index": self.index,
            "detail": self.detail,
            "test": test_to_dict(self.test),
        }

    @classmethod
    def from_dict(cls, item: dict) -> Discrepancy:
        return cls(
            kind=item["kind"],
            model=item["model"],
            test=test_from_dict(item["test"]),
            detail=item.get("detail", ""),
            mutant=item.get("mutant"),
            seed=item.get("seed", 0),
            index=item.get("index", 0),
        )


def discrepancy_fingerprint(disc: Discrepancy) -> str:
    """Content digest for corpus dedup: what disagreed, on which test.

    The detail string stays out — re-running a reproducer may phrase the
    same disagreement slightly differently (set orderings), and seed and
    index are provenance, not identity.
    """
    payload = repr(
        (
            disc.kind,
            disc.model,
            disc.mutant,
            test_to_dict(disc.test),
        )
    )
    return hashlib.blake2b(payload.encode(), digest_size=12).hexdigest()
