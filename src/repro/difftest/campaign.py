"""The sharded differential-testing campaign driver.

A campaign is: replay the persisted corpus, then fuzz ``budget`` seeded
tests through every check of :class:`~repro.difftest.harness.DiffHarness`,
shrink what disagreed, persist the reproducers.  The fuzzing fans out
over :func:`repro.exec.fanout.run_fanout` with the round-robin index
assignment the synthesis runtime uses (test ``i`` goes to shard
``i % shard_count``), and every test's randomness comes from a stream
keyed by ``(seed, i)`` alone — so the set of generated tests, and hence
the whole report, is independent of ``jobs`` and of the shard partition.

Determinism contract: with the same seed, options, and corpus state, the
``--json`` report is byte-identical at any ``--jobs`` value.  Nothing
wall-clock-derived goes into the report, discrepancies are ordered by
``(index, kind, tag)``, and shrinking happens in the parent process on
the merged stream.

Mutant bookkeeping: the *lowest-index* killing test per tag is the
canonical kill; it is shrunk and reported next to the original event
count so the "reproducer no larger than the test that found it"
guarantee is checkable from the report alone.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict, dataclass, field

from repro.core.synthesis import OracleSpec
from repro.difftest.corpus import Corpus
from repro.difftest.discrepancy import KINDS, Discrepancy, discrepancy_fingerprint
from repro.difftest.generator import GeneratorConfig, TestGenerator
from repro.difftest.harness import DiffHarness
from repro.difftest.mutate import model_fingerprint
from repro.difftest.rng import stream
from repro.difftest.shrink import shrink
from repro.exec.fanout import FanoutTask, run_fanout
from repro.exec.sharding import plan_shards
from repro.models.registry import get_model
from repro.obs import (
    TOOL_NAME,
    TRACE_SCHEMA_NAME,
    TRACE_SCHEMA_VERSION,
    Report,
    Tracer,
    format_event,
    header_event,
    null_tracer,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CAMPAIGN_SCHEMA_NAME",
    "CampaignOptions",
    "CampaignReport",
    "run_campaign",
]

CAMPAIGN_SCHEMA_NAME = "difftest-campaign"
#: v1 was the pre-envelope top-level shape; v2 wraps the same payload in
#: the unified :class:`repro.obs.Report` envelope.
CAMPAIGN_SCHEMA = 2

#: stock discrepancies shrunk per campaign (a healthy run has zero; a
#: broken oracle can produce hundreds, and shrinking each would stall
#: the report that says so)
_MAX_SHRINKS = 25


@dataclass(frozen=True)
class CampaignOptions:
    """Everything one campaign run needs (picklable, crosses workers)."""

    model: str
    seed: int = 0
    budget: int = 100
    mutants: tuple[str, ...] = ()
    corpus_dir: str | None = None
    jobs: int = 1
    #: pin the shard count (None: jobs * DEFAULT_SHARDS_PER_JOB)
    shards: int | None = None
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    #: cross-check the minimality criterion through both oracles
    minimality: bool = True
    #: the oracle configuration (only ``prefilter`` steers a campaign
    #: today: route the relational oracle through the polynomial static
    #: prefilter, which also exercises its agreement with the explicit
    #: oracle).  The loose ``prefilter=`` argument and attribute remain
    #: as deprecated shims over this field.
    oracle_spec: OracleSpec = field(default_factory=OracleSpec)
    #: optional :mod:`repro.obs` trace directory (driver phase spans +
    #: the deterministic merged discrepancy stream)
    trace_dir: str | None = None

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if not isinstance(self.oracle_spec, OracleSpec):
            raise TypeError(
                "oracle_spec must be an OracleSpec, got "
                f"{type(self.oracle_spec).__name__}"
            )


# -- the deprecated loose-field shim (mirrors SynthesisOptions's) -------------

_dataclass_campaign_init = CampaignOptions.__init__


def _campaign_init(self: CampaignOptions, *args: object, **kwargs: object) -> None:
    if "prefilter" in kwargs:
        if "oracle_spec" in kwargs:
            raise TypeError(
                "pass either oracle_spec or the loose prefilter field, "
                "not both"
            )
        warnings.warn(
            "passing prefilter to CampaignOptions is deprecated; bundle "
            "it as CampaignOptions(oracle_spec=OracleSpec(prefilter=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        kwargs["oracle_spec"] = OracleSpec(
            prefilter=bool(kwargs.pop("prefilter"))
        )
    _dataclass_campaign_init(self, *args, **kwargs)  # type: ignore[arg-type]


_campaign_init.__name__ = "__init__"
CampaignOptions.__init__ = _campaign_init  # type: ignore[method-assign]


def _campaign_prefilter(self: CampaignOptions) -> bool:
    warnings.warn(
        "CampaignOptions.prefilter is deprecated; read "
        "options.oracle_spec.prefilter instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return self.oracle_spec.prefilter


CampaignOptions.prefilter = property(_campaign_prefilter)  # type: ignore[attr-defined]


@dataclass
class CampaignReport:
    """One campaign's findings, ready for text or JSON rendering."""

    options: CampaignOptions
    tests_run: int
    #: shrunken stock (non-mutant) discrepancies, (index, kind)-ordered
    stock: list[Discrepancy]
    #: per-tag canonical kill (lowest finding index, shrunk) + original size
    kills: dict[str, tuple[Discrepancy, int]]
    surviving: tuple[str, ...]
    replay_confirmed: int
    replay_stale: list[Discrepancy]
    corpus_added: int
    #: stock discrepancies found but left unshrunk (over the cap)
    unshrunk: int = 0
    #: ``empty:fr`` checks skipped as statically vacuous (no fr edge to
    #: forget; see :attr:`DiffHarness.mutant_skips`)
    mutant_skips: int = 0

    @property
    def clean(self) -> bool:
        """No stock disagreement, no surviving mutant, no stale corpus
        entry — the campaign's pass/fail verdict."""
        return (
            not self.stock
            and not self.surviving
            and not self.replay_stale
        )

    # -- rendering -----------------------------------------------------------

    def to_json_dict(self) -> dict:
        """The machine-readable report: a :class:`repro.obs.Report`
        envelope around the ``difftest-campaign`` payload (schema v2)."""
        opts = self.options
        payload = {
            "model": opts.model,
            "model_fingerprint": model_fingerprint(get_model(opts.model)),
            "seed": opts.seed,
            "budget": opts.budget,
            "mutants": sorted(opts.mutants),
            "generator": asdict(opts.generator),
            "tests_run": self.tests_run,
            "discrepancies": [d.to_dict() for d in self.stock],
            "unshrunk_discrepancies": self.unshrunk,
            "mutant_kills": {
                tag: {
                    "original_events": original,
                    "events": disc.test.num_events,
                    **disc.to_dict(),
                }
                for tag, (disc, original) in sorted(self.kills.items())
            },
            "mutant_skips": self.mutant_skips,
            "surviving_mutants": sorted(self.surviving),
            "replay": {
                "confirmed": self.replay_confirmed,
                "stale": [d.to_dict() for d in self.replay_stale],
            },
            "corpus_added": self.corpus_added,
            "clean": self.clean,
        }
        return Report(
            schema_name=CAMPAIGN_SCHEMA_NAME,
            schema_version=CAMPAIGN_SCHEMA,
            command="difftest",
            payload=payload,
        ).to_json_dict()

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        opts = self.options
        lines = [
            f"difftest model={opts.model} seed={opts.seed} "
            f"budget={opts.budget}: {len(self.stock)} stock "
            f"discrepancies; mutants: {len(self.kills)} killed, "
            f"{len(self.surviving)} surviving; replay: "
            f"{self.replay_confirmed} confirmed, "
            f"{len(self.replay_stale)} stale"
        ]
        if self.mutant_skips:
            lines.append(
                f"  SKIPPED  {self.mutant_skips} statically-vacuous "
                "empty:fr checks (no fr edge to forget)"
            )
        for disc in self.stock:
            lines.append(
                f"  DISAGREE [{disc.kind}] test #{disc.index}: {disc.detail}"
            )
        if self.unshrunk:
            lines.append(
                f"  (+{self.unshrunk} further discrepancies left unshrunk)"
            )
        for tag, (disc, original) in sorted(self.kills.items()):
            lines.append(
                f"  KILLED   {tag} by test #{disc.index} "
                f"({original} -> {disc.test.num_events} events)"
            )
        for tag in sorted(self.surviving):
            lines.append(f"  SURVIVED {tag}  (harness blind to this bug!)")
        for disc in self.replay_stale:
            lines.append(
                f"  STALE    [{disc.kind}] corpus entry no longer "
                f"reproduces: {disc.detail}"
            )
        verdict = "CLEAN" if self.clean else "FAILED"
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


# -- worker side (module-level for pool pickling) -----------------------------


@dataclass(frozen=True)
class _ShardPayload:
    options: CampaignOptions
    shard_count: int


def _setup_worker(payload: _ShardPayload):
    opts = payload.options
    harness = DiffHarness(
        opts.model,
        mutants=opts.mutants,
        minimality=opts.minimality,
        prefilter=opts.oracle_spec.prefilter,
    )
    generator = TestGenerator(harness.model.vocabulary, opts.generator)
    return payload, harness, generator


def _run_shard(state, shard_index: int) -> dict:
    payload, harness, generator = state
    opts = payload.options
    found: list[dict] = []
    tests_run = 0
    # The harness persists across the shards one process computes, so
    # report this shard's *delta* (like the synthesis worker's oracle
    # counters) — the driver sums deltas without double counting.
    skips_before = harness.mutant_skips
    for index in range(shard_index, opts.budget, payload.shard_count):
        rng = stream(opts.seed, index)
        test = generator.generate(rng)
        tests_run += 1
        for disc in harness.check(test, seed=opts.seed, index=index):
            found.append(disc.to_dict())
    return {
        "tests": tests_run,
        "discrepancies": found,
        "mutant_skips": harness.mutant_skips - skips_before,
    }


# -- the driver ---------------------------------------------------------------


def _sort_key(disc: Discrepancy):
    return (disc.index, KINDS.index(disc.kind), disc.mutant or "", disc.detail)


def _write_campaign_trace(
    trace_dir: str, options: CampaignOptions, merged: list[Discrepancy], tests_run: int
) -> None:
    """``meta.json`` + the deterministic ``merged.jsonl`` for a campaign."""
    os.makedirs(trace_dir, exist_ok=True)
    meta = {
        "schema": {"name": TRACE_SCHEMA_NAME, "version": TRACE_SCHEMA_VERSION},
        "tool": TOOL_NAME,
        "command": "difftest",
        "model": options.model,
        "seed": options.seed,
        "budget": options.budget,
    }
    with open(os.path.join(trace_dir, "meta.json"), "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")
    lines = [format_event(header_event())]
    lines.append(
        format_event(
            {
                "ev": "meta",
                "command": "difftest",
                "model": options.model,
                "seed": options.seed,
            }
        )
    )
    for disc in merged:
        lines.append(
            format_event(
                {
                    "ev": "discrepancy",
                    "index": disc.index,
                    "kind": disc.kind,
                    "mutant": disc.mutant,
                }
            )
        )
    lines.append(
        format_event(
            {"ev": "summary", "tests_run": tests_run, "found": len(merged)}
        )
    )
    with open(os.path.join(trace_dir, "merged.jsonl"), "w", encoding="utf-8") as fh:
        fh.write("".join(lines))


def run_campaign(options: CampaignOptions) -> CampaignReport:
    """Run one campaign: replay, fuzz (sharded), shrink, persist."""
    tracer = (
        Tracer(os.path.join(options.trace_dir, "driver.jsonl"))
        if options.trace_dir is not None
        else null_tracer()
    )
    with tracer:
        return _run_campaign(options, tracer)


def _run_campaign(options: CampaignOptions, tracer: Tracer) -> CampaignReport:
    harness = DiffHarness(
        options.model,
        mutants=options.mutants,
        minimality=options.minimality,
        prefilter=options.oracle_spec.prefilter,
    )
    corpus = Corpus(options.corpus_dir) if options.corpus_dir else None

    # 1. Replay the persisted reproducers before any new fuzzing.
    replay_confirmed = 0
    replay_stale: list[Discrepancy] = []
    with tracer.span("replay"):
        if corpus is not None:
            for disc in corpus.load(options.model):
                try:
                    ok = harness.reproduces(disc)
                except KeyError:
                    ok = False  # entry names a mutant the registry dropped
                if ok:
                    replay_confirmed += 1
                else:
                    replay_stale.append(disc)

    # 2. Fuzz, fanned out over deterministic shards.
    with tracer.span("fuzz") as fuzz_span:
        plan = plan_shards(options.jobs, options.shards)
        payload = _ShardPayload(options, plan.count)
        task = FanoutTask(
            setup=_setup_worker,
            work=_run_shard,
            payload=payload,
            shard_count=plan.count,
        )
        results = run_fanout(task, options.jobs)
        tests_run = sum(r["tests"] for r in results)
        mutant_skips = sum(r.get("mutant_skips", 0) for r in results)
        merged = [
            Discrepancy.from_dict(item)
            for result in results
            for item in result["discrepancies"]
        ]
        merged.sort(key=_sort_key)
        fuzz_span.annotate(tests=tests_run, found=len(merged))

    if options.trace_dir is not None:
        _write_campaign_trace(options.trace_dir, options, merged, tests_run)

    # 3. Split stock findings from mutant kills; dedup stock by content.
    stock_raw: list[Discrepancy] = []
    seen: set[str] = set()
    kills_raw: dict[str, Discrepancy] = {}
    for disc in merged:
        if disc.kind == "mutant":
            assert disc.mutant is not None
            kills_raw.setdefault(disc.mutant, disc)  # lowest index wins
        else:
            fp = discrepancy_fingerprint(disc)
            if fp not in seen:
                seen.add(fp)
                stock_raw.append(disc)

    # 4. Shrink in the parent (merged order => deterministic output).
    with tracer.span("shrink"):
        stock = [shrink(harness, d) for d in stock_raw[:_MAX_SHRINKS]]
        unshrunk = max(0, len(stock_raw) - _MAX_SHRINKS)
        kills = {
            tag: (shrink(harness, disc), disc.test.num_events)
            for tag, disc in kills_raw.items()
        }
        surviving = tuple(t for t in options.mutants if t not in kills)

    # 5. Persist the shrunken reproducers.
    corpus_added = 0
    with tracer.span("persist"):
        if corpus is not None:
            corpus_added = corpus.append(
                options.model, stock + [d for d, _ in kills.values()]
            )

    return CampaignReport(
        options=options,
        tests_run=tests_run,
        stock=stock,
        kills=kills,
        surviving=surviving,
        replay_confirmed=replay_confirmed,
        replay_stale=replay_stale,
        corpus_added=corpus_added,
        unshrunk=unshrunk,
        mutant_skips=mutant_skips,
    )
