"""Greedy reproducer minimization.

A raw discrepancy test carries whatever structure the generator threw at
it; most of it is usually irrelevant to the disagreement.  The shrinker
walks the *deletion-flavored* instruction relaxations — RI (remove an
instruction), DRMW (decompose an atomic pair), RD (drop dependency
edges) — and greedily commits any application after which the harness
still reproduces the discrepancy, restarting until a fixpoint.

Deletion relaxations never add events, so the shrunken reproducer's
event count is always <= the original's, and every intermediate test is
well-formed by construction (:func:`repro.relax.base.remove_event`
repairs rmw pairs, dependencies, and empty threads).  Applications are
visited in the relaxations' own deterministic order, so shrinking is
reproducible.
"""

from __future__ import annotations

from repro.difftest.discrepancy import Discrepancy
from repro.difftest.harness import DiffHarness
from repro.relax.instruction import (
    DecomposeRMW,
    RemoveDependency,
    RemoveInstruction,
)

__all__ = ["shrink"]

#: the relaxations that only ever delete structure
_DELETIONS = (RemoveInstruction(), DecomposeRMW(), RemoveDependency())


def shrink(harness: DiffHarness, disc: Discrepancy) -> Discrepancy:
    """Minimize ``disc``'s test while it still reproduces.

    Returns a discrepancy bound to the shrunken test with a freshly
    computed detail string (the original is returned unchanged when
    nothing shrinks).
    """
    vocab = harness.model.vocabulary
    relaxations = [r for r in _DELETIONS if r.applies_to(vocab)]
    current = disc.test
    progress = True
    while progress:
        progress = False
        for relax in relaxations:
            for app in relax.applications(current, vocab):
                candidate = relax.apply(current, app, vocab).test
                if candidate == current:
                    continue
                if harness.reproduces(disc, candidate):
                    current = candidate
                    progress = True
                    break
            if progress:
                break
    if current == disc.test:
        return disc
    fresh = harness.findings_like(disc, current)
    # The reproduction gate above guarantees at least one finding; keep
    # its recomputed detail so the report describes the shrunken test.
    return fresh[0] if fresh else disc.with_test(current)
