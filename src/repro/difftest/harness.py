"""The differential checks: two oracles, one criterion, injected bugs.

:class:`DiffHarness` owns every oracle a campaign needs for one model —
the explicit enumeration engine, the relational/SAT engine when the
model has an Alloy encoding, and one explicit oracle per injected mutant
— and runs each generated test through four comparisons:

1. **invariant** — the explicit analysis must be internally coherent
   (model-valid outcomes are a subset of all outcomes and of every
   per-axiom set).  Catches oracle bugs without needing a second oracle,
   so it also covers models with no relational encoding (Power).
2. **outcome-set** — the two oracles must compute identical outcome
   landscapes (all-outcomes, model-valid, shared per-axiom sets).
3. **minimality** — the minimality criterion must reach the same
   keep/drop verdict through either oracle.
4. **mutant** — each injected known-buggy model must be *distinguishable*
   from the stock semantics on some test; when this test distinguishes
   them, the mutant is killed.

Everything here is deterministic: detail strings order outcome sets by a
canonical key, never by set iteration order, so reports are byte-stable
across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from repro.alloy.models import ALLOY_MODELS
from repro.alloy.oracle import AlloyOracle
from repro.core.minimality import CriterionMode, MinimalityChecker
from repro.core.oracle import ExplicitOracle
from repro.difftest.discrepancy import Discrepancy
from repro.difftest.mutate import resolve_mutant
from repro.litmus.execution import Outcome
from repro.litmus.test import LitmusTest
from repro.models.registry import get_model

__all__ = ["DiffHarness"]


def _outcome_sort_key(outcome: Outcome):
    return (
        tuple((r, -1 if s is None else s) for r, s in outcome.rf_sources),
        tuple((a, -1 if w is None else w) for a, w in outcome.finals),
    )


def _describe(test: LitmusTest, outcomes: frozenset[Outcome]) -> str:
    """Canonical rendering of an outcome set (sorted, brace-wrapped)."""
    rendered = [
        o.pretty(test) for o in sorted(outcomes, key=_outcome_sort_key)
    ]
    return "{" + "; ".join(rendered) + "}"


class DiffHarness:
    """Runs the differential checks for one model + injected mutants."""

    def __init__(
        self,
        model_name: str,
        mutants: tuple[str, ...] = (),
        minimality: bool = True,
        prefilter: bool = False,
    ):
        self.model_name = model_name
        self.model = get_model(model_name)
        self.explicit = ExplicitOracle(self.model)
        self.relational = (
            AlloyOracle(model_name, prefilter=prefilter)
            if model_name in ALLOY_MODELS
            else None
        )
        #: ``empty:fr`` checks skipped because the static emptiness
        #: analysis proved the test has no fr edge to forget — the mutant
        #: is indistinguishable from stock on such tests by construction.
        self.mutant_skips = 0
        self.minimality = minimality and self.relational is not None
        self.mutants = tuple(mutants)
        self._mutant_oracles = {
            tag: ExplicitOracle(resolve_mutant(self.model, tag))
            for tag in self.mutants
        }
        self._checker_explicit = MinimalityChecker(
            self.model, CriterionMode.EXACT, oracle=self.explicit
        )
        self._checker_relational = (
            MinimalityChecker(
                self.model, CriterionMode.EXACT, oracle=self.relational
            )
            if self.minimality
            else None
        )

    # -- the campaign entry point -------------------------------------------

    def check(self, test: LitmusTest, seed: int = 0, index: int = 0) -> list[Discrepancy]:
        """Every discrepancy this test exposes, in a deterministic order."""
        found: list[Discrepancy] = []
        found.extend(self._check_invariants(test, seed, index))
        found.extend(self._check_outcome_sets(test, seed, index))
        found.extend(self._check_minimality(test, seed, index))
        for tag in self.mutants:
            found.extend(self._check_mutant(test, tag, seed, index))
        return found

    def findings_like(
        self, disc: Discrepancy, test: LitmusTest | None = None
    ) -> list[Discrepancy]:
        """Re-run only ``disc``'s check kind against ``test`` (default:
        the recorded test).  The shrinker and the corpus replay both
        gate on this."""
        test = disc.test if test is None else test
        if disc.kind == "invariant":
            return self._check_invariants(test, disc.seed, disc.index)
        if disc.kind == "outcome-set":
            return self._check_outcome_sets(test, disc.seed, disc.index)
        if disc.kind == "minimality":
            return self._check_minimality(test, disc.seed, disc.index)
        assert disc.mutant is not None
        if disc.mutant not in self._mutant_oracles:
            self._mutant_oracles[disc.mutant] = ExplicitOracle(
                resolve_mutant(self.model, disc.mutant)
            )
        return self._check_mutant(test, disc.mutant, disc.seed, disc.index)

    def reproduces(self, disc: Discrepancy, test: LitmusTest | None = None) -> bool:
        """Does ``test`` still exhibit the recorded disagreement kind?"""
        return bool(self.findings_like(disc, test))

    # -- individual checks ---------------------------------------------------

    def _check_invariants(
        self, test: LitmusTest, seed: int, index: int
    ) -> list[Discrepancy]:
        analysis = self.explicit.analyze(test)
        problems: list[str] = []
        if not analysis.model_valid <= analysis.all_outcomes:
            problems.append("model-valid outcomes missing from all-outcomes")
        for name in sorted(analysis.axiom_valid):
            per_axiom = analysis.axiom_valid[name]
            if not per_axiom <= analysis.all_outcomes:
                problems.append(
                    f"axiom {name}: valid outcomes missing from all-outcomes"
                )
            if not analysis.model_valid <= per_axiom:
                problems.append(
                    f"axiom {name}: model-valid outcome fails the axiom"
                )
        return [
            Discrepancy(
                "invariant", self.model_name, test, p, seed=seed, index=index
            )
            for p in problems
        ]

    def _check_outcome_sets(
        self, test: LitmusTest, seed: int, index: int
    ) -> list[Discrepancy]:
        if self.relational is None:
            return []
        ex = self.explicit.analyze(test)
        rel = self.relational.analyze(test)
        problems: list[str] = []
        if ex.all_outcomes != rel.all_outcomes:
            problems.append(
                "all-outcomes differ: explicit="
                f"{_describe(test, ex.all_outcomes)} relational="
                f"{_describe(test, rel.all_outcomes)}"
            )
        if ex.model_valid != rel.model_valid:
            problems.append(
                "model-valid outcomes differ: explicit="
                f"{_describe(test, ex.model_valid)} relational="
                f"{_describe(test, rel.model_valid)}"
            )
        shared = sorted(set(ex.axiom_valid) & set(rel.axiom_valid))
        for name in shared:
            if ex.axiom_valid[name] != rel.axiom_valid[name]:
                problems.append(
                    f"axiom {name}: valid outcomes differ: explicit="
                    f"{_describe(test, ex.axiom_valid[name])} relational="
                    f"{_describe(test, rel.axiom_valid[name])}"
                )
        return [
            Discrepancy(
                "outcome-set", self.model_name, test, p, seed=seed, index=index
            )
            for p in problems
        ]

    def _check_minimality(
        self, test: LitmusTest, seed: int, index: int
    ) -> list[Discrepancy]:
        if self._checker_relational is None:
            return []
        verdict_ex = self._checker_explicit.check(test)
        verdict_rel = self._checker_relational.check(test)
        if verdict_ex.is_minimal == verdict_rel.is_minimal:
            return []
        detail = (
            "minimality keep/drop verdicts differ: explicit="
            f"{'keep' if verdict_ex.is_minimal else 'drop'} relational="
            f"{'keep' if verdict_rel.is_minimal else 'drop'}"
        )
        return [
            Discrepancy(
                "minimality", self.model_name, test, detail,
                seed=seed, index=index,
            )
        ]

    def _check_mutant(
        self, test: LitmusTest, tag: str, seed: int, index: int
    ) -> list[Discrepancy]:
        if tag == "empty:fr":
            from repro.analysis.flow import fr_statically_empty

            if fr_statically_empty(test):
                # No same-address (read, write) pair exists, so the
                # empty-fr view *is* the stock view: analyzing both
                # oracles would compare a set with itself.
                self.mutant_skips += 1
                return []
        stock = self.explicit.analyze(test).model_valid
        mutated = self._mutant_oracles[tag].analyze(test).model_valid
        if stock == mutated:
            return []
        detail = (
            f"mutant admits different outcomes: stock="
            f"{_describe(test, stock)} mutant={_describe(test, mutated)}"
        )
        return [
            Discrepancy(
                "mutant", self.model_name, test, detail,
                mutant=tag, seed=seed, index=index,
            )
        ]
