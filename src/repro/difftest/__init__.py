"""Differential testing and model-mutation fuzzing (standing harness).

The reproduction rests on two independent oracles agreeing — the
explicit execution-enumeration engine (:mod:`repro.core.oracle` over
:mod:`repro.semantics`) and the relational/SAT pipeline
(:mod:`repro.alloy`).  This package turns that dual-oracle design into a
continuously-runnable correctness harness:

* :mod:`repro.difftest.rng`         — deterministic per-test RNG streams
* :mod:`repro.difftest.generator`   — seeded random litmus tests
* :mod:`repro.difftest.mutate`      — tagged "known-buggy" model mutants
* :mod:`repro.difftest.discrepancy` — the disagreement record
* :mod:`repro.difftest.harness`     — dual-oracle + mutant checks
* :mod:`repro.difftest.shrink`      — greedy reproducer minimization
* :mod:`repro.difftest.corpus`      — JSONL reproducer store + replay
* :mod:`repro.difftest.campaign`    — sharded campaign driver

A *campaign* replays the persisted corpus first, then fuzzes: generate a
seeded test, run it through both oracles and the minimality criterion,
record any disagreement as a :class:`Discrepancy`, shrink it to a
minimal reproducer, and persist it.  Injected mutants (axiom drops,
relation weakenings) validate the harness end-to-end: a campaign that
cannot kill a known-buggy model proves nothing about the stock one.

Entry points::

    from repro.difftest import CampaignOptions, run_campaign
    report = run_campaign(CampaignOptions(model="tso", seed=7, budget=200,
                                          mutants=("drop:sc_per_loc",)))

or ``repro difftest --model tso --seed 7 --budget 200
--mutants drop:sc_per_loc`` from the CLI.
"""

from repro.difftest.campaign import CampaignOptions, CampaignReport, run_campaign
from repro.difftest.corpus import CORPUS_SCHEMA, Corpus
from repro.difftest.discrepancy import Discrepancy, discrepancy_fingerprint
from repro.difftest.generator import GeneratorConfig, TestGenerator
from repro.difftest.harness import DiffHarness
from repro.difftest.mutate import (
    MutantModel,
    model_fingerprint,
    mutant_tags,
    resolve_mutant,
)
from repro.difftest.rng import derive_seed, stream
from repro.difftest.shrink import shrink

__all__ = [
    "CampaignOptions",
    "CampaignReport",
    "run_campaign",
    "CORPUS_SCHEMA",
    "Corpus",
    "Discrepancy",
    "discrepancy_fingerprint",
    "GeneratorConfig",
    "TestGenerator",
    "DiffHarness",
    "MutantModel",
    "model_fingerprint",
    "mutant_tags",
    "resolve_mutant",
    "derive_seed",
    "stream",
    "shrink",
]
