"""The JSONL reproducer corpus.

Every shrunken discrepancy a campaign finds is persisted as one line of
``<model>.jsonl`` inside the corpus directory, so future campaigns (and
the ``DIF001`` lint) can *replay* the accumulated reproducers before
spending budget on new random tests — a regression in either oracle gets
caught by the first campaign that runs, not the first lucky draw.

Lines are self-describing (schema version + content fingerprint) and the
reader is tolerant: torn or corrupt lines (a killed campaign mid-append)
and future-schema lines are skipped, never fatal.  Appends dedup against
the fingerprints already on disk, so replayed-and-confirmed entries do
not multiply.
"""

from __future__ import annotations

import json
import os

from repro.difftest.discrepancy import Discrepancy, discrepancy_fingerprint

__all__ = ["CORPUS_SCHEMA", "Corpus"]

CORPUS_SCHEMA = 1


class Corpus:
    """A directory of per-model JSONL reproducer files."""

    def __init__(self, directory: str):
        self.directory = directory

    def path_for(self, model_name: str) -> str:
        return os.path.join(self.directory, f"{model_name}.jsonl")

    def models(self) -> list[str]:
        """Model names with a corpus file present, sorted."""
        if not os.path.isdir(self.directory):
            return []
        return sorted(
            entry[: -len(".jsonl")]
            for entry in os.listdir(self.directory)
            if entry.endswith(".jsonl") and not entry.startswith(".")
        )

    def load(self, model_name: str) -> list[Discrepancy]:
        """Every readable reproducer for a model, in file order."""
        path = self.path_for(model_name)
        if not os.path.exists(path):
            return []
        out: list[Discrepancy] = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    item = json.loads(line)
                except ValueError:
                    continue  # torn line from a killed append
                if item.get("schema") != CORPUS_SCHEMA:
                    continue
                try:
                    out.append(Discrepancy.from_dict(item))
                except (KeyError, TypeError, ValueError):
                    continue  # foreign or hand-edited entry
        return out

    def fingerprints(self, model_name: str) -> set[str]:
        return {
            discrepancy_fingerprint(d) for d in self.load(model_name)
        }

    def append(self, model_name: str, discrepancies) -> int:
        """Append new reproducers (deduped against disk); returns the
        number actually written."""
        fresh = []
        seen = self.fingerprints(model_name)
        for disc in discrepancies:
            fp = discrepancy_fingerprint(disc)
            if fp in seen:
                continue
            seen.add(fp)
            fresh.append((fp, disc))
        if not fresh:
            return 0
        os.makedirs(self.directory, exist_ok=True)
        with open(self.path_for(model_name), "a", encoding="utf-8") as fh:
            for fp, disc in fresh:
                record = {"schema": CORPUS_SCHEMA, "fingerprint": fp}
                record.update(disc.to_dict())
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return len(fresh)
