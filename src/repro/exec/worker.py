"""The per-shard synthesis worker.

Each worker process owns its own :class:`MinimalityChecker` (and thus its
own oracle caches — the observability cache hits hard within a shard, and
sharing it across processes would serialize the hot path).  A worker
receives shard indices and streams back *shard results*: plain-JSON
dictionaries carrying the minimal-test records plus counters, so the same
payload serves the multiprocessing pipe and the checkpoint file.

Record schema (one per minimal candidate, local dedup applied)::

    {"item": <global work-item ordinal>,
     "pos":  <candidate position within the item>,
     "test": <test_to_dict form>,
     "minimal_for": [axiom, ...],            # in axiom-check order
     "witnesses": {axiom: <outcome_to_dict form>, ...}}

``(item, pos)`` is a global sort key: ordering the union of all shards'
records by it reconstructs the exact sequential candidate order, which is
what lets :mod:`repro.exec.merge` produce byte-identical suites.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.canonical import canonical_form
from repro.core.enumerator import EnumerationConfig, enumerate_shard
from repro.core.minimality import CriterionMode
from repro.core.suite import outcome_to_dict, test_to_dict
from repro.core.synthesis import OracleSpec, SynthesisOptions, build_checker
from repro.litmus.test import LitmusTest
from repro.models.registry import get_model
from repro.obs import MetricsRegistry, Tracer, null_tracer, use_registry

__all__ = ["WorkerTask", "compute_shard", "init_worker", "run_shard", "fingerprint"]


@dataclass(frozen=True)
class WorkerTask:
    """Everything a worker process needs to rebuild its pipeline.

    Carried as primitives (model *name*, mode *value*) plus the picklable
    :class:`EnumerationConfig`, so the payload crosses process boundaries
    under both fork and spawn start methods.
    """

    model_name: str
    bound: int
    axioms: tuple[str, ...] | None
    mode_value: str
    config: EnumerationConfig
    shard_count: int
    reject: Any = None  # None | EARLY_REJECT | picklable callable
    spec: OracleSpec = field(default_factory=OracleSpec)
    trace_dir: str | None = None


def fingerprint(test: LitmusTest) -> str:
    """A stable short digest of a test's structure.

    Used to count *globally* unique canonical forms across shards without
    shipping the tests themselves: workers digest each locally-unique
    canonical form, and the merge unions the digest sets.  Digests are
    content-derived (no ``hash()`` — that is salted per interpreter), so
    they agree across worker processes and across runs.
    """
    payload = repr(
        (
            test.threads,
            sorted(test.rmw),
            sorted(test.deps),
            test.scopes,
        )
    )
    return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


class _WorkerState:
    """Per-process pipeline, built once and reused across shards."""

    def __init__(self, task: WorkerTask):
        self.task = task
        self.model = get_model(task.model_name)
        self.checker = build_checker(
            self.model, CriterionMode(task.mode_value), task.spec
        )
        self.axiom_names = (
            task.axioms if task.axioms is not None else self.model.axiom_names()
        )
        # Rebuild named reject specs locally; a pre-built closure would
        # not survive pickling into the pool.
        self.reject = SynthesisOptions(
            bound=task.bound, reject=task.reject
        ).resolved_reject(self.model)


def _oracle_metrics(oracle: Any) -> dict[str, int | float]:
    """Raw counter snapshot of an oracle implementing the Stats protocol."""
    as_metrics = getattr(oracle, "as_metrics", None)
    return dict(as_metrics()) if as_metrics is not None else {}


def compute_shard(state: _WorkerState, shard_index: int) -> dict:
    """Run the synthesis loop over one shard; return a shard result.

    Oracle counters are reported as this shard's *delta* (the worker's
    oracle persists across the shards one process computes, so a raw
    snapshot would double-count earlier shards after the merge sums
    them).  With ``task.trace_dir`` set, the shard also streams a span +
    counters trace to ``shard-NNNN.jsonl``.
    """
    t0 = time.perf_counter()
    task = state.task
    checker = state.checker
    axiom_seconds = {name: 0.0 for name in state.axiom_names}
    seen: set[LitmusTest] = set()
    digests: list[str] = []
    records: list[dict] = []
    n_candidates = 0
    current_item = -1
    pos = 0
    oracle_before = _oracle_metrics(checker.oracle)
    tracer = (
        Tracer(os.path.join(task.trace_dir, f"shard-{shard_index:04d}.jsonl"))
        if task.trace_dir is not None
        else null_tracer()
    )
    registry = MetricsRegistry()
    with tracer, use_registry(registry):
        with tracer.span("shard", shard=shard_index) as shard_span:
            for item, test in enumerate_shard(
                state.model.vocabulary,
                task.config,
                shard=(shard_index, task.shard_count),
                reject=state.reject,
            ):
                if item != current_item:
                    current_item, pos = item, 0
                else:
                    pos += 1
                n_candidates += 1
                canon = canonical_form(test)
                if canon in seen:
                    continue
                seen.add(canon)
                digests.append(fingerprint(canon))
                minimal_for: list[str] = []
                witnesses: dict[str, dict] = {}
                for name in state.axiom_names:
                    t_ax = time.perf_counter()
                    result = checker.check(test, name)
                    axiom_seconds[name] += time.perf_counter() - t_ax
                    if result.is_minimal:
                        assert result.witness is not None
                        minimal_for.append(name)
                        witnesses[name] = outcome_to_dict(result.witness)
                if minimal_for:
                    records.append(
                        {
                            "item": item,
                            "pos": pos,
                            "test": test_to_dict(test),
                            "minimal_for": minimal_for,
                            "witnesses": witnesses,
                        }
                    )
            shard_span.annotate(
                candidates=n_candidates, unique=len(seen), minimal=len(records)
            )
        oracle_after = _oracle_metrics(checker.oracle)
        oracle_delta = {
            key: value - oracle_before.get(key, 0)
            for key, value in oracle_after.items()
        }
        registry.count("candidates", n_candidates)
        registry.count("unique_candidates", len(seen))
        registry.count("minimal_records", len(records))
        tracer.counters(
            {**registry.as_metrics(), **oracle_delta}, shard=shard_index
        )
    return {
        "shard": shard_index,
        "records": records,
        "stats": {
            "candidates": n_candidates,
            "unique": len(seen),
            "digests": digests,
            "axiom_seconds": axiom_seconds,
            "cpu_seconds": time.perf_counter() - t0,
            "oracle": oracle_delta,
        },
    }


# -- multiprocessing pool plumbing -------------------------------------------
#
# The pool is created with ``initializer=init_worker`` so each process
# builds its model/checker exactly once; ``run_shard`` then only ships a
# shard index in and a JSON-ready dict out.

_STATE: _WorkerState | None = None


def init_worker(task: WorkerTask) -> None:
    global _STATE
    _STATE = _WorkerState(task)


def run_shard(shard_index: int) -> dict:
    assert _STATE is not None, "worker pool was started without init_worker"
    return compute_shard(_STATE, shard_index)
