"""Sharded multiprocess synthesis runtime.

The synthesis loop is embarrassingly parallel — every candidate's
minimality check is independent — so this package splits the candidate
space into deterministic shards, fans them out over a worker pool, and
merges the streams back into suites byte-identical to the sequential
run.  Shard results double as checkpoints, so a killed run resumes.

Users normally reach this through the public API::

    from repro import SynthesisOptions, synthesize
    result = synthesize(model, SynthesisOptions(bound=4, jobs=4,
                                                checkpoint_dir="ckpt/"))

Modules:

* :mod:`repro.exec.sharding`   — shard planning / over-partitioning
* :mod:`repro.exec.worker`     — per-process pipeline and shard loop
* :mod:`repro.exec.merge`      — order-restoring deterministic merge
* :mod:`repro.exec.checkpoint` — JSONL shard store with run fingerprint
* :mod:`repro.exec.runtime`    — the pool driver tying it together
* :mod:`repro.exec.fanout`     — generic deterministic shard fan-out
"""

from repro.exec.checkpoint import (
    CheckpointError,
    CheckpointStore,
    run_fingerprint,
    saved_shard_count,
)
from repro.exec.fanout import (
    FanoutTask,
    RemoteJobError,
    ResidentProcess,
    ResidentTask,
    WorkerDied,
    run_fanout,
)
from repro.exec.merge import merge_shards
from repro.exec.runtime import run_sharded
from repro.exec.sharding import DEFAULT_SHARDS_PER_JOB, ShardPlan, plan_shards
from repro.exec.worker import WorkerTask, compute_shard, fingerprint

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "run_fingerprint",
    "saved_shard_count",
    "FanoutTask",
    "RemoteJobError",
    "ResidentProcess",
    "ResidentTask",
    "WorkerDied",
    "run_fanout",
    "merge_shards",
    "run_sharded",
    "DEFAULT_SHARDS_PER_JOB",
    "ShardPlan",
    "plan_shards",
    "WorkerTask",
    "compute_shard",
    "fingerprint",
]
