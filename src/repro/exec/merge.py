"""Deterministic merge of shard results into a :class:`SynthesisResult`.

Shards complete in nondeterministic order (pool scheduling), but every
record carries its global ``(item, pos)`` enumeration coordinate, so
sorting the union of all records by that key reconstructs the exact
sequential candidate order.  Replaying suite insertion in that order —
including the cross-shard canonical-form dedup the per-shard loops could
not see — makes the merged suites *byte-identical* to a ``jobs=1`` run:
same representatives, same witnesses, same JSON serialization.
"""

from __future__ import annotations

import time

from repro.core.canonical import canonical_form
from repro.core.suite import TestSuite, outcome_from_dict, test_from_dict
from repro.core.synthesis import SynthesisOptions, SynthesisResult
from repro.litmus.test import LitmusTest
from repro.models.base import MemoryModel

__all__ = ["merge_shards"]


def merge_shards(
    model: MemoryModel,
    opts: SynthesisOptions,
    shard_results: list[dict],
    wall_seconds: float,
    shard_count: int,
) -> SynthesisResult:
    """Fold shard results (any order) into the final result."""
    merge_t0 = time.perf_counter()
    axiom_names = opts.axiom_names(model)
    per_axiom = {
        name: TestSuite(model.name, name, opts.exact_symmetry)
        for name in axiom_names
    }
    union = TestSuite(model.name, "union", opts.exact_symmetry)

    records = sorted(
        (rec for result in shard_results for rec in result["records"]),
        key=lambda rec: (rec["item"], rec["pos"]),
    )
    seen: set[LitmusTest] = set()
    n_minimal = 0
    for rec in records:
        test = test_from_dict(rec["test"])
        canon = canonical_form(test)
        if canon in seen:
            # A symmetric twin from another shard already claimed this
            # class; the sequential loop would never have re-checked it.
            continue
        seen.add(canon)
        n_minimal += 1
        witness = None
        for name in rec["minimal_for"]:
            witness = outcome_from_dict(rec["witnesses"][name])
            per_axiom[name].add(test, witness, [name])
        assert witness is not None
        union.add(test, witness, rec["minimal_for"])

    n_candidates = 0
    unique_digests: set[str] = set()
    axiom_seconds = {name: 0.0 for name in axiom_names}
    cpu_seconds = time.perf_counter() - merge_t0
    oracle_totals: dict[str, float] = {}
    for result in shard_results:
        stats = result["stats"]
        n_candidates += stats["candidates"]
        unique_digests.update(stats["digests"])
        cpu_seconds += stats["cpu_seconds"]
        for name, secs in stats["axiom_seconds"].items():
            if name in axiom_seconds:
                axiom_seconds[name] += secs
        for key, value in stats.get("oracle", {}).items():
            if not key.endswith("_rate"):
                oracle_totals[key] = oracle_totals.get(key, 0) + value
    for kind, miss_key in (("analysis", "analyses"), ("observe", "observations")):
        hits = oracle_totals.get(f"{kind}_hits", 0)
        total = hits + oracle_totals.get(miss_key, 0)
        oracle_totals[f"{kind}_hit_rate"] = hits / total if total else 0.0
    if "compile_hits" in oracle_totals:
        hits = oracle_totals["compile_hits"]
        total = hits + oracle_totals.get("compile_misses", 0)
        oracle_totals["compile_hit_rate"] = hits / total if total else 0.0
    if "sat_queries" in oracle_totals:
        queries = oracle_totals["sat_queries"]
        oracle_totals["sat_reuse_rate"] = (
            oracle_totals.get("sat_reuse_hits", 0) / queries if queries else 0.0
        )

    return SynthesisResult(
        model_name=model.name,
        bound=opts.bound,
        per_axiom=per_axiom,
        union=union,
        candidates=n_candidates,
        unique_candidates=len(unique_digests),
        minimal_tests=n_minimal,
        wall_seconds=wall_seconds,
        cpu_seconds=cpu_seconds,
        axiom_seconds=axiom_seconds,
        jobs=opts.jobs,
        shard_count=shard_count,
        oracle_stats=oracle_totals,
    )
