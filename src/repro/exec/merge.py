"""Deterministic merge of shard results into a :class:`SynthesisResult`.

Shards complete in nondeterministic order (pool scheduling), but every
record carries its global ``(item, pos)`` enumeration coordinate, so
sorting the union of all records by that key reconstructs the exact
sequential candidate order.  Replaying suite insertion in that order —
including the cross-shard canonical-form dedup the per-shard loops could
not see — makes the merged suites *byte-identical* to a ``jobs=1`` run:
same representatives, same witnesses, same JSON serialization.
"""

from __future__ import annotations

import os
import time

from repro.core.canonical import canonical_form
from repro.core.suite import TestSuite, outcome_from_dict, test_from_dict
from repro.core.synthesis import SynthesisOptions, SynthesisResult
from repro.exec.worker import fingerprint
from repro.litmus.test import LitmusTest
from repro.models.base import MemoryModel
from repro.obs import derive_rates, format_event, header_event, merge_metrics

__all__ = ["merge_shards"]


def _write_merged_trace(
    trace_dir: str,
    model: MemoryModel,
    opts: SynthesisOptions,
    merged_records: list[dict],
    candidates: int,
    unique: int,
) -> None:
    """``merged.jsonl``: the deterministic merged event stream.

    Only order- and content-stable facts appear (no wall times, no
    worker counts), and records are already in global ``(item, pos)``
    order — so the file is byte-identical for every ``--jobs`` value,
    exactly like the merged suites.
    """
    lines = [format_event(header_event())]
    lines.append(
        format_event(
            {"ev": "meta", "command": "synthesize", "model": model.name, "bound": opts.bound}
        )
    )
    for rec in merged_records:
        lines.append(
            format_event(
                {
                    "ev": "test",
                    "item": rec["item"],
                    "pos": rec["pos"],
                    "minimal_for": list(rec["minimal_for"]),
                    "digest": rec["digest"],
                }
            )
        )
    lines.append(
        format_event(
            {
                "ev": "summary",
                "candidates": candidates,
                "unique": unique,
                "minimal": len(merged_records),
            }
        )
    )
    os.makedirs(trace_dir, exist_ok=True)
    with open(os.path.join(trace_dir, "merged.jsonl"), "w", encoding="utf-8") as fh:
        fh.write("".join(lines))


def merge_shards(
    model: MemoryModel,
    opts: SynthesisOptions,
    shard_results: list[dict],
    wall_seconds: float,
    shard_count: int,
) -> SynthesisResult:
    """Fold shard results (any order) into the final result."""
    merge_t0 = time.perf_counter()
    axiom_names = opts.axiom_names(model)
    per_axiom = {
        name: TestSuite(model.name, name, opts.exact_symmetry)
        for name in axiom_names
    }
    union = TestSuite(model.name, "union", opts.exact_symmetry)

    records = sorted(
        (rec for result in shard_results for rec in result["records"]),
        key=lambda rec: (rec["item"], rec["pos"]),
    )
    seen: set[LitmusTest] = set()
    n_minimal = 0
    merged_records: list[dict] = []
    for rec in records:
        test = test_from_dict(rec["test"])
        canon = canonical_form(test)
        if canon in seen:
            # A symmetric twin from another shard already claimed this
            # class; the sequential loop would never have re-checked it.
            continue
        seen.add(canon)
        n_minimal += 1
        merged_records.append({**rec, "digest": fingerprint(canon)})
        witness = None
        for name in rec["minimal_for"]:
            witness = outcome_from_dict(rec["witnesses"][name])
            per_axiom[name].add(test, witness, [name])
        assert witness is not None
        union.add(test, witness, rec["minimal_for"])

    n_candidates = 0
    unique_digests: set[str] = set()
    axiom_seconds = {name: 0.0 for name in axiom_names}
    cpu_seconds = time.perf_counter() - merge_t0
    for result in shard_results:
        stats = result["stats"]
        n_candidates += stats["candidates"]
        unique_digests.update(stats["digests"])
        cpu_seconds += stats["cpu_seconds"]
        for name, secs in stats["axiom_seconds"].items():
            if name in axiom_seconds:
                axiom_seconds[name] += secs
    # One shared aggregation path for all stats surfaces: sum the raw
    # counters, then recompute every derived rate the counters support.
    oracle_totals: dict[str, float] = dict(
        merge_metrics(*(r["stats"].get("oracle", {}) for r in shard_results))
    )
    oracle_totals.update(derive_rates(oracle_totals))

    if opts.trace_dir is not None:
        _write_merged_trace(
            opts.trace_dir,
            model,
            opts,
            merged_records,
            candidates=n_candidates,
            unique=len(unique_digests),
        )

    return SynthesisResult(
        model_name=model.name,
        bound=opts.bound,
        per_axiom=per_axiom,
        union=union,
        candidates=n_candidates,
        unique_candidates=len(unique_digests),
        minimal_tests=n_minimal,
        wall_seconds=wall_seconds,
        cpu_seconds=cpu_seconds,
        axiom_seconds=axiom_seconds,
        jobs=opts.jobs,
        shard_count=shard_count,
        oracle_stats=oracle_totals,
    )
