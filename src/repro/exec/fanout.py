"""Generic deterministic shard fan-out.

:mod:`repro.exec.runtime` hard-wires the synthesis pipeline into its
worker pool.  Other shardable workloads (the differential-testing
campaigns of :mod:`repro.difftest`) need the same machinery — build
per-process state once via a pool initializer, ship only shard indices
across the pipe, restore a deterministic order afterwards — without the
synthesis-specific payload.  This module factors that shape out.

A :class:`FanoutTask` names two module-level functions (picklable by
reference under both fork and spawn start methods):

* ``setup(payload) -> state`` — runs once per worker process;
* ``work(state, shard_index) -> result`` — runs once per shard.

:func:`run_fanout` executes every shard and returns the results ordered
by shard index, so the caller's merge is independent of pool scheduling.
``jobs=1`` runs in-process with no pool at all — the two paths produce
identical results, which is what lets callers promise ``--jobs N``
output is byte-identical to sequential.

A second shape lives here for long-lived hosts: :class:`ResidentProcess`
runs a :class:`ResidentTask` in one dedicated child process that
*persists across jobs* (per-process setup runs once, warm state
survives), streams structured progress events back over the pipe while
a job runs, and is individually restartable — the bridge the service
daemon's process-backed worker pool is built on.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

__all__ = [
    "FanoutTask",
    "ResidentProcess",
    "ResidentTask",
    "RemoteJobError",
    "WorkerDied",
    "run_fanout",
]


@dataclass(frozen=True)
class FanoutTask:
    """A shardable workload: per-process setup plus per-shard work.

    ``setup`` and ``work`` must be module-level functions and ``payload``
    picklable, so the task crosses process boundaries intact.
    """

    setup: Callable[[Any], Any]
    work: Callable[[Any, int], Any]
    payload: Any
    shard_count: int

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError(
                f"shard count must be >= 1, got {self.shard_count}"
            )


def run_fanout(task: FanoutTask, jobs: int = 1) -> list[Any]:
    """Run every shard of ``task`` over ``jobs`` workers.

    Returns one result per shard, ordered by shard index regardless of
    completion order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        state = task.setup(task.payload)
        return [task.work(state, i) for i in range(task.shard_count)]
    import multiprocessing as mp

    with mp.Pool(
        processes=min(jobs, task.shard_count),
        initializer=_init_worker,
        initargs=(task,),
    ) as pool:
        indexed = list(
            pool.imap_unordered(_run_shard, range(task.shard_count))
        )
    indexed.sort(key=lambda pair: pair[0])
    return [result for _, result in indexed]


# -- resident worker processes ------------------------------------------------


class WorkerDied(RuntimeError):
    """The resident child process vanished mid-job (killed, crashed, or
    closed its pipe).  The job it was running is lost; the parent-side
    :class:`ResidentProcess` stays usable — the next job spawns a fresh
    child."""


class RemoteJobError(RuntimeError):
    """A job raised inside the resident child process.

    The child stays alive (its warm state intact); only the one job
    failed.  ``exc_type`` is the remote exception's class name — the
    exception object itself never crosses the pipe, so arbitrary
    unpicklable errors still report cleanly.
    """

    def __init__(self, exc_type: str, message: str):
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type


@dataclass(frozen=True)
class ResidentTask:
    """A long-lived workload: per-process setup plus per-job work.

    Like :class:`FanoutTask`, ``setup`` and ``work`` must be
    module-level functions and ``payload`` picklable.  ``work`` takes
    ``(state, job, emit)`` where ``emit`` publishes one JSON-safe event
    dict back to the parent mid-job.
    """

    setup: Callable[[Any], Any]
    work: Callable[[Any, Any, Callable[[dict], None]], Any]
    payload: Any


def _resident_main(task: ResidentTask, conn: Any) -> None:
    """Child-process loop: one job in, events out, one answer per job."""
    try:
        state = task.setup(task.payload)
        while True:
            try:
                job = conn.recv()
            except EOFError:
                return
            if job is None:  # shutdown sentinel
                return
            try:
                result = task.work(
                    state, job, lambda event: conn.send(("event", event))
                )
            except Exception as exc:  # noqa: BLE001 — report, keep serving
                conn.send(("error", (type(exc).__name__, str(exc))))
            else:
                conn.send(("result", result))
    finally:
        conn.close()


class ResidentProcess:
    """One resident child process running :class:`ResidentTask` jobs.

    The child is spawned lazily on the first job and persists across
    jobs, so state built by ``task.setup`` (warm checkers, solver
    sessions) is reused.  A child that dies mid-job raises
    :class:`WorkerDied` for that job only; the next job transparently
    spawns a replacement.  :meth:`restart` recycles the child on
    purpose — on-disk state (CNF caches) survives, in-memory state is
    rebuilt.
    """

    def __init__(self, task: ResidentTask):
        self.task = task
        self._proc: Any = None
        self._conn: Any = None

    @property
    def pid(self) -> int | None:
        """The live child's PID (None before first use / after close)."""
        return self._proc.pid if self._proc is not None else None

    def _ensure(self) -> None:
        if self._proc is not None and self._proc.is_alive():
            return
        self._reap()
        import multiprocessing as mp

        parent, child = mp.Pipe()
        proc = mp.Process(
            target=_resident_main, args=(self.task, child), daemon=True
        )
        proc.start()
        child.close()
        self._proc, self._conn = proc, parent

    def _reap(self) -> None:
        if self._conn is not None:
            self._conn.close()
        if self._proc is not None:
            self._proc.join(timeout=5.0)
            if self._proc.is_alive():
                self._proc.terminate()
                self._proc.join(timeout=5.0)
        self._proc = self._conn = None

    def run(
        self, job: Any, on_event: Callable[[dict], None] | None = None
    ) -> Any:
        """Run one job in the resident child, streaming events out.

        Raises :class:`RemoteJobError` when the job itself raised (child
        survives) and :class:`WorkerDied` when the child vanished (job
        lost, next ``run`` respawns).
        """
        self._ensure()
        try:
            self._conn.send(job)
            while True:
                kind, value = self._conn.recv()
                if kind == "event":
                    if on_event is not None:
                        on_event(value)
                elif kind == "result":
                    return value
                else:
                    raise RemoteJobError(*value)
        except (EOFError, OSError, BrokenPipeError) as exc:
            self._reap()
            raise WorkerDied(
                f"resident worker died mid-job ({type(exc).__name__})"
            ) from exc

    def restart(self) -> None:
        """Recycle the child: shut it down; the next job respawns."""
        self.close()

    def close(self) -> None:
        """Shut the child down (graceful sentinel, then terminate)."""
        if self._conn is not None:
            try:
                self._conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        self._reap()


# -- pool plumbing (mirrors repro.exec.worker) --------------------------------

_TASK: FanoutTask | None = None
_STATE: Any = None


def _init_worker(task: FanoutTask) -> None:
    global _TASK, _STATE
    _TASK = task
    _STATE = task.setup(task.payload)


def _run_shard(shard_index: int) -> tuple[int, Any]:
    assert _TASK is not None, "fanout pool was started without _init_worker"
    return shard_index, _TASK.work(_STATE, shard_index)
