"""Generic deterministic shard fan-out.

:mod:`repro.exec.runtime` hard-wires the synthesis pipeline into its
worker pool.  Other shardable workloads (the differential-testing
campaigns of :mod:`repro.difftest`) need the same machinery — build
per-process state once via a pool initializer, ship only shard indices
across the pipe, restore a deterministic order afterwards — without the
synthesis-specific payload.  This module factors that shape out.

A :class:`FanoutTask` names two module-level functions (picklable by
reference under both fork and spawn start methods):

* ``setup(payload) -> state`` — runs once per worker process;
* ``work(state, shard_index) -> result`` — runs once per shard.

:func:`run_fanout` executes every shard and returns the results ordered
by shard index, so the caller's merge is independent of pool scheduling.
``jobs=1`` runs in-process with no pool at all — the two paths produce
identical results, which is what lets callers promise ``--jobs N``
output is byte-identical to sequential.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

__all__ = ["FanoutTask", "run_fanout"]


@dataclass(frozen=True)
class FanoutTask:
    """A shardable workload: per-process setup plus per-shard work.

    ``setup`` and ``work`` must be module-level functions and ``payload``
    picklable, so the task crosses process boundaries intact.
    """

    setup: Callable[[Any], Any]
    work: Callable[[Any, int], Any]
    payload: Any
    shard_count: int

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError(
                f"shard count must be >= 1, got {self.shard_count}"
            )


def run_fanout(task: FanoutTask, jobs: int = 1) -> list[Any]:
    """Run every shard of ``task`` over ``jobs`` workers.

    Returns one result per shard, ordered by shard index regardless of
    completion order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        state = task.setup(task.payload)
        return [task.work(state, i) for i in range(task.shard_count)]
    import multiprocessing as mp

    with mp.Pool(
        processes=min(jobs, task.shard_count),
        initializer=_init_worker,
        initargs=(task,),
    ) as pool:
        indexed = list(
            pool.imap_unordered(_run_shard, range(task.shard_count))
        )
    indexed.sort(key=lambda pair: pair[0])
    return [result for _, result in indexed]


# -- pool plumbing (mirrors repro.exec.worker) --------------------------------

_TASK: FanoutTask | None = None
_STATE: Any = None


def _init_worker(task: FanoutTask) -> None:
    global _TASK, _STATE
    _TASK = task
    _STATE = task.setup(task.payload)


def _run_shard(shard_index: int) -> tuple[int, Any]:
    assert _TASK is not None, "fanout pool was started without _init_worker"
    return shard_index, _TASK.work(_STATE, shard_index)
