"""Shard-level checkpointing for long synthesis runs.

Layout under the checkpoint directory::

    meta.json      run fingerprint (model, bound, options, shard count)
    shards.jsonl   one JSON line per completed shard (its full result)

``shards.jsonl`` is append-only and flushed per shard, so a killed run
loses at most the shards in flight.  On restart with the same options the
store replays completed shards and the runtime only schedules the rest.
A torn final line (the process died mid-write) is detected and dropped;
that shard simply reruns.  Restarting with *different* options against
the same directory is a hard error — silently mixing partitions would
corrupt the merge.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict

from repro.core.synthesis import SynthesisOptions
from repro.exec.worker import WorkerTask

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "run_fingerprint",
    "saved_shard_count",
]

_META_VERSION = 2
_META_NAME = "meta.json"
_SHARDS_NAME = "shards.jsonl"


class CheckpointError(RuntimeError):
    """The checkpoint directory does not match the requested run."""


def run_fingerprint(task: WorkerTask, opts: SynthesisOptions) -> dict:
    """The identity a checkpoint directory is bound to.

    Everything that changes the per-shard output is included; knobs that
    only change scheduling (``jobs``) or reporting (``progress``) are
    deliberately left out so a resume may use a different worker count.
    """
    reject = task.reject
    if callable(reject):
        # Callables have no stable cross-run identity; record the best
        # name available so at least blatant mismatches are caught.
        reject = f"callable:{getattr(reject, '__qualname__', repr(reject))}"
    return {
        "meta_version": _META_VERSION,
        "model": task.model_name,
        "bound": task.bound,
        "axioms": list(task.axioms) if task.axioms is not None else None,
        "mode": task.mode_value,
        "config": asdict(task.config),
        "exact_symmetry": opts.exact_symmetry,
        "shard_count": task.shard_count,
        "reject": reject,
        # the oracle backend determines the shard stats payload (and is
        # the knob equivalence claims are made against), so a resume must
        # not switch it mid-run; ``incremental``/``cnf_cache_dir`` are
        # pure wall-clock knobs and stay out, like ``jobs``
        "oracle": task.spec.oracle,
    }


def saved_shard_count(directory: str) -> int | None:
    """The shard partition an existing checkpoint was written with.

    A resume that does not pin ``shards`` explicitly must adopt the
    original partition — the default is derived from ``jobs``, and a
    resume is allowed to change ``jobs``.  Returns ``None`` when the
    directory holds no (readable) checkpoint yet.
    """
    meta_path = os.path.join(directory, _META_NAME)
    try:
        with open(meta_path) as fh:
            meta = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    count = meta.get("shard_count")
    return count if isinstance(count, int) and count >= 1 else None


class CheckpointStore:
    """Append-only store of completed shard results."""

    def __init__(self, directory: str, fingerprint: dict):
        self.directory = directory
        self.fingerprint = fingerprint
        os.makedirs(directory, exist_ok=True)
        self._meta_path = os.path.join(directory, _META_NAME)
        self._shards_path = os.path.join(directory, _SHARDS_NAME)
        if os.path.exists(self._meta_path):
            with open(self._meta_path) as fh:
                existing = json.load(fh)
            if existing != fingerprint:
                diff = sorted(
                    key
                    for key in set(existing) | set(fingerprint)
                    if existing.get(key) != fingerprint.get(key)
                )
                raise CheckpointError(
                    f"checkpoint at {directory} was written by a different "
                    f"run (mismatched: {', '.join(diff)}); point "
                    "--checkpoint-dir at a fresh directory or rerun with "
                    "the original options"
                )
        else:
            with open(self._meta_path, "w") as fh:
                json.dump(fingerprint, fh, indent=2)

    def load(self) -> dict[int, dict]:
        """Completed shard results keyed by shard index.

        Skips torn/corrupt lines (a kill mid-append) — those shards just
        run again.  The first record per shard wins, matching the
        runtime's skip-completed scheduling.
        """
        done: dict[int, dict] = {}
        if not os.path.exists(self._shards_path):
            return done
        with open(self._shards_path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    result = json.loads(line)
                except json.JSONDecodeError:
                    continue
                shard = result.get("shard")
                if isinstance(shard, int) and shard not in done:
                    done[shard] = result
        return done

    def record(self, shard_result: dict) -> None:
        """Durably append one completed shard."""
        line = json.dumps(shard_result, separators=(",", ":"))
        with open(self._shards_path, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
