"""The sharded multiprocess synthesis driver.

``run_sharded(model, opts)`` is what :func:`repro.core.synthesis.synthesize`
dispatches to for ``jobs > 1`` or checkpointed runs:

1. plan the shard partition (:mod:`repro.exec.sharding`);
2. replay completed shards from the checkpoint store, if any;
3. fan the remaining shards out over a ``multiprocessing`` pool whose
   workers each own a full pipeline (:mod:`repro.exec.worker`),
   checkpointing and reporting progress as each shard streams back;
4. merge everything deterministically (:mod:`repro.exec.merge`).

The merged result is byte-identical to the sequential run over the same
options — parallelism and resume are pure wall-clock concerns.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import time

from repro.core.minimality import CriterionMode
from repro.core.synthesis import SynthesisOptions, SynthesisResult
from repro.exec.checkpoint import (
    CheckpointStore,
    run_fingerprint,
    saved_shard_count,
)
from repro.exec.merge import merge_shards
from repro.exec.sharding import plan_shards
from repro.exec.worker import (
    WorkerTask,
    _WorkerState,
    compute_shard,
    init_worker,
    run_shard,
)
from repro.models.base import MemoryModel
from repro.obs import (
    TOOL_NAME,
    TRACE_SCHEMA_NAME,
    TRACE_SCHEMA_VERSION,
    Tracer,
    null_tracer,
)

__all__ = ["run_sharded"]


def _write_trace_meta(trace_dir: str, model: MemoryModel, opts: SynthesisOptions) -> None:
    """``meta.json``: the deterministic description of a traced run.

    Worker counts and wall timings deliberately stay out — the merged
    trace must be byte-identical for every ``--jobs`` value, and meta is
    part of what consumers compare.
    """
    os.makedirs(trace_dir, exist_ok=True)
    meta = {
        "schema": {"name": TRACE_SCHEMA_NAME, "version": TRACE_SCHEMA_VERSION},
        "tool": TOOL_NAME,
        "command": "synthesize",
        "model": model.name,
        "bound": opts.bound,
        "oracle": opts.oracle_spec.oracle,
    }
    with open(os.path.join(trace_dir, "meta.json"), "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _worker_task(model: MemoryModel, opts: SynthesisOptions, shard_count: int) -> WorkerTask:
    reject = opts.reject
    if callable(reject) and opts.jobs > 1:
        try:
            pickle.dumps(reject)
        except Exception as exc:
            raise ValueError(
                "a custom reject callable must be picklable to cross "
                "worker process boundaries; pass repro.core.synthesis."
                "EARLY_REJECT (or a module-level function) instead"
            ) from exc
    mode = opts.mode if isinstance(opts.mode, CriterionMode) else CriterionMode(opts.mode)
    return WorkerTask(
        model_name=model.name,
        bound=opts.bound,
        axioms=tuple(opts.axioms) if opts.axioms is not None else None,
        mode_value=mode.value,
        config=opts.resolved_config(model),
        shard_count=shard_count,
        reject=reject,
        spec=opts.oracle_spec,
        trace_dir=opts.trace_dir,
    )


def run_sharded(model: MemoryModel, opts: SynthesisOptions) -> SynthesisResult:
    """Run one synthesis over shards, in parallel when ``jobs > 1``."""
    if opts.candidates is not None:
        raise ValueError(
            "an explicit candidates stream cannot be sharded; "
            "run it with jobs=1 and no checkpoint_dir"
        )
    start = time.perf_counter()
    if opts.trace_dir is not None:
        _write_trace_meta(opts.trace_dir, model, opts)
        tracer = Tracer(os.path.join(opts.trace_dir, "driver.jsonl"))
    else:
        tracer = null_tracer()

    with tracer:
        with tracer.span("plan"):
            shards = opts.shards
            if shards is None and opts.checkpoint_dir is not None:
                # A resume may change jobs (scheduling) but never the
                # partition: without an explicit shard count, adopt the
                # checkpoint's.
                shards = saved_shard_count(opts.checkpoint_dir)
            plan = plan_shards(opts.jobs, shards)
            task = _worker_task(model, opts, plan.count)

        with tracer.span("replay"):
            store: CheckpointStore | None = None
            completed: dict[int, dict] = {}
            if opts.checkpoint_dir is not None:
                store = CheckpointStore(
                    opts.checkpoint_dir, run_fingerprint(task, opts)
                )
                completed = store.load()
            pending = [i for i in plan.indices() if i not in completed]

        progress = opts.progress
        events = opts.progress_events
        candidates_done = sum(
            r["stats"]["candidates"] for r in completed.values()
        )

        def finish(result: dict) -> None:
            nonlocal candidates_done
            completed[result["shard"]] = result
            candidates_done += result["stats"]["candidates"]
            if store is not None:
                store.record(result)
            if progress is not None:
                progress(candidates_done)
            if events is not None:
                events(
                    {
                        "phase": "shard",
                        "shard": result["shard"],
                        "shards": plan.count,
                        "candidates": result["stats"]["candidates"],
                        "unique": result["stats"]["unique"],
                        "minimal": len(result["records"]),
                        "total_candidates": candidates_done,
                    }
                )

        with tracer.span("shards", pending=len(pending)):
            if opts.jobs == 1:
                # In-process: same shard/merge/checkpoint path, no pool
                # overhead.
                state = _WorkerState(task)
                for index in pending:
                    finish(compute_shard(state, index))
            elif pending:
                with multiprocessing.get_context().Pool(
                    processes=min(opts.jobs, len(pending)),
                    initializer=init_worker,
                    initargs=(task,),
                ) as pool:
                    for result in pool.imap_unordered(
                        run_shard, pending, chunksize=1
                    ):
                        finish(result)

        wall_seconds = time.perf_counter() - start
        with tracer.span("merge"):
            return merge_shards(
                model,
                opts,
                list(completed.values()),
                wall_seconds=wall_seconds,
                shard_count=plan.count,
            )
