"""Shard planning for the parallel synthesis runtime.

A *shard* is one deterministic slice of the candidate space — the
``shard=(i, n)`` argument of
:func:`repro.core.enumerator.enumerate_tests`.  Shards are the unit of
work distribution, of checkpointing, and of progress reporting.

The planner over-partitions: more shards than workers.  Work items vary
wildly in cost (the last thread-size partitions dominate), so handing
each worker exactly one slice would leave most of the pool idle behind
the slowest one.  Round-robin item assignment inside the enumerator
already spreads the expensive partitions across shards; over-partitioning
on top keeps the pool busy until the end and bounds the work lost when a
checkpointed run is killed mid-shard.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ShardPlan", "plan_shards", "DEFAULT_SHARDS_PER_JOB"]

#: shards allocated per worker process when the caller does not pin a
#: total — enough granularity for balance and resume without drowning in
#: per-shard overhead (each shard re-walks the cheap enumeration prefix).
DEFAULT_SHARDS_PER_JOB = 4


@dataclass(frozen=True)
class ShardPlan:
    """The partition a parallel run executes over."""

    jobs: int
    count: int

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")

    def shard(self, index: int) -> tuple[int, int]:
        """The ``(index, count)`` pair to pass to the enumerator."""
        if not 0 <= index < self.count:
            raise ValueError(
                f"shard index {index} out of range for {self.count} shards"
            )
        return (index, self.count)

    def indices(self) -> range:
        return range(self.count)


def plan_shards(jobs: int, shards: int | None = None) -> ShardPlan:
    """Pick the shard partition for ``jobs`` workers.

    ``shards`` pins the total explicitly (checkpoint resume must reuse
    the original partition; the store validates this via its fingerprint).
    """
    if shards is not None:
        return ShardPlan(jobs=jobs, count=shards)
    return ShardPlan(jobs=jobs, count=max(1, jobs) * DEFAULT_SHARDS_PER_JOB)
