"""DIMACS CNF reading and writing."""

from __future__ import annotations

from collections.abc import Iterable

from repro.sat.solver import Solver

__all__ = ["parse_dimacs", "to_dimacs", "solver_from_dimacs"]


def parse_dimacs(text: str) -> tuple[int, list[list[int]]]:
    """Parse DIMACS CNF text; returns (num_vars, clauses)."""
    num_vars = 0
    clauses: list[list[int]] = []
    current: list[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("c", "%")):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"bad problem line: {raw!r}")
            num_vars = int(parts[2])
            continue
        for tok in line.split():
            lit = int(tok)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                current.append(lit)
    if current:
        clauses.append(current)
    return num_vars, clauses


def to_dimacs(num_vars: int, clauses: Iterable[Iterable[int]]) -> str:
    """Render clauses as DIMACS CNF text."""
    lines = []
    body = []
    count = 0
    for clause in clauses:
        body.append(" ".join(map(str, clause)) + " 0")
        count += 1
    lines.append(f"p cnf {num_vars} {count}")
    lines.extend(body)
    return "\n".join(lines) + "\n"


def solver_from_dimacs(text: str) -> Solver:
    """Build a solver loaded with the clauses of a DIMACS file."""
    num_vars, clauses = parse_dimacs(text)
    solver = Solver()
    while solver.num_vars < num_vars:
        solver.new_var()
    for clause in clauses:
        solver.add_clause(clause)
    return solver
