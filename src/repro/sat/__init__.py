"""From-scratch CDCL SAT solver (the MiniSAT stand-in of the paper's
Alloy -> Kodkod -> MiniSAT stack)."""

from repro.sat.dimacs import parse_dimacs, solver_from_dimacs, to_dimacs
from repro.sat.solver import SAT, UNSAT, Solver, SolverStats
from repro.sat.types import Clause, index_lit, lit_index, neg_index

__all__ = [
    "Solver",
    "SolverStats",
    "SAT",
    "UNSAT",
    "Clause",
    "lit_index",
    "index_lit",
    "neg_index",
    "parse_dimacs",
    "to_dimacs",
    "solver_from_dimacs",
]
