"""A CDCL SAT solver.

This is the decision procedure at the bottom of the Alloy-substitute
stack (paper §4: Alloy -> Kodkod -> MiniSAT; here: ``repro.alloy`` ->
``repro.relational`` -> this module).  The design is a compact MiniSAT:

* two-literal watching for unit propagation,
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS variable activity with phase saving,
* Luby-sequence restarts,
* learnt-clause database reduction by activity,
* incremental solving under assumptions,
* selector-guarded *removable* clauses (:meth:`Solver.add_removable_clause`)
  so a family of related queries shares one clause database — toggling a
  constraint is an assumption literal, not a fresh solver,
* model enumeration via blocking clauses (:meth:`Solver.models`), with the
  blocking clauses guarded by a per-enumeration selector and physically
  removed afterwards so enumeration never pollutes the database,
* query telemetry (:class:`SolverStats`) including per-query reuse hits.

The incremental contract: learnt clauses, variable activities, and saved
phases all persist across :meth:`Solver.solve` calls, so closely related
queries (same CNF, different assumptions) amortize each other's search.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import asdict, dataclass

from repro.sat.types import Clause, index_lit, lit_index, neg_index

__all__ = ["Solver", "SolverStats", "SAT", "UNSAT"]

SAT = True
UNSAT = False

_UNASSIGNED = -1


@dataclass
class SolverStats:
    """Search counters, persistent across queries on one solver.

    ``queries`` counts :meth:`Solver.solve` calls; ``reuse_hits`` counts
    the queries after the first, i.e. those answered against an
    already-warm clause database (learnt clauses, activities, and phases
    retained from earlier queries).  Dict-style access is kept for
    backwards compatibility with the pre-telemetry ``stats`` dict.
    """

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned: int = 0
    queries: int = 0
    reuse_hits: int = 0

    def __getitem__(self, key: str) -> int:
        return getattr(self, key)

    def __setitem__(self, key: str, value: int) -> None:
        if not hasattr(self, key):
            raise KeyError(key)
        setattr(self, key, value)

    def as_dict(self) -> dict[str, int]:
        return asdict(self)

    def as_metrics(self) -> dict[str, int]:
        """The :class:`repro.obs.Stats` protocol: raw summable counters."""
        return asdict(self)

    def add(self, other: "SolverStats | dict") -> None:
        """Accumulate another stats record into this one."""
        items = other.as_dict() if isinstance(other, SolverStats) else other
        for key, value in items.items():
            setattr(self, key, getattr(self, key) + value)


class Solver:
    """CDCL SAT solver over DIMACS-style integer literals."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[Clause] = []
        self.learnts: list[Clause] = []
        self.watches: list[list[Clause]] = [[], []]
        # assignment state
        self.assigns: list[int] = [_UNASSIGNED]  # var -> 0/1/_UNASSIGNED
        self.levels: list[int] = [0]
        self.reasons: list[Clause | None] = [None]
        self.trail: list[int] = []  # literal indices, assignment order
        self.trail_lim: list[int] = []
        self.qhead = 0
        # VSIDS
        self.activity: list[float] = [0.0]
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.polarity: list[int] = [0]  # phase saving
        self.order: list[int] = []  # lazy heap substitute
        # clause activity
        self.cla_inc = 1.0
        self.cla_decay = 0.999
        self.max_learnts = 4000
        # stats
        self.stats = SolverStats()
        # selector var -> clauses it guards (see add_removable_clause)
        self._removable: dict[int, list[Clause]] = {}
        self._ok = True

    # -- problem construction ----------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its (positive) id."""
        self.num_vars += 1
        self.assigns.append(_UNASSIGNED)
        self.levels.append(0)
        self.reasons.append(None)
        self.activity.append(0.0)
        self.polarity.append(0)
        self.watches.append([])
        self.watches.append([])
        return self.num_vars

    def _ensure_vars(self, lits: Iterable[int]) -> None:
        top = max((abs(l) for l in lits), default=0)
        while self.num_vars < top:
            self.new_var()

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause (DIMACS literals).  Returns False if the formula
        became trivially unsatisfiable."""
        if not self._ok:
            return False
        if self.trail_lim:
            raise RuntimeError("add_clause only at decision level 0")
        seen: set[int] = set()
        out: list[int] = []
        lits = list(lits)
        self._ensure_vars(lits)
        for lit in lits:
            idx = lit_index(lit)
            if neg_index(idx) in seen:
                return True  # tautology
            if idx in seen:
                continue
            val = self._value(idx)
            if val == 1:
                return True  # already satisfied at level 0
            if val == 0:
                continue  # already false at level 0: drop literal
            seen.add(idx)
            out.append(idx)
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            self._assign(out[0], None)
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        clause = Clause(out)
        self.clauses.append(clause)
        self._watch(clause)
        return True

    def _watch(self, clause: Clause) -> None:
        self.watches[neg_index(clause.lits[0])].append(clause)
        self.watches[neg_index(clause.lits[1])].append(clause)

    # -- removable clauses (selector literals) -----------------------------------

    def new_selector(self) -> int:
        """Allocate a selector variable for a group of removable clauses.

        Pass the returned (positive) literal in ``assumptions`` to
        activate the group for one query; leave it out to deactivate it.
        :meth:`release_selector` retires the group permanently.
        """
        sel = self.new_var()
        self._removable[sel] = []
        return sel

    def add_removable_clause(self, sel: int, lits: Iterable[int]) -> bool:
        """Add a clause that only constrains queries assuming ``sel``.

        The clause is stored as ``(-sel ∨ lits...)``: solving with ``sel``
        among the assumptions enforces it, solving without leaves the
        solver free to satisfy it vacuously.  This is the classic
        MiniSAT-style alternative to push/pop — a relaxation or outcome
        toggle is a handful of assumption literals instead of a fresh
        solver.  Returns False iff the solver is already unsatisfiable.
        """
        if not self._ok:
            return False
        if self.trail_lim:
            raise RuntimeError("add_removable_clause only at decision level 0")
        if sel not in self._removable:
            raise ValueError(
                f"unknown selector {sel}; allocate it with new_selector()"
            )
        lits = list(lits)
        self._ensure_vars(lits)
        seen: set[int] = set()
        out: list[int] = []
        for lit in lits:
            idx = lit_index(lit)
            if neg_index(idx) in seen:
                return True  # tautology: never constrains anything
            if idx in seen:
                continue
            val = self._value(idx)
            if val == 1:
                return True  # satisfied at level 0 regardless of sel
            if val == 0:
                continue  # permanently false: drop the literal
            seen.add(idx)
            out.append(idx)
        if not out:
            # every body literal is false at level 0: activating the
            # selector can only conflict, so retire it outright
            return self.add_clause([-sel])
        clause = Clause([lit_index(-sel)] + out)
        self.clauses.append(clause)
        self._removable[sel].append(clause)
        self._watch(clause)
        return True

    def release_selector(self, sel: int) -> None:
        """Permanently retire a selector group.

        Fixes the selector false (so learnt clauses derived under it stay
        satisfied, hence sound) and physically removes its guarded
        clauses — plus any learnt clause mentioning the selector — from
        the database and watch lists.  This is the explicit cleanup that
        keeps repeated model enumeration from polluting the clause DB.
        """
        removed = self._removable.pop(sel, None)
        if removed is None:
            return
        self._backtrack(0)
        if self._ok:
            self.add_clause([-sel])
        dead = set(map(id, removed))
        neg_sel = lit_index(-sel)
        for c in self.learnts:
            if neg_sel in c.lits:
                dead.add(id(c))
        if not dead:
            return
        self.clauses = [c for c in self.clauses if id(c) not in dead]
        self.learnts = [c for c in self.learnts if id(c) not in dead]
        for w in self.watches:
            w[:] = [c for c in w if id(c) not in dead]
        for var in range(1, self.num_vars + 1):
            reason = self.reasons[var]
            if reason is not None and id(reason) in dead:
                # only level-0 assignments survive the backtrack, and
                # those are permanent facts — the reason is never needed
                self.reasons[var] = None

    # -- assignment primitives ---------------------------------------------------------

    def _value(self, idx: int) -> int:
        """Value of a literal index: 1 true, 0 false, -1 unassigned."""
        a = self.assigns[idx >> 1]
        if a == _UNASSIGNED:
            return _UNASSIGNED
        return a ^ (idx & 1)

    def _assign(self, idx: int, reason: Clause | None) -> None:
        var = idx >> 1
        self.assigns[var] = 1 - (idx & 1)
        self.levels[var] = len(self.trail_lim)
        self.reasons[var] = reason
        self.trail.append(idx)

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    # -- unit propagation -----------------------------------------------------------------

    def _propagate(self) -> Clause | None:
        """Propagate units; returns a conflicting clause or None."""
        while self.qhead < len(self.trail):
            idx = self.trail[self.qhead]
            self.qhead += 1
            self.stats.propagations += 1
            false_lit = neg_index(idx)
            watchers = self.watches[idx]
            self.watches[idx] = []
            i = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                lits = clause.lits
                # normalize: false literal at position 1
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value(first) == 1:
                    self.watches[idx].append(clause)
                    continue
                # find a new watch
                moved = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], lits[1]
                        self.watches[neg_index(lits[1])].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                # unit or conflict
                self.watches[idx].append(clause)
                if self._value(first) == 0:
                    # conflict: restore remaining watchers
                    self.watches[idx].extend(watchers[i:])
                    self.qhead = len(self.trail)
                    return clause
                self._assign(first, clause)
        return None

    # -- conflict analysis (first UIP) ------------------------------------------------------

    def _analyze(self, conflict: Clause) -> tuple[list[int], int]:
        learnt: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit_idx = -1
        reason: Clause | None = conflict
        trail_pos = len(self.trail) - 1
        level = self._decision_level()

        while True:
            assert reason is not None
            self._bump_clause(reason)
            for q in reason.lits:
                if lit_idx != -1 and q == lit_idx:
                    continue
                var = q >> 1
                if not seen[var] and self.levels[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self.levels[var] >= level:
                        counter += 1
                    else:
                        learnt.append(q)
            # pick the next trail literal to resolve on
            while not seen[self.trail[trail_pos] >> 1]:
                trail_pos -= 1
            lit_idx = self.trail[trail_pos]
            var = lit_idx >> 1
            seen[var] = False
            trail_pos -= 1
            counter -= 1
            if counter == 0:
                break
            reason = self.reasons[var]
        learnt[0] = neg_index(lit_idx)

        # clause minimization: drop literals implied by the rest
        minimized = [learnt[0]]
        for q in learnt[1:]:
            reason = self.reasons[q >> 1]
            if reason is None:
                minimized.append(q)
                continue
            if any(
                not seen[r >> 1] and self.levels[r >> 1] > 0
                for r in reason.lits
                if r != neg_index(q)
            ):
                minimized.append(q)
        learnt = minimized

        if len(learnt) == 1:
            return learnt, 0
        # backjump to the second-highest level in the clause
        max_i = 1
        for i in range(2, len(learnt)):
            if (
                self.levels[learnt[i] >> 1]
                > self.levels[learnt[max_i] >> 1]
            ):
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self.levels[learnt[1] >> 1]

    def _bump_var(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _bump_clause(self, clause: Clause) -> None:
        if clause.learnt:
            clause.activity += self.cla_inc
            if clause.activity > 1e20:
                for c in self.learnts:
                    c.activity *= 1e-20
                self.cla_inc *= 1e-20

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self.trail_lim[level]
        for idx in reversed(self.trail[limit:]):
            var = idx >> 1
            self.polarity[var] = self.assigns[var]
            self.assigns[var] = _UNASSIGNED
            self.reasons[var] = None
        del self.trail[limit:]
        del self.trail_lim[level:]
        self.qhead = len(self.trail)

    # -- decisions --------------------------------------------------------------------------

    def _decide(self) -> int | None:
        best = 0
        best_act = -1.0
        for var in range(1, self.num_vars + 1):
            if self.assigns[var] == _UNASSIGNED:
                act = self.activity[var]
                if act > best_act:
                    best_act = act
                    best = var
        if best == 0:
            return None
        return (best << 1) | (1 - self.polarity[best])

    def _reduce_db(self) -> None:
        self.learnts.sort(key=lambda c: c.activity)
        keep = len(self.learnts) // 2
        dropped = set(map(id, self.learnts[:keep]))
        for c in self.learnts[:keep]:
            if any(self.reasons[l >> 1] is c for l in c.lits):
                dropped.discard(id(c))
        self.learnts = [c for c in self.learnts if id(c) not in dropped]
        for w in self.watches:
            w[:] = [c for c in w if not (c.learnt and id(c) in dropped)]

    # -- main search --------------------------------------------------------------------------

    def solve(self, assumptions: Iterable[int] = ()) -> bool:
        """Search for a model; True = SAT, False = UNSAT."""
        self.stats.queries += 1
        if self.stats.queries > 1:
            self.stats.reuse_hits += 1
        if not self._ok:
            return UNSAT
        self._backtrack(0)
        assumption_idxs = [lit_index(l) for l in assumptions]
        for idx in assumption_idxs:
            self._ensure_vars([index_lit(idx)])

        restarts = 0
        conflicts_until_restart = _luby(restarts) * 100
        conflict_count = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflict_count += 1
                if self._decision_level() == 0:
                    return UNSAT
                learnt, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learnt) == 1:
                    self._assign(learnt[0], None)
                else:
                    clause = Clause(learnt, learnt=True)
                    self.learnts.append(clause)
                    self.stats.learned += 1
                    self._watch(clause)
                    self._assign(learnt[0], clause)
                self.var_inc /= self.var_decay
                self.cla_inc /= self.cla_decay
                if len(self.learnts) > self.max_learnts:
                    self._reduce_db()
                continue

            # restart?
            if conflict_count >= conflicts_until_restart:
                conflict_count = 0
                restarts += 1
                self.stats.restarts += 1
                conflicts_until_restart = _luby(restarts) * 100
                self._backtrack(0)
                continue

            # honour assumptions first
            next_decision = None
            for idx in assumption_idxs:
                val = self._value(idx)
                if val == 0:
                    return UNSAT  # assumption conflicts
                if val == _UNASSIGNED:
                    next_decision = idx
                    break
            if next_decision is None:
                next_decision = self._decide()
            if next_decision is None:
                return SAT  # complete assignment
            self.stats.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._assign(next_decision, None)

    # -- model access -------------------------------------------------------------------------

    def model(self) -> dict[int, bool]:
        """The satisfying assignment after a SAT answer."""
        return {
            v: bool(self.assigns[v])
            for v in range(1, self.num_vars + 1)
            if self.assigns[v] != _UNASSIGNED
        }

    def model_value(self, var: int) -> bool:
        val = self.assigns[var]
        return bool(val) if val != _UNASSIGNED else False

    def models(
        self,
        project: Iterable[int] | None = None,
        assumptions: Iterable[int] = (),
        limit: int | None = None,
    ) -> Iterator[dict[int, bool]]:
        """Enumerate satisfying assignments via blocking clauses.

        ``project`` restricts enumeration (and blocking) to the given
        variables: models equal on the projection count once.

        Blocking clauses ride the incremental path: they are added as
        removable clauses under a per-enumeration selector and physically
        released when the generator finishes (or is closed), so repeated
        enumerations on one solver never permanently pollute the clause
        database — each enumeration sees the same formula, while learnt
        clauses about the *un*-guarded problem carry over.
        """
        proj = (
            list(project)
            if project is not None
            else list(range(1, self.num_vars + 1))
        )
        sel = self.new_selector()
        try:
            assume = [sel, *assumptions]
            found = 0
            while limit is None or found < limit:
                if not self.solve(assume):
                    return
                assignment = {v: self.model_value(v) for v in proj}
                yield assignment
                found += 1
                self._backtrack(0)
                blocking = [
                    (-v if val else v) for v, val in assignment.items()
                ]
                if not self.add_removable_clause(sel, blocking):
                    return
        finally:
            self.release_selector(sel)


def _luby(i: int) -> int:
    """The Luby restart sequence 1 1 2 1 1 2 4 ..."""
    k = 1
    while (1 << (k + 1)) - 1 <= i + 1:
        k += 1
    while True:
        if i + 1 == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1
        k -= 1
        while (1 << (k + 1)) - 1 <= i + 1:
            k += 1
