"""Core SAT types and literal encoding.

Variables are positive integers ``1..n``.  A *literal* is a non-zero
integer: ``+v`` for the variable, ``-v`` for its negation (the DIMACS
convention).  Internally the solver indexes literals as
``2*v`` / ``2*v + 1`` for fast array addressing; these helpers convert.
"""

from __future__ import annotations

__all__ = ["lit_index", "index_lit", "neg_index", "Clause"]


def lit_index(lit: int) -> int:
    """DIMACS literal -> dense array index (2v for +v, 2v+1 for -v)."""
    return (lit << 1) if lit > 0 else ((-lit << 1) | 1)


def index_lit(idx: int) -> int:
    """Dense array index -> DIMACS literal."""
    var = idx >> 1
    return -var if idx & 1 else var


def neg_index(idx: int) -> int:
    """Negate a literal in index form."""
    return idx ^ 1


class Clause:
    """A disjunction of literals (index form) with watched-literal slots.

    The first two positions are the watched literals.  ``learnt`` clauses
    carry an activity score for clause-database reduction.
    """

    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits: list[int], learnt: bool = False):
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0

    def __len__(self) -> int:
        return len(self.lits)

    def __repr__(self) -> str:
        body = " ".join(str(index_lit(i)) for i in self.lits)
        tag = "L" if self.learnt else "C"
        return f"<{tag}: {body}>"
