"""Pipeline lint: sanity checks over clause sets headed for the solver.

The Tseitin compiler (:mod:`repro.relational.circuit`) and the relational
translator are supposed to emit tight CNF: every allocated variable
reachable from the root, no degenerate clauses.  These passes verify that
on real encodings and on raw DIMACS input.

Diagnostic ids:

=======  ========  ==========================================================
id       severity  meaning
=======  ========  ==========================================================
SAT001   warning   variable never referenced by any clause (orphan)
SAT002   warning   tautological clause (contains ``v`` and ``-v``)
SAT003   error     empty clause (formula trivially unsatisfiable)
SAT004   info      duplicate literal within one clause
SAT005   error     literal references a variable beyond ``num_vars``
SAT006   info      unit clause in the input (fine, but worth surfacing)
SAT007   warning   oracle configuration silently disables the CNF cache
SAT008   warning   CNF cache directory mixes incompatible fingerprints
SAT009   warning   warm CNF cache produced zero compile hits
=======  ========  ==========================================================

SAT007/SAT008/SAT009 are collection-level checks over oracle
*configurations*, on-disk cache directories, and run metrics rather than
clause sets, so (like ``find_duplicate_tests`` in the litmus family)
they are plain functions: :func:`lint_oracle_options`,
:func:`lint_cnf_cache_dir`, and :func:`lint_warm_compile`.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import (
    ClauseLintContext,
    register_pass,
    run_family,
)
from repro.sat.solver import Solver
from repro.sat.types import index_lit

__all__ = [
    "lint_clause_context",
    "lint_oracle_options",
    "lint_cnf_cache_dir",
    "lint_warm_compile",
    "context_from_solver",
    "context_from_dimacs",
]


@register_pass(
    "pipeline-clause-shape",
    "pipeline",
    "degenerate clauses: empty, tautological, duplicated literals",
    ids=("SAT002", "SAT003", "SAT004", "SAT006"),
)
def check_clause_shapes(ctx: ClauseLintContext):
    """SAT002/SAT003/SAT004/SAT006 over each clause in input order."""
    for i, clause in enumerate(ctx.clauses):
        subject = f"{ctx.subject}:c{i}"
        if not clause:
            yield Diagnostic(
                "SAT003",
                Severity.ERROR,
                subject,
                "empty clause: the formula is trivially unsatisfiable",
                hint="an empty clause at encoding time means the "
                "translation contradicted itself",
            )
            continue
        lits = set(clause)
        if len(lits) < len(clause):
            yield Diagnostic(
                "SAT004",
                Severity.INFO,
                subject,
                "clause repeats a literal",
                hint="harmless but wasteful; the encoder should dedup",
            )
        if any(-lit in lits for lit in lits):
            yield Diagnostic(
                "SAT002",
                Severity.WARNING,
                subject,
                "tautological clause (contains a literal and its "
                "negation); it constrains nothing",
                hint="the encoder emitted dead weight; a tautology "
                "usually signals a polarity bug upstream",
            )
        elif len(lits) == 1:
            yield Diagnostic(
                "SAT006",
                Severity.INFO,
                subject,
                f"unit clause fixes literal {next(iter(lits))} at "
                "encoding time",
                hint="expected for root assertions; a flood of units "
                "suggests the encoding could be simplified upstream",
            )


@register_pass(
    "pipeline-variable-use",
    "pipeline",
    "orphan and out-of-range variables",
    ids=("SAT001", "SAT005"),
)
def check_variable_use(ctx: ClauseLintContext):
    """SAT001/SAT005: every declared variable should appear in some
    clause (or be pre-marked via ``referenced_vars``, e.g. level-0 unit
    assignments a solver consumed on entry), and no literal may exceed
    the declared variable count."""
    used: set[int] = set(ctx.referenced_vars)
    for i, clause in enumerate(ctx.clauses):
        for lit in clause:
            var = abs(lit)
            used.add(var)
            if var > ctx.num_vars:
                yield Diagnostic(
                    "SAT005",
                    Severity.ERROR,
                    f"{ctx.subject}:c{i}",
                    f"literal {lit} references variable {var} beyond the "
                    f"declared {ctx.num_vars}",
                    hint="the header/num_vars and the clause emitter "
                    "disagree",
                )
    for var in range(1, ctx.num_vars + 1):
        if var not in used:
            yield Diagnostic(
                "SAT001",
                Severity.WARNING,
                f"{ctx.subject}:v{var}",
                f"variable {var} is never referenced by any clause "
                "(orphan Tseitin variable)",
                hint="orphans bloat the search space and usually mean a "
                "circuit node was allocated but never asserted",
            )


# -- context builders ------------------------------------------------------------


def context_from_solver(name: str, solver: Solver) -> ClauseLintContext:
    """Lint context for a live solver's clause database.

    The solver consumes unit clauses at level 0 (they become trail
    assignments, not stored clauses) and drops tautologies on entry, so
    the trail is pre-marked as referenced — variables fixed that way are
    used, just not visible in ``solver.clauses``.
    """
    clauses = [
        [index_lit(idx) for idx in clause.lits] for clause in solver.clauses
    ]
    referenced = {abs(index_lit(idx)) for idx in solver.trail}
    return ClauseLintContext(
        name,
        num_vars=solver.num_vars,
        clauses=clauses,
        referenced_vars=referenced,
    )


def context_from_dimacs(
    name: str, num_vars: int, clauses: Iterable[Iterable[int]]
) -> ClauseLintContext:
    """Lint context for parsed DIMACS input (pre-solver, nothing
    consumed, so no pre-marked references)."""
    return ClauseLintContext(
        name, num_vars=num_vars, clauses=[list(c) for c in clauses]
    )


def lint_clause_context(ctx: ClauseLintContext) -> Iterable[Diagnostic]:
    """Run every registered pipeline pass over one context."""
    return run_family("pipeline", ctx)


# -- oracle configuration checks (SAT007/SAT008) --------------------------------


def lint_oracle_options(opts) -> list[Diagnostic]:
    """SAT007: oracle knob combinations that silently do nothing.

    Takes an :class:`repro.core.synthesis.OracleSpec`, anything with an
    ``oracle_spec`` attribute (a
    :class:`repro.core.synthesis.SynthesisOptions`), or any object with
    the loose ``oracle``/``incremental``/``cnf_cache_dir``/``prefilter``
    attributes.  The dangerous shapes are the ones where a user *asked*
    for caching or tuned a relational-only knob and the pipeline quietly
    ignores it.
    """
    target = getattr(opts, "oracle_spec", opts)
    oracle = getattr(target, "oracle", "explicit")
    incremental = getattr(target, "incremental", True)
    cache_dir = getattr(target, "cnf_cache_dir", None)
    prefilter = getattr(target, "prefilter", False)
    out: list[Diagnostic] = []
    if oracle == "relational":
        if not incremental and cache_dir is not None:
            out.append(
                Diagnostic(
                    "SAT007",
                    Severity.WARNING,
                    "options:cnf_cache_dir",
                    "cold-solver mode (incremental=False) disables the "
                    "CNF compilation cache, so cnf_cache_dir is ignored",
                    hint="drop cnf_cache_dir or re-enable incremental "
                    "solving",
                )
            )
        if not incremental and prefilter:
            out.append(
                Diagnostic(
                    "SAT007",
                    Severity.WARNING,
                    "options:prefilter",
                    "cold-solver mode (incremental=False) re-enumerates "
                    "per query instead of filtering pinned executions, so "
                    "the static prefilter never runs",
                    hint="drop --cold-solver to make --prefilter "
                    "effective",
                )
            )
    else:
        for knob, active in (
            ("cnf_cache_dir", cache_dir is not None),
            ("incremental", not incremental),
            ("prefilter", prefilter),
        ):
            if active:
                out.append(
                    Diagnostic(
                        "SAT007",
                        Severity.WARNING,
                        f"options:{knob}",
                        f"{knob} only affects the relational oracle; the "
                        "explicit oracle ignores it",
                        hint="pass oracle='relational' (CLI: --oracle "
                        "relational) to make the knob effective",
                    )
                )
    return out


def lint_cnf_cache_dir(directory: str) -> list[Diagnostic]:
    """SAT008: on-disk CNF cache entries that cannot serve each other.

    Every entry is self-describing (``schema`` + ``model`` fields, see
    :mod:`repro.alloy.cache`).  A directory mixing model fingerprints or
    holding stale-schema/corrupt entries still *works* — lookups filter
    by fingerprint — but the misses are silent, which is exactly how a
    mis-pointed ``--cnf-cache-dir`` hides.
    """
    from repro.alloy.cache import CACHE_SCHEMA

    out: list[Diagnostic] = []
    if not os.path.isdir(directory):
        return out
    models: set[str] = set()
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".json") or entry.startswith("."):
            continue
        path = os.path.join(directory, entry)
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            out.append(
                Diagnostic(
                    "SAT008",
                    Severity.WARNING,
                    f"{directory}:{entry}",
                    "unreadable CNF cache entry (corrupt or foreign "
                    "file); every lookup hitting it misses silently",
                    hint="delete the file or point --cnf-cache-dir at a "
                    "dedicated directory",
                )
            )
            continue
        schema = data.get("schema")
        if schema != CACHE_SCHEMA:
            out.append(
                Diagnostic(
                    "SAT008",
                    Severity.WARNING,
                    f"{directory}:{entry}",
                    f"stale cache entry (schema {schema!r}, current "
                    f"{CACHE_SCHEMA}); it will never hit again",
                    hint="safe to delete; the cache rewrites entries on "
                    "the next compile",
                )
            )
            continue
        model = data.get("model")
        if isinstance(model, str):
            models.add(model)
    if len(models) > 1:
        listed = ", ".join(sorted(models))
        out.append(
            Diagnostic(
                "SAT008",
                Severity.WARNING,
                directory,
                f"cache directory mixes {len(models)} incompatible model "
                f"fingerprints ({listed}); entries from one model never "
                "serve another",
                hint="use one cache directory per model to keep hit "
                "rates meaningful",
            )
        )
    return out


def lint_warm_compile(
    metrics: dict, subject: str = "oracle"
) -> list[Diagnostic]:
    """SAT009: a warm run whose CNF compilation cache never hit.

    ``metrics`` is any raw counter snapshot following the
    :class:`repro.obs.Stats` conventions (a ``SynthesisResult``'s
    ``oracle_stats``, a merged trace's counters, a service job's
    per-job delta).  *Warm* means the cache's disk layer already held
    entries when the oracle started (``compile_warm_entries > 0`` —
    a daemon restart over a populated ``--cnf-cache-dir``, or a rerun
    sharing one).  If such a run compiled problems (``compile_misses``)
    yet served none from the cache, every lookup missed silently: the
    classic signatures are a mis-pointed directory, a stale cache
    schema, or a model-fingerprint mismatch after a model edit.
    """
    warm = metrics.get("compile_warm_entries", 0)
    hits = metrics.get("compile_hits", 0)
    misses = metrics.get("compile_misses", 0)
    if warm and misses and not hits:
        return [
            Diagnostic(
                "SAT009",
                Severity.WARNING,
                subject,
                f"warm run (disk cache held {int(warm)} entries at "
                f"start) compiled {int(misses)} problems but reports "
                "compile_hit_rate 0.0; every cache lookup missed "
                "silently",
                hint="check that --cnf-cache-dir points at the directory "
                "the previous run populated and that the model was not "
                "edited since (a fingerprint mix in the directory is "
                "reported as SAT008)",
            )
        ]
    return []
