"""Static analysis / lint subsystem.

Three pass families over the synthesis stack's inputs:

* **model** — memory-model axioms (:mod:`repro.analysis.model_lint`);
* **litmus** — litmus tests and outcomes (:mod:`repro.analysis.litmus_lint`);
* **pipeline** — CNF headed for the SAT solver
  (:mod:`repro.analysis.pipeline_lint`);
* **difftest** — reproducer corpora and mutant registries
  (:mod:`repro.analysis.difftest_lint`);
* **obs** — :mod:`repro.obs` trace directories
  (:mod:`repro.analysis.obs_lint`).

The dataflow layer (:mod:`repro.analysis.flow`) contributes semantic
passes to the model and litmus families (``MDL01x``/``LIT01x``) plus
the polynomial execution pre-filter behind ``--prefilter``.

Importing this package registers every pass.  Entry points:
``lint_registry`` (the registry-wide self-check behind ``repro lint``)
and ``early_reject`` (the enumerator filter hook).
"""

from repro.analysis import (  # noqa: F401  (imports register the passes)
    flow,
    litmus_lint,
    model_lint,
    pipeline_lint,
)
from repro.analysis.diagnostics import (
    DIAGNOSTIC_IDS,
    JSON_SCHEMA_VERSION,
    Diagnostic,
    Report,
    Severity,
    Suppression,
    parse_suppression,
    render_json,
    render_text,
)
from repro.analysis.flow import (
    ExecutionPrefilter,
    application_counts,
    fr_statically_empty,
)
from repro.analysis.difftest_lint import (
    lint_corpus,
    lint_mutant_registry,
    lint_mutant_tags,
)
from repro.analysis.litmus_lint import early_reject, find_duplicate_tests
from repro.analysis.obs_lint import (
    lint_trace_dir,
    lint_trace_events,
    lint_trace_file,
)
from repro.analysis.pipeline_lint import (
    lint_cnf_cache_dir,
    lint_oracle_options,
    lint_warm_compile,
)
from repro.analysis.registry import (
    ClauseLintContext,
    LintPass,
    LitmusLintContext,
    ModelLintContext,
    all_passes,
    passes_for,
    register_pass,
    run_family,
)
from repro.analysis.selfcheck import (
    REGISTRY_SUPPRESSIONS,
    lint_catalog,
    lint_models,
    lint_registry,
)

__all__ = [
    "DIAGNOSTIC_IDS",
    "JSON_SCHEMA_VERSION",
    "Diagnostic",
    "Severity",
    "Suppression",
    "Report",
    "parse_suppression",
    "render_text",
    "render_json",
    "ExecutionPrefilter",
    "application_counts",
    "fr_statically_empty",
    "ModelLintContext",
    "LitmusLintContext",
    "ClauseLintContext",
    "LintPass",
    "register_pass",
    "passes_for",
    "all_passes",
    "run_family",
    "early_reject",
    "find_duplicate_tests",
    "lint_oracle_options",
    "lint_cnf_cache_dir",
    "lint_warm_compile",
    "lint_trace_events",
    "lint_trace_file",
    "lint_trace_dir",
    "lint_corpus",
    "lint_mutant_tags",
    "lint_mutant_registry",
    "REGISTRY_SUPPRESSIONS",
    "lint_models",
    "lint_catalog",
    "lint_registry",
]
