"""The tiny-bound probe battery for axiom satisfiability checks.

Vacuity and unsatisfiability of an axiom are undecidable in general but
cheap to *probe*: over a battery of tiny litmus tests that exercise every
structural feature (coherence, cross-address communication, RMWs,
dependencies, release/acquire orders, SC fences), an axiom that never
rejects any well-formed execution of any probe is vacuous within the
bounds, and one that rejects every execution of every probe is
unsatisfiable.  Both are almost certainly authoring mistakes — exactly
the approximation failures the paper documents in §4.3 and Fig. 18.

Each probe is deliberately ≤ 6 events so both engines stay fast: the
relational path solves a SAT instance per (probe, axiom), the explicit
path enumerates at most a few dozen executions.
"""

from __future__ import annotations

from repro.litmus.events import (
    DepKind,
    FenceKind,
    Order,
    fence,
    ptwalk,
    read,
    remap,
    write,
)
from repro.litmus.test import Dep, LitmusTest

__all__ = ["PROBE_BATTERY", "probe_tests"]

_X, _Y = 0, 1


def _probes() -> tuple[LitmusTest, ...]:
    cowr = LitmusTest(
        ((write(_X, 1), read(_X)), (write(_X, 2),)),
        name="probe:CoWR",
    )
    mp = LitmusTest(
        ((write(_X, 1), write(_Y, 1)), (read(_Y), read(_X))),
        name="probe:MP",
    )
    rmw = LitmusTest(
        ((read(_X), write(_X, 1)), (write(_X, 2),)),
        rmw=frozenset({(0, 1)}),
        name="probe:RMW",
    )
    lb_datas = LitmusTest(
        ((read(_X), write(_Y, 1)), (read(_Y), write(_X, 1))),
        deps=frozenset({Dep(0, 1, DepKind.DATA), Dep(2, 3, DepKind.DATA)}),
        name="probe:LB+datas",
    )
    mp_relacq = LitmusTest(
        (
            (write(_X, 1), write(_Y, 1, Order.REL)),
            (read(_Y, Order.ACQ), read(_X)),
        ),
        name="probe:MP+relacq",
    )
    mp_syncs = LitmusTest(
        (
            (write(_X, 1), fence(FenceKind.SYNC), write(_Y, 1)),
            (read(_Y), fence(FenceKind.SYNC), read(_X)),
        ),
        name="probe:MP+syncs",
    )
    w2_syncs = LitmusTest(
        (
            (write(_X, 1), fence(FenceKind.SYNC), write(_Y, 2)),
            (write(_Y, 1), fence(FenceKind.SYNC), write(_X, 2)),
        ),
        name="probe:2+2W+syncs",
    )
    sb_scfences = LitmusTest(
        (
            (write(_X, 1), fence(FenceKind.FENCE_SC), read(_Y)),
            (write(_Y, 1), fence(FenceKind.FENCE_SC), read(_X)),
        ),
        name="probe:SB+scfences",
    )
    sb_sc_orders = LitmusTest(
        (
            (write(_X, 1, Order.SC), read(_Y, Order.SC)),
            (write(_Y, 1, Order.SC), read(_X, Order.SC)),
        ),
        name="probe:SB+scorders",
    )
    # Transistency probes (appended so earlier battery indices stay
    # stable): a remap racing two page-table walks, and an aliased MP
    # where the write lands on the virtual name and the read on the
    # physical one.
    vmem_ptw = LitmusTest(
        ((remap(_X, 1),), (ptwalk(_X), ptwalk(_X))),
        name="probe:PTW+remap",
    )
    vmem_alias = LitmusTest(
        ((write(_Y, 1), read(_X)), (write(_X, 2),)),
        addr_map=((_Y, _X),),
        name="probe:CoWR+alias",
    )
    return (
        cowr,
        mp,
        rmw,
        lb_datas,
        mp_relacq,
        mp_syncs,
        w2_syncs,
        sb_scfences,
        sb_sc_orders,
        vmem_ptw,
        vmem_alias,
    )


#: The shared battery, in increasing execution-count order.
PROBE_BATTERY: tuple[LitmusTest, ...] = _probes()


def probe_tests() -> tuple[LitmusTest, ...]:
    """The battery (function form, mirroring the catalog accessors)."""
    return PROBE_BATTERY
