"""Observability lint: sanity checks over :mod:`repro.obs` trace dirs.

Trace directories are append-only JSONL streams written by concurrent
workers, so the failure modes are torn runs rather than bad syntax: a
killed worker leaves a ``begin`` event with no closing ``span``, and a
directory reused across tool versions mixes incompatible headers.

Diagnostic ids:

=======  ========  ==========================================================
id       severity  meaning
=======  ========  ==========================================================
OBS001   warning   unclosed span: ``begin`` event with no ``span`` close
OBS002   error     trace dir mixes trace schemas (or a file has no header)
=======  ========  ==========================================================

Like SAT007/SAT008 these are collection-level checks over artifacts
rather than registered per-object passes, so they are plain functions:
:func:`lint_trace_file` and :func:`lint_trace_dir`.
"""

from __future__ import annotations

import os

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.obs import (
    TRACE_SCHEMA_NAME,
    TRACE_SCHEMA_VERSION,
    read_events,
    trace_files,
)

__all__ = ["lint_trace_events", "lint_trace_file", "lint_trace_dir"]


def _header_schema(events) -> tuple[str, int] | None:
    """The ``(name, version)`` of a file's header event, if present."""
    for event in events:
        if event.get("ev") == "header":
            schema = event.get("schema")
            if isinstance(schema, dict):
                return (str(schema.get("name")), int(schema.get("version", 0)))
            return ("?", 0)
    return None


def lint_trace_events(subject: str, events) -> list[Diagnostic]:
    """OBS001: spans opened but never closed in one event stream.

    A ``begin`` event whose id never appears in a closing ``span`` event
    marks a worker that crashed (or code that forgot ``__exit__``)
    mid-region — its wall time is missing from every report built on
    the stream.
    """
    out: list[Diagnostic] = []
    begun: dict[int, str] = {}
    for event in events:
        ev = event.get("ev")
        if ev == "begin":
            begun[int(event.get("id", 0))] = str(event.get("name", "?"))
        elif ev == "span":
            begun.pop(int(event.get("id", 0)), None)
    for span_id, name in sorted(begun.items()):
        out.append(
            Diagnostic(
                "OBS001",
                Severity.WARNING,
                f"{subject}:span#{span_id}",
                f"span {name!r} was begun but never closed; its wall "
                "time is absent from any report over this trace",
                hint="the producing process likely crashed mid-span; "
                "re-run the traced command or discard the file",
            )
        )
    return out


def lint_trace_file(path: str) -> list[Diagnostic]:
    """OBS001 over one on-disk trace file."""
    return lint_trace_events(path, read_events(path))


def lint_trace_dir(directory: str) -> list[Diagnostic]:
    """OBS001 over every file plus OBS002 schema-consistency checks.

    A directory reused across runs of different tool versions can mix
    trace schemas; readers keying on one schema silently drop the other
    files, so mixing is an error, as is a ``.jsonl`` file with no
    header at all (it cannot be attributed to any schema).
    """
    out: list[Diagnostic] = []
    try:
        files = trace_files(directory)
    except ValueError as exc:
        return [
            Diagnostic(
                "OBS002",
                Severity.ERROR,
                directory,
                str(exc),
                hint="point --trace-dir at a directory written by "
                "`synthesize --trace-dir` or `difftest --trace-dir`",
            )
        ]
    schemas: dict[tuple[str, int], list[str]] = {}
    for name in files:
        path = os.path.join(directory, name)
        events = list(read_events(path))
        schema = _header_schema(events)
        if schema is None:
            out.append(
                Diagnostic(
                    "OBS002",
                    Severity.ERROR,
                    f"{directory}:{name}",
                    "trace file has no header event; it cannot be "
                    "attributed to any trace schema",
                    hint="every repro.obs trace file starts with a "
                    "header line — this file was written by something "
                    "else or truncated at byte 0",
                )
            )
            continue
        schemas.setdefault(schema, []).append(name)
        out.extend(lint_trace_file(path))
    if len(schemas) > 1:
        described = "; ".join(
            f"{name} v{version}: {', '.join(members)}"
            for (name, version), members in sorted(schemas.items())
        )
        out.append(
            Diagnostic(
                "OBS002",
                Severity.ERROR,
                directory,
                f"trace dir mixes trace schemas ({described}); readers "
                "keyed on one schema silently drop the other files",
                hint="use a fresh --trace-dir per run instead of "
                "reusing one across tool versions",
            )
        )
    expected = (TRACE_SCHEMA_NAME, TRACE_SCHEMA_VERSION)
    for schema, members in sorted(schemas.items()):
        if schema != expected and len(schemas) == 1:
            out.append(
                Diagnostic(
                    "OBS002",
                    Severity.ERROR,
                    directory,
                    f"trace files declare schema {schema[0]!r} "
                    f"v{schema[1]}, but this tool reads "
                    f"{expected[0]!r} v{expected[1]}",
                    hint="re-generate the trace with this tool version",
                )
            )
    return out
