"""Polynomial execution pre-filter over the relational encoding.

The incremental SAT oracle (:class:`repro.alloy.oracle.AlloyOracle`)
answers per-axiom queries by pinning every free ``rf``/``co``/``sc``
variable to one execution's values and asking the warm solver.  But a
fully-pinned query has no free variables left: the axiom's truth is a
*ground* relational evaluation, decidable in polynomial time.  This is
the repository's instantiation of the polynomial rf-consistency fast
path ROADMAP calls for (cf. "Optimal Reads-From Consistency Checking",
PAPERS.md) — :class:`ExecutionPrefilter` builds an exact abstract
environment (:mod:`repro.analysis.flow.absint`) per execution and
evaluates axioms directly, falling back to SAT only when a formula node
escapes the evaluator.

Soundness: the environment binds every declaration of the encoding's
problem — constants to their exact Kodkod bounds, dynamic relations to
the execution's pinned tuples (derived identically to the oracle's
``_Session._pinned_tuples``) — so the three-valued verdict coincides
with the pinned SAT query whenever it is decided.  The difftest harness
cross-validates the two paths; any disagreement is a bug.

Also exported: :func:`fr_statically_empty`, the emptiness analysis the
``empty:fr`` campaign mutation consults, and :func:`dynamic_intervals`,
the static bounds behind the ``LIT011`` singleton-execution lint.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.alloy.encoding import CO, RF, SC_REL, LitmusEncoding
from repro.analysis.flow.absint import (
    AbstractEnv,
    Interval,
    Tri,
    UnboundRelation,
    env_from_problem,
    eval_expr,
    eval_formula,
    exact,
)
from repro.litmus.execution import Execution
from repro.litmus.test import LitmusTest
from repro.relational import ast

__all__ = [
    "ExecutionPrefilter",
    "pinned_tuples",
    "fr_statically_empty",
    "dynamic_intervals",
]


def pinned_tuples(
    execution: Execution, with_sc: bool = False
) -> dict[str, frozenset[tuple[int, ...]]]:
    """The execution's concrete rf/co(/sc) tuple sets, in the encoding's
    relation shapes (``rf`` is write->read; ``co``/``sc`` are the strict
    pair sets of each total order)."""
    rf = frozenset(
        (src, r) for r, src in execution.rf if src is not None
    )
    co: set[tuple[int, ...]] = set()
    for order in execution.co:
        for i, w1 in enumerate(order):
            for w2 in order[i + 1 :]:
                co.add((w1, w2))
    pinned = {RF: rf, CO: frozenset(co)}
    if with_sc:
        sc: set[tuple[int, ...]] = set()
        seq = execution.sc
        for i, a in enumerate(seq):
            for b in seq[i + 1 :]:
                sc.add((a, b))
        pinned[SC_REL] = frozenset(sc)
    return pinned


class ExecutionPrefilter:
    """Ground evaluation of model formulas against pinned executions.

    Shares the session's :class:`LitmusEncoding`; constructing the
    filter forces ``encoding.facts()`` so the lazily-declared
    ``atom_*``/``pair_*`` constants exist even when the session was
    restored from a CNF-cache snapshot (which skips ``facts()``).
    """

    def __init__(self, encoding: LitmusEncoding):
        self.encoding = encoding
        self._facts = encoding.facts()
        problem = encoding.problem
        self._universe = problem.universe_size
        self._static = {
            name: Interval(decl.lower, decl.upper)
            for name, decl in problem.declarations.items()
            if not decl.free
        }
        self._dyn = tuple(
            name
            for name, decl in problem.declarations.items()
            if decl.free
        )
        self._envs: dict[Execution, AbstractEnv] = {}

    def _env(self, execution: Execution) -> AbstractEnv:
        env = self._envs.get(execution)
        if env is None:
            values = dict(self._static)
            pinned = pinned_tuples(
                execution, with_sc=self.encoding.with_sc
            )
            for name in self._dyn:
                values[name] = exact(pinned.get(name, frozenset()))
            env = AbstractEnv(self._universe, values)
            self._envs[execution] = env
        return env

    def axiom_verdict(
        self, execution: Execution, formula: ast.Formula
    ) -> bool | None:
        """Does the pinned execution satisfy one formula?  ``None`` when
        the evaluator cannot decide (fall back to SAT)."""
        try:
            tri = eval_formula(formula, self._env(execution))
        except (UnboundRelation, TypeError):
            return None
        if tri is Tri.UNKNOWN:
            return None
        return tri is Tri.TRUE

    def model_verdict(
        self, execution: Execution, formulas: Iterable[ast.Formula]
    ) -> bool | None:
        """Facts plus every axiom: ``False`` as soon as one formula is
        decidedly violated, ``True`` only when all are decidedly
        satisfied, ``None`` otherwise."""
        decided_all = True
        for formula in (self._facts, *formulas):
            verdict = self.axiom_verdict(execution, formula)
            if verdict is False:
                return False
            if verdict is None:
                decided_all = False
        return True if decided_all else None


def fr_statically_empty(test: LitmusTest) -> bool:
    """Can ``fr`` (Fig. 4's from-reads) ever hold a tuple on this test?

    ``fr``'s upper bound is the set of same-address (read, write) pairs
    — the subtracted ``no_later`` term has an empty lower bound because
    ``rf`` does — so the abstract answer is exact: an empty upper bound
    means *every* execution of the test has an empty ``fr``, making any
    ``empty:fr``-style mutation behaviourally identical to the stock
    model on this test."""
    encoding = LitmusEncoding(test)
    env = env_from_problem(encoding.problem)
    return not eval_expr(LitmusEncoding.fr(), env).upper


def dynamic_intervals(
    test: LitmusTest, with_sc: bool = False
) -> dict[str, Interval]:
    """Static bounds of the dynamic relations, keyed by relation name."""
    problem = LitmusEncoding(test, with_sc=with_sc).problem
    env = env_from_problem(problem)
    names = [RF, CO] + ([SC_REL] if with_sc else [])
    return {name: eval_expr(ast.Rel(name), env) for name in names}
