"""Static perturbation-applicability analysis: LIT010/LIT011.

The minimality criterion (paper Definition 1) quantifies over every
application of every relaxation the model's vocabulary admits.  The
number of applications is a closed-form function of the test's
instruction mix — no generator walk, no solver round-trip — which is
what :func:`application_counts` computes, mirroring the per-relaxation
``applications()`` logic in :mod:`repro.relax.instruction` exactly (a
property test asserts the equality).

Diagnostic ids:

=======  ========  ==========================================================
id       severity  meaning
=======  ========  ==========================================================
LIT010   warning   no relaxation application exists (statically degenerate)
LIT011   info      rf/co(/sc) bounds statically empty (single execution)
=======  ========  ==========================================================

LIT010 is a warning, so it feeds the enumerator's existing
``early_reject`` hook (:func:`repro.analysis.early_reject` rejects at
warning severity) — such candidates are dropped before any oracle
query.  LIT011 stays informational: a test whose dynamic relations are
all statically empty admits exactly one well-formed execution and can
never exhibit a forbidden outcome, but rejecting it is the enumerator's
communication filter's job.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.prefilter import dynamic_intervals
from repro.analysis.registry import LitmusLintContext, register_pass
from repro.litmus.test import LitmusTest
from repro.models.base import Vocabulary
from repro.relax.instruction import relaxations_for

__all__ = [
    "application_counts",
    "check_static_applicability",
    "check_singleton_executions",
]


def application_counts(
    test: LitmusTest, vocab: Vocabulary
) -> dict[str, int]:
    """``len(list(r.applications(test, vocab)))`` per applicable
    relaxation, computed in closed form."""
    return {
        relaxation.name: _count(relaxation.name, test, vocab)
        for relaxation in relaxations_for(vocab)
    }


def _count(name: str, test: LitmusTest, vocab: Vocabulary) -> int:
    if name == "RI":
        return test.num_events if test.num_events > 1 else 0
    if name == "DRMW":
        return len(test.rmw)
    if name == "DF":
        return sum(
            len(vocab.fence_demotions.get(inst.fence, ()))
            for inst in test.instructions
            if inst.is_fence
        )
    if name == "DMO":
        return sum(
            len(vocab.order_demotions.get(inst.order, ()))
            for inst in test.instructions
            if not inst.is_fence
        )
    if name == "RD":
        return len(
            {d.src for d in test.deps} | {r for r, _ in test.rmw}
        )
    if name == "DS":
        levels = sorted(vocab.scopes)
        return sum(
            1
            for inst in test.instructions
            if inst.scope is not None
            and inst.scope in vocab.scopes
            and levels.index(inst.scope) > 0
        )
    if name == "DV":
        return sum(1 for inst in test.instructions if inst.is_vmem)
    if name == "UA":
        return len(test.addr_map or ())
    raise ValueError(f"unknown relaxation {name!r}")


@register_pass(
    "litmus-static-applicability",
    "litmus",
    "tests no instruction relaxation can weaken",
    ids=("LIT010",),
)
def check_static_applicability(
    ctx: LitmusLintContext,
) -> Iterator[Diagnostic]:
    """LIT010: zero relaxation applications under the model's
    vocabulary.  Minimality quantifies vacuously over such tests — they
    carry no evidence about any axiom and never belong in a suite."""
    if ctx.model is None:
        return
    counts = application_counts(ctx.test, ctx.model.vocabulary)
    if any(counts.values()):
        return
    columns = ", ".join(sorted(counts)) or "none"
    yield Diagnostic(
        "LIT010",
        Severity.WARNING,
        ctx.subject,
        f"no relaxation application exists under the {ctx.model.name} "
        f"vocabulary (columns checked: {columns}); the minimality "
        "criterion is vacuous for this test",
        hint="a minimal test must admit at least one weakening (paper "
        "Definition 1); the early-reject hook drops such candidates "
        "before any solver query",
    )


@register_pass(
    "litmus-singleton-execution",
    "litmus",
    "tests whose dynamic relations are statically fixed",
    ids=("LIT011",),
)
def check_singleton_executions(
    ctx: LitmusLintContext,
) -> Iterator[Diagnostic]:
    """LIT011: every dynamic relation's upper bound is statically empty,
    so the test has exactly one well-formed execution."""
    with_sc = bool(
        ctx.model is not None
        and getattr(ctx.model, "uses_sc_order", False)
    )
    intervals = dynamic_intervals(ctx.test, with_sc=with_sc)
    if any(interval.upper for interval in intervals.values()):
        return
    names = "/".join(sorted(intervals))
    yield Diagnostic(
        "LIT011",
        Severity.INFO,
        ctx.subject,
        f"dynamic relations ({names}) have statically empty upper "
        "bounds: the test admits exactly one well-formed execution, so "
        "no outcome can ever be forbidden",
        hint="informational; such tests cannot discriminate between "
        "models and never enter a synthesized suite",
    )
