"""Abstract interpretation of relational expressions over tuple-set intervals.

The abstract domain is the *interval* lattice over tuple sets: each
expression evaluates to a pair ``[lower, upper]`` of tuple sets meaning
"every concretization contains at least ``lower`` and at most ``upper``".
Relation declarations seed the environment with their Kodkod bounds
(:class:`~repro.relational.problem.Declaration`), so constants evaluate
exactly (``lower == upper``) while free dynamic relations stay genuinely
abstract.  Every operator of the AST (:mod:`repro.relational.ast`) has a
monotone transfer function — for ``Diff`` the bounds cross over
(``[l1 - u2, u1 - l2]``), everything else is pointwise.

Formulas evaluate to Kleene three-valued logic (:class:`Tri`): a
``TRUE``/``FALSE`` verdict is sound for *every* concretization of the
environment, ``UNKNOWN`` means the bounds cannot decide.  Two key
completeness facts the rest of ``repro.analysis.flow`` relies on:

* with an **exact** environment (every binding ``lower == upper``) every
  rule is complete, so evaluation is total — this is what makes the
  polynomial execution pre-filter (:mod:`repro.analysis.flow.prefilter`)
  a decision procedure rather than a heuristic;
* emptiness of ``upper`` is preserved by every operator except
  ``RClosure``/``Iden``/``UnivExpr``, which is what lets the difftest
  campaign prove ``empty:fr``-style mutations vacuous without a solver.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.relational import ast

__all__ = [
    "Tri",
    "Interval",
    "AbstractEnv",
    "UnboundRelation",
    "exact",
    "env_from_problem",
    "eval_expr",
    "eval_formula",
    "render_expr",
    "render_formula",
]

Tup = tuple[int, ...]


class Tri(enum.Enum):
    """Kleene three-valued truth."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def negate(self) -> "Tri":
        if self is Tri.TRUE:
            return Tri.FALSE
        if self is Tri.FALSE:
            return Tri.TRUE
        return Tri.UNKNOWN

    def and_(self, other: "Tri") -> "Tri":
        if self is Tri.FALSE or other is Tri.FALSE:
            return Tri.FALSE
        if self is Tri.TRUE and other is Tri.TRUE:
            return Tri.TRUE
        return Tri.UNKNOWN

    def or_(self, other: "Tri") -> "Tri":
        if self is Tri.TRUE or other is Tri.TRUE:
            return Tri.TRUE
        if self is Tri.FALSE and other is Tri.FALSE:
            return Tri.FALSE
        return Tri.UNKNOWN


def _tri(decided_true: bool, decided_false: bool) -> Tri:
    if decided_true:
        return Tri.TRUE
    if decided_false:
        return Tri.FALSE
    return Tri.UNKNOWN


@dataclass(frozen=True)
class Interval:
    """``[lower, upper]``: tuples that must / may be in the relation."""

    lower: frozenset[Tup]
    upper: frozenset[Tup]

    def __post_init__(self) -> None:
        if not self.lower <= self.upper:
            raise ValueError("interval lower bound exceeds upper bound")

    @property
    def is_exact(self) -> bool:
        return self.lower == self.upper

    @property
    def definitely_empty(self) -> bool:
        return not self.upper

    @property
    def definitely_nonempty(self) -> bool:
        return bool(self.lower)


def exact(tuples: Iterable[Tup]) -> Interval:
    """The degenerate interval of a fully-known relation value."""
    ts = frozenset(tuples)
    return Interval(ts, ts)


class UnboundRelation(KeyError):
    """An expression referenced a relation the environment does not bind."""


@dataclass
class AbstractEnv:
    """Universe size plus per-relation interval bindings."""

    universe_size: int
    bindings: Mapping[str, Interval]

    def lookup(self, name: str) -> Interval:
        try:
            return self.bindings[name]
        except KeyError:
            raise UnboundRelation(name) from None


def env_from_problem(problem) -> AbstractEnv:
    """Seed an environment from a Problem's declarations: constants are
    exact, free relations get their declared ``[lower, upper]`` bounds."""
    return AbstractEnv(
        problem.universe_size,
        {
            name: Interval(decl.lower, decl.upper)
            for name, decl in problem.declarations.items()
        },
    )


# -- set-level transfer functions -------------------------------------------------


def _join(a: frozenset[Tup], b: frozenset[Tup]) -> frozenset[Tup]:
    return frozenset(
        s[:-1] + t[1:] for s in a for t in b if s[-1] == t[0]
    )


def _product(a: frozenset[Tup], b: frozenset[Tup]) -> frozenset[Tup]:
    return frozenset(s + t for s in a for t in b)


def _transpose(a: frozenset[Tup]) -> frozenset[Tup]:
    return frozenset(tuple(reversed(t)) for t in a)


def _closure(pairs: frozenset[Tup]) -> frozenset[Tup]:
    """Transitive closure of a binary relation (reachability per source)."""
    adjacency: dict[int, set[int]] = {}
    for a, b in pairs:
        adjacency.setdefault(a, set()).add(b)
    out: set[Tup] = set()
    for start, firsts in adjacency.items():
        stack = list(firsts)
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        out.update((start, node) for node in seen)
    return frozenset(out)


def _has_cycle(pairs: frozenset[Tup]) -> bool:
    return any(a == b for a, b in _closure(pairs))


def _iden(universe_size: int) -> frozenset[Tup]:
    return frozenset((a, a) for a in range(universe_size))


def _full(universe_size: int, arity: int) -> frozenset[Tup]:
    atoms = range(universe_size)
    if arity == 1:
        return frozenset((a,) for a in atoms)
    return frozenset((a, b) for a in atoms for b in atoms)


# -- expression evaluation --------------------------------------------------------


def eval_expr(expr: ast.Expr, env: AbstractEnv) -> Interval:
    """Interval of an expression under the environment's bounds.

    Sound for every operator; complete (``lower == upper``) whenever the
    operand intervals are exact.
    """
    if isinstance(expr, ast.Rel):
        return env.lookup(expr.name)
    if isinstance(expr, ast.Iden):
        return exact(_iden(env.universe_size))
    if isinstance(expr, ast.NoneExpr):
        return exact(())
    if isinstance(expr, ast.UnivExpr):
        return exact(_full(env.universe_size, expr.arity))
    if isinstance(expr, ast.Union):
        le, ri = eval_expr(expr.left, env), eval_expr(expr.right, env)
        return Interval(le.lower | ri.lower, le.upper | ri.upper)
    if isinstance(expr, ast.Inter):
        le, ri = eval_expr(expr.left, env), eval_expr(expr.right, env)
        return Interval(le.lower & ri.lower, le.upper & ri.upper)
    if isinstance(expr, ast.Diff):
        # the one antitone slot: subtract at most the certain tuples from
        # the upper bound and at least the possible ones from the lower
        le, ri = eval_expr(expr.left, env), eval_expr(expr.right, env)
        return Interval(le.lower - ri.upper, le.upper - ri.lower)
    if isinstance(expr, ast.Join):
        le, ri = eval_expr(expr.left, env), eval_expr(expr.right, env)
        return Interval(_join(le.lower, ri.lower), _join(le.upper, ri.upper))
    if isinstance(expr, ast.Product):
        le, ri = eval_expr(expr.left, env), eval_expr(expr.right, env)
        return Interval(
            _product(le.lower, ri.lower), _product(le.upper, ri.upper)
        )
    if isinstance(expr, ast.Transpose):
        inner = eval_expr(expr.inner, env)
        return Interval(_transpose(inner.lower), _transpose(inner.upper))
    if isinstance(expr, ast.Closure):
        inner = eval_expr(expr.inner, env)
        return Interval(_closure(inner.lower), _closure(inner.upper))
    if isinstance(expr, ast.RClosure):
        inner = eval_expr(expr.inner, env)
        iden = _iden(env.universe_size)
        return Interval(
            _closure(inner.lower) | iden, _closure(inner.upper) | iden
        )
    if isinstance(expr, ast.DomRestrict):
        se, rel = eval_expr(expr.set_expr, env), eval_expr(expr.rel, env)
        dom_lower = {t[0] for t in se.lower}
        dom_upper = {t[0] for t in se.upper}
        return Interval(
            frozenset(t for t in rel.lower if t[0] in dom_lower),
            frozenset(t for t in rel.upper if t[0] in dom_upper),
        )
    if isinstance(expr, ast.RanRestrict):
        rel, se = eval_expr(expr.rel, env), eval_expr(expr.set_expr, env)
        ran_lower = {t[0] for t in se.lower}
        ran_upper = {t[0] for t in se.upper}
        return Interval(
            frozenset(t for t in rel.lower if t[-1] in ran_lower),
            frozenset(t for t in rel.upper if t[-1] in ran_upper),
        )
    raise TypeError(f"cannot abstractly evaluate {type(expr).__name__}")


# -- formula evaluation -----------------------------------------------------------


def _subset(le: Interval, ri: Interval) -> Tri:
    return _tri(
        le.upper <= ri.lower,
        any(t not in ri.upper for t in le.lower),
    )


def eval_formula(formula: ast.Formula, env: AbstractEnv) -> Tri:
    """Three-valued verdict of a formula under the environment's bounds.

    A ``TRUE``/``FALSE`` result holds for every concretization; with an
    exact environment the result is never ``UNKNOWN``.
    """
    if isinstance(formula, ast.Subset):
        return _subset(
            eval_expr(formula.left, env), eval_expr(formula.right, env)
        )
    if isinstance(formula, ast.Eq):
        le = eval_expr(formula.left, env)
        ri = eval_expr(formula.right, env)
        return _subset(le, ri).and_(_subset(ri, le))
    if isinstance(formula, ast.Some):
        ex = eval_expr(formula.expr, env)
        return _tri(ex.definitely_nonempty, ex.definitely_empty)
    if isinstance(formula, ast.No):
        ex = eval_expr(formula.expr, env)
        return _tri(ex.definitely_empty, ex.definitely_nonempty)
    if isinstance(formula, ast.Lone):
        ex = eval_expr(formula.expr, env)
        return _tri(len(ex.upper) <= 1, len(ex.lower) >= 2)
    if isinstance(formula, ast.One):
        ex = eval_expr(formula.expr, env)
        return _tri(
            len(ex.upper) <= 1 and len(ex.lower) >= 1,
            not ex.upper or len(ex.lower) >= 2,
        )
    if isinstance(formula, ast.Not):
        return eval_formula(formula.inner, env).negate()
    if isinstance(formula, ast.And):
        return eval_formula(formula.left, env).and_(
            eval_formula(formula.right, env)
        )
    if isinstance(formula, ast.Or):
        return eval_formula(formula.left, env).or_(
            eval_formula(formula.right, env)
        )
    if isinstance(formula, ast.Implies):
        return eval_formula(formula.left, env).negate().or_(
            eval_formula(formula.right, env)
        )
    if isinstance(formula, ast.Acyclic):
        ex = eval_expr(formula.expr, env)
        return _tri(not _has_cycle(ex.upper), _has_cycle(ex.lower))
    if isinstance(formula, ast.Irreflexive):
        ex = eval_expr(formula.expr, env)
        return _tri(
            not any(a == b for a, b in ex.upper),
            any(a == b for a, b in ex.lower),
        )
    if formula == ast.TRUE_F:
        return Tri.TRUE
    raise TypeError(f"cannot abstractly evaluate {type(formula).__name__}")


# -- rendering (for diagnostics) --------------------------------------------------

_BINOPS: dict[type, str] = {
    ast.Union: "+",
    ast.Inter: "&",
    ast.Diff: "-",
    ast.Join: ".",
    ast.Product: "->",
}


def render_expr(expr: ast.Expr) -> str:
    """Alloy-flavoured one-line rendering of an expression."""
    if isinstance(expr, ast.Rel):
        return expr.name
    if isinstance(expr, ast.Iden):
        return "iden"
    if isinstance(expr, ast.NoneExpr):
        return "none"
    if isinstance(expr, ast.UnivExpr):
        return "univ"
    op = _BINOPS.get(type(expr))
    if op is not None:
        left = render_expr(expr.left)  # type: ignore[attr-defined]
        right = render_expr(expr.right)  # type: ignore[attr-defined]
        return f"({left} {op} {right})"
    if isinstance(expr, ast.Transpose):
        return f"~{render_expr(expr.inner)}"
    if isinstance(expr, ast.Closure):
        return f"^{render_expr(expr.inner)}"
    if isinstance(expr, ast.RClosure):
        return f"*{render_expr(expr.inner)}"
    if isinstance(expr, ast.DomRestrict):
        return f"({render_expr(expr.set_expr)} <: {render_expr(expr.rel)})"
    if isinstance(expr, ast.RanRestrict):
        return f"({render_expr(expr.rel)} :> {render_expr(expr.set_expr)})"
    return type(expr).__name__


def render_formula(formula: ast.Formula) -> str:
    """Alloy-flavoured one-line rendering of a formula."""
    if isinstance(formula, ast.Subset):
        return f"{render_expr(formula.left)} in {render_expr(formula.right)}"
    if isinstance(formula, ast.Eq):
        return f"{render_expr(formula.left)} = {render_expr(formula.right)}"
    if isinstance(formula, (ast.Some, ast.No, ast.Lone, ast.One)):
        return f"{type(formula).__name__.lower()} {render_expr(formula.expr)}"
    if isinstance(formula, ast.Not):
        return f"!({render_formula(formula.inner)})"
    if isinstance(formula, ast.And):
        return f"({render_formula(formula.left)} && {render_formula(formula.right)})"
    if isinstance(formula, ast.Or):
        return f"({render_formula(formula.left)} || {render_formula(formula.right)})"
    if isinstance(formula, ast.Implies):
        return f"({render_formula(formula.left)} => {render_formula(formula.right)})"
    if isinstance(formula, (ast.Acyclic, ast.Irreflexive)):
        return f"{type(formula).__name__.lower()}({render_expr(formula.expr)})"
    if formula == ast.TRUE_F:
        return "true"
    return type(formula).__name__
