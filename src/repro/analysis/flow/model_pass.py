"""Abstract-interpretation model lint: MDL010/MDL011/MDL012.

The probe passes in :mod:`repro.analysis.model_lint` (MDL002/MDL003)
answer vacuity and unsatisfiability *semantically*, at the price of one
SAT query per (probe, axiom).  These passes answer the statically
decidable fraction for free: each axiom is evaluated abstractly
(:mod:`repro.analysis.flow.absint`) over the probe battery's declared
relation bounds, with the dynamic ``rf``/``co``/``sc`` relations left
genuinely abstract.

Diagnostic ids:

=======  ========  ==========================================================
id       severity  meaning
=======  ========  ==========================================================
MDL010   warning   axiom abstractly true on every probe (statically vacuous)
MDL011   error     axiom abstractly false on a probe (unsat by construction)
MDL012   warning   operator-induced statically-empty subexpression (dead)
=======  ========  ==========================================================

MDL012 only fires on *operator-induced* deadness: a composite node whose
upper bound is empty on every probe even though each operand is nonempty
on at least one common probe (e.g. intersecting disjoint relations, or a
join with no matching middle column).  A merely unexercised vocabulary
relation — ``FenceAcqRel`` on a battery without acq_rel fences — does
not qualify, so the stock models stay clean.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.alloy.encoding import LitmusEncoding
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.absint import (
    AbstractEnv,
    Tri,
    UnboundRelation,
    env_from_problem,
    eval_expr,
    eval_formula,
    render_expr,
)
from repro.analysis.probes import PROBE_BATTERY
from repro.analysis.registry import ModelLintContext, register_pass
from repro.relational import ast

__all__ = ["check_axiom_dataflow"]

#: binary operators that can produce an empty relation from nonempty
#: operands — the shapes MDL012's deadness criterion is about
_KILLER_NODES = (
    ast.Inter,
    ast.Diff,
    ast.Join,
    ast.DomRestrict,
    ast.RanRestrict,
)


def _probe_envs(needs_sc: bool) -> list[AbstractEnv]:
    return [
        env_from_problem(LitmusEncoding(probe, with_sc=needs_sc).problem)
        for probe in PROBE_BATTERY
    ]


@register_pass(
    "model-flow-absint",
    "model",
    "abstract interpretation: vacuous, unsatisfiable, and dead axioms",
    ids=("MDL010", "MDL011", "MDL012"),
)
def check_axiom_dataflow(ctx: ModelLintContext) -> Iterator[Diagnostic]:
    """MDL010/MDL011/MDL012 (see module docstring).  Runs regardless of
    ``ctx.probe``: abstract evaluation costs no solver queries."""
    if ctx.formulas is None:
        return
    envs = _probe_envs(ctx.needs_sc)
    for axiom_name, formula in ctx.formulas.items():
        subject = f"{ctx.subject}:{axiom_name}"
        verdicts: list[Tri] | None = []
        for env in envs:
            try:
                verdicts.append(eval_formula(formula, env))
            except (UnboundRelation, TypeError):
                verdicts = None  # misspelled Rel names are MDL001's job
                break
        if verdicts is None:
            continue
        if all(v is Tri.TRUE for v in verdicts):
            yield Diagnostic(
                "MDL010",
                Severity.WARNING,
                subject,
                f"axiom is abstractly true on every probe structure "
                f"({len(envs)} probes): no choice of rf/co could ever "
                "violate it",
                hint="a statically-vacuous axiom contributes an empty "
                "per-axiom suite; the definition is probably degenerate "
                "(the solver probe MDL002 confirms semantically)",
            )
        false_count = sum(1 for v in verdicts if v is Tri.FALSE)
        if false_count:
            yield Diagnostic(
                "MDL011",
                Severity.ERROR,
                subject,
                f"axiom is abstractly false on {false_count} probe "
                "structure(s): unsatisfiable by construction, no choice "
                "of rf/co can satisfy it",
                hint="an always-false axiom makes every candidate "
                "forbidden; check operator polarity (the solver probe "
                "MDL003 confirms semantically)",
            )
        yield from _dead_subexpressions(subject, formula, envs)


def _expr_roots(formula: ast.Formula) -> Iterator[ast.Expr]:
    """Top-level expression arguments of every formula node."""
    for node in ast.walk(formula):
        if isinstance(node, ast.Formula):
            for child in ast.children(node):
                if isinstance(child, ast.Expr):
                    yield child


def _expr_children(node: ast.Expr) -> tuple[ast.Expr, ...]:
    return tuple(
        child
        for child in ast.children(node)
        if isinstance(child, ast.Expr)
    )


def _dead_subexpressions(
    subject: str, formula: ast.Formula, envs: list[AbstractEnv]
) -> Iterator[Diagnostic]:
    """MDL012: maximal operator-induced dead subexpressions, top-down
    (a flagged node's descendants are not re-flagged)."""
    reported: set[str] = set()

    def visit(node: ast.Expr) -> Iterator[Diagnostic]:
        kids = _expr_children(node)
        if isinstance(node, _KILLER_NODES):
            try:
                dead_everywhere = all(
                    not eval_expr(node, env).upper for env in envs
                )
                operands_live_somewhere = any(
                    all(eval_expr(kid, env).upper for kid in kids)
                    for env in envs
                )
            except (UnboundRelation, TypeError):
                return
            if dead_everywhere and operands_live_somewhere:
                rendered = render_expr(node)
                if rendered not in reported:
                    reported.add(rendered)
                    yield Diagnostic(
                        "MDL012",
                        Severity.WARNING,
                        subject,
                        f"subexpression {rendered} is statically empty "
                        "on every probe although its operands are not: "
                        "the operator combination can never produce a "
                        "tuple",
                        hint="an always-empty term is dead weight in the "
                        "axiom; check for disjoint intersections, joins "
                        "with no matching column, or a misdirected "
                        "restriction",
                    )
                return  # maximal node reported; skip descendants
        for kid in kids:
            yield from visit(kid)

    for root in _expr_roots(formula):
        yield from visit(root)
