"""Dataflow-style static analysis over model ASTs and the litmus IR.

Three layers, all built on one abstract domain — tuple-set intervals
with Kleene three-valued formula evaluation
(:mod:`repro.analysis.flow.absint`):

* **model passes** (:mod:`repro.analysis.flow.model_pass`) — abstract
  interpretation of each axiom over the probe battery's relation
  bounds, emitting ``MDL010``/``MDL011``/``MDL012`` for statically
  vacuous, unsatisfiable-by-construction, and dead definitions;
* **litmus passes** (:mod:`repro.analysis.flow.applicability`) —
  closed-form relaxation-application counts proving perturbations
  inapplicable without a solver round-trip (``LIT010``, feeding the
  enumerator's ``early_reject`` hook) and statically-singleton
  execution spaces (``LIT011``);
* **execution pre-filter** (:mod:`repro.analysis.flow.prefilter`) — a
  polynomial decision procedure for the SAT oracle's fully-pinned
  per-axiom queries, wired behind ``--prefilter`` on ``synthesize`` and
  ``difftest`` and instrumented via :mod:`repro.obs`
  (``prefilter_hit_rate``).

Importing this package registers the flow passes in the lint registry.
"""

from repro.analysis.flow import (  # noqa: F401  (imports register the passes)
    applicability,
    model_pass,
)
from repro.analysis.flow.absint import (
    AbstractEnv,
    Interval,
    Tri,
    UnboundRelation,
    env_from_problem,
    eval_expr,
    eval_formula,
    exact,
    render_expr,
    render_formula,
)
from repro.analysis.flow.applicability import application_counts
from repro.analysis.flow.prefilter import (
    ExecutionPrefilter,
    dynamic_intervals,
    fr_statically_empty,
    pinned_tuples,
)

__all__ = [
    "Tri",
    "Interval",
    "AbstractEnv",
    "UnboundRelation",
    "exact",
    "env_from_problem",
    "eval_expr",
    "eval_formula",
    "render_expr",
    "render_formula",
    "application_counts",
    "ExecutionPrefilter",
    "pinned_tuples",
    "fr_statically_empty",
    "dynamic_intervals",
]
