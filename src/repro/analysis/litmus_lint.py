"""Litmus lint: well-formedness checks over tests and their outcomes.

:class:`~repro.litmus.test.LitmusTest` already rejects structurally
invalid programs in ``__post_init__``; these passes catch the next tier —
tests that are *valid but meaningless*: reads that can only ever observe
the initial value, outcome conditions naming events that do not exist (an
"uninitialized register"), synchronization annotations the target model
gives no semantics to (so no relaxation in
:mod:`repro.relax.applicability` could ever weaken them), and tests that
duplicate each other modulo :mod:`repro.core.canonical` symmetry.

Diagnostic ids:

=======  ========  ==========================================================
id       severity  meaning
=======  ========  ==========================================================
LIT001   warning   read from an address no write ever stores to
LIT002   error     outcome references a missing read / write event
LIT003   warning   sync annotation outside the model's vocabulary (dead)
LIT004   warning   test duplicates an earlier test modulo symmetry
LIT005   error     outcome rf pairs a read with a write to another address
=======  ========  ==========================================================
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import (
    LitmusLintContext,
    register_pass,
    run_family,
)
from repro.core.canonical import canonical_form
from repro.litmus.events import Order
from repro.litmus.test import LitmusTest

__all__ = ["lint_litmus_context", "find_duplicate_tests", "early_reject"]


@register_pass(
    "litmus-unwritten-read",
    "litmus",
    "reads from addresses no write stores to",
    ids=("LIT001",),
)
def check_unwritten_reads(ctx: LitmusLintContext) -> Iterator[Diagnostic]:
    """LIT001: such a read can only return the initial value, so any rf
    edge into it is fixed and the event usually adds no discrimination.
    Legitimate uses exist (address-dependency chains into a scratch
    location, e.g. the Cambridge PPOAA tests), hence warning severity and
    suppression support."""
    test = ctx.test
    for eid in test.read_eids:
        addr = test.instruction(eid).address
        assert addr is not None
        if not test.writes_to(addr):
            yield Diagnostic(
                "LIT001",
                Severity.WARNING,
                f"{ctx.subject}:e{eid}",
                f"read e{eid} targets address a{addr}, which no write "
                "stores to; it can only observe the initial value",
                hint="drop the read or add a write, unless the location "
                "is an intentional dependency sink (suppress with a "
                "reason if so)",
            )


@register_pass(
    "litmus-outcome-events",
    "litmus",
    "outcome conditions referencing missing or mismatched events",
    ids=("LIT002", "LIT005"),
)
def check_outcome_events(ctx: LitmusLintContext) -> Iterator[Diagnostic]:
    """LIT002/LIT005: every rf constraint must name a read of the test
    and (when not the initial value) a write to the *same* address; every
    final-value constraint must name an address of the test.  A register
    condition on a non-existent read is the classic uninitialized-register
    mistake."""
    if ctx.outcome is None:
        return
    test = ctx.test
    reads = set(test.read_eids)
    writes = set(test.write_eids)
    for read_eid, src in ctx.outcome.rf_sources:
        subject = f"{ctx.subject}:e{read_eid}"
        if read_eid not in reads:
            yield Diagnostic(
                "LIT002",
                Severity.ERROR,
                subject,
                f"outcome constrains r{read_eid}, but event e{read_eid} "
                "is not a read of the test (uninitialized register)",
                hint="outcome registers must name read events; re-check "
                "event ids after editing the test",
            )
            continue
        if src is None:
            continue
        if src not in writes:
            yield Diagnostic(
                "LIT002",
                Severity.ERROR,
                subject,
                f"outcome sources r{read_eid} from e{src}, which is not "
                "a write of the test",
                hint="rf sources must be write events (or None for the "
                "initial value)",
            )
        elif test.location_of(
            test.instruction(src).address
        ) != test.location_of(test.instruction(read_eid).address):
            yield Diagnostic(
                "LIT005",
                Severity.ERROR,
                subject,
                f"outcome sources r{read_eid} (address "
                f"a{test.instruction(read_eid).address}) from write e{src} "
                f"to address a{test.instruction(src).address}",
                hint="a read can only observe writes to its own address",
            )
    for addr, w in ctx.outcome.finals:
        subject = f"{ctx.subject}:a{addr}"
        if addr not in test.addresses and addr not in test.locations:
            yield Diagnostic(
                "LIT002",
                Severity.ERROR,
                subject,
                f"outcome constrains the final value of a{addr}, which "
                "no instruction accesses",
                hint="final-value constraints must name test addresses",
            )
        elif w is not None and w not in test.writes_to(addr):
            yield Diagnostic(
                "LIT002",
                Severity.ERROR,
                subject,
                f"outcome makes e{w} coherence-final at a{addr}, but it "
                "is not a write to that address",
                hint="final writes must store to the constrained address",
            )


@register_pass(
    "litmus-dead-sync",
    "litmus",
    "synchronization annotations outside the model's vocabulary",
    ids=("LIT003",),
)
def check_dead_sync(ctx: LitmusLintContext) -> Iterator[Diagnostic]:
    """LIT003: an annotation the model's vocabulary does not include has
    no semantics under the model *and* no relaxation column applies to it
    (the applicability matrix is vocabulary-derived), so minimality can
    never justify it — it is dead weight that inflates the suite."""
    if ctx.model is None:
        return
    vocab = ctx.model.vocabulary
    test = ctx.test
    for eid, inst in enumerate(test.instructions):
        subject = f"{ctx.subject}:e{eid}"
        if inst.is_fence:
            assert inst.fence is not None
            if inst.fence not in vocab.fence_kinds:
                yield Diagnostic(
                    "LIT003",
                    Severity.WARNING,
                    subject,
                    f"fence kind {inst.fence.value!r} is outside the "
                    f"{ctx.model.name} vocabulary; the fence is dead "
                    "synchronization",
                    hint="no relaxation can weaken an annotation the "
                    "model gives no semantics to; use a vocabulary fence",
                )
        else:
            allowed = (
                vocab.read_orders if inst.is_read else vocab.write_orders
            )
            if inst.order is not Order.PLAIN and inst.order not in allowed:
                yield Diagnostic(
                    "LIT003",
                    Severity.WARNING,
                    subject,
                    f"memory order {inst.order.name} on e{eid} is outside "
                    f"the {ctx.model.name} vocabulary; the annotation is "
                    "dead synchronization",
                    hint="use an order the model defines, or drop the "
                    "annotation",
                )
        if inst.scope is not None and inst.scope not in vocab.scopes:
            yield Diagnostic(
                "LIT003",
                Severity.WARNING,
                subject,
                f"scope {inst.scope.name} on e{eid} is outside the "
                f"{ctx.model.name} vocabulary",
                hint="scoped annotations only mean something to scoped "
                "models",
            )
    if test.rmw and not vocab.allows_rmw:
        yield Diagnostic(
            "LIT003",
            Severity.WARNING,
            ctx.subject,
            f"test pairs RMW events but the {ctx.model.name} vocabulary "
            "excludes RMWs",
            hint="the atomicity of the pair has no semantics here",
        )
    for dep in sorted(test.deps):
        if dep.kind not in vocab.dep_kinds:
            yield Diagnostic(
                "LIT003",
                Severity.WARNING,
                f"{ctx.subject}:e{dep.src}",
                f"{dep.kind.value} dependency e{dep.src}->e{dep.dst} is "
                f"outside the {ctx.model.name} vocabulary; the edge is "
                "dead synchronization",
                hint="dependency kinds the model ignores cannot order "
                "anything and RD cannot remove them",
            )


def find_duplicate_tests(
    tests: Iterable[tuple[str, LitmusTest]],
) -> Iterator[Diagnostic]:
    """LIT004 (collection-level): tests that are symmetric images of an
    earlier test in the iteration order.  Takes ``(name, test)`` pairs so
    callers control the subject naming."""
    seen: dict[LitmusTest, str] = {}
    for name, test in tests:
        key = canonical_form(test)
        if key in seen:
            yield Diagnostic(
                "LIT004",
                Severity.WARNING,
                f"test:{name}",
                f"test duplicates {seen[key]!r} modulo thread/address "
                "symmetry",
                hint="symmetric tests probe identical behaviour; keep "
                "one representative per class",
            )
        else:
            seen[key] = name


def lint_litmus_context(ctx: LitmusLintContext) -> Iterable[Diagnostic]:
    """Run every registered litmus pass over one context."""
    return run_family("litmus", ctx)


def early_reject(model=None, min_severity: Severity = Severity.WARNING):
    """Build an enumerator ``reject`` hook from the litmus passes.

    The returned predicate answers "does this candidate carry any litmus
    finding at ``min_severity`` or worse?" — candidates it rejects are
    dropped before the oracle sees them (paper §5's perf concern: the
    oracle dominates synthesis time, so filtering ill-formed tests early
    is pure win).  Pass a model to also reject dead-synchronization
    candidates; without one only model-independent passes fire.
    """

    def reject(test: LitmusTest) -> bool:
        ctx = LitmusLintContext(test.name or "candidate", test, model=model)
        return any(
            d.severity >= min_severity for d in run_family("litmus", ctx)
        )

    return reject
