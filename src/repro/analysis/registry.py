"""Pass registry: named lint passes grouped into families.

A *pass* is a function from a family-specific context object to an
iterable of :class:`~repro.analysis.diagnostics.Diagnostic`.  Passes
self-register at import time via :func:`register_pass`, so adding a new
check is one decorated function; the CLI and the registry self-check
discover passes through :func:`passes_for` and never need editing.

Families:

* ``model``    — context is a :class:`ModelLintContext` (AST formulas
  and/or a live :class:`~repro.models.base.MemoryModel`);
* ``litmus``   — context is a :class:`LitmusLintContext` (one test plus
  optional outcome and model);
* ``pipeline`` — context is a :class:`ClauseLintContext` (a clause set
  as it is about to reach the SAT solver).

Collection-level checks (e.g. duplicate tests modulo canonicalization)
do not fit the one-subject-per-context shape and live as plain
functions in their pass modules.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.analysis.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.litmus.execution import Outcome
    from repro.litmus.test import LitmusTest
    from repro.models.base import MemoryModel
    from repro.relational import ast
    from repro.relational.problem import Problem

__all__ = [
    "ModelLintContext",
    "LitmusLintContext",
    "ClauseLintContext",
    "LintPass",
    "register_pass",
    "passes_for",
    "all_passes",
    "run_family",
]


@dataclass
class ModelLintContext:
    """What model-lint passes see.

    Either ``formulas`` (the relational-AST twin, with its bounded
    ``problem``) or ``model`` (the executable axioms) may be absent;
    passes skip silently when their inputs are missing.
    """

    name: str
    formulas: "dict[str, ast.Formula] | None" = None
    problem: "Problem | None" = None
    model: "MemoryModel | None" = None
    #: run the (slower) tiny-bound satisfiability probes
    probe: bool = True
    #: model needs a total sc order (affects probe encoding/enumeration)
    needs_sc: bool = False

    @property
    def subject(self) -> str:
        return f"model:{self.name}"


@dataclass
class LitmusLintContext:
    """What litmus-lint passes see: one test and its surroundings."""

    name: str
    test: "LitmusTest"
    outcome: "Outcome | None" = None
    model: "MemoryModel | None" = None

    @property
    def subject(self) -> str:
        return f"test:{self.name}"


@dataclass
class ClauseLintContext:
    """What pipeline-lint passes see: a raw clause set.

    ``referenced_vars`` may pre-mark variables known to be used outside
    the clause list (e.g. level-0 unit assignments the solver consumed
    on entry), so the orphan-variable pass does not flag them.
    """

    name: str
    num_vars: int
    clauses: list[list[int]]
    referenced_vars: set[int] = field(default_factory=set)

    @property
    def subject(self) -> str:
        return f"cnf:{self.name}"


PassFn = Callable[[Any], Iterable[Diagnostic]]


@dataclass(frozen=True)
class LintPass:
    """One registered pass: identity, family, check function, and the
    diagnostic ids it may emit (cross-checked against
    :data:`~repro.analysis.diagnostics.DIAGNOSTIC_IDS` by the registry
    self-check)."""

    name: str
    family: str
    fn: PassFn
    description: str = ""
    ids: tuple[str, ...] = ()


_FAMILIES = ("model", "litmus", "pipeline")
_REGISTRY: dict[str, LintPass] = {}


def register_pass(
    name: str,
    family: str,
    description: str = "",
    ids: tuple[str, ...] = (),
):
    """Decorator registering a pass function under ``name``/``family``.

    ``ids`` declares the diagnostic ids the pass may emit; the registry
    self-check asserts they exist in the id table and that the table
    holds no orphans.
    """
    if family not in _FAMILIES:
        raise ValueError(f"unknown pass family {family!r}")

    def deco(fn: PassFn) -> PassFn:
        if name in _REGISTRY:
            raise ValueError(f"lint pass {name!r} already registered")
        _REGISTRY[name] = LintPass(name, family, fn, description, tuple(ids))
        return fn

    return deco


def passes_for(family: str) -> tuple[LintPass, ...]:
    return tuple(p for p in _REGISTRY.values() if p.family == family)


def all_passes() -> tuple[LintPass, ...]:
    return tuple(_REGISTRY.values())


def run_family(family: str, context: Any) -> Iterator[Diagnostic]:
    """Run every registered pass of a family over one context."""
    for lint_pass in passes_for(family):
        yield from lint_pass.fn(context)
