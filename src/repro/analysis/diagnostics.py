"""Diagnostics core: findings, suppressions, reports, renderers.

The analysis subsystem phrases every problem it detects as a
:class:`Diagnostic` — a stable id, a severity, a *subject* locating the
finding (``model:tso:causality``, ``catalog:MP``, ``file:foo.litmus``),
a human message, and an optional fix hint.  Passes yield diagnostics;
the :class:`Report` aggregates them, applies :class:`Suppression`
filters, and maps the surviving severities onto CI-friendly exit codes
(0 = clean, 1 = warnings, 2 = errors).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

__all__ = [
    "Severity",
    "Diagnostic",
    "Suppression",
    "Report",
    "parse_suppression",
    "render_text",
    "render_json",
    "DIAGNOSTIC_IDS",
    "JSON_SCHEMA_VERSION",
]

#: Bumped whenever the JSON rendering changes shape.
JSON_SCHEMA_VERSION = 1

#: Every diagnostic id the analysis subsystem can emit, with a one-line
#: meaning.  :func:`parse_suppression` validates ids against this table,
#: and the registry self-check asserts that every registered pass
#: declares a subset of it and that no id here is orphaned — so the
#: suppression syntax, the README table, and ``repro lint`` stay
#: exhaustive by construction.
DIAGNOSTIC_IDS: dict[str, str] = {
    "MDL001": "declared free relation never referenced by any axiom",
    "MDL002": "axiom vacuously true across the probe battery",
    "MDL003": "axiom unsatisfiable across the probe battery",
    "MDL004": "Acyclic/Irreflexive applied to a closure expression",
    "MDL005": "two axioms are structurally identical",
    "MDL006": "wa_axioms out of sync with axioms",
    "MDL010": "axiom abstractly true on every probe (statically vacuous)",
    "MDL011": "axiom abstractly false on a probe (unsat by construction)",
    "MDL012": "operator-induced statically-empty subexpression (dead)",
    "LIT001": "read from an address no write ever stores to",
    "LIT002": "outcome references a missing read / write event",
    "LIT003": "sync annotation outside the model's vocabulary (dead)",
    "LIT004": "test duplicates an earlier test modulo symmetry",
    "LIT005": "outcome rf pairs a read with a write to another address",
    "LIT006": "litmus test file cannot be loaded",
    "LIT010": "no relaxation application exists (statically degenerate)",
    "LIT011": "rf/co(/sc) bounds statically empty (single execution)",
    "SAT001": "variable never referenced by any clause (orphan)",
    "SAT002": "tautological clause",
    "SAT003": "empty clause (formula trivially unsatisfiable)",
    "SAT004": "duplicate literal within one clause",
    "SAT005": "literal references a variable beyond num_vars",
    "SAT006": "unit clause in the input",
    "SAT007": "oracle knob combination that silently does nothing",
    "SAT008": "CNF cache directory holds stale or mixed entries",
    "SAT009": "warm CNF cache produced zero compile hits",
    "DIF001": "corpus entry is stale (unregistered model or healed)",
    "DIF002": "corpus/config names an unknown model or broken mutant",
    "OBS001": "trace span begun but never closed",
    "OBS002": "trace file/dir unreadable or schema-inconsistent",
}


class Severity(enum.IntEnum):
    """Finding severity; the integer order drives exit-code selection."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding of one analysis pass.

    Attributes:
        id: stable identifier (``MDL001`` .. ``SAT005``) — the unit of
            suppression and the key documented in the README table.
        severity: how bad the finding is; errors gate CI.
        subject: where the finding lives, as a ``:``-separated path
            (``model:tso:causality``, ``catalog:PPOAA:e4``).
        message: one-line human description.
        hint: optional suggestion for fixing the finding.
    """

    id: str
    severity: Severity
    subject: str
    message: str
    hint: str = ""

    def format(self) -> str:
        text = f"{self.severity.label}[{self.id}] {self.subject}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def as_dict(self) -> dict[str, str]:
        return {
            "id": self.id,
            "severity": self.severity.label,
            "subject": self.subject,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class Suppression:
    """Silence findings of one diagnostic id, optionally scoped by subject.

    ``subject`` is an ``fnmatch``-style glob matched case-sensitively
    against :attr:`Diagnostic.subject`; the default ``*`` suppresses the
    id everywhere.  ``reason`` documents *why* the finding is intentional
    — registry-wide suppressions must carry one.
    """

    id: str
    subject: str = "*"
    reason: str = ""

    def matches(self, diagnostic: Diagnostic) -> bool:
        return diagnostic.id == self.id and fnmatchcase(
            diagnostic.subject, self.subject
        )


def parse_suppression(spec: str, reason: str = "") -> Suppression:
    """Parse the CLI/file suppression syntax ``ID`` or ``ID:subject-glob``.

    Examples: ``LIT001`` (everywhere), ``LIT001:catalog:PPOAA*`` (one
    entry and its events).  The id must exist in
    :data:`DIAGNOSTIC_IDS` — a typo'd suppression that silently matches
    nothing is worse than an error.
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("empty suppression spec")
    diag_id, _, subject = spec.partition(":")
    if diag_id not in DIAGNOSTIC_IDS:
        known = ", ".join(sorted(DIAGNOSTIC_IDS))
        raise ValueError(
            f"unknown diagnostic id {diag_id!r} in suppression spec "
            f"(known ids: {known})"
        )
    return Suppression(diag_id, subject or "*", reason)


@dataclass
class Report:
    """A collection of findings plus the suppressions that were applied."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)

    def extend(self, diagnostics) -> None:
        self.diagnostics.extend(diagnostics)

    def apply_suppressions(self, suppressions) -> Report:
        """Partition findings into kept and suppressed; returns a new
        report (the input order of findings is preserved)."""
        suppressions = list(suppressions)
        kept: list[Diagnostic] = []
        silenced = list(self.suppressed)
        for diag in self.diagnostics:
            if any(s.matches(diag) for s in suppressions):
                silenced.append(diag)
            else:
                kept.append(diag)
        return Report(kept, silenced)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def max_severity(self) -> Severity | None:
        return max((d.severity for d in self.diagnostics), default=None)

    @property
    def exit_code(self) -> int:
        """0 = clean (or info only), 1 = warnings, 2 = errors."""
        worst = self.max_severity
        if worst is None or worst is Severity.INFO:
            return 0
        return 1 if worst is Severity.WARNING else 2

    def sorted(self) -> Report:
        """Copy with findings ordered most-severe-first, then by subject."""
        key = lambda d: (-int(d.severity), d.subject, d.id)  # noqa: E731
        return Report(
            sorted(self.diagnostics, key=key),
            sorted(self.suppressed, key=key),
        )


def render_text(report: Report) -> str:
    """Human-readable rendering, most severe findings first."""
    report = report.sorted()
    lines = [d.format() for d in report.diagnostics]
    summary = (
        f"{report.count(Severity.ERROR)} error(s), "
        f"{report.count(Severity.WARNING)} warning(s), "
        f"{report.count(Severity.INFO)} info(s)"
    )
    if report.suppressed:
        summary += f", {len(report.suppressed)} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: Report) -> str:
    """Schema-stable JSON rendering (see ``JSON_SCHEMA_VERSION``)."""
    report = report.sorted()
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "exit_code": report.exit_code,
        "summary": {
            "errors": report.count(Severity.ERROR),
            "warnings": report.count(Severity.WARNING),
            "infos": report.count(Severity.INFO),
            "suppressed": len(report.suppressed),
        },
        "diagnostics": [d.as_dict() for d in report.diagnostics],
        "suppressed": [d.as_dict() for d in report.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
