"""Difftest lint: sanity checks over corpora and campaign configs.

The differential-testing subsystem (:mod:`repro.difftest`) persists
reproducers to a JSONL corpus and injects named mutants from a per-model
registry.  Both can rot independently of the code that reads them: a
corpus entry stops reproducing once the disagreement it recorded is
fixed, and a campaign config can name a mutant tag the registry no
longer advertises.  These passes surface both before a campaign spends
budget on them.

Diagnostic ids:

=======  ========  ==========================================================
id       severity  meaning
=======  ========  ==========================================================
DIF001   warning   corpus entry no longer reproduces (stale reproducer)
DIF002   error     campaign config requests a mutant tag unknown to the
                   registry (or an advertised tag fails its own contract)
=======  ========  ==========================================================

Like ``SAT007``/``SAT008`` these are collection-level checks over
artifacts rather than models or tests, so they are plain functions, and
they import :mod:`repro.difftest` lazily so ``repro.analysis`` stays
importable without pulling the whole campaign stack in.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, Report, Severity

__all__ = [
    "lint_corpus",
    "lint_mutant_tags",
    "lint_mutant_registry",
]


def lint_corpus(directory: str) -> list[Diagnostic]:
    """DIF001: replay every corpus entry; flag the ones that went stale.

    A stale entry is not *wrong* — it usually means the disagreement it
    recorded has since been fixed — but leaving it in place makes every
    future campaign's replay phase report failure, so the finding is the
    prompt to prune it.
    """
    from repro.difftest.corpus import Corpus
    from repro.difftest.discrepancy import discrepancy_fingerprint
    from repro.difftest.harness import DiffHarness
    from repro.models.registry import available_models

    out: list[Diagnostic] = []
    corpus = Corpus(directory)
    known = set(available_models())
    for model_name in corpus.models():
        entries = corpus.load(model_name)
        if model_name not in known:
            out.append(
                Diagnostic(
                    "DIF001",
                    Severity.WARNING,
                    f"{directory}:{model_name}.jsonl",
                    f"corpus file names unregistered model "
                    f"{model_name!r}; its {len(entries)} entries cannot "
                    "be replayed",
                    hint="rename the file to a registered model or "
                    "delete it",
                )
            )
            continue
        harness = DiffHarness(model_name)
        for disc in entries:
            subject = (
                f"{directory}:{model_name}.jsonl:"
                f"{discrepancy_fingerprint(disc)}"
            )
            try:
                ok = harness.reproduces(disc)
            except KeyError:
                out.append(
                    Diagnostic(
                        "DIF002",
                        Severity.ERROR,
                        subject,
                        f"corpus entry names mutant tag {disc.mutant!r}, "
                        f"unknown to the {model_name} mutant registry",
                        hint="the registry dropped or renamed the tag; "
                        "prune the entry",
                    )
                )
                continue
            if not ok:
                out.append(
                    Diagnostic(
                        "DIF001",
                        Severity.WARNING,
                        subject,
                        f"corpus entry ({disc.kind}) no longer "
                        "reproduces against the current oracles",
                        hint="if the underlying disagreement was fixed, "
                        "prune the entry so replay stays green",
                    )
                )
    return out


def lint_mutant_tags(model_name: str, tags) -> list[Diagnostic]:
    """DIF002: campaign config tags the registry does not advertise."""
    from repro.difftest.mutate import mutant_tags
    from repro.models.registry import available_models, get_model

    if model_name not in available_models():
        return [
            Diagnostic(
                "DIF002",
                Severity.ERROR,
                f"config:{model_name}",
                f"campaign targets unregistered model {model_name!r}",
                hint="pick one of: " + ", ".join(available_models()),
            )
        ]
    advertised = set(mutant_tags(get_model(model_name)))
    out: list[Diagnostic] = []
    for tag in tags:
        if tag not in advertised:
            out.append(
                Diagnostic(
                    "DIF002",
                    Severity.ERROR,
                    f"config:{model_name}:{tag}",
                    f"mutant tag {tag!r} is unknown to the {model_name} "
                    "registry",
                    hint="advertised tags: "
                    + (", ".join(sorted(advertised)) or "(none)"),
                )
            )
    return out


def lint_mutant_registry() -> Report:
    """Self-check: every advertised mutant tag must resolve and must be
    distinguishable (by fingerprint) from its stock model — an injected
    bug identical to the original can never be killed, which would make
    a CLEAN campaign verdict meaningless."""
    from repro.difftest.mutate import (
        model_fingerprint,
        mutant_tags,
        resolve_mutant,
    )
    from repro.models.registry import available_models, get_model

    report = Report()
    for name in available_models():
        model = get_model(name)
        stock_fp = model_fingerprint(model)
        for tag in mutant_tags(model):
            subject = f"mutant:{name}:{tag}"
            try:
                mutant = resolve_mutant(model, tag)
            except (KeyError, ValueError) as exc:
                report.extend(
                    [
                        Diagnostic(
                            "DIF002",
                            Severity.ERROR,
                            subject,
                            f"advertised mutant tag fails to resolve: {exc}",
                            hint="mutant_tags() and resolve_mutant() "
                            "disagree; fix the registry",
                        )
                    ]
                )
                continue
            if model_fingerprint(mutant, tag) == stock_fp:
                report.extend(
                    [
                        Diagnostic(
                            "DIF002",
                            Severity.ERROR,
                            subject,
                            "mutant fingerprint equals the stock model's; "
                            "the injected bug is indistinguishable",
                            hint="the mutation must change axioms or "
                            "relation semantics",
                        )
                    ]
                )
    return report
