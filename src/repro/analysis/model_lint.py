"""Model lint: static and probe-based checks over memory-model axioms.

Two kinds of model definition exist in this repository and both are
covered:

* the **relational-AST twins** (:mod:`repro.alloy.models`) — dicts of
  :class:`~repro.relational.ast.Formula` trees, checked structurally
  (relation usage, closure misuse, duplicates) and semantically via a
  tiny-bound solver probe over :data:`~repro.analysis.probes.PROBE_BATTERY`;
* the **executable models** (:mod:`repro.models`) — callables over a
  :class:`~repro.semantics.relations.RelationView`, checked by evaluating
  them over every execution of the same probe battery.

Diagnostic ids:

=======  ========  ==========================================================
id       severity  meaning
=======  ========  ==========================================================
MDL001   error     declared free relation never referenced by any axiom
MDL002   warning   axiom vacuously true: rejects nothing across the battery
MDL003   error     axiom unsatisfiable: rejects everything across the battery
MDL004   warn/err  ``Acyclic``/``Irreflexive`` over a closure expression
MDL005   warning   two axioms are structurally identical
MDL006   error     ``wa_axioms`` axiom names out of sync with ``axioms``
=======  ========  ==========================================================
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.alloy.encoding import LitmusEncoding
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.probes import PROBE_BATTERY
from repro.analysis.registry import (
    ModelLintContext,
    register_pass,
    run_family,
)
from repro.relational import ast
from repro.relational.solve import ModelFinder
from repro.semantics.enumerate import enumerate_executions

__all__ = [
    "walk_nodes",
    "referenced_relations",
    "lint_model_context",
    "alloy_context",
    "model_context",
]


# -- AST traversal ---------------------------------------------------------------


def walk_nodes(node: ast.Expr | ast.Formula) -> Iterator[ast.Expr | ast.Formula]:
    """Yield every node of a Formula/Expr tree (preorder).

    Thin alias of :func:`repro.relational.ast.walk`, kept for the
    existing pass/test surface.
    """
    return ast.walk(node)


def referenced_relations(*roots: ast.Expr | ast.Formula) -> set[str]:
    """Names of every :class:`~repro.relational.ast.Rel` under the roots."""
    names: set[str] = set()
    for root in roots:
        for node in walk_nodes(root):
            if isinstance(node, ast.Rel):
                names.add(node.name)
    return names


# -- structural passes -----------------------------------------------------------


@register_pass(
    "model-unused-relation",
    "model",
    "free declared relations every axiom ignores",
    ids=("MDL001",),
)
def check_unused_relations(ctx: ModelLintContext) -> Iterator[Diagnostic]:
    """MDL001: a relation with free (solver-chosen) tuples that no axiom
    constrains yields garbage instances — almost always a typo'd name."""
    if ctx.formulas is None or ctx.problem is None:
        return
    used = referenced_relations(*ctx.formulas.values())
    for name, decl in sorted(ctx.problem.declarations.items()):
        if decl.free and name not in used:
            yield Diagnostic(
                "MDL001",
                Severity.ERROR,
                f"{ctx.subject}:{name}",
                f"free relation {name!r} is never referenced by any axiom",
                hint="axioms must constrain every dynamic relation; "
                "check for a misspelled Rel name",
            )


@register_pass(
    "model-closure-misuse",
    "model",
    "Acyclic/Irreflexive applied to closure expressions",
    ids=("MDL004",),
)
def check_closure_misuse(ctx: ModelLintContext) -> Iterator[Diagnostic]:
    """MDL004: ``Acyclic(^r)`` is redundant, ``Irreflexive(^r)`` should be
    ``Acyclic(r)``, and either applied to a *reflexive* closure is
    unsatisfiable outright (the diagonal is always present)."""
    if ctx.formulas is None:
        return
    for axiom_name, formula in ctx.formulas.items():
        subject = f"{ctx.subject}:{axiom_name}"
        for node in walk_nodes(formula):
            if isinstance(node, (ast.Acyclic, ast.Irreflexive)):
                op = type(node).__name__
                if isinstance(node.expr, ast.RClosure):
                    yield Diagnostic(
                        "MDL004",
                        Severity.ERROR,
                        subject,
                        f"{op}(*r) is unsatisfiable: a reflexive closure "
                        "always contains the diagonal",
                        hint="apply the predicate to the plain or "
                        "transitive closure instead",
                    )
                elif isinstance(node.expr, ast.Closure):
                    hint = (
                        "Acyclic already closes its argument; drop the ^"
                        if op == "Acyclic"
                        else "Irreflexive(^r) is Acyclic(r); prefer Acyclic"
                    )
                    yield Diagnostic(
                        "MDL004",
                        Severity.WARNING,
                        subject,
                        f"{op}(^r) applies a cycle predicate to an "
                        "explicitly closed expression",
                        hint=hint,
                    )


@register_pass(
    "model-duplicate-axiom",
    "model",
    "axioms that duplicate or shadow one another",
    ids=("MDL005", "MDL006"),
)
def check_duplicate_axioms(ctx: ModelLintContext) -> Iterator[Diagnostic]:
    """MDL005/MDL006: duplicate axiom bodies within one set, and
    ``wa_axioms`` drifting out of sync with ``axioms``."""
    if ctx.formulas is not None:
        yield from _duplicate_bodies(ctx, ctx.formulas)
    if ctx.model is not None:
        axioms = dict(ctx.model.axioms())
        yield from _duplicate_bodies(ctx, axioms)
        wa = dict(ctx.model.wa_axioms())
        if set(wa) != set(axioms):
            missing = sorted(set(axioms) - set(wa))
            extra = sorted(set(wa) - set(axioms))
            yield Diagnostic(
                "MDL006",
                Severity.ERROR,
                ctx.subject,
                "workaround axiom set out of sync with the base axioms "
                f"(missing: {missing or '[]'}, extra: {extra or '[]'})",
                hint="wa_axioms must name exactly the axioms() keys so "
                "per-axiom suites stay addressable in workaround mode",
            )


def _duplicate_bodies(ctx: ModelLintContext, axioms: dict) -> Iterator[Diagnostic]:
    items = list(axioms.items())
    for i, (name_a, body_a) in enumerate(items):
        for name_b, body_b in items[i + 1 :]:
            if body_a == body_b or body_a is body_b:
                yield Diagnostic(
                    "MDL005",
                    Severity.WARNING,
                    f"{ctx.subject}:{name_b}",
                    f"axiom {name_b!r} duplicates axiom {name_a!r}",
                    hint="duplicate axioms produce identical per-axiom "
                    "suites and double the oracle work; drop one",
                )


# -- probe passes ----------------------------------------------------------------


@register_pass(
    "model-axiom-probe",
    "model",
    "tiny-bound vacuity/unsatisfiability probe",
    ids=("MDL002", "MDL003"),
)
def check_axiom_probe(ctx: ModelLintContext) -> Iterator[Diagnostic]:
    """MDL002/MDL003 via the probe battery (see module docstring)."""
    if not ctx.probe:
        return
    if ctx.formulas is not None:
        yield from _probe_formulas(ctx)
    elif ctx.model is not None:
        yield from _probe_callables(ctx)


def _probe_formulas(ctx: ModelLintContext) -> Iterator[Diagnostic]:
    assert ctx.formulas is not None
    verdicts = {name: [False, False] for name in ctx.formulas}  # [sat, rej]
    for probe in PROBE_BATTERY:
        for name, formula in ctx.formulas.items():
            sat_seen, rej_seen = verdicts[name]
            if sat_seen and rej_seen:
                continue
            encoding = LitmusEncoding(probe, with_sc=ctx.needs_sc)
            facts = encoding.facts()
            if not sat_seen:
                finder = ModelFinder(encoding.problem)
                sat_seen = finder.check(facts & formula)
            if not rej_seen:
                finder = ModelFinder(encoding.problem)
                rej_seen = finder.check(facts & ast.Not(formula))
            verdicts[name] = [sat_seen, rej_seen]
    yield from _probe_verdicts(ctx, verdicts)


def _probe_callables(ctx: ModelLintContext) -> Iterator[Diagnostic]:
    assert ctx.model is not None
    model = ctx.model
    axioms = dict(model.axioms())
    verdicts = {name: [False, False] for name in axioms}  # [sat, rej]
    for probe in PROBE_BATTERY:
        for execution in enumerate_executions(
            probe, with_sc=model.uses_sc_order
        ):
            view = model.view(execution)
            for name, axiom in axioms.items():
                sat_seen, rej_seen = verdicts[name]
                if sat_seen and rej_seen:
                    continue
                if axiom(view):
                    sat_seen = True
                else:
                    rej_seen = True
                verdicts[name] = [sat_seen, rej_seen]
    yield from _probe_verdicts(ctx, verdicts)


def _probe_verdicts(
    ctx: ModelLintContext, verdicts: dict[str, list[bool]]
) -> Iterator[Diagnostic]:
    n = len(PROBE_BATTERY)
    for name, (sat_seen, rej_seen) in verdicts.items():
        subject = f"{ctx.subject}:{name}"
        if not sat_seen:
            yield Diagnostic(
                "MDL003",
                Severity.ERROR,
                subject,
                f"axiom rejects every well-formed execution of all "
                f"{n} probe tests (unsatisfiable under probe bounds)",
                hint="an always-false axiom makes every candidate "
                "forbidden; check operator polarity",
            )
        elif not rej_seen:
            yield Diagnostic(
                "MDL002",
                Severity.WARNING,
                subject,
                f"axiom accepts every well-formed execution of all "
                f"{n} probe tests (vacuously true under probe bounds)",
                hint="a never-rejecting axiom contributes an empty "
                "suite; the definition is probably degenerate",
            )


# -- context builders / entry points --------------------------------------------


def alloy_context(
    name: str,
    formulas: dict[str, ast.Formula],
    needs_sc: bool = False,
    probe: bool = True,
) -> ModelLintContext:
    """Context for an AST-formula model, with a probe-derived problem so
    the unused-relation pass has declarations to check against."""
    encoding = LitmusEncoding(PROBE_BATTERY[0], with_sc=needs_sc)
    encoding.facts()  # force atom_*/pair_* declarations for completeness
    return ModelLintContext(
        name,
        formulas=formulas,
        problem=encoding.problem,
        probe=probe,
        needs_sc=needs_sc,
    )


def model_context(model, probe: bool = True) -> ModelLintContext:
    """Context for an executable :class:`~repro.models.base.MemoryModel`."""
    return ModelLintContext(
        model.name, model=model, probe=probe, needs_sc=model.uses_sc_order
    )


def lint_model_context(ctx: ModelLintContext) -> Iterable[Diagnostic]:
    """Run every registered model pass over one context."""
    return run_family("model", ctx)
