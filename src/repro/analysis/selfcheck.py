"""Registry-wide self-check: lint everything the repository ships.

``lint_registry`` runs every pass family over every registered model
(both the executable :mod:`repro.models` classes and their relational-AST
twins in :mod:`repro.alloy.models`), every catalog litmus test against
the model family it targets, the catalog as a whole for symmetry
duplicates, one probe encoding compiled down to CNF, and every
advertised difftest mutant tag.  This is what
``repro lint --all-models --catalog`` and the CI gate execute.

Intentional findings are silenced by :data:`REGISTRY_SUPPRESSIONS`; each
entry carries the reason the finding is expected, and the suppressed
findings still appear in reports (and in ``--format json``) so they
cannot rot silently.
"""

from __future__ import annotations

from repro.alloy.encoding import LitmusEncoding
from repro.alloy.models import ALLOY_MODELS
from repro.analysis.diagnostics import DIAGNOSTIC_IDS, Report, Suppression
from repro.analysis.litmus_lint import find_duplicate_tests
from repro.analysis.model_lint import alloy_context, model_context
from repro.analysis.pipeline_lint import context_from_solver
from repro.analysis.probes import PROBE_BATTERY
from repro.analysis.registry import LitmusLintContext, all_passes, run_family
from repro.litmus.catalog import CATALOG
from repro.models.registry import available_models, get_model
from repro.relational.ast import TRUE_F
from repro.relational.solve import ModelFinder

__all__ = [
    "REGISTRY_SUPPRESSIONS",
    "COLLECTION_IDS",
    "id_registry_problems",
    "lint_models",
    "lint_catalog",
    "lint_encoding_smoke",
    "lint_obs_smoke",
    "lint_registry",
]

#: Ids emitted by collection-level checks (plain functions) rather than
#: registered passes; the exhaustiveness check accounts for them so the
#: id table holds no orphans.
COLLECTION_IDS: frozenset[str] = frozenset(
    {
        "LIT004",  # litmus_lint.find_duplicate_tests
        "LIT006",  # cli litmus-file load errors
        "SAT007",  # pipeline_lint.lint_oracle_options
        "SAT008",  # pipeline_lint.lint_cnf_cache_dir
        "SAT009",  # pipeline_lint.lint_warm_compile
        "DIF001",  # difftest_lint corpus checks
        "DIF002",  # difftest_lint corpus/config/mutant checks
        "OBS001",  # obs_lint span accounting
        "OBS002",  # obs_lint trace file/dir integrity
    }
)


def id_registry_problems() -> list[str]:
    """Cross-check pass-declared ids against the id table, both ways.

    Returns human-readable problems; an inconsistent registry is a
    programming error, so :func:`lint_registry` raises on any."""
    problems: list[str] = []
    declared: set[str] = set()
    for lint_pass in all_passes():
        if not lint_pass.ids:
            problems.append(
                f"pass {lint_pass.name!r} declares no diagnostic ids"
            )
        for diag_id in lint_pass.ids:
            if diag_id not in DIAGNOSTIC_IDS:
                problems.append(
                    f"pass {lint_pass.name!r} declares id {diag_id} "
                    "missing from DIAGNOSTIC_IDS"
                )
        declared.update(lint_pass.ids)
    for diag_id in sorted(COLLECTION_IDS - set(DIAGNOSTIC_IDS)):
        problems.append(
            f"collection-level id {diag_id} missing from DIAGNOSTIC_IDS"
        )
    for diag_id in sorted(set(DIAGNOSTIC_IDS) - declared - COLLECTION_IDS):
        problems.append(
            f"id {diag_id} is registered but no pass or collection "
            "check declares it"
        )
    return problems

#: Documented intentional findings in the shipped registry/catalog.
REGISTRY_SUPPRESSIONS: tuple[Suppression, ...] = (
    Suppression(
        "LIT001",
        "test:PPOAA*",
        reason="the Cambridge PPOAA tests read location Z purely as the "
        "sink of an address-dependency chain; no write to Z is intended "
        "(Sarkar et al. 2011, paper §6.2)",
    ),
)


def lint_models(probe: bool = True) -> Report:
    """Lint every registered model, executable and relational."""
    report = Report()
    for name in available_models():
        report.extend(run_family("model", model_context(get_model(name), probe)))
    for name, (factory, needs_sc) in sorted(ALLOY_MODELS.items()):
        ctx = alloy_context(f"{name}.alloy", factory(), needs_sc, probe)
        report.extend(run_family("model", ctx))
    return report


def lint_catalog() -> Report:
    """Lint every catalog test against its target model family, plus the
    catalog-wide duplicate check."""
    report = Report()
    for entry in CATALOG.values():
        ctx = LitmusLintContext(
            entry.name,
            entry.test,
            outcome=entry.forbidden,
            model=get_model(entry.model),
        )
        report.extend(run_family("litmus", ctx))
    report.extend(
        find_duplicate_tests(
            (entry.name, entry.test) for entry in CATALOG.values()
        )
    )
    return report


def lint_encoding_smoke() -> Report:
    """Compile one probe test's relational encoding to CNF and lint the
    clause set the solver actually received."""
    report = Report()
    formulas, needs_sc = ALLOY_MODELS["tso"]
    probe = PROBE_BATTERY[1]  # MP: exercises rf/co/fr across addresses
    encoding = LitmusEncoding(probe, with_sc=needs_sc)
    finder = ModelFinder(encoding.problem)
    conjunction = encoding.facts()
    for formula in formulas().values():
        conjunction = conjunction & formula
    if conjunction is TRUE_F:  # pragma: no cover - defensive
        return report
    finder.solve(conjunction)
    ctx = context_from_solver(f"encoding:{probe.name}", finder.circuit.solver)
    report.extend(run_family("pipeline", ctx))
    return report


def lint_obs_smoke() -> Report:
    """Exercise the :mod:`repro.obs` tracer in memory and lint the
    resulting event stream.

    Any OBS001 finding here means the :class:`~repro.obs.Tracer` itself
    fails to close spans — the trace-dir lints would then flag every
    healthy run.
    """
    from repro.analysis.obs_lint import lint_trace_events
    from repro.obs import BufferTracer

    report = Report()
    tracer = BufferTracer()
    with tracer.span("outer"):
        with tracer.span("inner", detail=1):
            pass
    tracer.counters({"probe": 1})
    report.extend(lint_trace_events("obs:tracer-smoke", tracer.events()))
    return report


def lint_registry(probe: bool = True, suppressions=()) -> Report:
    """The full self-check with the documented suppressions applied.

    Raises ``RuntimeError`` when the diagnostic-id registry itself is
    inconsistent — that is a bug in the pass declarations, not a lint
    finding."""
    problems = id_registry_problems()
    if problems:
        raise RuntimeError(
            "diagnostic id registry inconsistent: " + "; ".join(problems)
        )
    report = Report()
    from repro.analysis.difftest_lint import lint_mutant_registry

    report.extend(lint_models(probe).diagnostics)
    report.extend(lint_catalog().diagnostics)
    report.extend(lint_encoding_smoke().diagnostics)
    report.extend(lint_obs_smoke().diagnostics)
    report.extend(lint_mutant_registry().diagnostics)
    return report.apply_suppressions(
        tuple(REGISTRY_SUPPRESSIONS) + tuple(suppressions)
    )
