"""The paper's contribution: minimality-driven litmus test synthesis."""

from repro.core.canonical import (
    CanonicalSet,
    canonical_form,
    canonicalize,
    paper_canonicalize,
    symmetry_class_size,
)
from repro.core.compare import (
    SuiteComparison,
    compare_suites,
    find_subtest,
    is_subtest,
    subtests,
)
from repro.core.enumerator import (
    EnumerationConfig,
    enumerate_shard,
    enumerate_tests,
)
from repro.core.minimality import (
    CriterionMode,
    MinimalityChecker,
    MinimalityResult,
    perturb_execution,
)
from repro.core.oracle import ExplicitOracle, TestAnalysis
from repro.core.suite import (
    SuiteEntry,
    TestSuite,
    outcome_from_dict,
    outcome_to_dict,
    test_from_dict,
    test_to_dict,
)
from repro.core.synthesis import (
    EARLY_REJECT,
    RESULT_SCHEMA_VERSION,
    OracleSpec,
    SynthesisOptions,
    SynthesisResult,
    synthesize,
)

__all__ = [
    "CanonicalSet",
    "canonical_form",
    "canonicalize",
    "paper_canonicalize",
    "symmetry_class_size",
    "SuiteComparison",
    "compare_suites",
    "find_subtest",
    "is_subtest",
    "subtests",
    "EnumerationConfig",
    "enumerate_tests",
    "enumerate_shard",
    "CriterionMode",
    "MinimalityChecker",
    "MinimalityResult",
    "perturb_execution",
    "ExplicitOracle",
    "TestAnalysis",
    "SuiteEntry",
    "TestSuite",
    "test_to_dict",
    "test_from_dict",
    "outcome_to_dict",
    "outcome_from_dict",
    "EARLY_REJECT",
    "RESULT_SCHEMA_VERSION",
    "OracleSpec",
    "SynthesisOptions",
    "SynthesisResult",
    "synthesize",
]
