"""Synthesized litmus test suites (paper §5).

A :class:`TestSuite` stores canonical tests with the axioms they are
minimal for and a witness outcome — the forbidden outcome that every
instruction relaxation renders observable.  Suites dedupe by canonical
form, merge into per-model *union* suites, and serialize to/from JSON so
the CLI can persist them.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.litmus.events import (
    DepKind,
    EventKind,
    FenceKind,
    Instruction,
    Order,
    Scope,
)
from repro.litmus.execution import Outcome, remap_outcome
from repro.litmus.test import Dep, LitmusTest
from repro.core.canonical import canonicalize, paper_canonicalize

__all__ = [
    "SuiteEntry",
    "TestSuite",
    "test_to_dict",
    "test_from_dict",
    "outcome_to_dict",
    "outcome_from_dict",
    "entry_to_dict",
    "entry_from_dict",
]


@dataclass
class SuiteEntry:
    """One canonical test in a suite."""

    test: LitmusTest
    witness: Outcome
    axioms: set[str] = field(default_factory=set)

    @property
    def num_events(self) -> int:
        return self.test.num_events

    def pretty(self) -> str:
        lines = [self.test.pretty()]
        lines.append(f"Forbidden: {self.witness.pretty(self.test)}")
        lines.append(f"Minimal for: {', '.join(sorted(self.axioms))}")
        return "\n".join(lines)


class TestSuite:
    """A deduplicated set of minimal tests for one model.

    ``exact_symmetry=False`` switches to the paper's greedy canonicalizer
    (used by the symmetry-reduction ablation bench).
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        model_name: str,
        label: str = "union",
        exact_symmetry: bool = True,
    ):
        self.model_name = model_name
        self.label = label
        self.exact_symmetry = exact_symmetry
        self._entries: dict[LitmusTest, SuiteEntry] = {}

    # -- population ---------------------------------------------------------

    def add(
        self, test: LitmusTest, witness: Outcome, axioms: Iterable[str]
    ) -> bool:
        """Add a test (canonicalizing first); returns True if new.

        When the test is already present (symmetric to an existing
        entry), the axiom sets merge.
        """
        if self.exact_symmetry:
            canon, event_map, addr_map = canonicalize(test)
            canon_witness = remap_outcome(witness, event_map, addr_map)
        else:
            canon = paper_canonicalize(test)
            canon_witness = witness  # greedy mode keeps the raw witness
        existing = self._entries.get(canon)
        if existing is not None:
            existing.axioms.update(axioms)
            return False
        self._entries[canon] = SuiteEntry(canon, canon_witness, set(axioms))
        return True

    def merge(self, other: TestSuite) -> None:
        for entry in other:
            self.add(entry.test, entry.witness, entry.axioms)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[SuiteEntry]:
        return iter(self._entries.values())

    def __contains__(self, test: LitmusTest) -> bool:
        if self.exact_symmetry:
            return canonicalize(test)[0] in self._entries
        return paper_canonicalize(test) in self._entries

    def tests(self) -> list[LitmusTest]:
        return list(self._entries.keys())

    def by_size(self) -> dict[int, list[SuiteEntry]]:
        out: dict[int, list[SuiteEntry]] = {}
        for entry in self:
            out.setdefault(entry.num_events, []).append(entry)
        return dict(sorted(out.items()))

    def count_by_size(self) -> dict[int, int]:
        return {size: len(v) for size, v in self.by_size().items()}

    def for_axiom(self, axiom: str) -> list[SuiteEntry]:
        return [e for e in self if axiom in e.axioms]

    # -- serialization ----------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "model": self.model_name,
            "label": self.label,
            "tests": [entry_to_dict(e) for e in self],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> TestSuite:
        payload = json.loads(text)
        suite = cls(payload["model"], payload.get("label", "union"))
        for item in payload["tests"]:
            test, witness, axioms = entry_from_dict(item)
            suite.add(test, witness, axioms)
        return suite

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    def save_litmus_dir(self, directory) -> list[str]:
        """Write one ``.litmus`` text file per test (the paper's "fed
        into any existing testing infrastructure" output).  Returns the
        file names written."""
        import os

        from repro.litmus.format import format_test

        os.makedirs(directory, exist_ok=True)
        written = []
        for i, entry in enumerate(
            sorted(self, key=lambda e: (e.num_events, repr(e.test)))
        ):
            name = f"{self.model_name}_{self.label}_{i:04d}.litmus"
            path = os.path.join(directory, name)
            with open(path, "w") as fh:
                fh.write(f"# minimal for: {', '.join(sorted(entry.axioms))}\n")
                fh.write(format_test(entry.test, entry.witness))
            written.append(name)
        return written

    @classmethod
    def load(cls, path) -> TestSuite:
        with open(path) as fh:
            return cls.from_json(fh.read())

    def __repr__(self) -> str:
        return (
            f"TestSuite<{self.model_name}/{self.label}, {len(self)} tests>"
        )


# -- JSON helpers ------------------------------------------------------------------


def _instruction_to_dict(inst: Instruction) -> dict:
    out: dict = {"kind": inst.kind.value}
    if inst.address is not None:
        out["addr"] = inst.address
    if inst.order is not Order.PLAIN:
        out["order"] = inst.order.name
    if inst.fence is not None:
        out["fence"] = inst.fence.name
    if inst.value is not None:
        out["value"] = inst.value
    if inst.scope is not None:
        out["scope"] = inst.scope.name
    return out


def _instruction_from_dict(item: dict) -> Instruction:
    return Instruction(
        kind=EventKind(item["kind"]),
        address=item.get("addr"),
        order=Order[item["order"]] if "order" in item else Order.PLAIN,
        fence=FenceKind[item["fence"]] if "fence" in item else None,
        value=item.get("value"),
        scope=Scope[item["scope"]] if "scope" in item else None,
    )


def test_to_dict(test: LitmusTest) -> dict:
    """JSON-serializable structural form of a test (the suite schema's
    test fragment; also the wire/checkpoint format of :mod:`repro.exec`)."""
    out: dict = {
        "threads": [
            [_instruction_to_dict(i) for i in thread]
            for thread in test.threads
        ],
        "rmw": sorted(list(p) for p in test.rmw),
        "deps": sorted(
            [d.src, d.dst, d.kind.name] for d in test.deps
        ),
        "scopes": list(test.scopes) if test.scopes is not None else None,
    }
    if test.addr_map is not None:
        # omitted when absent, so consistency-only suite files are
        # byte-identical to the pre-transistency schema
        out["addr_map"] = [list(p) for p in test.addr_map]
    return out


def test_from_dict(item: dict) -> LitmusTest:
    threads = tuple(
        tuple(_instruction_from_dict(i) for i in thread)
        for thread in item["threads"]
    )
    rmw = frozenset((a, b) for a, b in item.get("rmw", []))
    deps = frozenset(
        Dep(s, d, DepKind[k]) for s, d, k in item.get("deps", [])
    )
    scopes = item.get("scopes")
    addr_map = item.get("addr_map")
    return LitmusTest(
        threads,
        rmw,
        deps,
        tuple(scopes) if scopes is not None else None,
        None,
        tuple((v, p) for v, p in addr_map) if addr_map else None,
    )


def outcome_to_dict(outcome: Outcome) -> dict:
    return {
        "rf": [list(p) for p in outcome.rf_sources],
        "finals": [list(p) for p in outcome.finals],
    }


def outcome_from_dict(item: dict) -> Outcome:
    return Outcome(
        tuple((r, s) for r, s in item["rf"]),
        tuple((a, w) for a, w in item["finals"]),
    )


def entry_to_dict(entry: SuiteEntry) -> dict:
    """The suite schema's entry fragment (test + witness + axioms) —
    also the wire form :mod:`repro.service` ships results in."""
    out = test_to_dict(entry.test)
    out["witness"] = outcome_to_dict(entry.witness)
    out["axioms"] = sorted(entry.axioms)
    return out


def entry_from_dict(item: dict) -> tuple[LitmusTest, Outcome, set[str]]:
    """Inverse of :func:`entry_to_dict`, as ``TestSuite.add`` arguments."""
    test = test_from_dict(item)
    witness = outcome_from_dict(item["witness"])
    return test, witness, set(item.get("axioms", []))
