"""The litmus test minimality criterion (paper Definition 1, §4.2).

    A litmus test satisfies the minimality criterion with respect to a
    particular memory model if and only if that test has at least one
    forbidden outcome that becomes observable under every instruction
    relaxation that can be applied to the test.

Three evaluation modes are provided, mirroring the paper's Fig. 5:

* :attr:`CriterionMode.EXACT` — the sound exists-forall statement of
  Fig. 5b.  An outcome is *forbidden* iff **no** execution producing it
  satisfies the axiom (quantifying over all auxiliary relations, ``co``
  interior and ``sc`` included), and each relaxed test is re-searched for
  **some** valid execution producing the projected outcome.  Alloy cannot
  express this first-order; our explicit oracle can.
* :attr:`CriterionMode.EXECUTION` — the Fig. 5c approximation the paper
  actually runs: outcomes are equated with whole executions, auxiliary
  relations are fixed before relaxations apply, and relaxed validity is
  evaluated on *derived perturbed relations* of the same execution
  (Fig. 6).  This admits the false negatives (Fig. 18) and the mild false
  positives (§4.3) the paper describes.
* :attr:`CriterionMode.EXECUTION_WA` — Fig. 5c plus the Fig. 19 ``sc``
  reversal workaround (models opt in via ``MemoryModel.wa_axioms``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.litmus.execution import (
    Execution,
    Outcome,
    project_outcome,
    prune_outcome,
)
from repro.litmus.test import LitmusTest
from repro.models.base import MemoryModel
from repro.core.oracle import ExplicitOracle
from repro.relax.base import Application, RelaxedTest, Relaxation
from repro.relax.instruction import relaxations_for

__all__ = [
    "CriterionMode",
    "MinimalityResult",
    "MinimalityChecker",
    "perturb_execution",
]


class CriterionMode(enum.Enum):
    EXACT = "exact"              # paper Fig. 5b (sound)
    EXECUTION = "execution"      # paper Fig. 5c (approximate)
    EXECUTION_WA = "execution-wa"  # Fig. 5c + Fig. 19 workaround


@dataclass(frozen=True)
class MinimalityResult:
    """Outcome of checking one test against the criterion."""

    test: LitmusTest
    axiom: str | None
    is_minimal: bool
    #: a forbidden outcome observable under every relaxation (if minimal)
    witness: Outcome | None = None
    #: the relaxation application that defeated the last candidate
    #: outcome (if not minimal and some forbidden outcome existed)
    blocking: tuple[str, int, str] | None = None
    #: number of forbidden outcomes considered
    forbidden_count: int = 0
    #: number of relaxation applications quantified over
    application_count: int = 0
    #: per-application relaxed tests for the witness (diagnostics)
    relaxed_tests: tuple[LitmusTest, ...] = field(default=(), compare=False)

    def __bool__(self) -> bool:
        return self.is_minimal


def perturb_execution(execution: Execution, relaxed: RelaxedTest) -> Execution:
    """Re-interpret an execution on a relaxed test (Fig. 6's ``_p``).

    Events removed by the relaxation disappear from every relation; a
    read whose source was removed becomes an initial-state read (the
    paper's "leave the return value unconstrained" treatment); per-address
    coherence orders stay in relative order, which is exactly the Fig. 8
    transitive-closure repair.
    """
    emap = relaxed.event_map
    target = relaxed.test
    rf = []
    for read, src in execution.rf:
        new_read = emap[read]
        if new_read is None:
            continue
        new_src = None if src is None else emap[src]
        if new_src is not None and not _same_location(
            target, new_read, new_src
        ):
            # A relaxation that rewrites the address map can leave the
            # source writing a different location than its read; the read
            # falls back to the initial state (unconstrained treatment).
            new_src = None
        rf.append((new_read, new_src))
    rf.sort()
    co = []
    for addr in target.locations:
        order = []
        for orig in execution.co:
            for x in orig:
                w = emap[x]
                if w is None:
                    continue
                waddr = target.instruction(w).address
                if waddr is not None and target.location_of(waddr) == addr:
                    order.append(w)
        co.append(tuple(order))
    sc = tuple(emap[f] for f in execution.sc if emap[f] is not None)
    return Execution(target, tuple(rf), tuple(co), sc)


def _same_location(test: LitmusTest, a: int, b: int) -> bool:
    addr_a = test.instruction(a).address
    addr_b = test.instruction(b).address
    return (
        addr_a is not None
        and addr_b is not None
        and test.location_of(addr_a) == test.location_of(addr_b)
    )


class MinimalityChecker:
    """Checks tests against the minimality criterion for one model."""

    def __init__(
        self,
        model: MemoryModel,
        mode: CriterionMode = CriterionMode.EXACT,
        relaxations: tuple[Relaxation, ...] | None = None,
        oracle=None,
    ):
        """``oracle`` defaults to the explicit-enumeration oracle; pass a
        :class:`repro.alloy.AlloyOracle` to run the criterion through the
        paper's SAT pipeline instead (same ``analyze``/``observable``/
        ``executions`` surface)."""
        self.model = model
        self.mode = mode
        self.relaxations = (
            relaxations
            if relaxations is not None
            else relaxations_for(model.vocabulary)
        )
        workaround = mode is CriterionMode.EXECUTION_WA
        self.oracle = (
            oracle
            if oracle is not None
            else ExplicitOracle(model, workaround=workaround)
        )

    # -- public API ------------------------------------------------------------

    def applications(
        self, test: LitmusTest
    ) -> list[tuple[Relaxation, Application]]:
        """Every relaxation application the criterion quantifies over."""
        vocab = self.model.vocabulary
        return [
            (relax, app)
            for relax in self.relaxations
            for app in relax.applications(test, vocab)
        ]

    def check(
        self, test: LitmusTest, axiom: str | None = None
    ) -> MinimalityResult:
        """Check the criterion w.r.t. one axiom (or the whole model)."""
        if self.mode is CriterionMode.EXACT:
            return self._check_exact(test, axiom)
        return self._check_execution(test, axiom)

    def is_minimal(self, test: LitmusTest, axiom: str | None = None) -> bool:
        return self.check(test, axiom).is_minimal

    # -- Fig. 5b: sound, outcome-quantified ----------------------------------------

    def _check_exact(
        self, test: LitmusTest, axiom: str | None
    ) -> MinimalityResult:
        analysis = self.oracle.analyze(test)
        forbidden = analysis.forbidden(axiom)
        apps = self.applications(test)
        if not forbidden or not apps:
            return MinimalityResult(
                test, axiom, False, forbidden_count=len(forbidden),
                application_count=len(apps),
            )
        vocab = self.model.vocabulary
        relaxed_tests = [
            relax.apply(test, app, vocab) for relax, app in apps
        ]
        # Filter the forbidden outcomes application by application: an
        # outcome survives only if every relaxation renders it observable.
        # Iterating applications outermost fails fast — one unhelpful
        # relaxation usually kills every candidate outcome at once.
        surviving = sorted(forbidden, key=_outcome_key)
        blocking: tuple[str, int, str] | None = None
        for (relax, app), relaxed in zip(apps, relaxed_tests):
            surviving = [
                outcome
                for outcome in surviving
                if self.oracle.observable(
                    relaxed.test,
                    prune_outcome(
                        relaxed.test,
                        project_outcome(outcome, relaxed.event_map),
                    ),
                )
            ]
            if not surviving:
                blocking = (relax.name, app.target, app.detail)
                break
        if surviving:
            return MinimalityResult(
                test,
                axiom,
                True,
                witness=surviving[0],
                forbidden_count=len(forbidden),
                application_count=len(apps),
                relaxed_tests=tuple(r.test for r in relaxed_tests),
            )
        return MinimalityResult(
            test, axiom, False, blocking=blocking,
            forbidden_count=len(forbidden), application_count=len(apps),
        )

    # -- Fig. 5c: approximate, execution-quantified -----------------------------------

    def _check_execution(
        self, test: LitmusTest, axiom: str | None
    ) -> MinimalityResult:
        apps = self.applications(test)
        if not apps:
            return MinimalityResult(test, axiom, False)
        vocab = self.model.vocabulary
        relaxed_tests = [
            relax.apply(test, app, vocab) for relax, app in apps
        ]
        axioms = dict(
            self.model.wa_axioms()
            if self.mode is CriterionMode.EXECUTION_WA
            else self.model.axioms()
        )
        check_one = axioms[axiom] if axiom is not None else None
        blocking: tuple[str, int, str] | None = None
        forbidden_seen = 0
        for execution in self.oracle.executions(test):
            view = self.model.view(execution)
            if check_one is not None:
                if check_one(view):
                    continue
            elif all(fn(view) for fn in axioms.values()):
                continue
            forbidden_seen += 1
            ok = True
            for (relax, app), relaxed in zip(apps, relaxed_tests):
                perturbed = perturb_execution(execution, relaxed)
                pview = self.model.view(perturbed)
                if not all(fn(pview) for fn in axioms.values()):
                    blocking = (relax.name, app.target, app.detail)
                    ok = False
                    break
            if ok:
                return MinimalityResult(
                    test,
                    axiom,
                    True,
                    witness=execution.outcome,
                    forbidden_count=forbidden_seen,
                    application_count=len(apps),
                    relaxed_tests=tuple(r.test for r in relaxed_tests),
                )
        return MinimalityResult(
            test, axiom, False, blocking=blocking,
            forbidden_count=forbidden_seen, application_count=len(apps),
        )


def _outcome_key(outcome: Outcome):
    # None sorts below any event id so outcomes order deterministically.
    return (
        tuple((r, -1 if s is None else s) for r, s in outcome.rf_sources),
        tuple((a, -1 if w is None else w) for a, w in outcome.finals),
    )
