"""Consistency oracle: per-test execution analysis with memoization.

The minimality criterion asks the same two questions over and over:

* which outcomes of a test are forbidden (w.r.t. one axiom)?
* is a (partial) outcome observable in some valid execution of a test?

The :class:`ExplicitOracle` answers both by exhaustive execution
enumeration, memoizing per-test analyses.  During synthesis the same
relaxed tests recur constantly (RI applied to structurally similar
candidates produces identical tests), so the observability cache hits
hard.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.litmus.execution import Execution, Outcome
from repro.litmus.test import LitmusTest
from repro.models.base import MemoryModel
from repro.obs import derive_rates
from repro.semantics.enumerate import enumerate_executions

__all__ = ["TestAnalysis", "ExplicitOracle"]


@dataclass(frozen=True)
class TestAnalysis:
    """One test's outcome landscape under a model.

    ``axiom_valid[name]`` is the set of outcomes produced by at least one
    execution satisfying that single axiom; ``model_valid`` is the set of
    outcomes produced by at least one execution satisfying *all* axioms.
    ``all_outcomes`` is every outcome any well-formed execution produces.
    """

    __test__ = False  # not a pytest test class despite the name

    all_outcomes: frozenset[Outcome]
    model_valid: frozenset[Outcome]
    axiom_valid: dict[str, frozenset[Outcome]]

    def forbidden(self, axiom: str | None = None) -> frozenset[Outcome]:
        """Outcomes forbidden w.r.t. one axiom (or the whole model)."""
        allowed = self.model_valid if axiom is None else self.axiom_valid[axiom]
        return self.all_outcomes - allowed

    def admits(self, constraint: Outcome) -> bool:
        """Does some model-valid outcome extend the (partial) constraint?"""
        want_rf = dict(constraint.rf_sources)
        want_finals = dict(constraint.finals)
        for outcome in self.model_valid:
            rf = dict(outcome.rf_sources)
            if any(rf.get(r, _MISSING) != s for r, s in want_rf.items()):
                continue
            # An address absent from the outcome is untouched by the test
            # and keeps its initial value — it satisfies a None (initial)
            # constraint, which arises when a relaxation removes every
            # access to an address.
            finals = dict(outcome.finals)
            if any(finals.get(a) != w for a, w in want_finals.items()):
                continue
            return True
        return False


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


class _LRU(OrderedDict):
    """A minimal LRU mapping used for the oracle's caches."""

    def __init__(self, maxsize: int):
        super().__init__()
        self.maxsize = maxsize

    def remember(self, key, value):
        self[key] = value
        self.move_to_end(key)
        if len(self) > self.maxsize:
            self.popitem(last=False)
        return value


class ExplicitOracle:
    """Exhaustive-enumeration consistency oracle for one memory model."""

    def __init__(
        self,
        model: MemoryModel,
        analysis_cache: int = 4096,
        observe_cache: int = 65536,
        workaround: bool = False,
    ):
        self.model = model
        self.workaround = workaround
        self._axioms = dict(
            model.wa_axioms() if workaround else model.axioms()
        )
        self._analysis: _LRU = _LRU(analysis_cache)
        self._observe: _LRU = _LRU(observe_cache)
        self.stats = {
            "analyses": 0,
            "analysis_hits": 0,
            "observations": 0,
            "observe_hits": 0,
            "executions": 0,
        }

    def as_metrics(self) -> dict[str, int | float]:
        """The :class:`repro.obs.Stats` protocol: raw summable counters
        only — derived ratios come from :func:`repro.obs.derive_rates`."""
        return dict(self.stats)

    def cache_stats(self) -> dict[str, float]:
        """Counters plus derived hit rates — an adapter over
        :meth:`as_metrics` kept for the ``--json`` surfaces; merging
        across shards sums the raw counters and recomputes the rates."""
        metrics = self.as_metrics()
        return {**metrics, **derive_rates(metrics)}

    # -- execution-level helpers -----------------------------------------------

    def executions(self, test: LitmusTest):
        """All well-formed executions (including ``sc`` enumeration when
        the model requires it)."""
        return enumerate_executions(test, with_sc=self.model.uses_sc_order)

    def axiom_bits(self, execution: Execution) -> dict[str, bool]:
        """Which axioms the execution satisfies."""
        view = self.model.view(execution)
        return {name: fn(view) for name, fn in self._axioms.items()}

    def is_valid(self, execution: Execution) -> bool:
        view = self.model.view(execution)
        return all(fn(view) for fn in self._axioms.values())

    # -- outcome-level analysis ---------------------------------------------------

    def analyze(self, test: LitmusTest) -> TestAnalysis:
        """Compute (or recall) the outcome landscape of a test."""
        cached = self._analysis.get(test)
        if cached is not None:
            self.stats["analysis_hits"] += 1
            return cached
        self.stats["analyses"] += 1
        all_outcomes: set[Outcome] = set()
        model_valid: set[Outcome] = set()
        axiom_valid: dict[str, set[Outcome]] = {
            name: set() for name in self._axioms
        }
        for execution in self.executions(test):
            self.stats["executions"] += 1
            outcome = execution.outcome
            all_outcomes.add(outcome)
            bits = self.axiom_bits(execution)
            for name, ok in bits.items():
                if ok:
                    axiom_valid[name].add(outcome)
            if all(bits.values()):
                model_valid.add(outcome)
        analysis = TestAnalysis(
            frozenset(all_outcomes),
            frozenset(model_valid),
            {k: frozenset(v) for k, v in axiom_valid.items()},
        )
        return self._analysis.remember(test, analysis)

    def observable(self, test: LitmusTest, constraint: Outcome) -> bool:
        """Is the (possibly partial) outcome produced by some execution
        valid under the full model?

        Answered from the cached per-test analysis: the analysis's
        model-valid outcome set is usually tiny and is shared across all
        constraints ever asked about this test (and RI-relaxed tests
        recur constantly during synthesis).
        """
        key = (test, constraint)
        cached = self._observe.get(key)
        if cached is not None:
            self.stats["observe_hits"] += 1
            return cached
        self.stats["observations"] += 1
        return self._observe.remember(key, self.analyze(test).admits(constraint))
