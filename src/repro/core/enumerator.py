"""Candidate litmus test enumeration.

The paper lets Alloy range over "the set of all tests within the given
test size bound" (Fig. 5a).  This module enumerates the same design
space explicitly: every assignment of instructions (drawn from the
model's vocabulary) to threads, plus every overlay of RMW pairings and
dependency edges, up to an instruction-count bound.

Enumeration applies the structural prunes the paper itself relies on:

* *boundary fences* — "a fence at the start or end of a thread is
  irrelevant" (paper §6.3), so fences are only generated strictly inside
  a thread (configurable);
* *communication* — an address accessed once, or never written, cannot
  participate in any forbidden outcome's communication pattern, so by
  default every address must have at least two accessors including a
  write (configurable — see DESIGN.md §5);
* *canonical address order* — only tests whose addresses first appear in
  sequential order are emitted (each symmetry class keeps at least one
  representative; full symmetry reduction happens in the canonicalizer).

Thread multisets are generated in sorted order per size group to avoid
emitting permuted-thread duplicates wholesale.

Sharding
--------

The candidate space splits into deterministic *work items*: one item per
``(thread-size partition, first-unit index)`` pair, i.e. the enumerator's
top-level fan-out.  ``enumerate_tests(..., shard=(i, n))`` keeps only the
items whose ordinal is congruent to ``i`` modulo ``n``, so the ``n``
shards partition the space exactly (round-robin, which also balances the
expensive early partitions across shards).  The union of all shards
yields the same candidates in the same within-shard relative order as the
unsharded stream — :mod:`repro.exec` exploits this to merge parallel
results back into the sequential order.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from itertools import combinations, combinations_with_replacement, product

from repro.litmus.events import (
    DepKind,
    EventKind,
    Instruction,
    dirty,
    fence,
    ptwalk,
    read,
    remap,
    write,
)
from repro.litmus.test import Dep, LitmusTest
from repro.models.base import Vocabulary
from repro.obs import current_registry

__all__ = [
    "EnumerationConfig",
    "ThreadUnit",
    "enumerate_tests",
    "enumerate_shard",
    "count_tests",
    "slot_choices",
    "dep_candidates",
    "rmw_candidates",
]


@dataclass(frozen=True)
class EnumerationConfig:
    """Bounds on the candidate-test design space."""

    max_events: int
    max_threads: int = 4
    max_addresses: int = 3
    max_deps: int = 2
    max_rmws: int = 2
    min_events: int = 2
    #: cap on instructions per thread (None = up to max_events)
    max_thread_size: int | None = None
    require_communication: bool = True
    allow_boundary_fences: bool = False
    #: cap on virtual->physical alias-map entries per candidate
    #: (TransForm enhanced tests); 0 disables the aliasing axis entirely,
    #: keeping the candidate stream byte-identical to pre-vmem output.
    max_aliases: int = 0


@dataclass(frozen=True)
class ThreadUnit:
    """One thread's instructions plus its thread-local rmw/dep overlays.

    ``rmw`` and ``deps`` use thread-local instruction indices; they are
    rebased to global event ids at assembly time.
    """

    instructions: tuple[Instruction, ...]
    rmw: tuple[tuple[int, int], ...] = ()
    deps: tuple[tuple[int, int, DepKind], ...] = ()

    @property
    def size(self) -> int:
        return len(self.instructions)

    def sort_key(self) -> tuple:
        return (
            tuple(
                (
                    i.kind.value,
                    -1 if i.address is None else i.address,
                    int(i.order),
                    i.fence.value if i.fence else "",
                    -1 if i.value is None else i.value,
                )
                for i in self.instructions
            ),
            self.rmw,
            tuple((s, d, k.value) for s, d, k in self.deps),
        )


def _slot_choices(
    vocab: Vocabulary, config: EnumerationConfig
) -> list[Instruction]:
    choices: list[Instruction] = []
    # Scoped models annotate every synchronizing instruction with a
    # scope; plain accesses carry none.
    def scopes_for(annotated: bool):
        if vocab.has_scopes and annotated:
            return vocab.scopes
        return (None,)

    for addr in range(config.max_addresses):
        for order in vocab.read_orders:
            for scope in scopes_for(order.is_atomic or order.is_acquire):
                choices.append(read(addr, order, scope))
        for order in vocab.write_orders:
            for scope in scopes_for(order.is_atomic or order.is_release):
                choices.append(write(addr, order=order, scope=scope))
        # Transistency kinds are generated plain — their ordering
        # semantics come from the translation axioms, not annotations.
        if EventKind.PTWALK in vocab.vmem_kinds:
            choices.append(ptwalk(addr))
        if EventKind.REMAP in vocab.vmem_kinds:
            choices.append(remap(addr))
        if EventKind.DIRTY in vocab.vmem_kinds:
            choices.append(dirty(addr))
    for kind in vocab.fence_kinds:
        for scope in scopes_for(True):
            choices.append(fence(kind, scope))
    return choices


def _dep_candidates(
    instructions: tuple[Instruction, ...], vocab: Vocabulary
) -> list[tuple[int, int, DepKind]]:
    out = []
    for i, src in enumerate(instructions):
        if not src.is_read:
            continue
        for j in range(i + 1, len(instructions)):
            dst = instructions[j]
            if dst.is_fence:
                continue
            for kind in vocab.dep_kinds:
                if kind is DepKind.DATA and not dst.is_write:
                    continue
                out.append((i, j, kind))
    return out


def _rmw_candidates(
    instructions: tuple[Instruction, ...]
) -> list[tuple[int, int]]:
    out = []
    for i in range(len(instructions) - 1):
        a, b = instructions[i], instructions[i + 1]
        if a.is_read and b.is_write and a.address == b.address:
            out.append((i, i + 1))
    return out


def slot_choices(
    vocab: Vocabulary, config: EnumerationConfig
) -> list[Instruction]:
    """Every instruction an enumeration slot may hold for this vocabulary.

    Public entry point shared with :mod:`repro.difftest.generator`, which
    samples from the same design space the exhaustive enumerator walks.
    """
    return _slot_choices(vocab, config)


def dep_candidates(
    instructions: tuple[Instruction, ...], vocab: Vocabulary
) -> list[tuple[int, int, DepKind]]:
    """Well-formed thread-local dependency edges over an instruction
    sequence (read sources, po-later non-fence targets, data deps only to
    writes)."""
    return _dep_candidates(instructions, vocab)


def rmw_candidates(
    instructions: tuple[Instruction, ...]
) -> list[tuple[int, int]]:
    """Po-adjacent same-address (read, write) pairs eligible for an rmw
    pairing."""
    return _rmw_candidates(instructions)


def _dep_subset_ok(subset: tuple[tuple[int, int, DepKind], ...]) -> bool:
    # At most one dependency kind per (src, dst) edge — multiple kinds on
    # one edge collapse to the strongest and only bloat the space.
    edges = {(s, d) for s, d, _ in subset}
    return len(edges) == len(subset)


def thread_units(
    size: int, vocab: Vocabulary, config: EnumerationConfig
) -> list[ThreadUnit]:
    """Every thread of ``size`` instructions over the vocabulary."""
    units: list[ThreadUnit] = []
    choices = _slot_choices(vocab, config)
    for seq in product(choices, repeat=size):
        if not config.allow_boundary_fences:
            if seq[0].is_fence or seq[-1].is_fence:
                continue
        rmw_cands = _rmw_candidates(seq) if vocab.allows_rmw else []
        dep_cands = _dep_candidates(seq, vocab)
        rmw_subsets: list[tuple[tuple[int, int], ...]] = [()]
        for k in range(1, config.max_rmws + 1):
            for combo in combinations(rmw_cands, k):
                if _non_overlapping(combo):
                    rmw_subsets.append(combo)
        dep_subsets: list[tuple[tuple[int, int, DepKind], ...]] = [()]
        for k in range(1, config.max_deps + 1):
            for combo in combinations(dep_cands, k):
                if _dep_subset_ok(combo):
                    dep_subsets.append(combo)
        for rmw in rmw_subsets:
            rmw_pairs = set(rmw)
            for deps in dep_subsets:
                # A data dep duplicating an rmw pairing adds nothing.
                if any(
                    (s, d) in rmw_pairs and k is DepKind.DATA
                    for s, d, k in deps
                ):
                    continue
                units.append(ThreadUnit(seq, rmw, deps))
    units.sort(key=ThreadUnit.sort_key)
    return units


def _non_overlapping(pairs: tuple[tuple[int, int], ...]) -> bool:
    used: set[int] = set()
    for a, b in pairs:
        if a in used or b in used:
            return False
        used.update((a, b))
    return True


def _partitions(n: int, max_parts: int, max_part: int) -> Iterator[tuple[int, ...]]:
    """Partitions of ``n`` into at most ``max_parts`` parts, descending."""

    def rec(remaining: int, parts_left: int, cap: int, acc: tuple[int, ...]):
        if remaining == 0:
            yield acc
            return
        if parts_left == 0:
            return
        for part in range(min(cap, remaining), 0, -1):
            yield from rec(remaining - part, parts_left - 1, part, acc + (part,))

    yield from rec(n, max_parts, max_part, ())


def _assemble(
    units: tuple[ThreadUnit, ...], scopes: tuple[int, ...] | None = None
) -> LitmusTest:
    threads = tuple(u.instructions for u in units)
    rmw = set()
    deps = set()
    offset = 0
    for unit in units:
        for a, b in unit.rmw:
            rmw.add((offset + a, offset + b))
        for s, d, k in unit.deps:
            deps.add(Dep(offset + s, offset + d, k))
        offset += unit.size
    return LitmusTest(threads, frozenset(rmw), frozenset(deps), scopes)


def _group_assignments(num_threads: int) -> Iterator[tuple[int, ...]]:
    """Canonical work-group partitions: restricted growth strings (the
    first thread is in group 0; each later thread joins an existing
    group or opens the next one)."""

    def rec(acc: tuple[int, ...], max_used: int):
        if len(acc) == num_threads:
            yield acc
            return
        for g in range(max_used + 2):
            yield from rec(acc + (g,), max(max_used, g))

    yield from rec((0,), 0)


def _addresses_canonical(units: tuple[ThreadUnit, ...]) -> bool:
    """Addresses must first appear as 0, 1, 2, ... in flattened order."""
    next_expected = 0
    seen: set[int] = set()
    for unit in units:
        for inst in unit.instructions:
            addr = inst.address
            if addr is None or addr in seen:
                continue
            if addr != next_expected:
                return False
            seen.add(addr)
            next_expected += 1
    return True


def _communicates(units: tuple[ThreadUnit, ...]) -> bool:
    """Every address has >= 2 accessors, at least one of them a write."""
    accesses: dict[int, int] = {}
    writes: dict[int, int] = {}
    for unit in units:
        for inst in unit.instructions:
            if inst.address is None:
                continue
            accesses[inst.address] = accesses.get(inst.address, 0) + 1
            if inst.is_write:
                writes[inst.address] = writes.get(inst.address, 0) + 1
    return all(
        accesses[a] >= 2 and writes.get(a, 0) >= 1 for a in accesses
    )


def enumerate_tests(
    vocab: Vocabulary,
    config: EnumerationConfig,
    reject: Callable[[LitmusTest], bool] | None = None,
    shard: tuple[int, int] | None = None,
) -> Iterator[LitmusTest]:
    """Stream every candidate test within the configured bounds.

    ``reject`` is an opt-in early filter: candidates it returns True for
    are dropped before they are yielded (and so before any oracle call).
    :func:`repro.analysis.early_reject` builds one from the lint passes.

    ``shard=(i, n)`` restricts the stream to the ``i``-th of ``n``
    deterministic slices of the candidate space (see the module
    docstring); the ``n`` shards partition the unsharded stream exactly.
    """
    for _, test in enumerate_shard(vocab, config, shard=shard, reject=reject):
        yield test


def enumerate_shard(
    vocab: Vocabulary,
    config: EnumerationConfig,
    shard: tuple[int, int] | None = None,
    reject: Callable[[LitmusTest], bool] | None = None,
) -> Iterator[tuple[int, LitmusTest]]:
    """Like :func:`enumerate_tests`, but yields ``(item, test)`` pairs.

    ``item`` is the global ordinal of the work item (top-level enumerator
    shape) the candidate belongs to.  Item ordinals are assigned over the
    *whole* space regardless of ``shard``, and candidates within one item
    stream in a deterministic order, so sorting shard outputs by
    ``(item, position-within-item)`` reconstructs the exact sequential
    enumeration order — the property :mod:`repro.exec`'s merge relies on.
    """
    if shard is not None:
        shard_index, shard_count = shard
        if shard_count < 1:
            raise ValueError(f"shard count must be >= 1, got {shard_count}")
        if not 0 <= shard_index < shard_count:
            raise ValueError(
                f"shard index {shard_index} out of range for {shard_count} shards"
            )
    unit_pool: dict[int, list[ThreadUnit]] = {}
    item = -1
    for n in range(config.min_events, config.max_events + 1):
        cap = (
            n
            if config.max_thread_size is None
            else min(n, config.max_thread_size)
        )
        for sizes in _partitions(n, config.max_threads, cap):
            groups = _group_sizes(sizes)
            first_size = groups[0][0]
            if first_size not in unit_pool:
                unit_pool[first_size] = thread_units(first_size, vocab, config)
            for first_index in range(len(unit_pool[first_size])):
                item += 1
                if shard is not None and item % shard_count != shard_index:
                    continue
                for selection in _unit_selections(
                    groups, unit_pool, vocab, config, first_index
                ):
                    if config.max_rmws and sum(len(u.rmw) for u in selection) > config.max_rmws:
                        continue
                    if config.max_deps and sum(len(u.deps) for u in selection) > config.max_deps:
                        continue
                    if not _addresses_canonical(selection):
                        continue
                    communicates = (
                        not config.require_communication
                        or _communicates(selection)
                    )
                    if not communicates and config.max_aliases == 0:
                        continue
                    for candidate in _assembled_variants(
                        selection, vocab, config, communicates
                    ):
                        if reject is None:
                            yield item, candidate
                            continue
                        current_registry().count("reject_checks")
                        if not reject(candidate):
                            yield item, candidate
                        else:
                            current_registry().count("early_rejects")


def _assembled_variants(
    selection: tuple[ThreadUnit, ...],
    vocab: Vocabulary,
    config: EnumerationConfig,
    communicates: bool,
) -> Iterator[LitmusTest]:
    """Assemble one selection into candidates: every scope assignment
    (scoped models), and — when ``max_aliases`` allows — every aliased
    variant.  A base candidate that only communicates *through* aliasing
    (e.g. one write to ``v`` observed via ``p``) is emitted solely in its
    aliased forms."""
    assignments: Iterator[tuple[int, ...] | None]
    if vocab.has_scopes:
        assignments = _group_assignments(len(selection))
    else:
        assignments = iter((None,))
    for assignment in assignments:
        base = _assemble(selection, assignment)
        if communicates:
            yield base
        if config.max_aliases:
            for amap in _alias_maps(len(base.addresses), config.max_aliases):
                candidate = LitmusTest(
                    base.threads, base.rmw, base.deps, base.scopes, None, amap
                )
                if config.require_communication and not _communicates_locations(
                    candidate
                ):
                    continue
                yield candidate


def _alias_maps(
    num_addresses: int, max_aliases: int
) -> Iterator[tuple[tuple[int, int], ...]]:
    """Non-identity alias maps over canonical addresses ``0..n-1``.

    Each map merges addresses into location groups anchored at their
    minimal member (the canonicalizer's orientation), using at most
    ``max_aliases`` entries.  Enumerated as restricted growth strings, so
    the stream is deterministic and duplicate-free.
    """
    if num_addresses < 2:
        return

    def rec(acc: tuple[int, ...], max_used: int):
        if len(acc) == num_addresses:
            merges = num_addresses - (max_used + 1)
            if 0 < merges <= max_aliases:
                reps: dict[int, int] = {}
                entries: list[tuple[int, int]] = []
                for addr, g in enumerate(acc):
                    if g in reps:
                        entries.append((addr, reps[g]))
                    else:
                        reps[g] = addr
                yield tuple(entries)
            return
        for g in range(max_used + 2):
            yield from rec(acc + (g,), max(max_used, g))

    yield from rec((0,), 0)


def _communicates_locations(test: LitmusTest) -> bool:
    """Location-aware communication prune for aliased candidates."""
    return all(
        len(test.accesses_to(loc)) >= 2 and len(test.writes_to(loc)) >= 1
        for loc in test.locations
    )


def _group_sizes(sizes: tuple[int, ...]) -> list[tuple[int, int]]:
    """Run-length encode a descending size tuple: [(size, count), ...]."""
    groups: list[tuple[int, int]] = []
    for s in sizes:
        if groups and groups[-1][0] == s:
            groups[-1] = (s, groups[-1][1] + 1)
        else:
            groups.append((s, 1))
    return groups


def _unit_selections(
    groups: list[tuple[int, int]],
    unit_pool: dict[int, list[ThreadUnit]],
    vocab: Vocabulary,
    config: EnumerationConfig,
    first_index: int | None = None,
) -> Iterator[tuple[ThreadUnit, ...]]:
    """Thread-unit multisets for each size group.

    ``first_index`` pins the first group's first unit to that pool index;
    splitting ``combinations_with_replacement`` on its lead element this
    way preserves the overall lexicographic order, which is what makes
    the work-item ordinals in :func:`enumerate_shard` stable.
    """
    per_group: list = []
    for gi, (size, count) in enumerate(groups):
        if size not in unit_pool:
            unit_pool[size] = thread_units(size, vocab, config)
        pool = unit_pool[size]
        if gi == 0 and first_index is not None:
            first = pool[first_index]
            per_group.append(
                [
                    (first,) + rest
                    for rest in combinations_with_replacement(
                        pool[first_index:], count - 1
                    )
                ]
            )
        else:
            per_group.append(combinations_with_replacement(pool, count))
    for combo in product(*per_group):
        yield tuple(u for group in combo for u in group)


def count_tests(vocab: Vocabulary, config: EnumerationConfig) -> int:
    """Size of the candidate space ("All Progs" in the paper's Fig. 13a)."""
    return sum(1 for _ in enumerate_tests(vocab, config))
