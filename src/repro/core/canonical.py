"""Litmus test canonicalization (paper §5.1 symmetry reduction).

Two tests are *symmetric* if one maps onto the other by permuting threads
and renaming addresses (paper Fig. 9) — scope groups, when present, are
renamed along with the threads.  Only one representative per symmetry
class should be emitted.

Two canonicalizers are provided:

* :func:`canonicalize` — **exact**: minimizes the test's encoding over
  every thread permutation, renaming addresses by first use under each
  permutation (first-use renaming is a canonical representative of the
  address-permutation orbit, so the search over thread orders is
  sufficient).  This catches the WWC symmetry the paper's canonicalizer
  misses.
* :func:`paper_canonicalize` — the Mador-Haim-style greedy the paper
  describes: hash threads independently, sort, then rename addresses
  sequentially.  When two threads have identical shapes modulo addresses
  (WWC's first two threads, paper Fig. 14) the greedy cannot order them
  and symmetric variants survive.  Kept for the ablation bench.
"""

from __future__ import annotations

from itertools import permutations

from repro.litmus.events import Instruction
from repro.litmus.test import Dep, LitmusTest

__all__ = [
    "canonicalize",
    "canonical_form",
    "paper_canonicalize",
    "symmetry_class_size",
    "CanonicalSet",
]


def _encode_instruction(inst: Instruction, addr_id: int | None) -> tuple:
    # Write values are labels, not semantics (every write to an address
    # stores a distinct value and outcomes track event identity), so they
    # are excluded from the encoding and *normalized away* by _permuted.
    return (
        inst.kind.value,
        addr_id,
        int(inst.order),
        inst.fence.value if inst.fence else "",
        -1 if inst.scope is None else int(inst.scope),
    )


def _permuted(
    test: LitmusTest, order: tuple[int, ...]
) -> tuple[LitmusTest, dict[int, int], dict[int, int]]:
    """Rebuild the test with threads in ``order`` and addresses renamed by
    first use; returns the new test, the event-id map, and the address
    map."""
    addr_rename: dict[int, int] = {}
    event_map: dict[int, int] = {}
    threads: list[tuple[Instruction, ...]] = []
    scopes: list[int] = []
    scope_rename: dict[int, int] = {}
    next_eid = 0
    for tid in order:
        thread = []
        for i, inst in enumerate(test.threads[tid]):
            if inst.address is not None and inst.address not in addr_rename:
                addr_rename[inst.address] = len(addr_rename)
            new_inst = (
                inst
                if inst.address is None
                else Instruction(
                    inst.kind,
                    addr_rename[inst.address],
                    inst.order,
                    inst.fence,
                    None,  # values re-derive positionally (see _encode)
                    inst.scope,
                )
            )
            thread.append(new_inst)
            event_map[test.eid(tid, i)] = next_eid
            next_eid += 1
        threads.append(tuple(thread))
        if test.scopes is not None:
            group = test.scopes[tid]
            if group not in scope_rename:
                scope_rename[group] = len(scope_rename)
            scopes.append(scope_rename[group])
    rmw = frozenset((event_map[r], event_map[w]) for r, w in test.rmw)
    deps = frozenset(
        Dep(event_map[d.src], event_map[d.dst], d.kind) for d in test.deps
    )
    new_test = LitmusTest(
        tuple(threads),
        rmw,
        deps,
        tuple(scopes) if test.scopes is not None else None,
        test.name,
        _renamed_addr_map(test, addr_rename),
    )
    return new_test, event_map, addr_rename


def _renamed_addr_map(
    test: LitmusTest, addr_rename: dict[int, int]
) -> tuple[tuple[int, int], ...] | None:
    """Translate the aliasing layer through an address renaming.

    Which member of an alias group plays "physical" is itself a symmetry
    (merging ``v`` into ``p`` and ``p`` into ``v`` yield the same
    location structure), so each group is re-anchored at its minimal
    renamed member — making the canonical form independent of the input
    map's orientation.
    """
    if test.addr_map is None:
        return None
    groups: dict[int, list[int]] = {}
    for v, p in test.addr_map:
        groups.setdefault(p, []).append(v)
    entries: list[tuple[int, int]] = []
    for p, vs in groups.items():
        members = sorted(addr_rename[a] for a in (p, *vs))
        rep = members[0]
        entries += [(m, rep) for m in members[1:]]
    return tuple(sorted(entries))


def _encoding(test: LitmusTest) -> tuple:
    threads = tuple(
        tuple(
            _encode_instruction(inst, inst.address) for inst in thread
        )
        for thread in test.threads
    )
    return (
        threads,
        tuple(sorted(test.rmw)),
        tuple(sorted((d.src, d.dst, d.kind.value) for d in test.deps)),
        test.scopes if test.scopes is not None else (),
        test.addr_map if test.addr_map is not None else (),
    )


def canonicalize(
    test: LitmusTest,
) -> tuple[LitmusTest, dict[int, int], dict[int, int]]:
    """Exact canonical form; returns the form plus the event-id and
    address mappings from the input test to it."""
    best: tuple | None = None
    best_result = None
    for order in permutations(range(len(test.threads))):
        candidate, event_map, addr_map = _permuted(test, order)
        key = _encoding(candidate)
        if best is None or key < best:
            best, best_result = key, (candidate, event_map, addr_map)
    assert best_result is not None
    return best_result


def canonical_form(test: LitmusTest) -> LitmusTest:
    """Exact canonical form (drops the mappings)."""
    return canonicalize(test)[0]


def paper_canonicalize(test: LitmusTest) -> LitmusTest:
    """The paper's greedy canonicalizer (thread hashing + sequential
    address renaming), including its WWC blind spot."""
    # Hash each thread with *thread-local* address abstraction, as the
    # Mador-Haim scheme does, then sort threads by that key.  Ties keep
    # input order — which is exactly why swapped WWC variants survive.
    def local_key(tid: int) -> tuple:
        local_rename: dict[int, int] = {}
        out = []
        for inst in test.threads[tid]:
            if inst.address is not None and inst.address not in local_rename:
                local_rename[inst.address] = len(local_rename)
            addr_id = (
                None if inst.address is None else local_rename[inst.address]
            )
            out.append(_encode_instruction(inst, addr_id))
        return tuple(out)

    order = tuple(
        sorted(range(len(test.threads)), key=lambda tid: (local_key(tid), 0))
    )
    return _permuted(test, order)[0]


def symmetry_class_size(test: LitmusTest) -> int:
    """How many distinct raw presentations the test's symmetry class has
    (thread permutations yielding distinct first-use-renamed encodings)."""
    encodings = set()
    for order in permutations(range(len(test.threads))):
        candidate, _, _ = _permuted(test, order)
        encodings.add(_encoding(candidate))
    return len(encodings)


class CanonicalSet:
    """A set of tests modulo symmetry.

    ``exact=True`` uses the exact canonicalizer; ``exact=False``
    reproduces the paper's greedy post-processor.
    """

    def __init__(self, exact: bool = True):
        self.exact = exact
        self._seen: dict[LitmusTest, LitmusTest] = {}

    def _key(self, test: LitmusTest) -> LitmusTest:
        return canonical_form(test) if self.exact else paper_canonicalize(test)

    def add(self, test: LitmusTest) -> bool:
        """Insert; returns True if the test was new (not symmetric to a
        previously added test)."""
        key = self._key(test)
        if key in self._seen:
            return False
        self._seen[key] = test
        return True

    def __contains__(self, test: LitmusTest) -> bool:
        return self._key(test) in self._seen

    def __len__(self) -> int:
        return len(self._seen)

    def __iter__(self):
        return iter(self._seen.values())

    def canonical_tests(self):
        return iter(self._seen.keys())
