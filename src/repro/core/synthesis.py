"""The synthesis pipeline (paper §5): enumerate → check minimality →
canonicalize → emit per-axiom and union suites.

``synthesize`` is the top-level entry point the paper's Fig. 5a ``run
generate`` corresponds to: it streams every candidate test within the
size bound, keeps those satisfying the minimality criterion for at least
one axiom, and collects one suite per axiom plus the union suite.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.litmus.test import LitmusTest
from repro.models.base import MemoryModel
from repro.core.canonical import canonical_form
from repro.core.enumerator import EnumerationConfig, enumerate_tests
from repro.core.minimality import CriterionMode, MinimalityChecker
from repro.core.suite import TestSuite

__all__ = ["SynthesisResult", "synthesize"]


@dataclass
class SynthesisResult:
    """Per-axiom suites, the union suite, and bookkeeping counters."""

    model_name: str
    bound: int
    per_axiom: dict[str, TestSuite]
    union: TestSuite
    candidates: int = 0
    unique_candidates: int = 0
    minimal_tests: int = 0
    elapsed_seconds: float = 0.0
    axiom_seconds: dict[str, float] = field(default_factory=dict)

    def counts(self) -> dict[str, int]:
        out = {name: len(suite) for name, suite in self.per_axiom.items()}
        out["union"] = len(self.union)
        return out

    def summary(self) -> str:
        lines = [
            f"model={self.model_name} bound={self.bound} "
            f"candidates={self.candidates} unique={self.unique_candidates} "
            f"elapsed={self.elapsed_seconds:.2f}s"
        ]
        for name, suite in self.per_axiom.items():
            secs = self.axiom_seconds.get(name, 0.0)
            lines.append(f"  {name:<16s} {len(suite):5d} tests  {secs:8.2f}s")
        lines.append(f"  {'union':<16s} {len(self.union):5d} tests")
        return "\n".join(lines)


def synthesize(
    model: MemoryModel,
    bound: int,
    axioms: Iterable[str] | None = None,
    mode: CriterionMode = CriterionMode.EXACT,
    config: EnumerationConfig | None = None,
    exact_symmetry: bool = True,
    candidates: Iterable[LitmusTest] | None = None,
    progress: Callable[[int], None] | None = None,
    reject: Callable[[LitmusTest], bool] | None = None,
) -> SynthesisResult:
    """Synthesize the comprehensive suites for one model.

    Args:
        model: the memory model to synthesize for.
        bound: maximum instruction count per test.
        axioms: which axioms to build suites for (default: all of them).
        mode: criterion evaluation mode (Fig. 5b exact by default).
        config: enumeration bounds (defaults derive from ``bound``).
        exact_symmetry: use the exact canonicalizer (False reproduces the
            paper's greedy one, WWC blind spot included).
        candidates: explicit candidate stream (overrides the enumerator —
            used by tests and by suite-from-corpus workflows).
        progress: optional callback invoked with the running candidate
            count every 1000 candidates.
        reject: opt-in early filter passed to the enumerator; candidates
            it returns True for are skipped before any oracle call (see
            :func:`repro.analysis.early_reject`).  Ignored when an
            explicit ``candidates`` stream is supplied.
    """
    start = time.perf_counter()
    if config is None:
        config = EnumerationConfig(max_events=bound)
    axiom_names = tuple(axioms) if axioms is not None else model.axiom_names()
    checker = MinimalityChecker(model, mode)
    per_axiom = {
        name: TestSuite(model.name, name, exact_symmetry)
        for name in axiom_names
    }
    union = TestSuite(model.name, "union", exact_symmetry)
    axiom_seconds = {name: 0.0 for name in axiom_names}

    stream = (
        candidates
        if candidates is not None
        else enumerate_tests(model.vocabulary, config, reject=reject)
    )
    seen: set[LitmusTest] = set()
    n_candidates = 0
    n_unique = 0
    n_minimal = 0
    for test in stream:
        n_candidates += 1
        if progress is not None and n_candidates % 1000 == 0:
            progress(n_candidates)
        canon = canonical_form(test)
        if canon in seen:
            continue
        seen.add(canon)
        n_unique += 1
        minimal_for: list[str] = []
        witness = None
        for name in axiom_names:
            t0 = time.perf_counter()
            result = checker.check(test, name)
            axiom_seconds[name] += time.perf_counter() - t0
            if result.is_minimal:
                minimal_for.append(name)
                witness = result.witness
                per_axiom[name].add(test, result.witness, [name])
        if minimal_for:
            n_minimal += 1
            assert witness is not None
            union.add(test, witness, minimal_for)

    return SynthesisResult(
        model_name=model.name,
        bound=bound,
        per_axiom=per_axiom,
        union=union,
        candidates=n_candidates,
        unique_candidates=n_unique,
        minimal_tests=n_minimal,
        elapsed_seconds=time.perf_counter() - start,
        axiom_seconds=axiom_seconds,
    )
