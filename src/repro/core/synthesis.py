"""The synthesis pipeline (paper §5): enumerate → check minimality →
canonicalize → emit per-axiom and union suites.

``synthesize`` is the top-level entry point the paper's Fig. 5a ``run
generate`` corresponds to: it streams every candidate test within the
size bound, keeps those satisfying the minimality criterion for at least
one axiom, and collects one suite per axiom plus the union suite.

The stable call form takes a :class:`SynthesisOptions` value::

    result = synthesize(model, SynthesisOptions(bound=4, jobs=4))

Oracle configuration travels as one :class:`OracleSpec` value
(``SynthesisOptions(bound=4, oracle_spec=OracleSpec(oracle="relational"))``);
the four loose fields (``oracle``/``incremental``/``cnf_cache_dir``/
``prefilter``) still work through a shim but emit a
:class:`DeprecationWarning`.  The pre-1.1 loose-keyword call form
(``synthesize(model, bound, axioms=..., ...)``) was removed in 1.2 and
now raises :class:`TypeError`.  ``jobs > 1`` (or a ``checkpoint_dir``)
routes the run through the sharded multiprocess runtime in
:mod:`repro.exec`; its merged output is byte-identical to the
sequential run.
"""

from __future__ import annotations

import time
import warnings
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.litmus.test import LitmusTest
from repro.models.base import MemoryModel
from repro.obs import current_registry
from repro.core.canonical import canonical_form
from repro.core.enumerator import EnumerationConfig, enumerate_tests
from repro.core.minimality import CriterionMode, MinimalityChecker
from repro.core.suite import TestSuite

__all__ = [
    "OracleSpec",
    "SynthesisOptions",
    "SynthesisResult",
    "RESULT_SCHEMA_NAME",
    "RESULT_SCHEMA_VERSION",
    "ORACLES",
    "build_checker",
    "run_sequential",
    "synthesize",
]

#: recognized ``SynthesisOptions.oracle`` backends
ORACLES = ("explicit", "relational")

#: payload schema of the JSON document ``SynthesisResult.to_json_dict``
#: emits (and the CLI's ``synthesize --json`` prints).  v1 was the
#: implicit pre-1.1 counts-only shape; v2 added the wall/cpu seconds
#: split, shard bookkeeping, and aggregated oracle cache statistics; v3
#: wraps the payload in the unified :class:`repro.obs.Report` envelope.
RESULT_SCHEMA_NAME = "synthesis-result"
RESULT_SCHEMA_VERSION = 3

#: ``SynthesisOptions.reject`` sentinel: build the lint-based early-reject
#: filter (:func:`repro.analysis.early_reject`) for the target model.
#: Unlike an arbitrary callable, the sentinel crosses process boundaries,
#: so it is the way to early-reject under ``jobs > 1``.
EARLY_REJECT = "early-reject"


@dataclass(frozen=True)
class OracleSpec:
    """The oracle configuration of one synthesis run, as a single value.

    Bundles everything that selects and tunes the criterion oracle —
    the four knobs that used to travel as loose
    :class:`SynthesisOptions` fields.  One ``OracleSpec`` is consumed
    identically by the sequential loop, every shard worker, and the
    service daemon's resident pools, so the same value always resolves
    to the same pipeline (and the same request fingerprint).

    Attributes:
        oracle: which execution oracle answers criterion queries —
            ``"explicit"`` (enumeration, the default) or ``"relational"``
            (the SAT/model-finding stack; only for models with an Alloy
            encoding).
        incremental: with the relational oracle, reuse one warm
            incremental solver per test (default).  False forces the
            cold-solver baseline — one fresh solver per query — kept for
            A/B benchmarking; results are identical either way.
        cnf_cache_dir: optional on-disk CNF compilation cache directory
            for the relational oracle, shared across worker processes
            and across runs.
        prefilter: with the relational oracle in incremental mode,
            answer fully-pinned per-axiom queries with the polynomial
            static evaluator (:mod:`repro.analysis.flow`) before falling
            back to SAT.  Output is identical with or without it; the
            hit/fallback counters land in the oracle stats.
    """

    oracle: str = "explicit"
    incremental: bool = True
    cnf_cache_dir: str | None = None
    prefilter: bool = False

    def __post_init__(self) -> None:
        if self.oracle not in ORACLES:
            raise ValueError(
                f"unknown oracle {self.oracle!r}; choose from {ORACLES}"
            )

    def to_payload(self) -> dict:
        """The JSON-safe wire form (see :mod:`repro.service.protocol`)."""
        return {
            "oracle": self.oracle,
            "incremental": self.incremental,
            "cnf_cache_dir": self.cnf_cache_dir,
            "prefilter": self.prefilter,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> OracleSpec:
        unknown = set(payload) - {
            "oracle", "incremental", "cnf_cache_dir", "prefilter"
        }
        if unknown:
            raise ValueError(f"unknown oracle spec fields {sorted(unknown)}")
        return cls(**payload)


#: the loose ``SynthesisOptions`` names the deprecation shim still accepts
_SPEC_FIELDS = ("oracle", "incremental", "cnf_cache_dir", "prefilter")


@dataclass
class SynthesisOptions:
    """Everything ``synthesize`` needs besides the model itself.

    Attributes:
        bound: maximum instruction count per test.
        axioms: which axioms to build suites for (default: all of them).
        mode: criterion evaluation mode (Fig. 5b exact by default).
        config: enumeration bounds (defaults derive from ``bound``).
        exact_symmetry: use the exact canonicalizer (False reproduces the
            paper's greedy one, WWC blind spot included).
        candidates: explicit candidate stream (overrides the enumerator —
            used by tests and suite-from-corpus workflows; incompatible
            with ``jobs > 1`` / checkpointing).
        progress: callback invoked with the running candidate count —
            every 1000 candidates sequentially, after each completed
            shard in parallel runs.
        progress_events: callback invoked with structured progress
            event dicts (always carrying a ``"phase"`` key) — periodic
            ``enumerate`` events plus a final ``finish`` event
            sequentially, one ``shard`` event per completed shard in
            parallel runs.  Process-local (never serializes); the
            service daemon wires it to the streamed ``job-progress``
            wire messages.
        reject: opt-in early filter passed to the enumerator; candidates
            it returns True for are skipped before any oracle call.  Pass
            the :data:`EARLY_REJECT` sentinel to build the lint-based
            filter per worker (plain callables only work with ``jobs=1``
            unless they are picklable).  Ignored when an explicit
            ``candidates`` stream is supplied.
        jobs: worker process count; ``jobs > 1`` runs the sharded
            multiprocess runtime (:mod:`repro.exec`).
        checkpoint_dir: directory for shard-level checkpoints; a rerun
            with the same options resumes, skipping completed shards.
        shards: total shard count for parallel runs (default:
            ``4 * jobs`` — small enough to amortize worker warm-up,
            large enough for balance and useful checkpoint granularity).
        oracle_spec: the oracle configuration (:class:`OracleSpec`) —
            backend choice plus the relational oracle's incremental /
            CNF-cache / prefilter knobs.  The loose constructor
            arguments ``oracle=`` / ``incremental=`` / ``cnf_cache_dir=``
            / ``prefilter=`` (and the matching read-only attributes)
            still work but are deprecated shims over this field.
        trace_dir: optional directory for :mod:`repro.obs` trace files
            (driver phase spans, per-shard span/counter streams, and the
            deterministic ``merged.jsonl``).  Setting it routes the run
            through the sharded runtime even at ``jobs=1`` so the merged
            trace is byte-identical for every job count; render with
            ``repro report``.
    """

    bound: int
    axioms: Sequence[str] | None = None
    mode: CriterionMode = CriterionMode.EXACT
    config: EnumerationConfig | None = None
    exact_symmetry: bool = True
    candidates: Iterable[LitmusTest] | None = None
    progress: Callable[[int], None] | None = None
    progress_events: Callable[[dict], None] | None = None
    reject: Callable[[LitmusTest], bool] | str | None = None
    jobs: int = 1
    checkpoint_dir: str | None = None
    shards: int | None = None
    oracle_spec: OracleSpec = field(default_factory=OracleSpec)
    trace_dir: str | None = None

    def __post_init__(self) -> None:
        if self.bound < 1:
            raise ValueError(f"bound must be >= 1, got {self.bound}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if isinstance(self.reject, str) and self.reject != EARLY_REJECT:
            raise ValueError(
                f"unknown reject spec {self.reject!r} "
                f"(the only named filter is {EARLY_REJECT!r})"
            )
        if not isinstance(self.oracle_spec, OracleSpec):
            raise TypeError(
                "oracle_spec must be an OracleSpec, got "
                f"{type(self.oracle_spec).__name__}"
            )

    def resolved_config(
        self, model: MemoryModel | None = None
    ) -> EnumerationConfig:
        """The enumeration bounds, derived from ``bound`` when no
        explicit ``config`` was given.

        Models whose vocabulary declares transistency support default to
        ``max_aliases=1``, so enhanced candidates with one
        virtual->physical alias join the stream; consistency-only models
        keep the byte-identical ``max_aliases=0`` space.
        """
        if self.config is not None:
            return self.config
        max_aliases = (
            1 if model is not None and model.vocabulary.has_vmem else 0
        )
        return EnumerationConfig(
            max_events=self.bound, max_aliases=max_aliases
        )

    def axiom_names(self, model: MemoryModel) -> tuple[str, ...]:
        return (
            tuple(self.axioms) if self.axioms is not None else model.axiom_names()
        )

    def resolved_reject(
        self, model: MemoryModel
    ) -> Callable[[LitmusTest], bool] | None:
        if self.reject == EARLY_REJECT:
            from repro import analysis

            return analysis.early_reject(model)
        return self.reject  # a callable or None


# -- the deprecated loose-field shim over SynthesisOptions.oracle_spec --------
#
# Pre-1.2 code wrote ``SynthesisOptions(bound=4, oracle="relational")`` and
# read ``opts.oracle``.  Both still work — the constructor folds the loose
# keywords into an OracleSpec and matching read-only properties alias into
# it — but each direction warns, because OracleSpec is the one
# non-deprecated way to carry oracle configuration.

_dataclass_options_init = SynthesisOptions.__init__


def _options_init(self: SynthesisOptions, *args: object, **kwargs: object) -> None:
    loose = {name: kwargs.pop(name) for name in _SPEC_FIELDS if name in kwargs}
    if loose:
        if "oracle_spec" in kwargs:
            raise TypeError(
                "pass either oracle_spec or the loose oracle fields "
                f"({sorted(loose)}), not both"
            )
        warnings.warn(
            "passing oracle/incremental/cnf_cache_dir/prefilter to "
            "SynthesisOptions is deprecated; bundle them as "
            "SynthesisOptions(oracle_spec=OracleSpec(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        kwargs["oracle_spec"] = OracleSpec(**loose)  # type: ignore[arg-type]
    _dataclass_options_init(self, *args, **kwargs)  # type: ignore[arg-type]


_options_init.__name__ = "__init__"
SynthesisOptions.__init__ = _options_init  # type: ignore[method-assign]


def _spec_alias(name: str) -> property:
    def _get(self: SynthesisOptions) -> object:
        warnings.warn(
            f"SynthesisOptions.{name} is deprecated; read "
            f"options.oracle_spec.{name} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(self.oracle_spec, name)

    _get.__name__ = name
    _get.__doc__ = f"Deprecated alias for ``oracle_spec.{name}`` (warns)."
    return property(_get)


for _name in _SPEC_FIELDS:
    setattr(SynthesisOptions, _name, _spec_alias(_name))
del _name


@dataclass
class SynthesisResult:
    """Per-axiom suites, the union suite, and bookkeeping counters.

    ``wall_seconds`` is elapsed real time for the whole run;
    ``cpu_seconds`` is the summed busy time of every worker (equal to
    ``wall_seconds`` for sequential runs, roughly ``jobs × wall`` for
    well-balanced parallel ones).  ``axiom_seconds`` always sums *cpu*
    time across workers, so its total can exceed ``wall_seconds``.
    """

    model_name: str
    bound: int
    per_axiom: dict[str, TestSuite]
    union: TestSuite
    candidates: int = 0
    unique_candidates: int = 0
    minimal_tests: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    axiom_seconds: dict[str, float] = field(default_factory=dict)
    jobs: int = 1
    shard_count: int = 0
    oracle_stats: dict[str, float] = field(default_factory=dict)

    @property
    def elapsed_seconds(self) -> float:
        """Deprecated alias for :attr:`wall_seconds` (warns)."""
        warnings.warn(
            "SynthesisResult.elapsed_seconds is deprecated; read "
            "wall_seconds (elapsed real time) or cpu_seconds (summed "
            "worker busy time) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.wall_seconds

    def counts(self) -> dict:
        out: dict = {name: len(suite) for name, suite in self.per_axiom.items()}
        out["union"] = len(self.union)
        out["wall_seconds"] = self.wall_seconds
        out["cpu_seconds"] = self.cpu_seconds
        return out

    def to_json_dict(self) -> dict:
        """The stable machine-readable summary: a
        :class:`repro.obs.Report` envelope around the ``synthesis-result``
        payload (schema v3)."""
        from repro.obs import Report

        suite_counts: dict = {
            name: len(suite) for name, suite in self.per_axiom.items()
        }
        suite_counts["union"] = len(self.union)
        payload = {
            "model": self.model_name,
            "bound": self.bound,
            "jobs": self.jobs,
            "shards": self.shard_count,
            "candidates": self.candidates,
            "unique_candidates": self.unique_candidates,
            "minimal_tests": self.minimal_tests,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "axiom_seconds": dict(self.axiom_seconds),
            "suite_counts": suite_counts,
            "oracle": dict(self.oracle_stats),
        }
        return Report(
            schema_name=RESULT_SCHEMA_NAME,
            schema_version=RESULT_SCHEMA_VERSION,
            command="synthesize",
            payload=payload,
        ).to_json_dict()

    def summary(self) -> str:
        rate = self.candidates / self.wall_seconds if self.wall_seconds else 0.0
        head = (
            f"model={self.model_name} bound={self.bound} "
            f"candidates={self.candidates} unique={self.unique_candidates} "
            f"wall={self.wall_seconds:.2f}s cpu={self.cpu_seconds:.2f}s "
            f"({rate:.0f} cand/s)"
        )
        if self.jobs > 1 or self.shard_count:
            head += f" jobs={self.jobs} shards={self.shard_count}"
        lines = [head]
        for name, suite in self.per_axiom.items():
            secs = self.axiom_seconds.get(name, 0.0)
            lines.append(f"  {name:<16s} {len(suite):5d} tests  {secs:8.2f}s")
        lines.append(f"  {'union':<16s} {len(self.union):5d} tests")
        hit_rate = self.oracle_stats.get("observe_hit_rate")
        if hit_rate is not None:
            lines.append(
                f"  oracle cache: analysis "
                f"{self.oracle_stats.get('analysis_hit_rate', 0.0):.0%} hits, "
                f"observe {hit_rate:.0%} hits"
            )
        return "\n".join(lines)


def build_checker(
    model: MemoryModel,
    mode: CriterionMode,
    spec: OracleSpec | None = None,
) -> MinimalityChecker:
    """Build the minimality checker for one :class:`OracleSpec`.

    Shared by the sequential loop, every shard worker, and the service
    daemon's resident pools, so every path resolves the same spec to
    the exact same pipeline.
    """
    if spec is None:
        spec = OracleSpec()
    if spec.oracle == "relational":
        if mode is CriterionMode.EXECUTION_WA:
            raise ValueError(
                "the Fig. 19 workaround criterion needs the explicit "
                "oracle; use oracle='explicit' with mode=execution-wa"
            )
        from repro.alloy.oracle import AlloyOracle

        backend = AlloyOracle(
            model.name,
            incremental=spec.incremental,
            cnf_cache_dir=spec.cnf_cache_dir,
            prefilter=spec.prefilter,
        )
        return MinimalityChecker(model, mode, oracle=backend)
    return MinimalityChecker(model, mode)


def _resolve_request(model, options):
    """Map the ``SynthesisRequest`` call forms onto (model, options).

    Accepts ``synthesize(request)`` (the request names its own model)
    and ``synthesize(model, request)`` (the names must agree).  Returns
    ``None`` when no request is involved.  The service protocol module
    is imported lazily: it imports this module at load time, so the
    top level here must stay request-free.
    """
    from repro.service.protocol import SynthesisRequest

    if isinstance(model, SynthesisRequest):
        if options is not None:
            raise TypeError(
                "synthesize(request) takes no second positional argument"
            )
        from repro.models.registry import get_model

        return get_model(model.model), model.options
    if isinstance(options, SynthesisRequest):
        if options.model != model.name:
            raise ValueError(
                f"request names model {options.model!r} but synthesize() "
                f"was called with {model.name!r}"
            )
        return model, options.options
    return None


def synthesize(
    model: MemoryModel,
    options: SynthesisOptions | None = None,
) -> SynthesisResult:
    """Synthesize the comprehensive suites for one model.

    Stable forms::

        synthesize(model, SynthesisOptions(bound=4, ...))
        synthesize(SynthesisRequest(model="tso", options=...))

    The request form (:class:`repro.service.protocol.SynthesisRequest`)
    is the wire-serializable shape the synthesis service daemon accepts;
    locally it resolves the model by name and runs identically.

    The pre-1.1 loose-keyword form (``synthesize(model, bound,
    axioms=..., ...)``) completed its deprecation window and was
    removed in 1.2; it now raises :class:`TypeError`.
    """
    if not isinstance(model, MemoryModel) or not isinstance(
        options, (SynthesisOptions, type(None))
    ):
        resolved = _resolve_request(model, options)
        if resolved is not None:
            model, options = resolved
    if not isinstance(options, SynthesisOptions):
        raise TypeError(
            "synthesize() takes a SynthesisOptions (or a SynthesisRequest); "
            "the loose-keyword form was removed in 1.2 — build the options "
            "value explicitly: synthesize(model, SynthesisOptions(bound=...))"
        )
    opts = options

    if (
        opts.jobs > 1
        or opts.shards is not None
        or opts.checkpoint_dir is not None
        or opts.trace_dir is not None
    ):
        from repro.exec import run_sharded

        return run_sharded(model, opts)
    return run_sequential(model, opts)


def run_sequential(
    model: MemoryModel,
    opts: SynthesisOptions,
    checker: MinimalityChecker | None = None,
) -> SynthesisResult:
    """The sequential synthesis loop, optionally over a resident checker.

    ``checker`` lets a long-lived host (the :mod:`repro.service` worker
    pool) inject a warm :class:`MinimalityChecker` whose oracle caches —
    analysis memos, incremental solver sessions, the CNF compilation
    cache — survive across calls.  It must have been built for the same
    model and oracle configuration as ``opts`` (see
    :func:`build_checker`); when omitted, a fresh one is built, which is
    exactly what ``synthesize`` does for one-shot runs.  Note that with
    a resident checker the returned ``oracle_stats`` are the oracle's
    *cumulative* counters, not this call's delta — residency is the
    point.
    """
    start = time.perf_counter()
    config = opts.resolved_config(model)
    axiom_names = opts.axiom_names(model)
    if checker is None:
        checker = build_checker(model, opts.mode, opts.oracle_spec)
    per_axiom = {
        name: TestSuite(model.name, name, opts.exact_symmetry)
        for name in axiom_names
    }
    union = TestSuite(model.name, "union", opts.exact_symmetry)
    axiom_seconds = {name: 0.0 for name in axiom_names}

    stream = (
        opts.candidates
        if opts.candidates is not None
        else enumerate_tests(
            model.vocabulary, config, reject=opts.resolved_reject(model)
        )
    )
    progress = opts.progress
    events = opts.progress_events
    seen: set[LitmusTest] = set()
    n_candidates = 0
    n_unique = 0
    n_minimal = 0
    for test in stream:
        n_candidates += 1
        if n_candidates % 1000 == 0:
            if progress is not None:
                progress(n_candidates)
            if events is not None:
                events({"phase": "enumerate", "candidates": n_candidates})
        canon = canonical_form(test)
        if canon in seen:
            continue
        seen.add(canon)
        n_unique += 1
        minimal_for: list[str] = []
        witness = None
        for name in axiom_names:
            t0 = time.perf_counter()
            result = checker.check(test, name)
            axiom_seconds[name] += time.perf_counter() - t0
            if result.is_minimal:
                minimal_for.append(name)
                witness = result.witness
                per_axiom[name].add(test, result.witness, [name])
        if minimal_for:
            n_minimal += 1
            assert witness is not None
            union.add(test, witness, minimal_for)

    elapsed = time.perf_counter() - start
    if events is not None:
        events(
            {
                "phase": "finish",
                "candidates": n_candidates,
                "unique": n_unique,
                "minimal": n_minimal,
            }
        )
    registry = current_registry()
    registry.count("candidates", n_candidates)
    registry.count("unique_candidates", n_unique)
    registry.count("minimal_tests", n_minimal)
    cache_stats = getattr(checker.oracle, "cache_stats", None)
    return SynthesisResult(
        model_name=model.name,
        bound=opts.bound,
        per_axiom=per_axiom,
        union=union,
        candidates=n_candidates,
        unique_candidates=n_unique,
        minimal_tests=n_minimal,
        wall_seconds=elapsed,
        cpu_seconds=elapsed,
        axiom_seconds=axiom_seconds,
        jobs=1,
        shard_count=0,
        oracle_stats=cache_stats() if cache_stats is not None else {},
    )
