"""Suite comparison and subsumption analysis (paper §6.1, Table 4).

The paper's key empirical claim for TSO is that every hand-written test
in the Owens suite that the synthesis does *not* emit "contains inside of
it a test which is in fact present" in the synthesized suite (e.g.
n5/coLB contains CoRW).  *Contains* means the smaller test is reachable
from the larger one by applying instruction relaxations — the very same
RI/DMO/DF/DRMW/RD/DS machinery — modulo symmetry.

:func:`find_subtest` searches that relaxation reachability space;
:func:`compare_suites` builds the full Table 4-style report.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.litmus.catalog import CatalogEntry
from repro.litmus.test import LitmusTest
from repro.models.base import MemoryModel
from repro.core.canonical import canonical_form
from repro.core.suite import TestSuite, test_to_dict
from repro.relax.instruction import relaxations_for

__all__ = [
    "subtests",
    "is_subtest",
    "find_subtest",
    "COMPARISON_SCHEMA_NAME",
    "COMPARISON_SCHEMA_VERSION",
    "SuiteComparison",
    "compare_suites",
]

COMPARISON_SCHEMA_NAME = "suite-comparison"
#: v1 was the pre-envelope top-level shape; v2 wraps the same payload in
#: the unified :class:`repro.obs.Report` envelope.
COMPARISON_SCHEMA_VERSION = 2


def subtests(
    test: LitmusTest, model: MemoryModel, max_steps: int = 6
) -> set[LitmusTest]:
    """Canonical forms reachable from ``test`` by up to ``max_steps``
    relaxation applications (including the test itself)."""
    relaxations = relaxations_for(model.vocabulary)
    vocab = model.vocabulary
    start = canonical_form(test)
    seen: set[LitmusTest] = {start}
    frontier: deque[tuple[LitmusTest, int]] = deque([(start, 0)])
    while frontier:
        current, depth = frontier.popleft()
        if depth >= max_steps:
            continue
        for relax in relaxations:
            for app in relax.applications(current, vocab):
                relaxed = relax.apply(current, app, vocab)
                canon = canonical_form(relaxed.test)
                if canon not in seen:
                    seen.add(canon)
                    frontier.append((canon, depth + 1))
    return seen


def is_subtest(
    small: LitmusTest,
    big: LitmusTest,
    model: MemoryModel,
    max_steps: int = 6,
) -> bool:
    """Is ``small`` reachable from ``big`` via relaxations (mod symmetry)?"""
    return canonical_form(small) in subtests(big, model, max_steps)


def find_subtest(
    big: LitmusTest,
    suite: TestSuite,
    model: MemoryModel,
    max_steps: int = 6,
) -> LitmusTest | None:
    """First suite member contained in ``big`` (itself excluded)."""
    big_canon = canonical_form(big)
    reachable = subtests(big, model, max_steps)
    members = {canonical_form(t) for t in suite.tests()}
    for candidate in sorted(
        reachable - {big_canon}, key=lambda t: (-t.num_events, repr(t))
    ):
        if candidate in members:
            return candidate
    return None


@dataclass
class SuiteComparison:
    """A Table 4-style comparison of a reference suite vs a synthesized
    suite."""

    model_name: str
    #: reference tests also present in the synthesized suite
    both: list[str] = field(default_factory=list)
    #: reference tests not emitted, mapped to the contained suite test
    #: (None when no subtest was found — a genuine coverage gap)
    reference_only: dict[str, LitmusTest | None] = field(default_factory=dict)
    #: synthesized tests with no symmetric counterpart in the reference
    synthesized_only: list[LitmusTest] = field(default_factory=list)

    @property
    def fully_subsumed(self) -> bool:
        """True when every un-emitted reference test contains an emitted
        subtest — the paper's reproduction claim."""
        return all(v is not None for v in self.reference_only.values())

    def to_json_dict(self) -> dict:
        """Machine-readable comparison (``repro compare --json``): a
        :class:`repro.obs.Report` envelope around the
        ``suite-comparison`` payload (schema v2).

        ``synthesized_only`` comes from a set difference, so it is
        re-sorted here — JSON output must not depend on hash order.
        """
        from repro.obs import Report

        payload = {
            "model": self.model_name,
            "both": list(self.both),
            "reference_only": {
                name: None if sub is None else test_to_dict(sub)
                for name, sub in self.reference_only.items()
            },
            "synthesized_only": [
                test_to_dict(t)
                for t in sorted(
                    self.synthesized_only,
                    key=lambda t: (t.num_events, repr(t)),
                )
            ],
            "fully_subsumed": self.fully_subsumed,
        }
        return Report(
            schema_name=COMPARISON_SCHEMA_NAME,
            schema_version=COMPARISON_SCHEMA_VERSION,
            command="compare",
            payload=payload,
        ).to_json_dict()

    def summary(self) -> str:
        lines = [
            f"model={self.model_name}: both={len(self.both)} "
            f"reference-only={len(self.reference_only)} "
            f"synthesized-only={len(self.synthesized_only)}"
        ]
        for name in self.both:
            lines.append(f"  BOTH        {name}")
        for name, sub in self.reference_only.items():
            if sub is None:
                lines.append(f"  REF-ONLY    {name}  (no subtest found!)")
            else:
                lines.append(
                    f"  REF-ONLY    {name}  contains a synthesized "
                    f"{sub.num_events}-instruction test"
                )
        lines.append(
            f"  +{len(self.synthesized_only)} tests not in the reference"
        )
        return "\n".join(lines)


def compare_suites(
    reference: list[CatalogEntry],
    synthesized: TestSuite,
    model: MemoryModel,
    max_steps: int = 6,
) -> SuiteComparison:
    """Compare a published suite against a synthesized one (Table 4)."""
    comparison = SuiteComparison(model.name)
    member_canons = {canonical_form(t) for t in synthesized.tests()}
    matched: set[LitmusTest] = set()
    for entry in reference:
        canon = canonical_form(entry.test)
        if canon in member_canons:
            comparison.both.append(entry.name)
            matched.add(canon)
        else:
            comparison.reference_only[entry.name] = find_subtest(
                entry.test, synthesized, model, max_steps
            )
    comparison.synthesized_only = sorted(
        member_canons - matched, key=lambda t: (t.num_events, repr(t))
    )
    return comparison
