"""litmus-synth: automated synthesis of comprehensive memory model litmus
test suites.

A from-scratch reproduction of Lustig, Wright, Papakonstantinou & Giroux,
*Automated Synthesis of Comprehensive Memory Model Litmus Test Suites*
(ASPLOS 2017).

Quick start::

    from repro import SynthesisRequest, synthesize

    result = synthesize(SynthesisRequest.build("tso", bound=4))
    for entry in result.union:
        print(entry.pretty())

A :class:`SynthesisRequest` is the single public entry shape: the same
value runs locally (above), ships to a synthesis daemon
(``repro serve`` + :class:`repro.service.Client`), and keys request
deduplication.  ``synthesize(model, SynthesisOptions(...))`` remains
the equivalent two-argument form.

Add ``jobs=4`` (and optionally ``checkpoint_dir="ckpt/"``) to the
options to run the sharded multiprocess runtime; the output is identical
to the sequential run.

Package layout:

* :mod:`repro.litmus`    — litmus test IR, executions, outcomes, catalog
* :mod:`repro.semantics` — relation algebra and execution enumeration
* :mod:`repro.models`    — SC, TSO, Power, ARMv7, SCC, C11
* :mod:`repro.relax`     — the six instruction relaxations + Table 2
* :mod:`repro.core`      — minimality criterion, synthesis, suites
* :mod:`repro.exec`      — sharded multiprocess synthesis runtime
* :mod:`repro.sat`       — CDCL SAT solver (the Alloy-substitute backend)
* :mod:`repro.relational`— bounded relational model finder over SAT
* :mod:`repro.alloy`     — Alloy-style memory-model encodings
* :mod:`repro.analysis`  — diagnostics / lint passes over the stack
* :mod:`repro.difftest`  — differential testing + model-mutation fuzzing
* :mod:`repro.obs`       — tracing, metrics, and the Report envelope
* :mod:`repro.service`   — synthesis-as-a-service daemon, queue, client
"""

from repro.core import (
    EARLY_REJECT,
    CriterionMode,
    EnumerationConfig,
    ExplicitOracle,
    MinimalityChecker,
    MinimalityResult,
    OracleSpec,
    SuiteEntry,
    SynthesisOptions,
    SynthesisResult,
    TestSuite,
    canonical_form,
    compare_suites,
    is_subtest,
    synthesize,
)
from repro.difftest import (
    CampaignOptions,
    CampaignReport,
    DiffHarness,
    run_campaign,
)
from repro.litmus import (
    Dep,
    DepKind,
    EventKind,
    Execution,
    FenceKind,
    Instruction,
    LitmusTest,
    Order,
    Outcome,
    Scope,
    dirty,
    fence,
    ptwalk,
    read,
    remap,
    write,
)
from repro.litmus.format import format_test, parse_test
from repro.machine import Bug, TsoMachine, explore, run_suite
from repro.models import MemoryModel, Vocabulary, available_models, get_model
from repro.obs import Report, Stats, load_report
from repro.relax import ALL_RELAXATIONS, applicability_table, relaxations_for

# The service layer imports repro.core at module load time, so it must
# come after the core imports above (synthesize itself resolves
# SynthesisRequest lazily to keep the cycle one-directional).
from repro.service import (
    Client,
    JobProgress,
    JobResult,
    JobStatus,
    QuotaExceededError,
    ServiceError,
    SynthesisRequest,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # core
    "CriterionMode",
    "EARLY_REJECT",
    "EnumerationConfig",
    "ExplicitOracle",
    "MinimalityChecker",
    "MinimalityResult",
    "OracleSpec",
    "SuiteEntry",
    "SynthesisOptions",
    "SynthesisResult",
    "TestSuite",
    "canonical_form",
    "compare_suites",
    "is_subtest",
    "synthesize",
    # difftest
    "CampaignOptions",
    "CampaignReport",
    "DiffHarness",
    "run_campaign",
    # litmus text format
    "format_test",
    "parse_test",
    # litmus
    "Dep",
    "DepKind",
    "EventKind",
    "Execution",
    "FenceKind",
    "Instruction",
    "LitmusTest",
    "Order",
    "Outcome",
    "Scope",
    "dirty",
    "fence",
    "ptwalk",
    "read",
    "remap",
    "write",
    # operational machine
    "Bug",
    "TsoMachine",
    "explore",
    "run_suite",
    # models
    "MemoryModel",
    "Vocabulary",
    "available_models",
    "get_model",
    # observability
    "Report",
    "Stats",
    "load_report",
    # service
    "SynthesisRequest",
    "JobStatus",
    "JobProgress",
    "JobResult",
    "QuotaExceededError",
    "Client",
    "ServiceError",
    # relaxations
    "ALL_RELAXATIONS",
    "applicability_table",
    "relaxations_for",
]
