"""Process-local metrics registry and the ``Stats`` protocol.

Every subsystem that keeps counters (the SAT solver, both oracles, the
CNF cache) exposes them through one shape: :class:`Stats`, a protocol
with a single ``as_metrics()`` method returning a flat mapping of raw,
summable numbers.  Raw means *no derived values*: hit-rates and other
ratios are computed on demand by :func:`derive_rates`, so that merging
stats from many shards is plain key-wise addition.

The :class:`MetricsRegistry` is a process-local sink those adapters
publish into.  It is deliberately tiny — counters, gauges and fixed
structure histograms — and carries no locks: one registry belongs to
one process (workers each build their own; merged views are produced
by summing ``as_metrics()`` snapshots).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Protocol, runtime_checkable

__all__ = [
    "Stats",
    "MetricsRegistry",
    "current_registry",
    "use_registry",
    "derive_rates",
    "merge_metrics",
]


@runtime_checkable
class Stats(Protocol):
    """Anything that can report raw, summable counters.

    Implementations must return only plain ``int``/``float`` values and
    must not include derived quantities (keys ending in ``_rate`` are
    reserved for :func:`derive_rates`).
    """

    def as_metrics(self) -> dict[str, int | float]:
        """Return a flat snapshot of raw counters."""
        ...  # pragma: no cover - protocol body


class MetricsRegistry:
    """A process-local bag of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, list[float]] = {}

    # -- counters ----------------------------------------------------
    def count(self, name: str, amount: int | float = 1) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    # -- gauges ------------------------------------------------------
    def gauge(self, name: str, value: int | float) -> None:
        """Set the gauge ``name`` to its latest observed ``value``."""
        self._gauges[name] = value

    # -- histograms --------------------------------------------------
    def observe(self, name: str, value: int | float) -> None:
        """Record one sample into the histogram ``name``."""
        self._histograms.setdefault(name, []).append(value)

    def publish(self, stats: Stats, prefix: str = "") -> None:
        """Fold a :class:`Stats` snapshot into the counter space."""
        for key, value in stats.as_metrics().items():
            self.count(prefix + key, value)

    # -- snapshots ---------------------------------------------------
    def counters(self) -> dict[str, float]:
        return dict(self._counters)

    def gauges(self) -> dict[str, float]:
        return dict(self._gauges)

    def histogram_summary(self) -> dict[str, dict[str, float]]:
        """Summarise each histogram as count/sum/min/max."""
        out: dict[str, dict[str, float]] = {}
        for name, samples in sorted(self._histograms.items()):
            out[name] = {
                "count": len(samples),
                "sum": sum(samples),
                "min": min(samples),
                "max": max(samples),
            }
        return out

    def as_metrics(self) -> dict[str, int | float]:
        """The registry is itself a :class:`Stats`: raw counters only."""
        normalized: dict[str, int | float] = {}
        for key, value in self._counters.items():
            as_int = int(value)
            normalized[key] = as_int if as_int == value else value
        return normalized

    def snapshot(self) -> dict[str, object]:
        """A full, JSON-ready view (counters + gauges + histograms)."""
        return {
            "counters": dict(sorted(self.as_metrics().items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": self.histogram_summary(),
        }


_REGISTRY_STACK: list[MetricsRegistry] = [MetricsRegistry()]


def current_registry() -> MetricsRegistry:
    """The registry active for this process (innermost ``use_registry``)."""
    return _REGISTRY_STACK[-1]


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily make ``registry`` the process-local default."""
    _REGISTRY_STACK.append(registry)
    try:
        yield registry
    finally:
        _REGISTRY_STACK.pop()


def merge_metrics(*snapshots: dict[str, int | float]) -> dict[str, int | float]:
    """Key-wise sum of raw metric snapshots (rates are never summed)."""
    total: dict[str, int | float] = {}
    for snap in snapshots:
        for key, value in snap.items():
            if key.endswith("_rate"):
                continue
            total[key] = total.get(key, 0) + value
    return total


def _rate(hits: float, total: float) -> float:
    return hits / total if total else 0.0


def derive_rates(metrics: dict[str, int | float]) -> dict[str, float]:
    """Compute the derived ratios a raw snapshot supports.

    Each rate appears only when its constituent counters are present,
    so sequential and merged stats expose identical key sets for the
    same oracle.
    """
    rates: dict[str, float] = {}
    if "analyses" in metrics:
        # "analyses"/"observations" count cache *misses* (work done);
        # total calls are hits + misses.
        hits = metrics.get("analysis_hits", 0)
        rates["analysis_hit_rate"] = _rate(hits, hits + metrics["analyses"])
    if "observations" in metrics:
        hits = metrics.get("observe_hits", 0)
        rates["observe_hit_rate"] = _rate(hits, hits + metrics["observations"])
    compiles = metrics.get("compile_hits", 0) + metrics.get("compile_misses", 0)
    if "compile_hits" in metrics or "compile_misses" in metrics:
        rates["compile_hit_rate"] = _rate(metrics.get("compile_hits", 0), compiles)
    if "sat_queries" in metrics:
        rates["sat_reuse_rate"] = _rate(
            metrics.get("sat_reuse_hits", 0), metrics["sat_queries"]
        )
    if "prefilter_queries" in metrics:
        rates["prefilter_hit_rate"] = _rate(
            metrics.get("prefilter_hits", 0), metrics["prefilter_queries"]
        )
    if "reject_checks" in metrics:
        rates["early_reject_rate"] = _rate(
            metrics.get("early_rejects", 0), metrics["reject_checks"]
        )
    return rates
