"""The unified ``Report`` envelope for every JSON surface.

All ``--json`` CLI outputs and ``BENCH_*.json`` artifacts share one
top-level shape::

    {
      "schema":  {"name": "<payload-schema>", "version": <int>},
      "tool":    "litmus-synth",
      "command": "<producing subcommand>",
      "payload": { ... }
    }

:func:`load_report` only accepts this envelope.  The pre-envelope
shapes (``schema_version`` at top level) had a one-release
DeprecationWarning window, which has closed; they now raise
:class:`ValueError` like any other non-envelope document.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["TOOL_NAME", "Report", "load_report"]

TOOL_NAME = "litmus-synth"


@dataclass(frozen=True)
class Report:
    """One enveloped JSON document."""

    schema_name: str
    schema_version: int
    command: str
    payload: dict[str, Any]
    tool: str = TOOL_NAME

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "schema": {"name": self.schema_name, "version": self.schema_version},
            "tool": self.tool,
            "command": self.command,
            "payload": self.payload,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=False)

    @staticmethod
    def is_envelope(doc: Mapping[str, Any]) -> bool:
        """True when ``doc`` already has the envelope top-level shape."""
        schema = doc.get("schema")
        return (
            isinstance(schema, Mapping)
            and isinstance(schema.get("name"), str)
            and isinstance(schema.get("version"), int)
            and "payload" in doc
        )


def load_report(doc: Mapping[str, Any] | str, *, command: str = "") -> Report:
    """Parse an enveloped document.

    ``doc`` may be a mapping or a JSON string.  Anything that is not a
    ``{schema, tool, command, payload}`` envelope — including the
    pre-envelope legacy shapes whose deprecation window has closed —
    raises :class:`ValueError`.
    """
    if isinstance(doc, str):
        doc = json.loads(doc)
    if not isinstance(doc, Mapping):
        raise ValueError("report document must be a JSON object")

    if not Report.is_envelope(doc):
        raise ValueError(
            "not a report: expected a {schema, tool, command, payload} "
            "envelope (pre-envelope legacy shapes are no longer accepted)"
        )
    schema = doc["schema"]
    payload = doc["payload"]
    if not isinstance(payload, Mapping):
        raise ValueError("report payload must be a JSON object")
    return Report(
        schema_name=schema["name"],
        schema_version=schema["version"],
        command=str(doc.get("command", command)),
        payload=dict(payload),
        tool=str(doc.get("tool", TOOL_NAME)),
    )
