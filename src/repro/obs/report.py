"""The unified ``Report`` envelope for every JSON surface.

All ``--json`` CLI outputs and ``BENCH_*.json`` artifacts share one
top-level shape::

    {
      "schema":  {"name": "<payload-schema>", "version": <int>},
      "tool":    "litmus-synth",
      "command": "<producing subcommand>",
      "payload": { ... }
    }

:func:`load_report` also accepts the pre-envelope shapes emitted before
this layer existed (``schema_version`` at top level) for one release,
upgrading them in memory and raising a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["TOOL_NAME", "Report", "load_report"]

TOOL_NAME = "litmus-synth"

#: Heuristics mapping a legacy top-level shape to its schema name.  Each
#: entry is ``(marker_keys, schema_name)``; the first whose markers are
#: all present wins, so the most distinctive shapes are listed first.
_LEGACY_SHAPES: tuple[tuple[tuple[str, ...], str], ...] = (
    (("suite_counts", "minimal_tests"), "synthesis-result"),
    (("mutant_kills", "clean"), "difftest-campaign"),
    (("incremental", "cold", "speedup"), "bench-oracle"),
    (("workload", "report"), "bench-difftest"),
    (("campaigns",), "bench-difftest"),
    (("fully_subsumed", "reference_only"), "suite-comparison"),
)


@dataclass(frozen=True)
class Report:
    """One enveloped JSON document."""

    schema_name: str
    schema_version: int
    command: str
    payload: dict[str, Any]
    tool: str = TOOL_NAME

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "schema": {"name": self.schema_name, "version": self.schema_version},
            "tool": self.tool,
            "command": self.command,
            "payload": self.payload,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=False)

    @staticmethod
    def is_envelope(doc: Mapping[str, Any]) -> bool:
        """True when ``doc`` already has the envelope top-level shape."""
        schema = doc.get("schema")
        return (
            isinstance(schema, Mapping)
            and isinstance(schema.get("name"), str)
            and isinstance(schema.get("version"), int)
            and "payload" in doc
        )


def _legacy_schema_name(doc: Mapping[str, Any]) -> str | None:
    for markers, name in _LEGACY_SHAPES:
        if all(key in doc for key in markers):
            return name
    return None


def load_report(doc: Mapping[str, Any] | str, *, command: str = "") -> Report:
    """Parse an enveloped document — or upgrade a legacy one.

    ``doc`` may be a mapping or a JSON string.  Legacy (pre-envelope)
    shapes are recognised by their distinctive top-level keys, loaded
    with their old ``schema_version``, and flagged with a
    :class:`DeprecationWarning`; anything unrecognisable raises
    :class:`ValueError`.
    """
    if isinstance(doc, str):
        doc = json.loads(doc)
    if not isinstance(doc, Mapping):
        raise ValueError("report document must be a JSON object")

    if Report.is_envelope(doc):
        schema = doc["schema"]
        payload = doc["payload"]
        if not isinstance(payload, Mapping):
            raise ValueError("report payload must be a JSON object")
        return Report(
            schema_name=schema["name"],
            schema_version=schema["version"],
            command=str(doc.get("command", command)),
            payload=dict(payload),
            tool=str(doc.get("tool", TOOL_NAME)),
        )

    legacy_name = _legacy_schema_name(doc)
    if legacy_name is None:
        raise ValueError(
            "not a report: expected a {schema, tool, command, payload} "
            "envelope or a recognised legacy shape"
        )
    version = doc.get("schema_version")
    if not isinstance(version, int):
        version = 1
    warnings.warn(
        f"loading legacy (pre-envelope) {legacy_name!r} document; "
        "wrap outputs in the repro.obs.Report envelope",
        DeprecationWarning,
        stacklevel=2,
    )
    payload = {k: v for k, v in doc.items() if k != "schema_version"}
    return Report(
        schema_name=legacy_name,
        schema_version=version,
        command=command,
        payload=payload,
    )
