"""Span tracing with an append-only JSONL event sink.

A :class:`Tracer` owns one event stream (usually one ``.jsonl`` file in
a trace directory).  :meth:`Tracer.span` opens a :class:`Span` context
manager that measures monotonic wall time and nests: each span records
the id of the span that was open when it started, so a trace file can
be folded back into a tree.

Two event kinds matter to every consumer:

``begin``
    written when a span opens (``{"ev": "begin", "id", "name",
    "parent"}``).  A ``begin`` without a matching ``span`` event marks
    a crash or a forgotten ``__exit__`` — the OBS001 lint looks for
    exactly that.
``span``
    written when a span closes, carrying ``wall`` seconds plus any
    attributes attached at open time.

Every trace file starts with a ``header`` event naming the trace
schema; a directory mixing headers is refused by the OBS002 lint.
Event lines are serialised with :func:`format_event` (sorted keys,
compact separators) so byte-for-byte comparison of two traces is
meaningful.
"""

from __future__ import annotations

import io
import json
import os
import time
from typing import IO, Any, Iterator

__all__ = [
    "TRACE_SCHEMA_NAME",
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "BufferTracer",
    "null_tracer",
    "format_event",
    "header_event",
    "read_events",
]

TRACE_SCHEMA_NAME = "repro-trace"
TRACE_SCHEMA_VERSION = 1


def format_event(event: dict[str, Any]) -> str:
    """Serialise one event as a canonical JSONL line."""
    return json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"


def header_event() -> dict[str, Any]:
    """The first event of every trace file."""
    return {
        "ev": "header",
        "schema": {"name": TRACE_SCHEMA_NAME, "version": TRACE_SCHEMA_VERSION},
    }


def read_events(path: str) -> Iterator[dict[str, Any]]:
    """Yield the events of one trace file, skipping torn trailing lines."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a killed worker
            if isinstance(event, dict):
                yield event


class Span:
    """One timed region; created via :meth:`Tracer.span`."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        attrs: dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        self.tracer._open(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall = time.perf_counter() - self._start
        self.tracer._close(self, wall)

    def annotate(self, **attrs: Any) -> None:
        """Attach extra attributes, emitted with the closing event."""
        self.attrs.update(attrs)


class Tracer:
    """Writes span/metric events to one JSONL sink.

    Constructed with a path (the file is created and a header written),
    an open text handle, or nothing — a sink-less tracer still nests and
    times spans but emits no bytes, so instrumented code needs no
    ``if tracing`` guards.
    """

    def __init__(self, sink: str | IO[str] | None = None) -> None:
        self._owns_sink = isinstance(sink, str)
        if isinstance(sink, str):
            os.makedirs(os.path.dirname(sink) or ".", exist_ok=True)
            self._sink: IO[str] | None = open(sink, "w", encoding="utf-8")
        else:
            self._sink = sink
        self._next_id = 1
        self._stack: list[int] = []
        if self._sink is not None:
            self._write(header_event())

    # -- plumbing ----------------------------------------------------
    def _write(self, event: dict[str, Any]) -> None:
        if self._sink is None:
            return
        self._sink.write(format_event(event))
        self._sink.flush()

    def _open(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1] if self._stack else None
        self._stack.append(span.span_id)
        self._write(
            {
                "ev": "begin",
                "id": span.span_id,
                "name": span.name,
                "parent": span.parent_id,
            }
        )

    def _close(self, span: Span, wall: float) -> None:
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        elif span.span_id in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span.span_id)
        event: dict[str, Any] = {
            "ev": "span",
            "id": span.span_id,
            "name": span.name,
            "parent": span.parent_id,
            "wall": round(wall, 6),
        }
        if span.attrs:
            event["attrs"] = span.attrs
        self._write(event)

    # -- public API --------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """Open a named, timed region: ``with tracer.span("merge"): ...``"""
        return Span(self, name, span_id=0, parent_id=None, attrs=attrs)

    def event(self, ev: str, **fields: Any) -> None:
        """Emit a free-form event (e.g. final counter snapshots)."""
        payload = {"ev": ev, **fields}
        self._write(payload)

    def counters(self, counters: dict[str, int | float], **fields: Any) -> None:
        """Emit a counter snapshot event."""
        self.event("counters", counters=dict(sorted(counters.items())), **fields)

    def close(self) -> None:
        if self._sink is not None and self._owns_sink:
            self._sink.close()
        self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def null_tracer() -> Tracer:
    """A tracer that times spans but writes nothing."""
    return Tracer(None)


class BufferTracer(Tracer):
    """A tracer capturing events in memory (used by tests and lints)."""

    def __init__(self) -> None:
        self.buffer = io.StringIO()
        super().__init__(self.buffer)

    def events(self) -> list[dict[str, Any]]:
        return [
            json.loads(line)
            for line in self.buffer.getvalue().splitlines()
            if line.strip()
        ]
