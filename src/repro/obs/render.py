"""Render a trace directory into per-phase / per-shard summaries.

A trace directory (produced by ``synthesize --trace-dir`` or
``difftest --trace-dir``) contains:

``meta.json``
    a deterministic description of the run (schema, tool, command,
    model, bound) — never timings or worker counts;
``driver.jsonl``
    the orchestrating process's phase spans (plan/replay/shards/merge);
``shard-NNNN.jsonl``
    one file per shard with the worker's spans and counter snapshots;
``merged.jsonl``
    the deterministic merged event stream (byte-identical for a given
    input regardless of ``--jobs``).

:func:`summarize_trace_dir` folds these into one JSON-ready payload
(the ``trace-report`` schema) and :func:`render_trace_text` pretty
prints it for the ``repro report`` subcommand.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any

from .metrics import derive_rates, merge_metrics
from .trace import read_events

__all__ = [
    "TRACE_REPORT_SCHEMA_NAME",
    "TRACE_REPORT_SCHEMA_VERSION",
    "trace_files",
    "summarize_trace_dir",
    "render_trace_text",
]

TRACE_REPORT_SCHEMA_NAME = "trace-report"
TRACE_REPORT_SCHEMA_VERSION = 1

_SHARD_FILE = re.compile(r"^shard-(\d+)\.jsonl$")


def trace_files(trace_dir: str) -> list[str]:
    """The JSONL event files of a trace directory, sorted by name."""
    try:
        names = sorted(os.listdir(trace_dir))
    except OSError as exc:
        raise ValueError(f"cannot read trace dir: {exc.strerror or exc}") from exc
    return [n for n in names if n.endswith(".jsonl")]


def _span_totals(events: list[dict[str, Any]]) -> dict[str, dict[str, float]]:
    """Aggregate ``span`` events by name → {count, wall}."""
    totals: dict[str, dict[str, float]] = {}
    for event in events:
        if event.get("ev") != "span":
            continue
        slot = totals.setdefault(event.get("name", "?"), {"count": 0, "wall": 0.0})
        slot["count"] += 1
        slot["wall"] += float(event.get("wall", 0.0))
    return totals


def _top_level_wall(events: list[dict[str, Any]]) -> float:
    """Summed wall of root spans only (children are nested inside)."""
    return sum(
        float(event.get("wall", 0.0))
        for event in events
        if event.get("ev") == "span" and event.get("parent") is None
    )


def summarize_trace_dir(trace_dir: str) -> dict[str, Any]:
    """Fold one trace directory into the ``trace-report`` payload."""
    meta: dict[str, Any] | None = None
    meta_path = os.path.join(trace_dir, "meta.json")
    if os.path.exists(meta_path):
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)

    files = trace_files(trace_dir)
    if not files and meta is None:
        raise ValueError("no trace files found (*.jsonl or meta.json)")

    phases: list[dict[str, Any]] = []
    shards: list[dict[str, Any]] = []
    all_spans: dict[str, dict[str, float]] = {}
    counter_snaps: list[dict[str, int | float]] = []
    merged_summary: dict[str, Any] | None = None
    merged_tests = 0
    total_wall = 0.0

    for name in files:
        events = list(read_events(os.path.join(trace_dir, name)))
        match = _SHARD_FILE.match(name)
        for span_name, slot in _span_totals(events).items():
            acc = all_spans.setdefault(span_name, {"count": 0, "wall": 0.0})
            acc["count"] += slot["count"]
            acc["wall"] += slot["wall"]
        for event in events:
            if event.get("ev") == "counters":
                counter_snaps.append(dict(event.get("counters", {})))

        if name == "driver.jsonl":
            # Preserve the driver's phase order; one row per root span.
            for event in events:
                if event.get("ev") == "span" and event.get("parent") is None:
                    phases.append(
                        {
                            "name": event.get("name", "?"),
                            "wall": float(event.get("wall", 0.0)),
                        }
                    )
            total_wall += _top_level_wall(events)
        elif match:
            shards.append(
                {
                    "shard": int(match.group(1)),
                    "wall": _top_level_wall(events),
                    "spans": {
                        k: round(v["wall"], 6)
                        for k, v in sorted(_span_totals(events).items())
                    },
                }
            )
        elif name == "merged.jsonl":
            for event in events:
                if event.get("ev") == "test":
                    merged_tests += 1
                elif event.get("ev") == "summary":
                    merged_summary = {
                        k: v for k, v in event.items() if k != "ev"
                    }

    shards.sort(key=lambda entry: entry["shard"])
    counters = merge_metrics(*counter_snaps)
    payload: dict[str, Any] = {
        "trace_dir": trace_dir,
        "meta": meta,
        "files": files,
        "phases": [
            {"name": p["name"], "wall": round(p["wall"], 6)} for p in phases
        ],
        "total_wall": round(total_wall, 6),
        "shards": shards,
        "spans": {
            name: {"count": int(slot["count"]), "wall": round(slot["wall"], 6)}
            for name, slot in sorted(all_spans.items())
        },
        "counters": dict(sorted(counters.items())),
        "rates": derive_rates(counters),
        "merged": {"tests": merged_tests, "summary": merged_summary},
    }
    return payload


def _fmt_wall(seconds: float) -> str:
    return f"{seconds:10.4f}"


def render_trace_text(payload: dict[str, Any]) -> str:
    """Human-readable tables for one ``trace-report`` payload."""
    lines: list[str] = []
    meta = payload.get("meta") or {}
    describe = " ".join(
        f"{key}={meta[key]}"
        for key in ("command", "model", "bound")
        if key in meta
    )
    lines.append(f"trace {payload['trace_dir']}" + (f" ({describe})" if describe else ""))

    if payload["phases"]:
        lines.append("")
        lines.append("phase                      wall_s")
        for phase in payload["phases"]:
            lines.append(f"  {phase['name']:<22}{_fmt_wall(phase['wall'])}")
        lines.append(f"  {'total':<22}{_fmt_wall(payload['total_wall'])}")

    if payload["shards"]:
        lines.append("")
        lines.append("shard    wall_s  spans")
        for shard in payload["shards"]:
            span_bits = " ".join(
                f"{name}={wall:.4f}" for name, wall in shard["spans"].items()
            )
            lines.append(
                f"  {shard['shard']:<5}{_fmt_wall(shard['wall'])}  {span_bits}"
            )

    if payload["counters"]:
        lines.append("")
        lines.append("counters")
        for name, value in payload["counters"].items():
            lines.append(f"  {name} = {value}")
        for name, value in sorted(payload.get("rates", {}).items()):
            lines.append(f"  {name} = {value:.4f}")

    merged = payload.get("merged") or {}
    if merged.get("summary") is not None or merged.get("tests"):
        lines.append("")
        summary = merged.get("summary") or {}
        bits = " ".join(f"{k}={v}" for k, v in sorted(summary.items()))
        lines.append(f"merged: {merged.get('tests', 0)} test event(s) {bits}".rstrip())

    return "\n".join(lines) + "\n"
