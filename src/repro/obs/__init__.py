"""repro.obs — tracing, metrics and the unified report envelope.

Three small layers, usable independently:

- :mod:`repro.obs.trace` — :class:`Span`/:class:`Tracer` JSONL event
  streams with monotonic timings and parent/child nesting;
- :mod:`repro.obs.metrics` — the :class:`Stats` protocol
  (``as_metrics()``), a process-local :class:`MetricsRegistry`, and the
  shared :func:`derive_rates`/:func:`merge_metrics` helpers all stats
  surfaces now go through;
- :mod:`repro.obs.report` — the single :class:`Report` envelope every
  ``--json`` output and ``BENCH_*.json`` artifact is wrapped in, with a
  deprecating loader for pre-envelope documents.

:mod:`repro.obs.render` turns a ``--trace-dir`` directory into the
per-phase/per-shard tables behind the ``repro report`` subcommand.
"""

from .metrics import (
    MetricsRegistry,
    Stats,
    current_registry,
    derive_rates,
    merge_metrics,
    use_registry,
)
from .render import (
    TRACE_REPORT_SCHEMA_NAME,
    TRACE_REPORT_SCHEMA_VERSION,
    render_trace_text,
    summarize_trace_dir,
    trace_files,
)
from .report import TOOL_NAME, Report, load_report
from .trace import (
    TRACE_SCHEMA_NAME,
    TRACE_SCHEMA_VERSION,
    BufferTracer,
    Span,
    Tracer,
    format_event,
    header_event,
    null_tracer,
    read_events,
)

__all__ = [
    "Stats",
    "MetricsRegistry",
    "current_registry",
    "use_registry",
    "derive_rates",
    "merge_metrics",
    "Report",
    "load_report",
    "TOOL_NAME",
    "Span",
    "Tracer",
    "BufferTracer",
    "null_tracer",
    "format_event",
    "header_event",
    "read_events",
    "TRACE_SCHEMA_NAME",
    "TRACE_SCHEMA_VERSION",
    "TRACE_REPORT_SCHEMA_NAME",
    "TRACE_REPORT_SCHEMA_VERSION",
    "summarize_trace_dir",
    "render_trace_text",
    "trace_files",
]
