"""Reusable perf workloads (shared by the bench suite and CI smoke jobs).

The benchmark harness (``benchmarks/``) and the CI smoke scripts
(``scripts/oracle_perf_smoke.py``, ``scripts/difftest_smoke.py``) must
measure the *same* workloads the same way, or their numbers aren't
comparable — so the measurements live here and both call them.
"""

from __future__ import annotations

import os
import time

from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import OracleSpec, SynthesisOptions, synthesize
from repro.models.registry import get_model
from repro.obs import Report

__all__ = [
    "ORACLE_BENCH_SCHEMA",
    "ORACLE_BENCH_SCHEMA_NAME",
    "DIFFTEST_BENCH_SCHEMA",
    "DIFFTEST_BENCH_SCHEMA_NAME",
    "oracle_workload_report",
    "difftest_campaign_report",
]

ORACLE_BENCH_SCHEMA_NAME = "bench-oracle"
#: v1 was the pre-envelope top-level shape; v2 wrapped the same payload
#: in the unified :class:`repro.obs.Report` envelope; v3 adds the
#: ``prefilter`` arm (incremental + static prefilter) and extends the
#: byte-identity verdict across all three arms.
ORACLE_BENCH_SCHEMA = 3

DIFFTEST_BENCH_SCHEMA_NAME = "bench-difftest"
#: v1 was the pre-envelope top-level shape; v2 wraps the same payload in
#: the unified :class:`repro.obs.Report` envelope.
DIFFTEST_BENCH_SCHEMA = 2


def _mode_report(result, wall: float) -> dict:
    stats = dict(result.oracle_stats)
    queries = stats.get("sat_queries", 0)
    return {
        "wall_seconds": wall,
        "sat_queries": queries,
        "per_query_seconds": wall / queries if queries else 0.0,
        "cache": stats,
    }


def oracle_workload_report(
    model_name: str = "tso",
    bound: int = 4,
    cnf_cache_dir: str | None = None,
    trace_dir: str | None = None,
) -> dict:
    """Run the relational-oracle synthesis workload over three arms:
    incremental, incremental + static prefilter, and cold.

    The default is the x86-TSO size-4 workload the acceptance numbers
    are quoted against.  Returns the ``BENCH_oracle.json`` document — a
    :class:`repro.obs.Report` envelope (``bench-oracle`` v3) whose
    payload carries end-to-end wall time, per-query latency, and cache
    hit rates per arm (the ``prefilter`` arm's cache block includes the
    ``prefilter_*`` counters and derived ``prefilter_hit_rate``), plus
    the speedup and a byte-identity verdict over all three union
    suites.  With ``trace_dir`` set, each arm writes its
    :mod:`repro.obs` trace under ``trace_dir/<arm>``.
    """
    model = get_model(model_name)
    config = EnumerationConfig(
        max_events=bound, max_addresses=2, max_deps=0, max_rmws=0
    )

    def run(arm: str, incremental: bool, prefilter: bool = False):
        opts = SynthesisOptions(
            bound=bound,
            config=config,
            oracle_spec=OracleSpec(
                oracle="relational",
                incremental=incremental,
                cnf_cache_dir=cnf_cache_dir if incremental else None,
                prefilter=prefilter,
            ),
            trace_dir=(
                os.path.join(trace_dir, arm) if trace_dir is not None else None
            ),
        )
        t0 = time.perf_counter()
        result = synthesize(model, opts)
        return result, time.perf_counter() - t0

    incremental, t_inc = run("incremental", True)
    prefiltered, t_pre = run("prefilter", True, prefilter=True)
    cold, t_cold = run("cold", False)
    union_json = incremental.union.to_json()
    payload = {
        "workload": {
            "model": model_name,
            "bound": bound,
            "max_addresses": config.max_addresses,
            "oracle": "relational",
        },
        "incremental": _mode_report(incremental, t_inc),
        "prefilter": _mode_report(prefiltered, t_pre),
        "cold": _mode_report(cold, t_cold),
        "speedup": t_cold / t_inc if t_inc else 0.0,
        "prefilter_speedup": t_inc / t_pre if t_pre else 0.0,
        "byte_identical": (
            union_json == cold.union.to_json()
            and union_json == prefiltered.union.to_json()
        ),
    }
    return Report(
        schema_name=ORACLE_BENCH_SCHEMA_NAME,
        schema_version=ORACLE_BENCH_SCHEMA,
        command="bench",
        payload=payload,
    ).to_json_dict()


def difftest_campaign_report(
    model_name: str,
    seed: int = 0,
    budget: int = 200,
    mutants: tuple[str, ...] = (),
    jobs: int = 1,
    corpus_dir: str | None = None,
) -> dict:
    """Run one difftest campaign and wrap its report for ``BENCH_*.json``
    as a :class:`repro.obs.Report` envelope (``bench-difftest`` v2).

    Wall time and throughput live *next to* the campaign report, never
    inside it — the report itself stays byte-deterministic.  The
    determinism check re-runs the same campaign sequentially (without
    the corpus, whose replay counts would differ after the first arm
    appended to it) and compares JSON bytes.
    """
    from repro.difftest import CampaignOptions, run_campaign

    options = CampaignOptions(
        model=model_name,
        seed=seed,
        budget=budget,
        mutants=tuple(mutants),
        corpus_dir=corpus_dir,
        jobs=jobs,
    )
    t0 = time.perf_counter()
    report = run_campaign(options)
    wall = time.perf_counter() - t0
    def bare(j: int) -> CampaignOptions:
        return CampaignOptions(
            model=model_name,
            seed=seed,
            budget=budget,
            mutants=tuple(mutants),
            jobs=j,
        )

    byte_identical = (
        run_campaign(bare(jobs)).to_json() == run_campaign(bare(1)).to_json()
    )
    payload = {
        "workload": {
            "model": model_name,
            "seed": seed,
            "budget": budget,
            "mutants": sorted(mutants),
            "jobs": jobs,
        },
        "wall_seconds": wall,
        "tests_per_second": report.tests_run / wall if wall else 0.0,
        "byte_identical": byte_identical,
        "report": report.to_json_dict(),
    }
    return Report(
        schema_name=DIFFTEST_BENCH_SCHEMA_NAME,
        schema_version=DIFFTEST_BENCH_SCHEMA,
        command="bench",
        payload=payload,
    ).to_json_dict()
