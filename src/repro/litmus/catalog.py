"""Catalog of published litmus tests.

These are the hand-built baselines the paper compares its synthesized
suites against:

* the **Owens suite** of x86-TSO tests (Owens et al. 2009) — Intel/AMD
  manual tests (``iwp*``, ``amd*``) plus the authors' own ``n*`` tests
  (paper Table 4);
* classic cross-model patterns (MP, SB, LB, S, R, 2+2W, WRC, WWC, RWC,
  IRIW, the ``Co*`` coherence family);
* representative **Cambridge** Power/ARM tests (Sarkar et al. 2011),
  including ``PPOAA`` whose published ``sync`` variant the paper notes is
  not minimal (§6.2).

A few of the less-reproduced Owens tests (``n3``, ``n4``, ``amd10``,
``iwp2.8.*``) are reconstructed from their published descriptions; each
reconstruction is marked in its entry's ``note``.  Instruction counts can
differ slightly from the paper's table because, as the paper itself
observes (§5.2), counts depend on how RMWs and fences are formalized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.litmus.events import DepKind, FenceKind, fence, read, write
from repro.litmus.execution import Outcome
from repro.litmus.test import Dep, LitmusTest

__all__ = [
    "CatalogEntry",
    "outcome_from_values",
    "CATALOG",
    "get_entry",
    "owens_suite",
    "owens_forbidden",
    "cambridge_power_suite",
    "entries_for_model",
]

X, Y, Z = 0, 1, 2


@dataclass(frozen=True)
class CatalogEntry:
    """A published litmus test plus its forbidden outcome of record."""

    name: str
    test: LitmusTest
    forbidden: Outcome
    model: str  # the model family the published test targets
    note: str = ""
    #: True for tests reconstructed from prose rather than transcribed
    #: from a published listing.
    reconstructed: bool = False


def outcome_from_values(
    test: LitmusTest,
    reads: dict[int, int] | None = None,
    finals: dict[int, int] | None = None,
) -> Outcome:
    """Build an :class:`Outcome` from register/final *values*.

    ``reads`` maps read event ids to the value returned; ``finals`` maps
    addresses to final values.  Reads not mentioned read anything (the
    entry's forbidden outcome is then the full set of total outcomes
    extending this partial one — callers that need totality should
    mention every read).  Value 0 denotes the initial state.
    """
    reads = reads or {}
    finals = finals or {}
    rf_sources = []
    for eid, value in sorted(reads.items()):
        inst = test.instruction(eid)
        if not inst.is_read:
            raise ValueError(f"event {eid} is not a read")
        assert inst.address is not None
        rf_sources.append((eid, _write_with_value(test, inst.address, value)))
    final_items = []
    for addr, value in sorted(finals.items()):
        final_items.append((addr, _write_with_value(test, addr, value)))
    return Outcome(tuple(rf_sources), tuple(final_items))


def _write_with_value(test: LitmusTest, addr: int, value: int) -> int | None:
    if value == 0:
        return None
    for w in test.writes_to(addr):
        if test.write_values[w] == value:
            return w
    raise ValueError(f"no write of {value} to address {addr}")


def _t(*threads, rmw=(), deps=(), name=None) -> LitmusTest:
    return LitmusTest(
        tuple(tuple(th) for th in threads),
        frozenset(rmw),
        frozenset(deps),
        name=name,
    )


def _entry(
    name: str,
    test: LitmusTest,
    model: str,
    reads: dict[int, int] | None = None,
    finals: dict[int, int] | None = None,
    note: str = "",
    reconstructed: bool = False,
) -> CatalogEntry:
    test = test.with_name(name)
    return CatalogEntry(
        name,
        test,
        outcome_from_values(test, reads, finals),
        model,
        note,
        reconstructed,
    )


MFENCE = fence(FenceKind.MFENCE)
SYNC = fence(FenceKind.SYNC)
LWSYNC = fence(FenceKind.LWSYNC)


def _coherence_entries() -> list[CatalogEntry]:
    """The single-location coherence family (paper Figs. 7, 10, 11)."""
    coww = _t([write(X, 1), write(X, 2)])
    corw = _t([read(X), write(X, 1)], [write(X, 2)])
    corr = _t([write(X, 1)], [read(X), read(X)])
    cowr = _t([write(X, 1), read(X)], [write(X, 2)])
    corw1 = _t([read(X), write(X, 1)])
    cowr0 = _t([write(X, 1), read(X)])
    wwrr = _t([write(X, 1)], [write(X, 2)], [read(X), read(X)])
    return [
        _entry("CoWW", coww, "tso", finals={X: 1}),
        _entry(
            "CoRW", corw, "tso", reads={0: 2}, finals={X: 2},
            note="paper Fig. 7",
        ),
        _entry("CoRR", corr, "tso", reads={1: 1, 2: 0}),
        _entry("CoWR", cowr, "tso", reads={1: 2}, finals={X: 1}),
        _entry(
            "CoRW1", corw1, "tso", reads={0: 1},
            note="a read never observes a po-later write",
        ),
        _entry(
            "CoWR0", cowr0, "tso", reads={1: 0},
            note="iwp2.3.b: intra-thread forwarding is required",
        ),
        _entry(
            "W+W+RR", wwrr, "tso", reads={2: 1, 3: 2}, finals={X: 1},
            note="third thread observes co against the final state",
        ),
    ]


def _classic_entries() -> list[CatalogEntry]:
    """The cross-location patterns every model study leans on."""
    mp = _t([write(X, 1), write(Y, 1)], [read(Y), read(X)])
    sb = _t([write(X, 1), read(Y)], [write(Y, 1), read(X)])
    sb_mfences = _t(
        [write(X, 1), MFENCE, read(Y)], [write(Y, 1), MFENCE, read(X)]
    )
    lb = _t([read(X), write(Y, 1)], [read(Y), write(X, 1)])
    s = _t([write(X, 2), write(Y, 1)], [read(Y), write(X, 1)])
    r = _t([write(X, 1), write(Y, 1)], [write(Y, 2), read(X)])
    r_mfence = _t(
        [write(X, 1), write(Y, 1)], [write(Y, 2), MFENCE, read(X)]
    )
    w22 = _t([write(X, 1), write(Y, 2)], [write(Y, 1), write(X, 2)])
    wrc = _t([write(X, 1)], [read(X), write(Y, 1)], [read(Y), read(X)])
    wwc = _t([write(X, 2)], [read(X), write(Y, 1)], [read(Y), write(X, 1)])
    rwc_mfence = _t(
        [write(X, 1)],
        [read(X), read(Y)],
        [write(Y, 1), MFENCE, read(X)],
    )
    iriw = _t(
        [write(X, 1)],
        [write(Y, 1)],
        [read(X), read(Y)],
        [read(Y), read(X)],
    )
    return [
        _entry("MP", mp, "tso", reads={2: 1, 3: 0}, note="paper Fig. 1"),
        _entry(
            "SB", sb, "sc", reads={1: 0, 3: 0},
            note="forbidden under SC; allowed under TSO",
        ),
        _entry("SB+mfences", sb_mfences, "tso", reads={2: 0, 5: 0},
               note="amd5"),
        _entry("LB", lb, "tso", reads={0: 1, 2: 1}),
        _entry("S", s, "tso", reads={2: 1}, finals={X: 2}),
        _entry(
            "R", r, "sc", reads={3: 0}, finals={Y: 2},
            note="forbidden under SC; allowed under TSO (W->R)",
        ),
        _entry("R+mfence", r_mfence, "tso", reads={4: 0}, finals={Y: 2}),
        _entry("2+2W", w22, "tso", finals={X: 1, Y: 1}),
        _entry("WRC", wrc, "tso", reads={1: 1, 3: 1, 4: 0},
               note="iwp2.5: stores are transitively visible"),
        _entry("WWC", wwc, "tso", reads={1: 2, 3: 1}, finals={X: 2},
               note="paper Fig. 14"),
        _entry("RWC+mfence", rwc_mfence, "tso",
               reads={1: 1, 2: 0, 5: 0}),
        _entry("IRIW", iriw, "tso", reads={2: 1, 3: 0, 4: 1, 5: 0},
               note="amd6"),
    ]


def _owens_specific_entries() -> list[CatalogEntry]:
    """Owens et al. tests that are not simply classic patterns."""
    n5 = _t([read(X), write(X, 1)], [read(X), write(X, 2)])
    n6 = _t(
        [write(X, 1), read(X), read(Y)],
        [write(Y, 2), write(X, 2)],
    )
    n4 = _t(
        [write(X, 1), read(X)],
        [write(X, 2), read(X)],
    )
    n3 = _t(
        [read(X), write(X, 1)],
        [read(Y), write(Y, 1)],
        [read(X), read(Y)],
        [read(Y), read(X)],
        rmw=[(0, 1), (2, 3)],
    )
    coiriw = _t(
        [write(X, 1)],
        [write(X, 2)],
        [read(X), read(X)],
        [read(X), read(X)],
    )
    iriw_mfences = _t(
        [write(X, 1)],
        [write(Y, 1)],
        [read(X), MFENCE, read(Y)],
        [read(Y), MFENCE, read(X)],
    )
    iriw_one_mfence = _t(
        [write(X, 1)],
        [write(Y, 1)],
        [read(X), MFENCE, read(Y)],
        [read(Y), read(X)],
    )
    mp_mfence = _t(
        [write(X, 1), MFENCE, write(Y, 1)],
        [read(Y), read(X)],
    )
    sb_mfences_obs = _t(
        [write(X, 1), MFENCE, read(Y)],
        [write(Y, 1), MFENCE, read(X)],
        [read(X), read(Y)],
    )
    return [
        _entry(
            "n5", n5, "tso", reads={0: 2, 2: 1},
            note="paper Fig. 10 (n5/coLB: each load reads the other "
            "thread's later store); not minimal — contains CoRW",
        ),
        _entry(
            "n6", n6, "tso", reads={1: 1, 2: 0}, finals={X: 1},
            note="Loewenstein's IWP-vs-x86-CC discriminator; this outcome "
            "is ALLOWED under x86-TSO (store-buffer forwarding), which is "
            "what made IWP unsound",
        ),
        _entry(
            "n4", n4, "tso", reads={1: 2, 3: 1},
            note="each thread writes, then reads the other thread's "
            "write — a coherence cycle; contains CoWR",
        ),
        _entry(
            "n3", n3, "tso", reads={4: 1, 5: 0, 6: 1, 7: 0},
            note="reconstructed: IRIW with the writes performed by xchg "
            "RMWs — contains IRIW",
            reconstructed=True,
        ),
        _entry(
            "iwp2.6", coiriw, "tso",
            reads={2: 1, 3: 2, 4: 2, 5: 1},
            note="coIRIW: stores to one location seen in a single order",
        ),
        _entry(
            "iwp2.7", iriw_mfences, "tso",
            reads={2: 1, 4: 0, 5: 1, 7: 0},
            note="amd7: IRIW with mfences",
        ),
        _entry(
            "iwp2.8.a", iriw_one_mfence, "tso",
            reads={2: 1, 4: 0, 5: 1, 6: 0},
            note="reconstructed: IRIW with a single mfence",
            reconstructed=True,
        ),
        _entry(
            "iwp2.8.b", mp_mfence, "tso", reads={3: 1, 4: 0},
            note="reconstructed: MP with a redundant mfence — contains MP",
            reconstructed=True,
        ),
        _entry(
            "amd10", sb_mfences_obs, "tso",
            reads={2: 0, 5: 0, 6: 1, 7: 1},
            note="reconstructed: SB+mfences with an observer thread — "
            "contains SB+mfences",
            reconstructed=True,
        ),
    ]


def _power_entries() -> list[CatalogEntry]:
    """Representative Cambridge-suite Power tests (Sarkar et al. 2011)."""

    def dep(src: int, dst: int, kind: DepKind = DepKind.ADDR) -> Dep:
        return Dep(src, dst, kind)

    mp_sync_addr = _t(
        [write(X, 1), SYNC, write(Y, 1)],
        [read(Y), read(X)],
        deps=[dep(3, 4)],
    )
    mp_lwsync_addr = _t(
        [write(X, 1), LWSYNC, write(Y, 1)],
        [read(Y), read(X)],
        deps=[dep(3, 4)],
    )
    mp_syncs = _t(
        [write(X, 1), SYNC, write(Y, 1)],
        [read(Y), SYNC, read(X)],
    )
    mp_lwsyncs = _t(
        [write(X, 1), LWSYNC, write(Y, 1)],
        [read(Y), LWSYNC, read(X)],
    )
    sb_syncs = _t(
        [write(X, 1), SYNC, read(Y)],
        [write(Y, 1), SYNC, read(X)],
    )
    lb_addrs = _t(
        [read(X), write(Y, 1)],
        [read(Y), write(X, 1)],
        deps=[dep(0, 1), dep(2, 3)],
    )
    lb_datas = _t(
        [read(X), write(Y, 1)],
        [read(Y), write(X, 1)],
        deps=[dep(0, 1, DepKind.DATA), dep(2, 3, DepKind.DATA)],
    )
    lb_addrs_ww = _t(
        [read(X), write(Z, 1), write(Y, 1)],
        [read(Y), write(X, 1)],
        deps=[dep(0, 1), dep(3, 4)],
    )
    lb_datas_ww = _t(
        [read(X), write(Z, 1), write(Y, 1)],
        [read(Y), write(X, 1)],
        deps=[dep(0, 1, DepKind.DATA), dep(3, 4, DepKind.DATA)],
    )
    mp_sync_ctrlisync = _t(
        [write(X, 1), SYNC, write(Y, 1)],
        [read(Y), read(X)],
        deps=[dep(3, 4, DepKind.CTRLISYNC)],
    )
    mp_sync_ctrl = _t(
        [write(X, 1), SYNC, write(Y, 1)],
        [read(Y), read(X)],
        deps=[dep(3, 4, DepKind.CTRL)],
    )
    wrc_sync_addr = _t(
        [write(X, 1)],
        [read(X), SYNC, write(Y, 1)],
        [read(Y), read(X)],
        deps=[dep(4, 5)],
    )
    w22_syncs = _t(
        [write(X, 1), SYNC, write(Y, 2)],
        [write(Y, 1), SYNC, write(X, 2)],
    )
    ppoaa_sync = _t(
        [write(X, 1), SYNC, write(Y, 1)],
        [read(Y), read(Z), read(X)],
        deps=[dep(3, 4), dep(4, 5)],
    )
    ppoaa_lwsync = _t(
        [write(X, 1), LWSYNC, write(Y, 1)],
        [read(Y), read(Z), read(X)],
        deps=[dep(3, 4), dep(4, 5)],
    )
    return [
        _entry("MP+sync+addr", mp_sync_addr, "power",
               reads={3: 1, 4: 0}),
        _entry("MP+lwsync+addr", mp_lwsync_addr, "power",
               reads={3: 1, 4: 0}),
        _entry("MP+syncs", mp_syncs, "power", reads={3: 1, 5: 0}),
        _entry("MP+lwsyncs", mp_lwsyncs, "power", reads={3: 1, 5: 0}),
        _entry("SB+syncs", sb_syncs, "power", reads={2: 0, 5: 0}),
        _entry("LB+addrs", lb_addrs, "power", reads={0: 1, 2: 1}),
        _entry("LB+datas", lb_datas, "power", reads={0: 1, 2: 1}),
        _entry(
            "LB+addrs+WW", lb_addrs_ww, "power", reads={0: 1, 3: 1},
            note="address dependency orders subsequent accesses (addr;po); "
            "the data variant is allowed (§6.2)",
        ),
        _entry(
            "LB+datas+WW", lb_datas_ww, "power", reads={0: 1, 3: 1},
            note="allowed under Power: data deps do not extend over po",
        ),
        _entry("MP+sync+ctrlisync", mp_sync_ctrlisync, "power",
               reads={3: 1, 4: 0}),
        _entry(
            "MP+sync+ctrl", mp_sync_ctrl, "power", reads={3: 1, 4: 0},
            note="allowed under Power: ctrl alone does not order R->R",
        ),
        _entry("WRC+sync+addr", wrc_sync_addr, "power",
               reads={1: 1, 4: 1, 5: 0}),
        _entry("2+2W+syncs", w22_syncs, "power", finals={X: 1, Y: 1}),
        _entry(
            "PPOAA", ppoaa_sync, "power", reads={3: 1, 5: 0},
            note="as published (sync); the paper notes this is not minimal "
            "— the lwsync variant is (§6.2)",
            reconstructed=True,
        ),
        _entry(
            "PPOAA+lwsync", ppoaa_lwsync, "power", reads={3: 1, 5: 0},
            note="the minimal variant of PPOAA",
            reconstructed=True,
        ),
    ]


def _build_catalog() -> dict[str, CatalogEntry]:
    entries = (
        _coherence_entries()
        + _classic_entries()
        + _owens_specific_entries()
        + _power_entries()
    )
    catalog: dict[str, CatalogEntry] = {}
    for entry in entries:
        if entry.name in catalog:
            raise ValueError(f"duplicate catalog entry {entry.name}")
        catalog[entry.name] = entry
    return catalog


CATALOG: dict[str, CatalogEntry] = _build_catalog()


def get_entry(name: str) -> CatalogEntry:
    return CATALOG[name]


#: The 15 forbidden-outcome tests of the Owens x86-TSO suite as tabulated
#: in the paper's Table 4 (see module docstring for reconstruction
#: caveats).
_OWENS_FORBIDDEN_NAMES = (
    "MP",
    "LB",
    "S",
    "2+2W",
    "n5",
    "n4",
    "n3",
    "WRC",
    "iwp2.6",
    "iwp2.7",
    "iwp2.8.a",
    "iwp2.8.b",
    "SB+mfences",
    "IRIW",
    "amd10",
)


def owens_suite() -> list[CatalogEntry]:
    """The Owens et al. forbidden tests plus the classic allowed ones."""
    names = _OWENS_FORBIDDEN_NAMES + ("CoWR0", "SB", "R", "n6")
    return [CATALOG[n] for n in names]


def owens_forbidden() -> list[CatalogEntry]:
    return [CATALOG[n] for n in _OWENS_FORBIDDEN_NAMES]


def cambridge_power_suite() -> list[CatalogEntry]:
    """Representative slice of the Cambridge Power/ARM summary suite."""
    return [e for e in CATALOG.values() if e.model == "power"]


def entries_for_model(model_name: str) -> list[CatalogEntry]:
    return [e for e in CATALOG.values() if e.model == model_name]
