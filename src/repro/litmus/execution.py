"""Dynamic executions and observable outcomes of litmus tests.

The paper (§4.2) distinguishes three things:

* a *litmus test* — the static program (:class:`~repro.litmus.test.LitmusTest`);
* an *outcome* — what is directly observable after one run: the value each
  load returned plus the final value of each memory location;
* an *execution* — the outcome together with the auxiliary relations
  (notably the full coherence order ``co`` and, for models like SCC, the
  ``sc`` total order) that cannot be observed directly.

Because every write to an address stores a distinct value, a load's return
value identifies its ``rf`` source, and an address's final value identifies
its ``co``-maximal write.  Outcomes are therefore represented *by event
identity* (which write sourced each read, which write is coherence-final)
rather than by raw integers.  Event identity survives instruction
relaxations through an explicit event map, which is exactly what the
paper's outcome-projection step needs (Fig. 3: "matches (r1=1, r2=0) with
r1 removed").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.litmus.test import LitmusTest

__all__ = [
    "Execution",
    "Outcome",
    "project_outcome",
    "prune_outcome",
    "remap_outcome",
]


@dataclass(frozen=True)
class Outcome:
    """The observable footprint of one execution.

    Attributes:
        rf_sources: for each read, ``(read_eid, write_eid_or_None)`` — the
            write the read returned, or ``None`` for the initial value.
        finals: for each location, ``(location, write_eid_or_None)`` — the
            coherence-final write, or ``None`` when no write touches the
            location (final value is the initial 0).  Locations equal
            addresses for tests without an aliasing layer.
    """

    rf_sources: tuple[tuple[int, int | None], ...]
    finals: tuple[tuple[int, int | None], ...]

    def read_value(self, test: LitmusTest, read_eid: int) -> int:
        """The integer value the read returned in this outcome."""
        for eid, src in self.rf_sources:
            if eid == read_eid:
                return 0 if src is None else test.write_values[src]
        raise KeyError(f"event {read_eid} is not a read of this outcome")

    def final_value(self, test: LitmusTest, address: int) -> int:
        """The final integer value of ``address`` in this outcome."""
        loc = test.location_of(address)
        for addr, w in self.finals:
            if addr == loc:
                return 0 if w is None else test.write_values[w]
        raise KeyError(f"address {address} not in this outcome")

    def pretty(self, test: LitmusTest) -> str:
        """Render in the paper's ``(r0=1, r1=0, [x]=2)`` style."""
        addr_names = {
            a: chr(ord("x") + i) for i, a in enumerate(test.addresses)
        }
        parts = [
            f"r{eid}={self.read_value(test, eid)}" for eid, _ in self.rf_sources
        ]
        parts += [
            f"[{addr_names.get(a, a)}]={self.final_value(test, a)}"
            for a, _ in self.finals
        ]
        return "(" + ", ".join(parts) + ")"


@dataclass(frozen=True)
class Execution:
    """One candidate execution of a litmus test.

    Attributes:
        test: the litmus test being executed.
        rf: ``(read_eid, write_eid_or_None)`` per read, in event-id order.
            ``None`` means the read returned the initial value.
        co: one tuple per location (in :attr:`LitmusTest.locations` order)
            giving that location's writes in coherence order — aliased
            addresses share a single order.
        sc: total order over ``FenceSC`` events for models with an ``sc``
            relation (SCC, C11); empty for other models.
    """

    test: LitmusTest
    rf: tuple[tuple[int, int | None], ...]
    co: tuple[tuple[int, ...], ...]
    sc: tuple[int, ...] = ()

    @cached_property
    def rf_map(self) -> dict[int, int | None]:
        """Read eid -> sourcing write eid (or None for initial)."""
        return dict(self.rf)

    @cached_property
    def co_position(self) -> dict[int, int]:
        """Write eid -> its position in its address's coherence order."""
        return {w: i for order in self.co for i, w in enumerate(order)}

    @cached_property
    def outcome(self) -> Outcome:
        """Project this execution onto its observable outcome."""
        finals = tuple(
            (loc, order[-1] if order else None)
            for loc, order in zip(self.test.locations, self.co)
        )
        return Outcome(rf_sources=self.rf, finals=finals)

    def read_value(self, read_eid: int) -> int:
        src = self.rf_map[read_eid]
        return 0 if src is None else self.test.write_values[src]

    def pretty(self) -> str:
        return self.outcome.pretty(self.test)


def project_outcome(
    outcome: Outcome, event_map: dict[int, int | None]
) -> Outcome:
    """Project an outcome through a relaxation's event map.

    ``event_map`` sends each original event id to its id in the relaxed
    test, or ``None`` if the relaxation removed the event.  Constraints
    that mention a removed event are dropped, per the paper's treatment:

    * a removed read drops its entry entirely (Fig. 3b/3c);
    * a removed ``rf`` source leaves its read *unconstrained* (Fig. 3d and
      the CoRW discussion in §4.3), so the entry is dropped rather than
      retargeted;
    * a removed coherence-final write drops the final-value constraint for
      that address.
    """
    rf_sources = []
    for read_eid, src in outcome.rf_sources:
        new_read = event_map.get(read_eid)
        if new_read is None:
            continue
        if src is None:
            rf_sources.append((new_read, None))
            continue
        new_src = event_map.get(src)
        if new_src is None:
            continue  # source removed: read becomes unconstrained
        rf_sources.append((new_read, new_src))
    finals = []
    for addr, w in outcome.finals:
        if w is None:
            finals.append((addr, None))
            continue
        new_w = event_map.get(w)
        if new_w is None:
            continue  # final write removed: constraint vanishes
        finals.append((addr, new_w))
    return Outcome(tuple(rf_sources), tuple(finals))


def prune_outcome(test: LitmusTest, outcome: Outcome) -> Outcome:
    """Drop constraints a relaxed test can no longer express.

    Projection through an event map keeps every constraint whose events
    survive, but a relaxation that also rewrites the *address-map* layer
    (e.g. un-aliasing a virtual address) can leave structurally
    ill-formed constraints behind: an ``rf`` edge whose surviving source
    now writes a different location than its read, or a final-value
    constraint keyed by a location the relaxed test no longer merges.
    Such constraints are unobservable by construction, so they are
    dropped — the read (or location) becomes unconstrained, mirroring
    the removed-source rule of :func:`project_outcome`.  For relaxations
    that keep the address map intact this is the identity.
    """
    rf_sources = []
    for read_eid, src in outcome.rf_sources:
        if src is not None:
            r = test.instruction(read_eid)
            w = test.instruction(src)
            if (
                not w.is_write
                or not r.is_read
                or test.location_of(w.address) != test.location_of(r.address)
            ):
                continue  # source no longer writes the read's location
        rf_sources.append((read_eid, src))
    locs = set(test.locations)
    finals: list[tuple[int, int | None]] = []
    for a, w in outcome.finals:
        loc = test.location_of(a)
        if w is not None:
            inst = test.instruction(w)
            if (
                loc not in locs
                or not inst.is_write
                or test.location_of(inst.address) != loc
            ):
                continue  # constraint names a write of some other location
        if (loc, w) not in finals:
            finals.append((loc, w))
    return Outcome(tuple(rf_sources), tuple(finals))


def remap_outcome(
    outcome: Outcome,
    event_map: dict[int, int],
    addr_map: dict[int, int],
) -> Outcome:
    """Rewrite an outcome through a *total* renaming (canonicalization)."""
    rf_sources = tuple(
        sorted(
            (event_map[r], None if s is None else event_map[s])
            for r, s in outcome.rf_sources
        )
    )
    finals = tuple(
        sorted(
            (addr_map[a], None if w is None else event_map[w])
            for a, w in outcome.finals
        )
    )
    return Outcome(rf_sources, finals)
