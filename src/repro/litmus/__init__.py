"""Litmus test intermediate representation."""

from repro.litmus.events import (
    DepKind,
    EventKind,
    FenceKind,
    Instruction,
    Order,
    Scope,
    dirty,
    fence,
    ptwalk,
    read,
    remap,
    write,
)
from repro.litmus.execution import (
    Execution,
    Outcome,
    project_outcome,
    remap_outcome,
)
from repro.litmus.format import ParseError, format_test, parse_test
from repro.litmus.test import Dep, LitmusTest

__all__ = [
    "DepKind",
    "EventKind",
    "FenceKind",
    "Instruction",
    "Order",
    "Scope",
    "read",
    "write",
    "fence",
    "ptwalk",
    "remap",
    "dirty",
    "Dep",
    "LitmusTest",
    "Execution",
    "Outcome",
    "project_outcome",
    "remap_outcome",
    "ParseError",
    "format_test",
    "parse_test",
]
