"""Instruction-level vocabulary for litmus tests.

The paper synthesizes tests over a per-model *instruction vocabulary*:
reads and writes carry a memory-order annotation (paper Table 1 and the
ARMv8/SCC acquire-release opcodes), fences come in model-specific
strengths, and dependencies (address / data / control) are explicit edges
in the test rather than properties of register dataflow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "EventKind",
    "Order",
    "FenceKind",
    "DepKind",
    "Scope",
    "Instruction",
    "read",
    "write",
    "fence",
]


class EventKind(enum.Enum):
    """The three base event classes of the paper's Alloy model (Fig. 4)."""

    READ = "R"
    WRITE = "W"
    FENCE = "F"


class Order(enum.IntEnum):
    """Memory-order annotations, weakest to strongest.

    ``PLAIN`` is a non-atomic access (or an ISA access with no annotation);
    ``RLX`` is a C11 relaxed *atomic* access.  The integer ordering mirrors
    the demotion lattice of the paper's Table 1, which DMO walks downward.
    """

    PLAIN = 0
    RLX = 1
    CON = 2
    ACQ = 3
    REL = 4
    ACQ_REL = 5
    SC = 6

    @property
    def is_acquire(self) -> bool:
        return self in (Order.ACQ, Order.ACQ_REL, Order.SC, Order.CON)

    @property
    def is_release(self) -> bool:
        return self in (Order.REL, Order.ACQ_REL, Order.SC)

    @property
    def is_atomic(self) -> bool:
        """True for any C11 atomic access (everything except PLAIN)."""
        return self is not Order.PLAIN


class FenceKind(enum.Enum):
    """Fence strengths across the modelled ISAs and languages."""

    MFENCE = "mfence"        # x86
    SYNC = "sync"            # Power heavyweight / ARMv7 dmb
    LWSYNC = "lwsync"        # Power lightweight
    ISYNC = "isync"          # Power instruction fence (ARMv7 isb)
    FENCE_ACQ = "fence.acq"  # C11 atomic_thread_fence(acquire)
    FENCE_REL = "fence.rel"  # C11 atomic_thread_fence(release)
    FENCE_ACQ_REL = "fence.acq_rel"  # C11 / SCC acquire-release fence
    FENCE_SC = "fence.sc"    # C11 seq_cst fence / SCC FenceSC


class DepKind(enum.Enum):
    """Dependency edge kinds (paper §3.2, RD relaxation)."""

    ADDR = "addr"
    DATA = "data"
    CTRL = "ctrl"
    CTRLISYNC = "ctrlisync"  # Power ctrl+isync / ARM ctrl+isb


class Scope(enum.IntEnum):
    """Synchronization scopes for scoped models (OpenCL/HSA-style).

    Wider scopes are stronger; DS (Demote Scope) steps downward.
    """

    WORKGROUP = 1
    DEVICE = 2
    SYSTEM = 3


@dataclass(frozen=True, order=True)
class Instruction:
    """A single static instruction slot in a litmus test thread.

    ``address`` and ``value`` are ``None`` when inapplicable (fences never
    have them; a write's value may be left ``None`` to be auto-assigned by
    :class:`~repro.litmus.test.LitmusTest` so that every write to an
    address stores a distinct value).  ``scope`` is only meaningful for
    scoped models and stays ``None`` elsewhere.
    """

    kind: EventKind
    address: int | None = None
    order: Order = Order.PLAIN
    fence: FenceKind | None = None
    value: int | None = None
    scope: Scope | None = None

    def __post_init__(self) -> None:
        if self.kind is EventKind.FENCE:
            if self.fence is None:
                raise ValueError("fence instruction requires a fence kind")
            if self.address is not None or self.value is not None:
                raise ValueError("fences carry no address or value")
        else:
            if self.address is None:
                raise ValueError(f"{self.kind.value} requires an address")
            if self.fence is not None:
                raise ValueError("memory accesses carry no fence kind")
            if self.kind is EventKind.READ and self.value is not None:
                raise ValueError("reads carry no static value")

    @property
    def is_read(self) -> bool:
        return self.kind is EventKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is EventKind.WRITE

    @property
    def is_fence(self) -> bool:
        return self.kind is EventKind.FENCE

    def with_order(self, order: Order) -> Instruction:
        """Copy of this instruction with a different memory order."""
        return Instruction(
            self.kind, self.address, order, self.fence, self.value, self.scope
        )

    def with_fence(self, kind: FenceKind) -> Instruction:
        """Copy of this fence with a different strength."""
        if not self.is_fence:
            raise ValueError("with_fence applies only to fences")
        return Instruction(self.kind, None, self.order, kind, None, self.scope)

    def with_scope(self, scope: Scope | None) -> Instruction:
        """Copy of this instruction with a different scope annotation."""
        return Instruction(
            self.kind, self.address, self.order, self.fence, self.value, scope
        )

    def mnemonic(self, addr_names: dict[int, str] | None = None) -> str:
        """Human-readable rendering, e.g. ``St.release [x], 1``."""
        suffix = "" if self.order is Order.PLAIN else f".{self.order.name.lower()}"
        if self.scope is not None:
            suffix += f".{self.scope.name.lower()}"
        if self.is_fence:
            assert self.fence is not None
            return f"Fence.{self.fence.value}{suffix}"
        name = (
            addr_names[self.address]
            if addr_names is not None and self.address in addr_names
            else f"a{self.address}"
        )
        if self.is_read:
            return f"Ld{suffix} [{name}]"
        val = "?" if self.value is None else str(self.value)
        return f"St{suffix} [{name}], {val}"


def read(
    address: int, order: Order = Order.PLAIN, scope: Scope | None = None
) -> Instruction:
    """Convenience constructor for a load."""
    return Instruction(EventKind.READ, address, order, scope=scope)


def write(
    address: int,
    value: int | None = None,
    order: Order = Order.PLAIN,
    scope: Scope | None = None,
) -> Instruction:
    """Convenience constructor for a store."""
    return Instruction(EventKind.WRITE, address, order, value=value, scope=scope)


def fence(kind: FenceKind, scope: Scope | None = None) -> Instruction:
    """Convenience constructor for a fence."""
    return Instruction(EventKind.FENCE, fence=kind, scope=scope)
