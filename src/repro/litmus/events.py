"""Instruction-level vocabulary for litmus tests.

The paper synthesizes tests over a per-model *instruction vocabulary*:
reads and writes carry a memory-order annotation (paper Table 1 and the
ARMv8/SCC acquire-release opcodes), fences come in model-specific
strengths, and dependencies (address / data / control) are explicit edges
in the test rather than properties of register dataflow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "EventKind",
    "VMEM_KINDS",
    "Order",
    "FenceKind",
    "DepKind",
    "Scope",
    "Instruction",
    "read",
    "write",
    "fence",
    "ptwalk",
    "remap",
    "dirty",
]


class EventKind(enum.Enum):
    """The event classes of the paper's Alloy model (Fig. 4), plus the
    TransForm transistency extensions (PAPERS.md).

    ``PTWALK`` is a hardware page-table walk: it *reads* the page-table
    entry's location.  ``REMAP`` is a mapping update (e.g. by the OS): it
    *writes* the entry's location.  ``DIRTY`` is a hardware dirty-bit
    update, also a write to the entry's location.  The three transistency
    kinds participate in ``rf``/``co``/``fr`` exactly like the base kinds
    they refine; models distinguish them through the event-class masks.
    """

    READ = "R"
    WRITE = "W"
    FENCE = "F"
    PTWALK = "PTW"
    REMAP = "M"
    DIRTY = "D"


#: Transistency event kinds — only generated when a model's vocabulary
#: opts in (:attr:`repro.models.base.Vocabulary.vmem_kinds`), so tests
#: over the base kinds are untouched by the extension.
VMEM_KINDS: frozenset[EventKind] = frozenset(
    {EventKind.PTWALK, EventKind.REMAP, EventKind.DIRTY}
)

#: Read-like and write-like kind groups (membership drives rf/co/fr).
_READ_KINDS = frozenset({EventKind.READ, EventKind.PTWALK})
_WRITE_KINDS = frozenset(
    {EventKind.WRITE, EventKind.REMAP, EventKind.DIRTY}
)


class Order(enum.IntEnum):
    """Memory-order annotations, weakest to strongest.

    ``PLAIN`` is a non-atomic access (or an ISA access with no annotation);
    ``RLX`` is a C11 relaxed *atomic* access.  The integer ordering mirrors
    the demotion lattice of the paper's Table 1, which DMO walks downward.
    """

    PLAIN = 0
    RLX = 1
    CON = 2
    ACQ = 3
    REL = 4
    ACQ_REL = 5
    SC = 6

    @property
    def is_acquire(self) -> bool:
        return self in (Order.ACQ, Order.ACQ_REL, Order.SC, Order.CON)

    @property
    def is_release(self) -> bool:
        return self in (Order.REL, Order.ACQ_REL, Order.SC)

    @property
    def is_atomic(self) -> bool:
        """True for any C11 atomic access (everything except PLAIN)."""
        return self is not Order.PLAIN


class FenceKind(enum.Enum):
    """Fence strengths across the modelled ISAs and languages."""

    MFENCE = "mfence"        # x86
    SYNC = "sync"            # Power heavyweight / ARMv7 dmb
    LWSYNC = "lwsync"        # Power lightweight
    ISYNC = "isync"          # Power instruction fence (ARMv7 isb)
    FENCE_ACQ = "fence.acq"  # C11 atomic_thread_fence(acquire)
    FENCE_REL = "fence.rel"  # C11 atomic_thread_fence(release)
    FENCE_ACQ_REL = "fence.acq_rel"  # C11 / SCC acquire-release fence
    FENCE_SC = "fence.sc"    # C11 seq_cst fence / SCC FenceSC


class DepKind(enum.Enum):
    """Dependency edge kinds (paper §3.2, RD relaxation)."""

    ADDR = "addr"
    DATA = "data"
    CTRL = "ctrl"
    CTRLISYNC = "ctrlisync"  # Power ctrl+isync / ARM ctrl+isb


class Scope(enum.IntEnum):
    """Synchronization scopes for scoped models (OpenCL/HSA-style).

    Wider scopes are stronger; DS (Demote Scope) steps downward.
    """

    WORKGROUP = 1
    DEVICE = 2
    SYSTEM = 3


@dataclass(frozen=True, order=True)
class Instruction:
    """A single static instruction slot in a litmus test thread.

    ``address`` and ``value`` are ``None`` when inapplicable (fences never
    have them; a write's value may be left ``None`` to be auto-assigned by
    :class:`~repro.litmus.test.LitmusTest` so that every write to an
    address stores a distinct value).  ``scope`` is only meaningful for
    scoped models and stays ``None`` elsewhere.
    """

    kind: EventKind
    address: int | None = None
    order: Order = Order.PLAIN
    fence: FenceKind | None = None
    value: int | None = None
    scope: Scope | None = None

    def __post_init__(self) -> None:
        if self.kind is EventKind.FENCE:
            if self.fence is None:
                raise ValueError("fence instruction requires a fence kind")
            if self.address is not None or self.value is not None:
                raise ValueError("fences carry no address or value")
        else:
            if self.address is None:
                raise ValueError(f"{self.kind.value} requires an address")
            if self.fence is not None:
                raise ValueError("memory accesses carry no fence kind")
            if self.is_read and self.value is not None:
                raise ValueError("reads carry no static value")

    @property
    def is_read(self) -> bool:
        return self.kind in _READ_KINDS

    @property
    def is_write(self) -> bool:
        return self.kind in _WRITE_KINDS

    @property
    def is_fence(self) -> bool:
        return self.kind is EventKind.FENCE

    @property
    def is_vmem(self) -> bool:
        """True for the TransForm transistency kinds."""
        return self.kind in VMEM_KINDS

    def with_order(self, order: Order) -> Instruction:
        """Copy of this instruction with a different memory order."""
        return Instruction(
            self.kind, self.address, order, self.fence, self.value, self.scope
        )

    def with_fence(self, kind: FenceKind) -> Instruction:
        """Copy of this fence with a different strength."""
        if not self.is_fence:
            raise ValueError("with_fence applies only to fences")
        return Instruction(self.kind, None, self.order, kind, None, self.scope)

    def with_scope(self, scope: Scope | None) -> Instruction:
        """Copy of this instruction with a different scope annotation."""
        return Instruction(
            self.kind, self.address, self.order, self.fence, self.value, scope
        )

    def mnemonic(self, addr_names: dict[int, str] | None = None) -> str:
        """Human-readable rendering, e.g. ``St.release [x], 1``."""
        suffix = "" if self.order is Order.PLAIN else f".{self.order.name.lower()}"
        if self.scope is not None:
            suffix += f".{self.scope.name.lower()}"
        if self.is_fence:
            assert self.fence is not None
            return f"Fence.{self.fence.value}{suffix}"
        name = (
            addr_names[self.address]
            if addr_names is not None and self.address in addr_names
            else f"a{self.address}"
        )
        if self.is_read:
            op = "Ptw" if self.kind is EventKind.PTWALK else "Ld"
            return f"{op}{suffix} [{name}]"
        val = "?" if self.value is None else str(self.value)
        op = {
            EventKind.REMAP: "Map",
            EventKind.DIRTY: "Drt",
        }.get(self.kind, "St")
        return f"{op}{suffix} [{name}], {val}"


def read(
    address: int, order: Order = Order.PLAIN, scope: Scope | None = None
) -> Instruction:
    """Convenience constructor for a load."""
    return Instruction(EventKind.READ, address, order, scope=scope)


def write(
    address: int,
    value: int | None = None,
    order: Order = Order.PLAIN,
    scope: Scope | None = None,
) -> Instruction:
    """Convenience constructor for a store."""
    return Instruction(EventKind.WRITE, address, order, value=value, scope=scope)


def fence(kind: FenceKind, scope: Scope | None = None) -> Instruction:
    """Convenience constructor for a fence."""
    return Instruction(EventKind.FENCE, fence=kind, scope=scope)


def ptwalk(address: int, order: Order = Order.PLAIN) -> Instruction:
    """A page-table walk: a read of the translation entry's location."""
    return Instruction(EventKind.PTWALK, address, order)


def remap(
    address: int, value: int | None = None, order: Order = Order.PLAIN
) -> Instruction:
    """A mapping update: a write to the translation entry's location."""
    return Instruction(EventKind.REMAP, address, order, value=value)


def dirty(
    address: int, value: int | None = None, order: Order = Order.PLAIN
) -> Instruction:
    """A hardware dirty-bit update: a write to the entry's location."""
    return Instruction(EventKind.DIRTY, address, order, value=value)
