"""A human-readable text format for litmus tests.

Example::

    name: MP
    thread P0:
      W x 1
      W y 1
    thread P1:
      r0 = R y
      r1 = R x
    forbidden: r0=1 r1=0

Syntax:

* accesses: ``W <addr> [<value>]`` / ``<reg> = R <addr>``, with optional
  order suffix (``W.rel``, ``R.acq``, ``R.rlx``, ``W.sc`` …) and scope
  suffix (``@wg``, ``@dev``, ``@sys``);
* fences: ``F.<kind>`` where kind is one of ``mfence``, ``sync``,
  ``lwsync``, ``isync``, ``acq``, ``rel``, ``acq_rel``, ``sc``;
* ``rmw: P0:0 P0:1`` pairs the given (thread:index) read and write;
* ``dep: P1:0 addr P1:1`` adds a dependency edge (kinds: ``addr``,
  ``data``, ``ctrl``, ``ctrlisync``);
* ``scope: P0=0 P1=0 P2=1`` assigns scope groups to threads;
* transistency events (TransForm-style enhanced tests): ``PTW <addr>``
  is a page-table walk (read-like, binds a register), ``MAP <addr>
  [<value>]`` a mapping update and ``DRT <addr> [<value>]`` a dirty-bit
  update (both write-like);
* ``map: y=x`` records a virtual->physical alias: accesses to ``y``
  resolve to the location of ``x``;
* ``forbidden: r0=1 r1=0 x=2`` records the forbidden outcome —
  register constraints and final-value constraints in one list.

Addresses are symbolic identifiers assigned ids in first-use order.
"""

from __future__ import annotations

import re

from repro.litmus.catalog import outcome_from_values
from repro.litmus.events import (
    DepKind,
    EventKind,
    FenceKind,
    Instruction,
    Order,
    Scope,
    dirty,
    fence,
    ptwalk,
    read,
    remap,
    write,
)
from repro.litmus.execution import Outcome
from repro.litmus.test import Dep, LitmusTest

__all__ = ["ParseError", "parse_test", "format_test"]


class ParseError(ValueError):
    """Raised on malformed litmus text."""


_ORDER_SUFFIXES = {
    "rlx": Order.RLX,
    "con": Order.CON,
    "acq": Order.ACQ,
    "acquire": Order.ACQ,
    "rel": Order.REL,
    "release": Order.REL,
    "acq_rel": Order.ACQ_REL,
    "sc": Order.SC,
}

_FENCE_KINDS = {
    "mfence": FenceKind.MFENCE,
    "sync": FenceKind.SYNC,
    "lwsync": FenceKind.LWSYNC,
    "isync": FenceKind.ISYNC,
    "acq": FenceKind.FENCE_ACQ,
    "rel": FenceKind.FENCE_REL,
    "acq_rel": FenceKind.FENCE_ACQ_REL,
    "sc": FenceKind.FENCE_SC,
}

_SCOPE_SUFFIXES = {
    "wg": Scope.WORKGROUP,
    "dev": Scope.DEVICE,
    "sys": Scope.SYSTEM,
}

_DEP_KINDS = {k.value: k for k in DepKind}


def parse_test(text: str) -> tuple[LitmusTest, Outcome | None]:
    """Parse the text format; returns the test and the forbidden outcome
    (None if no ``forbidden:`` clause is present)."""
    name: str | None = None
    threads: list[list[Instruction]] = []
    thread_names: dict[str, int] = {}
    addr_ids: dict[str, int] = {}
    reg_to_local: dict[str, tuple[int, int]] = {}  # reg -> (tid, index)
    rmw: set[tuple[str, str]] = set()
    deps: set[tuple[str, str, DepKind]] = set()
    scopes: dict[int, int] = {}
    aliases: list[tuple[str, str]] = []
    forbidden_clause: str | None = None
    final_clause_present = False

    current_thread: int | None = None
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("name:"):
            name = line.split(":", 1)[1].strip()
        elif line.startswith("thread"):
            match = re.fullmatch(r"thread\s+(\w+)\s*:", line)
            if not match:
                raise ParseError(f"bad thread header: {raw_line!r}")
            label = match.group(1)
            if label in thread_names:
                raise ParseError(f"duplicate thread {label}")
            thread_names[label] = len(threads)
            threads.append([])
            current_thread = thread_names[label]
        elif line.startswith("rmw:"):
            parts = line.split(":", 1)[1].split()
            if len(parts) != 2:
                raise ParseError(f"rmw needs two locations: {raw_line!r}")
            rmw.add((parts[0], parts[1]))
        elif line.startswith("dep:"):
            parts = line.split(":", 1)[1].split()
            if len(parts) != 3 or parts[1] not in _DEP_KINDS:
                raise ParseError(f"bad dep clause: {raw_line!r}")
            deps.add((parts[0], parts[2], _DEP_KINDS[parts[1]]))
        elif line.startswith("scope:"):
            for item in line.split(":", 1)[1].split():
                label, _, group = item.partition("=")
                if label not in thread_names:
                    raise ParseError(f"unknown thread in scope: {label}")
                scopes[thread_names[label]] = int(group)
        elif line.startswith("map:"):
            for item in line.split(":", 1)[1].split():
                virt, _, phys = item.partition("=")
                if not phys:
                    raise ParseError(f"bad map entry {item!r}")
                aliases.append((virt, phys))
        elif line.startswith("forbidden:"):
            forbidden_clause = line.split(":", 1)[1].strip()
            final_clause_present = True
        else:
            if current_thread is None:
                raise ParseError(f"instruction outside a thread: {raw_line!r}")
            inst, reg = _parse_instruction(line, addr_ids)
            if reg is not None:
                if reg in reg_to_local:
                    raise ParseError(f"register {reg} bound twice")
                reg_to_local[reg] = (current_thread, len(threads[current_thread]))
            threads[current_thread].append(inst)

    if not threads:
        raise ParseError("no threads")

    def resolve(loc: str) -> int:
        label, _, idx = loc.partition(":")
        if label not in thread_names or not idx.isdigit():
            raise ParseError(f"bad location {loc!r}")
        tid = thread_names[label]
        index = int(idx)
        if index >= len(threads[tid]):
            raise ParseError(f"location {loc!r} out of range")
        return sum(len(threads[t]) for t in range(tid)) + index

    addr_map = None
    if aliases:
        entries = []
        for virt, phys in aliases:
            if virt not in addr_ids or phys not in addr_ids:
                raise ParseError(f"map names unused address: {virt}={phys}")
            entries.append((addr_ids[virt], addr_ids[phys]))
        addr_map = tuple(sorted(entries))

    test = LitmusTest(
        tuple(tuple(t) for t in threads),
        frozenset((resolve(a), resolve(b)) for a, b in rmw),
        frozenset(Dep(resolve(a), resolve(b), k) for a, b, k in deps),
        tuple(scopes.get(t, 0) for t in range(len(threads)))
        if scopes
        else None,
        name,
        addr_map,
    )

    outcome = None
    if final_clause_present and forbidden_clause is not None:
        outcome = _parse_outcome(
            forbidden_clause, test, addr_ids, reg_to_local, threads
        )
    return test, outcome


def _parse_instruction(
    line: str, addr_ids: dict[str, int]
) -> tuple[Instruction, str | None]:
    reg = None
    if "=" in line and re.match(r"^\w+\s*=", line):
        reg, _, line = line.partition("=")
        reg = reg.strip()
        line = line.strip()
    tokens = line.split()
    if not tokens:
        raise ParseError("empty instruction")
    head = tokens[0]
    scope = None
    if "@" in head:
        head, _, scope_name = head.partition("@")
        if scope_name not in _SCOPE_SUFFIXES:
            raise ParseError(f"unknown scope {scope_name!r}")
        scope = _SCOPE_SUFFIXES[scope_name]
    op, _, suffix = head.partition(".")
    if op == "F":
        if suffix not in _FENCE_KINDS:
            raise ParseError(f"unknown fence kind {suffix!r}")
        if reg is not None:
            raise ParseError("fences bind no register")
        return fence(_FENCE_KINDS[suffix], scope), None
    order = Order.PLAIN
    if suffix:
        if suffix not in _ORDER_SUFFIXES:
            raise ParseError(f"unknown order suffix {suffix!r}")
        order = _ORDER_SUFFIXES[suffix]
    if op in ("R", "PTW"):
        if len(tokens) != 2:
            raise ParseError(f"read takes one address: {line!r}")
        addr = addr_ids.setdefault(tokens[1], len(addr_ids))
        if op == "PTW":
            if scope is not None:
                raise ParseError("page-table walks take no scope")
            return ptwalk(addr, order), reg
        return read(addr, order, scope), reg
    if op in ("W", "MAP", "DRT"):
        if len(tokens) not in (2, 3):
            raise ParseError(f"write takes address [value]: {line!r}")
        if reg is not None:
            raise ParseError("writes bind no register")
        addr = addr_ids.setdefault(tokens[1], len(addr_ids))
        value = int(tokens[2]) if len(tokens) == 3 else None
        if op == "MAP":
            if scope is not None:
                raise ParseError("mapping updates take no scope")
            return remap(addr, value, order), None
        if op == "DRT":
            if scope is not None:
                raise ParseError("dirty-bit updates take no scope")
            return dirty(addr, value, order), None
        return write(addr, value, order, scope), None
    raise ParseError(f"unknown opcode {op!r}")


def _parse_outcome(
    clause: str,
    test: LitmusTest,
    addr_ids: dict[str, int],
    reg_to_local: dict[str, tuple[int, int]],
    threads: list[list[Instruction]],
) -> Outcome:
    reads: dict[int, int] = {}
    finals: dict[int, int] = {}
    for item in clause.replace("/\\", " ").split():
        lhs, _, rhs = item.partition("=")
        if not rhs:
            raise ParseError(f"bad outcome constraint {item!r}")
        value = int(rhs)
        if lhs in reg_to_local:
            tid, idx = reg_to_local[lhs]
            eid = sum(len(threads[t]) for t in range(tid)) + idx
            reads[eid] = value
        elif lhs in addr_ids:
            finals[addr_ids[lhs]] = value
        else:
            raise ParseError(f"unknown register or address {lhs!r}")
    return outcome_from_values(test, reads, finals)


def format_test(test: LitmusTest, outcome: Outcome | None = None) -> str:
    """Render a test (and optional forbidden outcome) in the text format."""
    addr_names = {
        a: chr(ord("x") + i) if i < 3 else f"a{a}"
        for i, a in enumerate(test.addresses)
    }
    order_suffix = {v: k for k, v in _ORDER_SUFFIXES.items() if k != "acquire" and k != "release"}
    fence_names = {v: k for k, v in _FENCE_KINDS.items()}
    scope_names = {v: k for k, v in _SCOPE_SUFFIXES.items()}

    lines = []
    if test.name:
        lines.append(f"name: {test.name}")
    for tid, thread in enumerate(test.threads):
        lines.append(f"thread P{tid}:")
        for idx, inst in enumerate(thread):
            eid = test.eid(tid, idx)
            suffix = (
                "" if inst.order is Order.PLAIN else f".{order_suffix[inst.order]}"
            )
            at = "" if inst.scope is None else f"@{scope_names[inst.scope]}"
            if inst.is_fence:
                assert inst.fence is not None
                lines.append(f"  F.{fence_names[inst.fence]}{at}")
            elif inst.is_read:
                op = "PTW" if inst.kind is EventKind.PTWALK else "R"
                lines.append(
                    f"  r{eid} = {op}{suffix}{at} {addr_names[inst.address]}"
                )
            else:
                op = {
                    EventKind.REMAP: "MAP",
                    EventKind.DIRTY: "DRT",
                }.get(inst.kind, "W")
                value = test.write_values[eid]
                lines.append(
                    f"  {op}{suffix}{at} {addr_names[inst.address]} {value}"
                )
    for r, w in sorted(test.rmw):
        lines.append(
            f"rmw: P{test.tid_of(r)}:{test.index_of(r)} "
            f"P{test.tid_of(w)}:{test.index_of(w)}"
        )
    for dep in sorted(test.deps):
        lines.append(
            f"dep: P{test.tid_of(dep.src)}:{test.index_of(dep.src)} "
            f"{dep.kind.value} "
            f"P{test.tid_of(dep.dst)}:{test.index_of(dep.dst)}"
        )
    if test.scopes is not None:
        groups = " ".join(
            f"P{tid}={g}" for tid, g in enumerate(test.scopes)
        )
        lines.append(f"scope: {groups}")
    if test.addr_map is not None:
        entries = " ".join(
            f"{addr_names[v]}={addr_names[p]}" for v, p in test.addr_map
        )
        lines.append(f"map: {entries}")
    if outcome is not None:
        parts = [
            f"r{eid}={outcome.read_value(test, eid)}"
            for eid, _ in outcome.rf_sources
        ]
        parts += [
            f"{addr_names[a]}={outcome.final_value(test, a)}"
            for a, _ in outcome.finals
        ]
        lines.append(f"forbidden: {' '.join(parts)}")
    return "\n".join(lines) + "\n"
