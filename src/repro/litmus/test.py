"""The static litmus test representation.

A litmus test is a small multithreaded program plus the structural
relations the paper's Alloy model declares statically: program order
(implicit in the per-thread instruction sequences), the ``rmw`` pairing of
load/store halves of atomic read-modify-writes, dependency edges, and —
for scoped models — a thread-to-scope-group assignment.

Events are identified by a *global event id* assigned in thread-major
order (all of thread 0's instructions, then thread 1's, ...).  Event ids
are the universe over which :class:`repro.semantics.rel.Rel` relations are
built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.litmus.events import DepKind, Instruction

__all__ = ["Dep", "LitmusTest"]


@dataclass(frozen=True, order=True)
class Dep:
    """A dependency edge from a read to a program-order-later event."""

    src: int
    dst: int
    kind: DepKind


@dataclass(frozen=True)
class LitmusTest:
    """An immutable litmus test.

    Attributes:
        threads: per-thread instruction sequences; thread ``t``'s
            instructions occupy a contiguous block of event ids.
        rmw: pairs ``(read_eid, write_eid)`` forming atomic RMWs.  The two
            events must be adjacent in the same thread and access the same
            address (paper Fig. 4: ``rmw in po - po.po``).
        deps: dependency edges; sources must be reads, targets must be
            program-order-later events in the same thread.
        scopes: optional thread -> scope-group assignment for scoped
            models; ``None`` means the test is unscoped.
        name: optional human-readable name (e.g. ``"MP"``).
        addr_map: optional virtual-to-physical aliasing layer (TransForm
            enhanced tests): sorted ``(virtual, physical)`` pairs declaring
            that the virtual address maps onto the physical address's
            location.  Unmapped addresses are their own location (identity),
            so ``None`` — the default for every consistency-only test — is
            exactly the pre-transistency semantics.
    """

    threads: tuple[tuple[Instruction, ...], ...]
    rmw: frozenset[tuple[int, int]] = frozenset()
    deps: frozenset[Dep] = frozenset()
    scopes: tuple[int, ...] | None = None
    name: str | None = field(default=None, compare=False)
    addr_map: tuple[tuple[int, int], ...] | None = None

    def __post_init__(self) -> None:
        if not self.threads or any(not t for t in self.threads):
            raise ValueError("a litmus test needs at least one non-empty thread")
        if self.scopes is not None and len(self.scopes) != len(self.threads):
            raise ValueError("scopes must assign a group to every thread")
        if self.addr_map is not None:
            self._check_addr_map()
        n = self.num_events
        for r, w in self.rmw:
            if not (0 <= r < n and 0 <= w < n):
                raise ValueError(f"rmw pair ({r},{w}) out of range")
            if not self.instruction(r).is_read or not self.instruction(w).is_write:
                raise ValueError("rmw pairs are (read, write)")
            if self.tid_of(r) != self.tid_of(w) or w != r + 1:
                raise ValueError("rmw halves must be po-adjacent in one thread")
            if self.instruction(r).address != self.instruction(w).address:
                raise ValueError("rmw halves must access the same address")
        for dep in self.deps:
            if not (0 <= dep.src < n and 0 <= dep.dst < n):
                raise ValueError(f"dep {dep} out of range")
            if not self.instruction(dep.src).is_read:
                raise ValueError("dependencies originate from reads")
            if self.tid_of(dep.src) != self.tid_of(dep.dst) or dep.dst <= dep.src:
                raise ValueError("dependencies target po-later events, same thread")
            if dep.kind is DepKind.DATA and not self.instruction(dep.dst).is_write:
                raise ValueError("data dependencies target writes")
            if dep.kind is DepKind.ADDR and self.instruction(dep.dst).is_fence:
                raise ValueError("address dependencies target memory accesses")

    def _check_addr_map(self) -> None:
        assert self.addr_map is not None
        used = {
            inst.address
            for t in self.threads
            for inst in t
            if inst.address is not None
        }
        if list(self.addr_map) != sorted(set(self.addr_map)):
            raise ValueError("addr_map entries must be sorted and unique")
        keys = {v for v, _ in self.addr_map}
        if len(keys) != len(self.addr_map):
            raise ValueError("addr_map maps each virtual address once")
        for v, p in self.addr_map:
            if v == p:
                raise ValueError(f"addr_map entry {v}->{p} is an identity")
            if v not in used or p not in used:
                raise ValueError(
                    f"addr_map entry {v}->{p} names an address the test "
                    "never accesses"
                )
            if p in keys:
                raise ValueError(
                    f"addr_map entry {v}->{p} chains through another "
                    "mapped address; map directly to the representative"
                )

    # -- event geometry ------------------------------------------------------

    @cached_property
    def num_events(self) -> int:
        return sum(len(t) for t in self.threads)

    @cached_property
    def _thread_starts(self) -> tuple[int, ...]:
        starts = []
        acc = 0
        for t in self.threads:
            starts.append(acc)
            acc += len(t)
        return tuple(starts)

    def eid(self, tid: int, index: int) -> int:
        """Global event id of instruction ``index`` in thread ``tid``."""
        return self._thread_starts[tid] + index

    def tid_of(self, eid: int) -> int:
        """Thread owning the event."""
        if not 0 <= eid < self.num_events:
            raise ValueError(f"event id {eid} out of range")
        starts = self._thread_starts
        for tid in range(len(starts) - 1, -1, -1):
            if eid >= starts[tid]:
                return tid
        raise AssertionError("unreachable")

    def index_of(self, eid: int) -> int:
        """Position of the event within its thread."""
        return eid - self._thread_starts[self.tid_of(eid)]

    @cached_property
    def instructions(self) -> tuple[Instruction, ...]:
        """All instructions in event-id order."""
        return tuple(inst for t in self.threads for inst in t)

    def instruction(self, eid: int) -> Instruction:
        return self.instructions[eid]

    # -- classification masks (bitmask over event ids) ------------------------

    @cached_property
    def reads_mask(self) -> int:
        return self._mask(lambda i: i.is_read)

    @cached_property
    def writes_mask(self) -> int:
        return self._mask(lambda i: i.is_write)

    @cached_property
    def fences_mask(self) -> int:
        return self._mask(lambda i: i.is_fence)

    def _mask(self, pred) -> int:
        mask = 0
        for e, inst in enumerate(self.instructions):
            if pred(inst):
                mask |= 1 << e
        return mask

    def mask_of(self, pred) -> int:
        """Bitmask of events whose instruction satisfies ``pred``."""
        return self._mask(pred)

    @cached_property
    def read_eids(self) -> tuple[int, ...]:
        return tuple(
            e for e, inst in enumerate(self.instructions) if inst.is_read
        )

    @cached_property
    def write_eids(self) -> tuple[int, ...]:
        return tuple(
            e for e, inst in enumerate(self.instructions) if inst.is_write
        )

    # -- addresses and values -------------------------------------------------

    @cached_property
    def addresses(self) -> tuple[int, ...]:
        """Distinct addresses in first-use order."""
        seen: list[int] = []
        for inst in self.instructions:
            if inst.address is not None and inst.address not in seen:
                seen.append(inst.address)
        return tuple(seen)

    # -- locations (virtual -> physical aliasing) -----------------------------

    @cached_property
    def _location_map(self) -> dict[int, int]:
        return dict(self.addr_map) if self.addr_map is not None else {}

    def location_of(self, address: int) -> int:
        """Physical location of an address (identity when unmapped)."""
        return self._location_map.get(address, address)

    @cached_property
    def locations(self) -> tuple[int, ...]:
        """Distinct physical locations in first-use order.

        Equal to :attr:`addresses` for every test without an aliasing
        layer; coherence orders and final-state constraints are keyed by
        location, never by (virtual) address.
        """
        seen: list[int] = []
        for addr in self.addresses:
            loc = self.location_of(addr)
            if loc not in seen:
                seen.append(loc)
        return tuple(seen)

    def aliases_of(self, address: int) -> tuple[int, ...]:
        """All addresses sharing ``address``'s location, first-use order."""
        loc = self.location_of(address)
        return tuple(
            a for a in self.addresses if self.location_of(a) == loc
        )

    def writes_to(self, address: int) -> tuple[int, ...]:
        """Event ids of writes to ``address``'s *location*, in event-id
        order (aliased addresses share one write set)."""
        loc = self.location_of(address)
        return tuple(
            e
            for e, inst in enumerate(self.instructions)
            if inst.is_write
            and inst.address is not None
            and self.location_of(inst.address) == loc
        )

    def accesses_to(self, address: int) -> tuple[int, ...]:
        """Event ids of all accesses to ``address``'s location."""
        loc = self.location_of(address)
        return tuple(
            e
            for e, inst in enumerate(self.instructions)
            if inst.address is not None
            and self.location_of(inst.address) == loc
        )

    @cached_property
    def write_values(self) -> dict[int, int]:
        """Value stored by each write event.

        Writes with an explicit value keep it; writes without one are
        auto-assigned ``1, 2, ...`` per *location* in event-id order,
        skipping values already claimed explicitly at that location, so
        that every write to a location stores a distinct non-zero value
        (the paper's convention — distinct values make ``rf`` recoverable
        from the outcome, aliased addresses included).
        """
        values: dict[int, int] = {}
        for addr in self.locations:
            explicit = {
                self.instructions[e].value
                for e in self.writes_to(addr)
                if self.instructions[e].value is not None
            }
            next_val = 1
            for e in self.writes_to(addr):
                inst = self.instructions[e]
                if inst.value is not None:
                    values[e] = inst.value
                else:
                    while next_val in explicit:
                        next_val += 1
                    values[e] = next_val
                    explicit.add(next_val)
        return values

    # -- rmw / dep lookups -----------------------------------------------------

    @cached_property
    def rmw_reads(self) -> frozenset[int]:
        return frozenset(r for r, _ in self.rmw)

    @cached_property
    def rmw_writes(self) -> frozenset[int]:
        return frozenset(w for _, w in self.rmw)

    def deps_of_kind(self, *kinds: DepKind) -> tuple[Dep, ...]:
        return tuple(sorted(d for d in self.deps if d.kind in kinds))

    # -- rendering ---------------------------------------------------------------

    def pretty(self, addr_names: dict[int, str] | None = None) -> str:
        """Multi-column rendering in the style of the paper's figures."""
        if addr_names is None:
            addr_names = {a: chr(ord("x") + i) for i, a in enumerate(self.addresses)}
        cols = []
        for tid, thread in enumerate(self.threads):
            lines = [f"Thread {tid}"]
            for idx, inst in enumerate(thread):
                eid = self.eid(tid, idx)
                if inst.is_write and inst.value is None:
                    inst = Instruction(
                        inst.kind,
                        inst.address,
                        inst.order,
                        inst.fence,
                        self.write_values[eid],
                        inst.scope,
                    )
                text = inst.mnemonic(addr_names)
                if inst.is_read:
                    text += f" -> r{eid}"
                notes = []
                if eid in self.rmw_reads or eid in self.rmw_writes:
                    notes.append("rmw")
                for dep in sorted(self.deps):
                    if dep.src == eid:
                        notes.append(f"{dep.kind.value}->e{dep.dst}")
                if notes:
                    text += f"  [{','.join(notes)}]"
                lines.append(text)
            cols.append(lines)
        height = max(len(c) for c in cols)
        widths = [max(len(line) for line in c) for c in cols]
        rows = []
        for i in range(height):
            cells = [
                (c[i] if i < len(c) else "").ljust(w) for c, w in zip(cols, widths)
            ]
            rows.append(" | ".join(cells).rstrip())
        header = f"=== {self.name} ===\n" if self.name else ""
        return header + "\n".join(rows)

    def with_name(self, name: str) -> LitmusTest:
        """Copy of this test carrying a name."""
        return LitmusTest(
            self.threads, self.rmw, self.deps, self.scopes, name,
            self.addr_map,
        )

    def __repr__(self) -> str:
        label = self.name or f"{len(self.threads)}thr/{self.num_events}ev"
        return f"LitmusTest<{label}>"
