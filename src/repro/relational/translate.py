"""Translation from relational AST to boolean circuits.

Each relational expression becomes a sparse boolean *matrix* mapping
tuples to circuit nodes (absent tuples are constant-false, exactly like
Kodkod's sparse-matrix translation).  Transitive closure is computed by
iterated squaring, sound because path lengths are bounded by the
universe size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational import ast
from repro.relational.circuit import Circuit, FALSE, TRUE
from repro.relational.problem import Problem

__all__ = ["Matrix", "Translator"]


@dataclass
class Matrix:
    """A sparse boolean matrix: tuple -> circuit node (missing = false)."""

    arity: int
    entries: dict[tuple[int, ...], int]

    def get(self, t: tuple[int, ...]) -> int:
        return self.entries.get(t, FALSE)


class Translator:
    """Translates expressions and formulas over one problem instance."""

    def __init__(self, problem: Problem, circuit: Circuit):
        self.problem = problem
        self.circuit = circuit
        #: SAT variable per free tuple of each relation
        self.tuple_vars: dict[tuple[str, tuple[int, ...]], int] = {}
        self._rel_cache: dict[str, Matrix] = {}
        self._expr_cache: dict[ast.Expr, Matrix] = {}

    # -- relations ------------------------------------------------------------

    def relation_matrix(self, name: str) -> Matrix:
        cached = self._rel_cache.get(name)
        if cached is not None:
            return cached
        decl = self.problem.declaration(name)
        entries: dict[tuple[int, ...], int] = {}
        for t in decl.lower:
            entries[t] = TRUE
        for t in sorted(decl.free):
            sat_var = self.circuit.solver.new_var()
            self.tuple_vars[(name, t)] = sat_var
            entries[t] = self.circuit.var(sat_var)
        matrix = Matrix(decl.arity, entries)
        self._rel_cache[name] = matrix
        return matrix

    # -- expressions --------------------------------------------------------------

    def expr(self, e: ast.Expr) -> Matrix:
        cached = self._expr_cache.get(e)
        if cached is None:
            cached = self._expr_uncached(e)
            self._expr_cache[e] = cached
        return cached

    def _expr_uncached(self, e: ast.Expr) -> Matrix:
        c = self.circuit
        n = self.problem.universe_size
        if isinstance(e, ast.Rel):
            return self.relation_matrix(e.name)
        if isinstance(e, ast.Iden):
            return Matrix(2, {(i, i): TRUE for i in range(n)})
        if isinstance(e, ast.NoneExpr):
            return Matrix(e.arity, {})
        if isinstance(e, ast.UnivExpr):
            if e.arity == 1:
                return Matrix(1, {(i,): TRUE for i in range(n)})
            return Matrix(
                2, {(i, j): TRUE for i in range(n) for j in range(n)}
            )
        if isinstance(e, ast.Union):
            a, b = self.expr(e.left), self.expr(e.right)
            _check_arity(a, b)
            out = dict(a.entries)
            for t, node in b.entries.items():
                out[t] = c.or_(out.get(t, FALSE), node)
            return Matrix(a.arity, out)
        if isinstance(e, ast.Inter):
            a, b = self.expr(e.left), self.expr(e.right)
            _check_arity(a, b)
            out = {}
            for t, node in a.entries.items():
                other = b.get(t)
                merged = c.and_(node, other)
                if merged != FALSE:
                    out[t] = merged
            return Matrix(a.arity, out)
        if isinstance(e, ast.Diff):
            a, b = self.expr(e.left), self.expr(e.right)
            _check_arity(a, b)
            out = {}
            for t, node in a.entries.items():
                merged = c.and_(node, c.not_(b.get(t)))
                if merged != FALSE:
                    out[t] = merged
            return Matrix(a.arity, out)
        if isinstance(e, ast.Transpose):
            a = self.expr(e.inner)
            if a.arity != 2:
                raise TypeError("transpose needs a binary relation")
            return Matrix(2, {(j, i): v for (i, j), v in a.entries.items()})
        if isinstance(e, ast.Join):
            return self._join(self.expr(e.left), self.expr(e.right))
        if isinstance(e, ast.Product):
            a, b = self.expr(e.left), self.expr(e.right)
            if a.arity != 1 or b.arity != 1:
                raise TypeError("product supported for set -> set only")
            out = {}
            for (i,), va in a.entries.items():
                for (j,), vb in b.entries.items():
                    node = c.and_(va, vb)
                    if node != FALSE:
                        out[(i, j)] = node
            return Matrix(2, out)
        if isinstance(e, ast.Closure):
            return self._closure(self.expr(e.inner))
        if isinstance(e, ast.RClosure):
            closed = self._closure(self.expr(e.inner))
            out = dict(closed.entries)
            for i in range(n):
                out[(i, i)] = TRUE
            return Matrix(2, out)
        if isinstance(e, ast.DomRestrict):
            s, r = self.expr(e.set_expr), self.expr(e.rel)
            if s.arity != 1 or r.arity != 2:
                raise TypeError("<: needs set <: relation")
            out = {}
            for (i, j), v in r.entries.items():
                node = c.and_(s.get((i,)), v)
                if node != FALSE:
                    out[(i, j)] = node
            return Matrix(2, out)
        if isinstance(e, ast.RanRestrict):
            r, s = self.expr(e.rel), self.expr(e.set_expr)
            if s.arity != 1 or r.arity != 2:
                raise TypeError(":> needs relation :> set")
            out = {}
            for (i, j), v in r.entries.items():
                node = c.and_(v, s.get((j,)))
                if node != FALSE:
                    out[(i, j)] = node
            return Matrix(2, out)
        raise TypeError(f"unknown expression {e!r}")

    def _join(self, a: Matrix, b: Matrix) -> Matrix:
        c = self.circuit
        out_arity = a.arity + b.arity - 2
        if out_arity not in (0, 1, 2):
            raise TypeError("join result arity out of supported range")
        if out_arity == 0:
            raise TypeError("scalar joins unsupported; use Some/No")
        acc: dict[tuple[int, ...], list[int]] = {}
        # index b by first column
        by_first: dict[int, list[tuple[tuple[int, ...], int]]] = {}
        for t, v in b.entries.items():
            by_first.setdefault(t[0], []).append((t[1:], v))
        for t, va in a.entries.items():
            mid = t[-1]
            prefix = t[:-1]
            for suffix, vb in by_first.get(mid, ()):
                node = c.and_(va, vb)
                if node != FALSE:
                    acc.setdefault(prefix + suffix, []).append(node)
        return Matrix(
            out_arity,
            {t: c.or_(*nodes) for t, nodes in acc.items()},
        )

    def _closure(self, m: Matrix) -> Matrix:
        if m.arity != 2:
            raise TypeError("closure needs a binary relation")
        c = self.circuit
        n = self.problem.universe_size
        current = m
        steps = 1
        while steps < n:
            squared = self._join(current, current)
            out = dict(current.entries)
            for t, node in squared.entries.items():
                out[t] = c.or_(out.get(t, FALSE), node)
            current = Matrix(2, out)
            steps *= 2
        return current

    # -- formulas ---------------------------------------------------------------------

    def formula(self, f: ast.Formula) -> int:
        c = self.circuit
        if isinstance(f, ast.Subset):
            a, b = self.expr(f.left), self.expr(f.right)
            return c.and_(
                *(c.implies(v, b.get(t)) for t, v in a.entries.items())
            )
        if isinstance(f, ast.Eq):
            return c.and_(
                self.formula(ast.Subset(f.left, f.right)),
                self.formula(ast.Subset(f.right, f.left)),
            )
        if isinstance(f, ast.Some):
            a = self.expr(f.expr)
            return c.or_(*a.entries.values())
        if isinstance(f, ast.No):
            return c.not_(self.formula(ast.Some(f.expr)))
        if isinstance(f, ast.Lone):
            a = self.expr(f.expr)
            nodes = list(a.entries.values())
            pairwise = [
                c.not_(c.and_(nodes[i], nodes[j]))
                for i in range(len(nodes))
                for j in range(i + 1, len(nodes))
            ]
            return c.and_(*pairwise)
        if isinstance(f, ast.One):
            return c.and_(
                self.formula(ast.Lone(f.expr)),
                self.formula(ast.Some(f.expr)),
            )
        if isinstance(f, ast.Not):
            return c.not_(self.formula(f.inner))
        if isinstance(f, ast.And):
            return c.and_(self.formula(f.left), self.formula(f.right))
        if isinstance(f, ast.Or):
            return c.or_(self.formula(f.left), self.formula(f.right))
        if isinstance(f, ast.Implies):
            return c.implies(self.formula(f.left), self.formula(f.right))
        if isinstance(f, ast.Acyclic):
            closed = self._closure(self.expr(f.expr))
            diag = [
                v for (i, j), v in closed.entries.items() if i == j
            ]
            return c.not_(c.or_(*diag))
        if isinstance(f, ast.Irreflexive):
            a = self.expr(f.expr)
            diag = [v for (i, j), v in a.entries.items() if i == j]
            return c.not_(c.or_(*diag))
        if isinstance(f, ast._TrueFormula):
            return TRUE
        raise TypeError(f"unknown formula {f!r}")


def _check_arity(a: Matrix, b: Matrix) -> None:
    if a.arity != b.arity:
        raise TypeError(f"arity mismatch: {a.arity} vs {b.arity}")
