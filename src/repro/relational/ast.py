"""Relational-logic AST (the Alloy expression language of paper Table 3).

Expressions denote binary relations (or sets, represented as unary
relations) over a finite universe; formulas are boolean.  The operator
spellings mirror Alloy where Python allows:

=========  =======================  ===========================
Alloy      here                     meaning
=========  =======================  ===========================
``+``      ``a + b``                union
``&``      ``a & b``                intersection
``-``      ``a - b``                difference
``.``      ``a.join(b)``            relational join
``~a``     ``~a``                   transpose
``^a``     ``a.closure()``          transitive closure
``*a``     ``a.rclosure()``         reflexive transitive closure
``->``     ``a.product(b)``         cross product
``<:``     ``s.domain_restrict(r)`` domain restriction
``:>``     ``r.range_restrict(s)``  range restriction
=========  =======================  ===========================
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator
from dataclasses import dataclass

__all__ = [
    "children",
    "walk",
    "Expr",
    "Rel",
    "Iden",
    "NoneExpr",
    "UnivExpr",
    "Union",
    "Inter",
    "Diff",
    "Join",
    "Product",
    "Transpose",
    "Closure",
    "RClosure",
    "DomRestrict",
    "RanRestrict",
    "Formula",
    "Subset",
    "Eq",
    "Some",
    "No",
    "Lone",
    "One",
    "Not",
    "And",
    "Or",
    "Implies",
    "Acyclic",
    "Irreflexive",
    "TRUE_F",
]


@dataclass(frozen=True)
class Expr:
    """Base class for relational expressions."""

    def __add__(self, other: Expr) -> Expr:
        return Union(self, other)

    def __and__(self, other: Expr) -> Expr:
        return Inter(self, other)

    def __sub__(self, other: Expr) -> Expr:
        return Diff(self, other)

    def __invert__(self) -> Expr:
        return Transpose(self)

    def join(self, other: Expr) -> Expr:
        return Join(self, other)

    def product(self, other: Expr) -> Expr:
        return Product(self, other)

    def closure(self) -> Expr:
        return Closure(self)

    def rclosure(self) -> Expr:
        return RClosure(self)

    def domain_restrict(self, rel: Expr) -> Expr:
        """``self <: rel`` (self is a set)."""
        return DomRestrict(self, rel)

    def range_restrict(self, s: Expr) -> Expr:
        """``self :> s`` (s is a set)."""
        return RanRestrict(self, s)

    # formula constructors
    def in_(self, other: Expr) -> Formula:
        return Subset(self, other)

    def eq(self, other: Expr) -> Formula:
        return Eq(self, other)

    def some(self) -> Formula:
        return Some(self)

    def no(self) -> Formula:
        return No(self)


@dataclass(frozen=True)
class Rel(Expr):
    """A declared relation, referred to by name."""

    name: str
    arity: int = 2


@dataclass(frozen=True)
class Iden(Expr):
    """The identity relation over the universe."""


@dataclass(frozen=True)
class NoneExpr(Expr):
    """The empty relation."""

    arity: int = 2


@dataclass(frozen=True)
class UnivExpr(Expr):
    """The full relation (``univ -> univ`` for arity 2)."""

    arity: int = 2


@dataclass(frozen=True)
class Union(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Inter(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Diff(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Join(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Product(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Transpose(Expr):
    inner: Expr


@dataclass(frozen=True)
class Closure(Expr):
    inner: Expr


@dataclass(frozen=True)
class RClosure(Expr):
    inner: Expr


@dataclass(frozen=True)
class DomRestrict(Expr):
    set_expr: Expr
    rel: Expr


@dataclass(frozen=True)
class RanRestrict(Expr):
    rel: Expr
    set_expr: Expr


# -- formulas ------------------------------------------------------------------------


@dataclass(frozen=True)
class Formula:
    def __and__(self, other: Formula) -> Formula:
        return And(self, other)

    def __or__(self, other: Formula) -> Formula:
        return Or(self, other)

    def __invert__(self) -> Formula:
        return Not(self)

    def implies(self, other: Formula) -> Formula:
        return Implies(self, other)


@dataclass(frozen=True)
class Subset(Formula):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Eq(Formula):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Some(Formula):
    expr: Expr


@dataclass(frozen=True)
class No(Formula):
    expr: Expr


@dataclass(frozen=True)
class Lone(Formula):
    expr: Expr


@dataclass(frozen=True)
class One(Formula):
    expr: Expr


@dataclass(frozen=True)
class Not(Formula):
    inner: Formula


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class Implies(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class Acyclic(Formula):
    """``no (iden & ^r)`` — the paper's acyclic predicate."""

    expr: Expr


@dataclass(frozen=True)
class Irreflexive(Formula):
    """``no (iden & r)``."""

    expr: Expr


@dataclass(frozen=True)
class _TrueFormula(Formula):
    pass


TRUE_F = _TrueFormula()


# -- generic traversal ---------------------------------------------------------------


def children(node: Expr | Formula) -> tuple[Expr | Formula, ...]:
    """The node's direct sub-expressions/sub-formulas.

    All AST nodes are frozen dataclasses whose children are exactly the
    fields that are themselves ``Expr``/``Formula`` instances, so a
    generic field inspection covers current and future node types.
    """
    return tuple(
        child
        for field in dataclasses.fields(node)
        if isinstance(
            child := getattr(node, field.name), (Expr, Formula)
        )
    )


def walk(node: Expr | Formula) -> Iterator[Expr | Formula]:
    """Yield every node of a Formula/Expr tree, preorder."""
    yield node
    for child in children(node):
        yield from walk(child)
