"""Symmetry-breaking predicates (Torlak & Jackson 2007).

The paper notes that "Alloy does have some built-in symmetry reduction
through its use of symmetry-breaking predicates" (§5.1).  Kodkod's
mechanism: when a set of atoms is interchangeable (no constant
distinguishes them), add lex-leader constraints so that, of each orbit of
assignments under atom permutations, only the lexicographically least
survives.  Constraining only *adjacent* transpositions is the standard
sound-but-partial compromise — cheap, and exact for full symmetric
groups on the variable orderings we generate.

Usage::

    breaker = SymmetryBreaker(finder.translator)
    breaker.break_atoms([0, 1, 2], ["edge"])   # atoms 0,1,2 interchangeable

before solving/enumerating.
"""

from __future__ import annotations

from repro.relational.circuit import TRUE
from repro.relational.translate import Translator

__all__ = ["SymmetryBreaker"]


class SymmetryBreaker:
    """Adds lex-leader constraints over interchangeable atoms."""

    def __init__(self, translator: Translator):
        self.translator = translator
        self.circuit = translator.circuit

    def break_atoms(
        self, atoms: list[int], relation_names: list[str]
    ) -> None:
        """Declare ``atoms`` interchangeable w.r.t. the given relations.

        For each adjacent transposition (a, b) the assignment vector must
        be lexicographically <= its image under the swap.
        """
        for a, b in zip(atoms, atoms[1:]):
            self._break_swap(a, b, relation_names)

    def _break_swap(
        self, a: int, b: int, relation_names: list[str]
    ) -> None:
        original: list[int] = []
        swapped: list[int] = []
        for name in relation_names:
            matrix = self.translator.relation_matrix(name)
            for t in sorted(matrix.entries):
                image = tuple(self._swap_atom(x, a, b) for x in t)
                if image == t:
                    continue
                original.append(matrix.get(t))
                swapped.append(matrix.get(image))
        node = self._lex_le(original, swapped)
        if node != TRUE:
            self.circuit.assert_true(node)

    @staticmethod
    def _swap_atom(x: int, a: int, b: int) -> int:
        if x == a:
            return b
        if x == b:
            return a
        return x

    def _lex_le(self, xs: list[int], ys: list[int]) -> int:
        """Circuit for ``xs <=_lex ys`` (with False < True)."""
        c = self.circuit
        node = TRUE
        for x, y in zip(reversed(xs), reversed(ys)):
            # xs <= ys  iff  x < y  or (x == y and rest <= rest)
            node = c.or_(
                c.and_(c.not_(x), y),
                c.and_(c.iff(x, y), node),
            )
        return node
