"""Universes, relation declarations, and bounds (Kodkod-style).

A :class:`Problem` fixes a finite universe of atoms and, for each
declared relation, a *lower bound* (tuples that must be present) and an
*upper bound* (tuples that may be present).  Tuples in ``upper - lower``
become SAT variables; everything else is a constant.  This is exactly
Kodkod's partial-instance mechanism, which the paper leans on to pin the
static structure of a litmus test while solving for the dynamic
relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Declaration", "Problem"]

Tuple2 = tuple[int, ...]


@dataclass
class Declaration:
    """One relation's bounds.  Atoms are integers ``0..n-1``."""

    name: str
    arity: int
    lower: frozenset[Tuple2]
    upper: frozenset[Tuple2]

    def __post_init__(self) -> None:
        if not self.lower <= self.upper:
            raise ValueError(
                f"{self.name}: lower bound must be within upper bound"
            )
        for t in self.upper:
            if len(t) != self.arity:
                raise ValueError(
                    f"{self.name}: tuple {t} has wrong arity"
                )

    @property
    def free(self) -> frozenset[Tuple2]:
        return self.upper - self.lower


@dataclass
class Problem:
    """A bounded relational problem over ``universe_size`` atoms."""

    universe_size: int
    declarations: dict[str, Declaration] = field(default_factory=dict)

    def declare(
        self,
        name: str,
        arity: int = 2,
        lower: set[Tuple2] | None = None,
        upper: set[Tuple2] | None = None,
    ) -> Declaration:
        """Declare a relation.  Omitting ``upper`` allows every tuple;
        omitting ``lower`` pins nothing."""
        if name in self.declarations:
            raise ValueError(f"relation {name!r} already declared")
        if upper is None:
            atoms = range(self.universe_size)
            if arity == 1:
                upper = {(a,) for a in atoms}
            elif arity == 2:
                upper = {(a, b) for a in atoms for b in atoms}
            else:
                raise ValueError("only arity 1 and 2 are supported")
        decl = Declaration(
            name,
            arity,
            frozenset(lower or set()),
            frozenset(upper),
        )
        self.declarations[name] = decl
        return decl

    def constant(self, name: str, tuples: set[Tuple2], arity: int = 2):
        """Declare a relation whose value is fixed."""
        return self.declare(name, arity, lower=set(tuples), upper=set(tuples))

    def declaration(self, name: str) -> Declaration:
        try:
            return self.declarations[name]
        except KeyError:
            raise KeyError(f"unknown relation {name!r}") from None
