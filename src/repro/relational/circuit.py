"""Hash-consed boolean circuits with Tseitin CNF compilation.

The relational translator builds boolean matrices whose entries are
nodes of this circuit; the root formula node is then compiled to CNF for
the CDCL solver.  Hash-consing keeps shared subterms shared, which
matters because relational operators (joins, closures) reuse entries
heavily.
"""

from __future__ import annotations

from repro.sat.solver import Solver

__all__ = ["Circuit", "TRUE", "FALSE"]

# Node encoding: ("var", v) | ("and", ids) | ("or", ids) | ("not", id)
# plus the two constants.
TRUE = 0
FALSE = 1


class Circuit:
    """An and/or/not DAG over SAT variables, with constant folding."""

    def __init__(self, solver: Solver | None = None):
        self.solver = solver if solver is not None else Solver()
        self._nodes: list[tuple] = [("true",), ("false",)]
        self._intern: dict[tuple, int] = {("true",): TRUE, ("false",): FALSE}
        self._tseitin: dict[int, int] = {}

    # -- construction ---------------------------------------------------------

    def _mk(self, key: tuple) -> int:
        node = self._intern.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._intern[key] = node
        return node

    def var(self, sat_var: int | None = None) -> int:
        """A fresh (or existing) SAT-variable leaf."""
        if sat_var is None:
            sat_var = self.solver.new_var()
        return self._mk(("var", sat_var))

    def not_(self, a: int) -> int:
        if a == TRUE:
            return FALSE
        if a == FALSE:
            return TRUE
        key = self._nodes[a]
        if key[0] == "not":
            return key[1]
        return self._mk(("not", a))

    def and_(self, *args: int) -> int:
        flat: list[int] = []
        for a in args:
            if a == FALSE:
                return FALSE
            if a == TRUE:
                continue
            if self._nodes[a][0] == "and":
                flat.extend(self._nodes[a][1])
            else:
                flat.append(a)
        unique = sorted(set(flat))
        for a in unique:
            if self.not_(a) in unique:
                return FALSE
        if not unique:
            return TRUE
        if len(unique) == 1:
            return unique[0]
        return self._mk(("and", tuple(unique)))

    def or_(self, *args: int) -> int:
        return self.not_(self.and_(*(self.not_(a) for a in args)))

    def implies(self, a: int, b: int) -> int:
        return self.or_(self.not_(a), b)

    def iff(self, a: int, b: int) -> int:
        return self.and_(self.implies(a, b), self.implies(b, a))

    def ite(self, c: int, t: int, e: int) -> int:
        return self.or_(self.and_(c, t), self.and_(self.not_(c), e))

    # -- CNF compilation ----------------------------------------------------------

    def _literal(self, node: int) -> int:
        """Tseitin literal (DIMACS) for a node."""
        if node == TRUE or node == FALSE:
            raise ValueError("constants have no literal; assert instead")
        key = self._nodes[node]
        if key[0] == "var":
            return key[1]
        if key[0] == "not":
            return -self._literal(key[1])
        cached = self._tseitin.get(node)
        if cached is not None:
            return cached
        assert key[0] == "and"
        out = self.solver.new_var()
        self._tseitin[node] = out
        lits = [self._literal(child) for child in key[1]]
        for lit in lits:
            self.solver.add_clause([-out, lit])
        self.solver.add_clause([out] + [-lit for lit in lits])
        return out

    def literal(self, node: int) -> int:
        """Public Tseitin literal for a non-constant node.

        Compiling through this (instead of :meth:`assert_true`) lets the
        caller guard the node behind a solver selector so the same CNF
        serves many assumption-based queries.
        """
        return self._literal(node)

    def assert_true(self, node: int) -> bool:
        """Assert the node at the solver's top level.  Returns False when
        the formula became trivially unsatisfiable."""
        if node == TRUE:
            return True
        if node == FALSE:
            return self.solver.add_clause([])
        return self.solver.add_clause([self._literal(node)])

    def assert_guarded(self, sel: int, node: int) -> bool:
        """Assert ``sel -> node``: the node holds in every query assuming
        the selector literal, and is inert otherwise.  Returns False when
        the solver is already unsatisfiable (or the guard can never be
        activated)."""
        if node == TRUE:
            return True
        if node == FALSE:
            return self.solver.add_clause([-sel])
        return self.solver.add_removable_clause(sel, [self._literal(node)])

    def evaluate(self, node: int, model: dict[int, bool]) -> bool:
        """Evaluate a node under a SAT model (for testing/decoding)."""
        key = self._nodes[node]
        tag = key[0]
        if tag == "true":
            return True
        if tag == "false":
            return False
        if tag == "var":
            return model.get(key[1], False)
        if tag == "not":
            return not self.evaluate(key[1], model)
        return all(self.evaluate(c, model) for c in key[1])
