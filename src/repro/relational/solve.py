"""The relational model finder: formula + bounds -> instances.

This plays Kodkod's role in the paper's stack: it compiles a relational
formula over a bounded problem to CNF, hands it to the CDCL solver, and
decodes satisfying assignments back into relation instances.  Instance
enumeration (for "all executions of this test" queries) uses the SAT
solver's projected model enumeration.

The finder is *incremental*: one long-lived solver answers every query
over one bounded problem.  Formulas compile once — permanently via
:meth:`ModelFinder.assert_formula`, or behind a selector literal via
:meth:`ModelFinder.selector_for` — and each subsequent query is a handful
of assumption literals against the shared clause database, so learnt
clauses, variable activities, and saved phases amortize across the
thousands of near-identical queries the synthesis loop issues.  A
finder's compiled CNF can be snapshotted (:func:`compile_snapshot`) and
rebuilt without re-running the translator (:class:`CompiledProblem`),
which is what the structural-hash compilation cache in
:mod:`repro.alloy.cache` stores.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.obs import current_registry
from repro.relational import ast
from repro.relational.circuit import FALSE, TRUE, Circuit
from repro.relational.problem import Problem
from repro.relational.translate import Translator

__all__ = ["Instance", "ModelFinder", "CompiledProblem", "compile_snapshot"]


class Instance:
    """One satisfying assignment, decoded per relation."""

    def __init__(self, relations: dict[str, frozenset[tuple[int, ...]]]):
        self.relations = relations

    def __getitem__(self, name: str) -> frozenset[tuple[int, ...]]:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Instance) and self.relations == other.relations

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.relations.items())))

    def __repr__(self) -> str:
        parts = [
            f"{name}={sorted(tuples)}"
            for name, tuples in sorted(self.relations.items())
            if tuples
        ]
        return "Instance(" + ", ".join(parts) + ")"


@dataclass(frozen=True)
class CompiledProblem:
    """A finder's CNF, detached from the translator that produced it.

    Everything needed to rebuild an equivalent solver without re-running
    the (expensive) relational-to-circuit translation: the variable
    count, the level-0 unit literals, the stored clauses, the free-tuple
    variable map, and the selector literal per guarded formula.  The
    payload is plain ints/strings/tuples, so it serializes to JSON for
    the on-disk cache layer.
    """

    num_vars: int
    units: tuple[int, ...]
    clauses: tuple[tuple[int, ...], ...]
    #: ``(relation name, tuple, SAT var)`` per free tuple
    tuple_vars: tuple[tuple[str, tuple[int, ...], int], ...]
    #: ``(label, selector var)`` per guarded formula (0 = tautology)
    selectors: tuple[tuple[str, int], ...] = ()
    unsat: bool = False


def compile_snapshot(
    finder: "ModelFinder", selectors: dict[str, int | None] | None = None
) -> CompiledProblem:
    """Snapshot a finder's compiled CNF for later reconstruction.

    Must be taken before any enumeration that could leave learnt clauses
    behind is *required* — in practice right after the base formulas and
    selector guards are compiled (learnt clauses are search artifacts and
    are deliberately not part of the snapshot).
    """
    from repro.sat.types import index_lit

    solver = finder.circuit.solver
    return CompiledProblem(
        num_vars=solver.num_vars,
        units=tuple(index_lit(i) for i in solver.trail),
        clauses=tuple(
            tuple(index_lit(i) for i in c.lits)
            for c in solver.clauses
            if not c.learnt
        ),
        tuple_vars=tuple(
            (name, t, var) for (name, t), var in sorted(finder.tuple_vars.items())
        ),
        selectors=tuple(
            (label, sel or 0) for label, sel in (selectors or {}).items()
        ),
        unsat=not solver._ok,
    )


class ModelFinder:
    """Solves relational formulas over one bounded problem.

    Two construction modes:

    * ``ModelFinder(problem)`` — fresh: a translator compiles formulas on
      demand.
    * ``ModelFinder(problem, compiled=...)`` — rebuilt from a
      :class:`CompiledProblem`: the solver is loaded directly from the
      cached CNF and no translator exists (assumption-based queries over
      the already-compiled formulas only).
    """

    def __init__(self, problem: Problem, compiled: CompiledProblem | None = None):
        self.problem = problem
        self.circuit = Circuit()
        #: selector per guarded formula (None = tautology, no assumption)
        self._selectors: dict[ast.Formula, int | None] = {}
        if compiled is None:
            self.translator: Translator | None = Translator(problem, self.circuit)
            #: SAT variable per free tuple (live alias of the translator's)
            self.tuple_vars = self.translator.tuple_vars
        else:
            self.translator = None
            solver = self.circuit.solver
            while solver.num_vars < compiled.num_vars:
                solver.new_var()
            ok = not compiled.unsat
            for lit in compiled.units:
                ok = solver.add_clause([lit]) and ok
            for lits in compiled.clauses:
                ok = solver.add_clause(lits) and ok
            if not ok:
                solver._ok = False
            self.tuple_vars = {
                (name, tuple(t)): var for name, t, var in compiled.tuple_vars
            }

    # -- incremental query compilation ----------------------------------------

    def assert_formula(self, formula: ast.Formula) -> bool:
        """Permanently conjoin a formula (level-0 assertion).

        Returns False when the conjunction became trivially unsatisfiable.
        """
        root = self._compile(formula)
        return self.circuit.assert_true(root)

    def selector_for(self, formula: ast.Formula) -> int | None:
        """Compile a formula once, guarded behind a selector literal.

        Returns the selector to pass among ``assumptions`` when the
        formula should constrain a query, or None when the formula is a
        tautology over the bounds (no assumption needed).  Repeated calls
        with an equal formula reuse the compiled guard — this is the
        push/pop-free API that turns a per-query formula toggle into one
        assumption literal.
        """
        if formula in self._selectors:
            return self._selectors[formula]
        root = self._compile(formula)
        sel: int | None
        if root == TRUE:
            sel = None
        else:
            sel = self.circuit.solver.new_selector()
            self.circuit.assert_guarded(sel, root)
        self._selectors[formula] = sel
        return sel

    def _compile(self, formula: ast.Formula):
        """Translate one formula to a circuit root, publishing the
        compile count and wall time into the process-local metrics
        registry (``relational_compiles`` / ``relational_compile_seconds``)."""
        start = time.perf_counter()
        root = self._translator().formula(formula)
        elapsed = time.perf_counter() - start
        registry = current_registry()
        registry.count("relational_compiles")
        registry.count("relational_compile_seconds", elapsed)
        registry.observe("relational_compile_wall", elapsed)
        return root

    def _translator(self) -> Translator:
        if self.translator is None:
            raise RuntimeError(
                "this finder was rebuilt from a compiled CNF snapshot; "
                "only assumption-based queries over the already-compiled "
                "formulas are available"
            )
        return self.translator

    # -- decoding ---------------------------------------------------------------

    def _ensure_allocated(self, names: Iterable[str]) -> None:
        if self.translator is not None:
            for name in names:
                self.translator.relation_matrix(name)

    def _decode(self, model: dict[int, bool]) -> Instance:
        relations: dict[str, frozenset[tuple[int, ...]]] = {}
        self._ensure_allocated(self.problem.declarations)
        for name, decl in self.problem.declarations.items():
            tuples = set(decl.lower)
            for t in decl.free:
                var = self.tuple_vars.get((name, t))
                if var is not None and model.get(var, False):
                    tuples.add(t)
            relations[name] = frozenset(tuples)
        return Instance(relations)

    # -- queries ----------------------------------------------------------------

    def solve(self, formula: ast.Formula) -> Instance | None:
        """First instance satisfying the formula, or None."""
        for instance in self.instances(formula, limit=1):
            return instance
        return None

    def check(self, formula: ast.Formula) -> bool:
        """Is the formula satisfiable over the bounds?"""
        return self.solve(formula) is not None

    def check_assuming(self, assumptions: Iterable[int]) -> bool:
        """SAT/UNSAT of the compiled base under assumption literals.

        Assumptions are selector literals from :meth:`selector_for`
        and/or signed free-tuple variables (pinning tuples in or out) —
        the whole minimality-criterion query family reduces to this.
        """
        return bool(self.circuit.solver.solve(list(assumptions)))

    def instances(
        self,
        formula: ast.Formula,
        project: list[str] | None = None,
        limit: int | None = None,
    ) -> Iterator[Instance]:
        """Enumerate instances satisfying one formula.

        The formula is compiled behind a selector (cached across calls),
        so repeated enumerations on one finder are independent queries —
        earlier calls no longer permanently constrain later ones.
        """
        sel = self.selector_for(formula)
        yield from self.instances_assuming(
            [sel] if sel is not None else [], project=project, limit=limit
        )

    def instances_assuming(
        self,
        assumptions: Iterable[int],
        project: list[str] | None = None,
        limit: int | None = None,
    ) -> Iterator[Instance]:
        """Enumerate instances of the compiled base under assumptions.

        ``project`` names the relations over which instances must differ
        (default: all declared relations' free tuples).  Blocking clauses
        are selector-guarded inside the solver and released when the
        enumeration ends, so the clause database stays clean for the next
        query on this finder.
        """
        names = (
            project if project is not None else list(self.problem.declarations)
        )
        self._ensure_allocated(names)
        names_set = set(names)
        proj_vars = [
            var
            for (name, _), var in sorted(self.tuple_vars.items())
            if name in names_set
        ]
        solver = self.circuit.solver
        assume = list(assumptions)
        if not proj_vars:
            # no free variables: at most one instance
            if solver.solve(assume):
                yield self._decode(solver.model())
            return
        for _ in solver.models(
            project=proj_vars, assumptions=assume, limit=limit
        ):
            # the projected assignment drives enumeration; decoding uses
            # the full model, which is still live at yield time
            yield self._decode(solver.model())
