"""The relational model finder: formula + bounds -> instances.

This plays Kodkod's role in the paper's stack: it compiles a relational
formula over a bounded problem to CNF, hands it to the CDCL solver, and
decodes satisfying assignments back into relation instances.  Instance
enumeration (for "all executions of this test" queries) uses the SAT
solver's projected model enumeration.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.relational import ast
from repro.relational.circuit import Circuit
from repro.relational.problem import Problem
from repro.relational.translate import Translator

__all__ = ["Instance", "ModelFinder"]


class Instance:
    """One satisfying assignment, decoded per relation."""

    def __init__(self, relations: dict[str, frozenset[tuple[int, ...]]]):
        self.relations = relations

    def __getitem__(self, name: str) -> frozenset[tuple[int, ...]]:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Instance) and self.relations == other.relations

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.relations.items())))

    def __repr__(self) -> str:
        parts = [
            f"{name}={sorted(tuples)}"
            for name, tuples in sorted(self.relations.items())
            if tuples
        ]
        return "Instance(" + ", ".join(parts) + ")"


class ModelFinder:
    """Solves relational formulas over one bounded problem."""

    def __init__(self, problem: Problem):
        self.problem = problem
        self.circuit = Circuit()
        self.translator = Translator(problem, self.circuit)

    def _decode(self, model: dict[int, bool]) -> Instance:
        relations: dict[str, frozenset[tuple[int, ...]]] = {}
        for name, decl in self.problem.declarations.items():
            # force allocation so constants decode too
            self.translator.relation_matrix(name)
            tuples = set(decl.lower)
            for t in decl.free:
                var = self.translator.tuple_vars.get((name, t))
                if var is not None and model.get(var, False):
                    tuples.add(t)
            relations[name] = frozenset(tuples)
        return Instance(relations)

    def solve(self, formula: ast.Formula) -> Instance | None:
        """First instance satisfying the formula, or None."""
        for instance in self.instances(formula, limit=1):
            return instance
        return None

    def instances(
        self,
        formula: ast.Formula,
        project: list[str] | None = None,
        limit: int | None = None,
    ) -> Iterator[Instance]:
        """Enumerate satisfying instances.

        ``project`` names the relations over which instances must differ
        (default: all declared relations' free tuples).
        """
        root = self.translator.formula(formula)
        if not self.circuit.assert_true(root):
            return
        names = (
            project
            if project is not None
            else list(self.problem.declarations)
        )
        # ensure projected relations have their variables allocated
        for name in names:
            self.translator.relation_matrix(name)
        proj_vars = [
            var
            for (name, _), var in sorted(self.translator.tuple_vars.items())
            if name in names
        ]
        solver = self.circuit.solver
        if not proj_vars:
            # no free variables: at most one instance
            if solver.solve():
                yield self._decode(solver.model())
            return
        for _ in solver.models(project=proj_vars, limit=limit):
            # the projected assignment drives enumeration; decoding uses
            # the full model, which is still live at yield time
            yield self._decode(solver.model())

    def check(self, formula: ast.Formula) -> bool:
        """Is the formula satisfiable over the bounds?"""
        return self.solve(formula) is not None
