"""Relaxation applicability matrix — the paper's Table 2.

For the models implemented in this repository the matrix is *derived*
from each model's vocabulary, so it cannot drift from the code.  The
paper also lists models it does not (or cannot) formalize — Itanium and
HSA here, since this repository meanwhile formalizes ARMv8 and OpenCL —
whose rows we reproduce statically for completeness, with the paper's
two footnotes preserved:

1. "Would apply if model formalizations filled in the missing features."
2. "Dependencies not used directly for synchronization; RD applies to
   no-thin-air axioms only."
"""

from __future__ import annotations

import enum

from repro.models.base import MemoryModel, Vocabulary
from repro.models.registry import MODEL_CLASSES

__all__ = ["Applicability", "RELAXATION_COLUMNS", "applicability_row",
           "applicability_table", "format_table"]

RELAXATION_COLUMNS = ("RI", "DRMW", "DF", "DMO", "RD", "DS", "DV", "UA")


class Applicability(enum.Enum):
    YES = "Y"
    NO = "-"
    MISSING_FEATURE = "1"  # footnote 1
    THIN_AIR_ONLY = "2"    # footnote 2

    def __bool__(self) -> bool:
        return self in (
            Applicability.YES,
            Applicability.THIN_AIR_ONLY,
        )


def applicability_row(
    vocab: Vocabulary, rd_thin_air_only: bool = False
) -> dict[str, Applicability]:
    """Derive a Table 2 row from a model vocabulary."""
    yes, no = Applicability.YES, Applicability.NO

    def flag(cond: bool) -> Applicability:
        return yes if cond else no

    rd: Applicability = flag(vocab.has_deps)
    if rd and rd_thin_air_only:
        rd = Applicability.THIN_AIR_ONLY
    return {
        "RI": yes,
        "DRMW": flag(vocab.allows_rmw),
        "DF": flag(vocab.has_fence_demotions),
        "DMO": flag(vocab.has_orders),
        "RD": rd,
        "DS": flag(vocab.has_scopes),
        "DV": flag(vocab.has_vmem),
        "UA": flag(vocab.has_vmem),
    }


#: Models whose dependencies only feed a no-thin-air axiom (footnote 2).
_THIN_AIR_ONLY_MODELS = frozenset({"scc", "c11", "opencl"})

#: Paper footnote 1, preserved for formalized models: relaxations the
#: paper marks "would apply if model formalizations filled in the
#: missing features".  Our armv8 formalization keeps the paper's gap —
#: a single full-strength ``dmb`` with no weaker barrier to demote to —
#: so its DF cell stays a footnote rather than a plain "-".
_FOOTNOTE_1_OVERRIDES: dict[str, tuple[str, ...]] = {"armv8": ("DF",)}

#: Rows for models the paper tabulates but does not formalize; values
#: follow the paper's Table 2 (DV/UA postdate it: no transistency).
_STATIC_ROWS: dict[str, dict[str, Applicability]] = {
    "itanium": {
        "RI": Applicability.YES,
        "DRMW": Applicability.YES,
        "DF": Applicability.YES,
        "DMO": Applicability.YES,
        "RD": Applicability.MISSING_FEATURE,
        "DS": Applicability.NO,
        "DV": Applicability.NO,
        "UA": Applicability.NO,
    },
    "hsa": {
        "RI": Applicability.YES,
        "DRMW": Applicability.YES,
        "DF": Applicability.YES,
        "DMO": Applicability.YES,
        "RD": Applicability.THIN_AIR_ONLY,
        "DS": Applicability.YES,
        "DV": Applicability.NO,
        "UA": Applicability.NO,
    },
    "opencl": {
        "RI": Applicability.YES,
        "DRMW": Applicability.YES,
        "DF": Applicability.YES,
        "DMO": Applicability.YES,
        "RD": Applicability.THIN_AIR_ONLY,
        "DS": Applicability.YES,
        "DV": Applicability.NO,
        "UA": Applicability.NO,
    },
}

#: Display order mirroring the paper's Table 2.
TABLE_ORDER = (
    "sc",
    "tso",
    "power",
    "armv7",
    "armv8",
    "itanium",
    "scc",
    "hsa",
    "c11",
    "opencl",
)


def _derived_row(name: str) -> dict[str, Applicability]:
    model: MemoryModel = MODEL_CLASSES[name]()
    row = applicability_row(
        model.vocabulary,
        rd_thin_air_only=name in _THIN_AIR_ONLY_MODELS,
    )
    for col in _FOOTNOTE_1_OVERRIDES.get(name, ()):
        if row[col] is Applicability.NO:
            row[col] = Applicability.MISSING_FEATURE
    return row


def applicability_table() -> dict[str, dict[str, Applicability]]:
    """The full Table 2, derived rows first, static rows appended."""
    table: dict[str, dict[str, Applicability]] = {}
    for name in TABLE_ORDER:
        if name in MODEL_CLASSES:
            table[name] = _derived_row(name)
        elif name in _STATIC_ROWS:
            table[name] = dict(_STATIC_ROWS[name])
    for name in sorted(MODEL_CLASSES):
        if name not in table:
            table[name] = _derived_row(name)
    return table


def format_table() -> str:
    """Render Table 2 as aligned text."""
    table = applicability_table()
    width = max(len(name) for name in table) + 2
    lines = ["".ljust(width) + "  ".join(c.ljust(4) for c in RELAXATION_COLUMNS)]
    for name, row in table.items():
        cells = "  ".join(
            row[c].value.ljust(4) for c in RELAXATION_COLUMNS
        )
        lines.append(name.ljust(width) + cells)
    lines.append("")
    lines.append("Y = applies   - = not applicable")
    lines.append("1 = would apply if the formalization filled in the feature")
    lines.append("2 = dependencies feed no-thin-air axioms only")
    return "\n".join(lines)
