"""The six instruction relaxations of paper §3.2.

* RI    — Remove Instruction
* DMO   — Demote Memory Order
* DF    — Demote Fence
* DRMW  — Decompose atomic Read-Modify-Write
* RD    — Remove Dependency
* DS    — Demote Scope

The transistency families (DV, UA) live in
:mod:`repro.relax.transistency` and join :data:`ALL_RELAXATIONS` here.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.litmus.events import DepKind, FenceKind, Order, Scope
from repro.litmus.test import Dep, LitmusTest
from repro.models.base import Vocabulary
from repro.relax.base import (
    Application,
    RelaxedTest,
    Relaxation,
    identity_map,
    rebuild,
    remove_event,
)
from repro.relax.transistency import DemoteVmemEvent, UnaliasAddress

__all__ = [
    "RemoveInstruction",
    "DemoteMemoryOrder",
    "DemoteFence",
    "DecomposeRMW",
    "RemoveDependency",
    "DemoteScope",
    "ALL_RELAXATIONS",
    "relaxations_for",
]


class RemoveInstruction(Relaxation):
    """RI: delete one instruction outright (paper §3.1, Fig. 3)."""

    name = "RI"

    def applications(
        self, test: LitmusTest, vocab: Vocabulary
    ) -> Iterator[Application]:
        if test.num_events <= 1:
            return
        for eid in range(test.num_events):
            yield Application(self.name, eid)

    def apply(
        self, test: LitmusTest, app: Application, vocab: Vocabulary
    ) -> RelaxedTest:
        return remove_event(test, app.target)


class DemoteMemoryOrder(Relaxation):
    """DMO: weaken an access's memory-order annotation by one step."""

    name = "DMO"

    def applications(
        self, test: LitmusTest, vocab: Vocabulary
    ) -> Iterator[Application]:
        for eid, inst in enumerate(test.instructions):
            if inst.is_fence:
                continue
            for weaker in vocab.order_demotions.get(inst.order, ()):
                yield Application(self.name, eid, weaker.name)

    def apply(
        self, test: LitmusTest, app: Application, vocab: Vocabulary
    ) -> RelaxedTest:
        weaker = Order[app.detail]
        threads = _replace(test, app.target, lambda i: i.with_order(weaker))
        return RelaxedTest(rebuild(test, threads), identity_map(test))

    def applies_to(self, vocab: Vocabulary) -> bool:
        return vocab.has_orders


class DemoteFence(Relaxation):
    """DF: weaken a fence's strength by one step (e.g. sync -> lwsync)."""

    name = "DF"

    def applications(
        self, test: LitmusTest, vocab: Vocabulary
    ) -> Iterator[Application]:
        for eid, inst in enumerate(test.instructions):
            if not inst.is_fence:
                continue
            assert inst.fence is not None
            for weaker in vocab.fence_demotions.get(inst.fence, ()):
                yield Application(self.name, eid, weaker.name)

    def apply(
        self, test: LitmusTest, app: Application, vocab: Vocabulary
    ) -> RelaxedTest:
        weaker = FenceKind[app.detail]
        threads = _replace(test, app.target, lambda i: i.with_fence(weaker))
        return RelaxedTest(rebuild(test, threads), identity_map(test))

    def applies_to(self, vocab: Vocabulary) -> bool:
        return vocab.has_fence_demotions


class DecomposeRMW(Relaxation):
    """DRMW: break an atomic RMW into a plain read/write pair.

    Per the paper, "the po_loc and data dependencies between the load and
    the store remain in effect": when the model's vocabulary has data
    dependencies, the dropped ``rmw`` edge is replaced by one.
    """

    name = "DRMW"

    def applications(
        self, test: LitmusTest, vocab: Vocabulary
    ) -> Iterator[Application]:
        for r, w in sorted(test.rmw):
            yield Application(self.name, r, f"w{w}")

    def apply(
        self, test: LitmusTest, app: Application, vocab: Vocabulary
    ) -> RelaxedTest:
        pair = next((p for p in test.rmw if p[0] == app.target), None)
        if pair is None:
            raise ValueError(f"event {app.target} heads no rmw pair")
        rmw = frozenset(p for p in test.rmw if p != pair)
        deps = test.deps
        if DepKind.DATA in vocab.dep_kinds:
            deps = deps | {Dep(pair[0], pair[1], DepKind.DATA)}
        relaxed = rebuild(test, test.threads, rmw=rmw, deps=deps)
        return RelaxedTest(relaxed, identity_map(test))

    def applies_to(self, vocab: Vocabulary) -> bool:
        return vocab.allows_rmw


class RemoveDependency(Relaxation):
    """RD: discard all dependencies originating at one instruction.

    Mirrors the paper's Fig. 6 ``rmw_p``: an ``rmw`` pairing whose load is
    RD'ed is also discarded (the store-conditional loses its link).
    """

    name = "RD"

    def applications(
        self, test: LitmusTest, vocab: Vocabulary
    ) -> Iterator[Application]:
        if not vocab.has_deps:
            return
        for eid in sorted(
            {d.src for d in test.deps} | {r for r, _ in test.rmw}
        ):
            yield Application(self.name, eid)

    def apply(
        self, test: LitmusTest, app: Application, vocab: Vocabulary
    ) -> RelaxedTest:
        deps = frozenset(d for d in test.deps if d.src != app.target)
        rmw = frozenset(p for p in test.rmw if p[0] != app.target)
        relaxed = rebuild(test, test.threads, rmw=rmw, deps=deps)
        return RelaxedTest(relaxed, identity_map(test))

    def applies_to(self, vocab: Vocabulary) -> bool:
        return vocab.has_deps


class DemoteScope(Relaxation):
    """DS: narrow an instruction's synchronization scope by one level."""

    name = "DS"

    def applications(
        self, test: LitmusTest, vocab: Vocabulary
    ) -> Iterator[Application]:
        if not vocab.has_scopes:
            return
        levels = sorted(vocab.scopes)
        for eid, inst in enumerate(test.instructions):
            if inst.scope is None:
                continue
            pos = levels.index(inst.scope)
            if pos > 0:
                yield Application(self.name, eid, levels[pos - 1].name)

    def apply(
        self, test: LitmusTest, app: Application, vocab: Vocabulary
    ) -> RelaxedTest:
        narrower = Scope[app.detail]
        threads = _replace(test, app.target, lambda i: i.with_scope(narrower))
        return RelaxedTest(rebuild(test, threads), identity_map(test))

    def applies_to(self, vocab: Vocabulary) -> bool:
        return vocab.has_scopes


ALL_RELAXATIONS: tuple[Relaxation, ...] = (
    RemoveInstruction(),
    DecomposeRMW(),
    DemoteFence(),
    DemoteMemoryOrder(),
    RemoveDependency(),
    DemoteScope(),
    DemoteVmemEvent(),
    UnaliasAddress(),
)


def relaxations_for(vocab: Vocabulary) -> tuple[Relaxation, ...]:
    """The relaxations meaningful for a model's vocabulary (Table 2 row)."""
    return tuple(r for r in ALL_RELAXATIONS if r.applies_to(vocab))


def _replace(test: LitmusTest, target: int, transform):
    threads = []
    for tid, thread in enumerate(test.threads):
        new_thread = []
        for i, inst in enumerate(thread):
            if test.eid(tid, i) == target:
                inst = transform(inst)
            new_thread.append(inst)
        threads.append(tuple(new_thread))
    return tuple(threads)


