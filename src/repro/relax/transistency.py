"""Transistency relaxations (TransForm-style enhanced tests).

TransForm's minimality notion quantifies over structural reductions of
the *virtual-memory* dimension as well as the consistency dimension.
Two relaxation families cover it here:

* DV — Demote Vmem event: a ``ptwalk`` becomes a plain read, a
  ``remap``/``dirty`` a plain write.  The access shape is untouched;
  only the event's membership in the translation event class (and hence
  the reach of axioms like ``translation_order``) weakens.
* UA — Unalias Address: remove one virtual->physical alias-map entry,
  splitting the merged location back into two.  Outcome constraints
  that crossed the alias (an ``rf`` edge from a write to ``v`` observed
  through ``p``, a final-value constraint over the merged location)
  become unobservable and are pruned by
  :func:`repro.litmus.execution.prune_outcome`.

Both families apply only to vocabularies that declare transistency
support, so the paper's Table 2 matrix for consistency-only models is
unchanged.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.litmus.test import LitmusTest
from repro.models.base import Vocabulary
from repro.relax.base import (
    Application,
    RelaxedTest,
    Relaxation,
    identity_map,
    rebuild,
)
from repro.vmem.enhanced import demote_instruction

__all__ = ["DemoteVmemEvent", "UnaliasAddress"]


class DemoteVmemEvent(Relaxation):
    """DV: demote a transistency event to its base read/write kind."""

    name = "DV"

    def applications(
        self, test: LitmusTest, vocab: Vocabulary
    ) -> Iterator[Application]:
        for eid, inst in enumerate(test.instructions):
            if inst.is_vmem:
                yield Application(self.name, eid, inst.kind.value)

    def apply(
        self, test: LitmusTest, app: Application, vocab: Vocabulary
    ) -> RelaxedTest:
        target = test.instruction(app.target)
        if not target.is_vmem:
            raise ValueError(f"event {app.target} is not a vmem event")
        threads = tuple(
            tuple(
                demote_instruction(inst)
                if test.eid(tid, i) == app.target
                else inst
                for i, inst in enumerate(thread)
            )
            for tid, thread in enumerate(test.threads)
        )
        return RelaxedTest(rebuild(test, threads), identity_map(test))

    def applies_to(self, vocab: Vocabulary) -> bool:
        return vocab.has_vmem


class UnaliasAddress(Relaxation):
    """UA: drop one alias-map entry, splitting the merged location.

    ``Application.target`` is the event id of the first access to the
    virtual address (targets must be events); the entry itself rides in
    ``detail`` as ``"a<virtual>-a<physical>"``.
    """

    name = "UA"

    def applications(
        self, test: LitmusTest, vocab: Vocabulary
    ) -> Iterator[Application]:
        for v, p in test.addr_map or ():
            target = min(
                e
                for e, inst in enumerate(test.instructions)
                if inst.address == v
            )
            yield Application(self.name, target, f"a{v}-a{p}")

    def apply(
        self, test: LitmusTest, app: Application, vocab: Vocabulary
    ) -> RelaxedTest:
        virtual = test.instruction(app.target).address
        entries = tuple(
            (v, p) for v, p in test.addr_map or () if v != virtual
        )
        if test.addr_map is None or len(entries) == len(test.addr_map):
            raise ValueError(
                f"event {app.target} addresses no aliased location"
            )
        relaxed = LitmusTest(
            test.threads,
            test.rmw,
            test.deps,
            test.scopes,
            None,
            entries or None,
        )
        return RelaxedTest(relaxed, identity_map(test))

    def applies_to(self, vocab: Vocabulary) -> bool:
        return vocab.has_vmem
