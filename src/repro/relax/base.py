"""Instruction relaxations (paper §3).

An *instruction relaxation* transforms a litmus test into an almost
identical test in which one instruction has strictly weaker
synchronization semantics.  The minimality criterion (paper Definition 1)
quantifies over every *application* of every relaxation that is
applicable to the test under the model's vocabulary.

Each application records how event identity flows from the original test
to the relaxed test (:class:`RelaxedTest.event_map`), which is what lets
forbidden outcomes be projected onto relaxed tests (paper Fig. 3).
"""

from __future__ import annotations

import abc
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.litmus.events import Instruction
from repro.litmus.test import Dep, LitmusTest
from repro.models.base import Vocabulary

__all__ = ["RelaxedTest", "Application", "Relaxation", "remove_event", "rebuild"]


@dataclass(frozen=True)
class RelaxedTest:
    """A relaxed test plus the original-to-relaxed event identity map."""

    test: LitmusTest
    #: original event id -> relaxed event id, or None if removed.
    event_map: dict[int, int | None] = field(hash=False)

    def surviving(self) -> dict[int, int]:
        return {k: v for k, v in self.event_map.items() if v is not None}


@dataclass(frozen=True)
class Application:
    """One application of one relaxation to one instruction.

    ``detail`` disambiguates multi-variant relaxations (e.g. which order a
    DMO demotes to).  ``(relaxation, target, detail)`` is a stable key.
    """

    relaxation: str
    target: int
    detail: str = ""

    def describe(self, test: LitmusTest) -> str:
        inst = test.instruction(self.target)
        extra = f" ({self.detail})" if self.detail else ""
        return f"{self.relaxation} @ e{self.target}:{inst.mnemonic()}{extra}"


class Relaxation(abc.ABC):
    """A family of instruction weakenings (RI, DMO, DF, DRMW, RD, DS)."""

    #: Short name matching the paper's Table 2 column headers.
    name: str = ""

    @abc.abstractmethod
    def applications(
        self, test: LitmusTest, vocab: Vocabulary
    ) -> Iterator[Application]:
        """All ways this relaxation applies to ``test`` under ``vocab``."""

    @abc.abstractmethod
    def apply(
        self, test: LitmusTest, app: Application, vocab: Vocabulary
    ) -> RelaxedTest:
        """Perform one application, returning the weakened test."""

    def applies_to(self, vocab: Vocabulary) -> bool:
        """Is this relaxation meaningful for a model's vocabulary at all?

        (The per-test :meth:`applications` may still be empty.)
        """
        return True

    def __repr__(self) -> str:
        return f"<Relaxation {self.name}>"


def rebuild(
    test: LitmusTest,
    threads: tuple[tuple[Instruction, ...], ...],
    rmw: frozenset[tuple[int, int]] | None = None,
    deps: frozenset[Dep] | None = None,
    scopes: tuple[int, ...] | None = None,
) -> LitmusTest:
    """Copy of ``test`` with selected components replaced.

    The aliasing layer is carried through unchanged — relaxations that
    rebuild keep every instruction's address in place, so the map stays
    well-formed.
    """
    return LitmusTest(
        threads=threads,
        rmw=test.rmw if rmw is None else rmw,
        deps=test.deps if deps is None else deps,
        scopes=test.scopes if scopes is None else scopes,
        name=None,
        addr_map=test.addr_map,
    )


def remove_event(test: LitmusTest, target: int) -> RelaxedTest:
    """Remove one instruction, renumbering events and dropping any rmw
    pairs or dependency edges that touch it (paper Fig. 6's ``_p``
    relations).  Threads left empty by the removal disappear."""
    tid = test.tid_of(target)
    idx = test.index_of(target)

    new_threads: list[tuple[Instruction, ...]] = []
    new_scopes: list[int] = []
    event_map: dict[int, int | None] = {}
    next_eid = 0
    for t, thread in enumerate(test.threads):
        kept = []
        for i, inst in enumerate(thread):
            eid = test.eid(t, i)
            if t == tid and i == idx:
                event_map[eid] = None
                continue
            kept.append(inst)
            event_map[eid] = next_eid
            next_eid += 1
        if kept:
            new_threads.append(tuple(kept))
            if test.scopes is not None:
                new_scopes.append(test.scopes[t])

    def remap(eid: int) -> int | None:
        return event_map[eid]

    rmw = frozenset(
        (remap(r), remap(w))
        for r, w in test.rmw
        if remap(r) is not None and remap(w) is not None
    )
    deps = frozenset(
        Dep(remap(d.src), remap(d.dst), d.kind)
        for d in test.deps
        if remap(d.src) is not None and remap(d.dst) is not None
    )
    scopes = tuple(new_scopes) if test.scopes is not None else None
    threads = tuple(new_threads)
    relaxed = LitmusTest(
        threads, rmw, deps, scopes, None, _surviving_addr_map(test, threads)
    )
    return RelaxedTest(relaxed, event_map)


def _surviving_addr_map(
    test: LitmusTest, threads: tuple[tuple[Instruction, ...], ...]
) -> tuple[tuple[int, int], ...] | None:
    """Restrict the aliasing layer to addresses the relaxed test still
    uses.  An alias group whose anchor ("physical") address lost its last
    access is re-anchored at a surviving member so the remaining aliases
    stay merged; groups reduced to one member dissolve."""
    if test.addr_map is None:
        return None
    used = {
        inst.address
        for thread in threads
        for inst in thread
        if inst.address is not None
    }
    groups: dict[int, list[int]] = {}
    for v, p in test.addr_map:
        groups.setdefault(p, []).append(v)
    entries: list[tuple[int, int]] = []
    for p, vs in groups.items():
        members = [a for a in (p, *vs) if a in used]
        if len(members) < 2:
            continue
        rep = p if p in used else min(members)
        entries += [(m, rep) for m in members if m != rep]
    return tuple(sorted(entries)) or None


def identity_map(test: LitmusTest) -> dict[int, int | None]:
    """Event map for relaxations that keep every event in place."""
    return {e: e for e in range(test.num_events)}
