"""Instruction relaxations and their applicability (paper §3)."""

from repro.relax.applicability import (
    Applicability,
    applicability_row,
    applicability_table,
    format_table,
)
from repro.relax.base import Application, RelaxedTest, Relaxation
from repro.relax.instruction import (
    ALL_RELAXATIONS,
    DecomposeRMW,
    DemoteFence,
    DemoteMemoryOrder,
    DemoteScope,
    RemoveDependency,
    RemoveInstruction,
    relaxations_for,
)
from repro.relax.transistency import DemoteVmemEvent, UnaliasAddress

__all__ = [
    "Application",
    "RelaxedTest",
    "Relaxation",
    "RemoveInstruction",
    "DemoteMemoryOrder",
    "DemoteFence",
    "DecomposeRMW",
    "RemoveDependency",
    "DemoteScope",
    "DemoteVmemEvent",
    "UnaliasAddress",
    "ALL_RELAXATIONS",
    "relaxations_for",
    "Applicability",
    "applicability_row",
    "applicability_table",
    "format_table",
]
