"""Explicit-state execution semantics: relations and enumeration."""

from repro.semantics.enumerate import (
    count_executions,
    enumerate_executions,
    outcome_satisfied,
)
from repro.semantics.rel import Rel
from repro.semantics.relations import RelationView

__all__ = [
    "Rel",
    "RelationView",
    "enumerate_executions",
    "count_executions",
    "outcome_satisfied",
]
