"""Exhaustive enumeration of candidate executions of a litmus test.

This is the explicit-state analogue of the paper's Alloy/Kodkod search:
instead of handing the dynamic relations (``rf``, ``co``, ``sc``) to a SAT
solver as free variables, we enumerate every well-formed assignment
directly.  For the test sizes the minimality criterion is tractable at
(≤ 8 events), the number of candidate executions is small — the product of
each read's candidate sources, the per-address coherence permutations, and
(for models with an ``sc`` axiom) the SC-fence orderings.

Well-formedness here means only the *structural* constraints of the
paper's Fig. 4 sigs (``rf`` respects addresses, ``co`` totally orders each
address's writes); whether an execution is *valid* is the memory model's
business.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import permutations, product

from repro.litmus.events import FenceKind
from repro.litmus.execution import Execution, Outcome
from repro.litmus.test import LitmusTest

__all__ = [
    "enumerate_executions",
    "count_executions",
    "outcome_satisfied",
]


def enumerate_executions(
    test: LitmusTest, with_sc: bool = False
) -> Iterator[Execution]:
    """Yield every well-formed execution of ``test``.

    Args:
        test: the litmus test.
        with_sc: when true, additionally enumerate all total orders of the
            test's ``FenceSC`` events (required by models whose axioms
            mention the ``sc`` relation, e.g. SCC).
    """
    read_choices = [
        [(r, src) for src in _sources(test, r)] for r in test.read_eids
    ]
    co_choices = [
        list(permutations(test.writes_to(addr))) for addr in test.locations
    ]
    if with_sc:
        sc_events = [
            e
            for e, inst in enumerate(test.instructions)
            if inst.is_fence and inst.fence is FenceKind.FENCE_SC
        ]
        sc_choices = list(permutations(sc_events)) or [()]
    else:
        sc_choices = [()]

    for rf in product(*read_choices):
        for co in product(*co_choices):
            for sc in sc_choices:
                yield Execution(test, tuple(rf), tuple(co), tuple(sc))


def count_executions(test: LitmusTest, with_sc: bool = False) -> int:
    """Number of well-formed executions without materializing them."""
    total = 1
    for r in test.read_eids:
        total *= len(_sources(test, r))
    for addr in test.locations:
        total *= _factorial(len(test.writes_to(addr)))
    if with_sc:
        n_sc = sum(
            1
            for inst in test.instructions
            if inst.is_fence and inst.fence is FenceKind.FENCE_SC
        )
        total *= max(1, _factorial(n_sc))
    return total


def outcome_satisfied(execution: Execution, constraint: Outcome) -> bool:
    """Does ``execution`` produce (at least) the constrained outcome?

    ``constraint`` may be *partial* — outcome constraints dropped by
    relaxation projection simply do not appear, and the corresponding
    reads/addresses are then unconstrained (paper §4.3).
    """
    rf_map = execution.rf_map
    for read_eid, src in constraint.rf_sources:
        if rf_map.get(read_eid, _MISSING) != src:
            return False
    # An address the test never touches keeps its initial value, which
    # satisfies a None constraint (see ExplicitOracle.admits).
    finals = dict(execution.outcome.finals)
    for addr, w in constraint.finals:
        if finals.get(addr) != w:
            return False
    return True


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()


def _sources(test: LitmusTest, read_eid: int) -> list[int | None]:
    """Candidate ``rf`` sources for a read: initial state or any same-
    address write."""
    addr = test.instruction(read_eid).address
    assert addr is not None
    return [None, *test.writes_to(addr)]


def _factorial(k: int) -> int:
    out = 1
    for i in range(2, k + 1):
        out *= i
    return out
