"""Derived relational view of a concrete execution.

Memory models consume a :class:`RelationView`, which exposes every base
and derived relation of the axiomatic literature (po, po_loc, rf, co, fr,
internal/external splits, dependency relations, fence-closure helpers) as
:class:`~repro.semantics.rel.Rel` values over the test's event ids.  The
definitions follow the paper's Fig. 4 Alloy model and Alglave et al.'s
"herding cats" conventions.

Relations that depend only on the *test* (program order, same-address,
dependency edges, fence helpers, event-class masks) are computed once per
test in a shared :class:`StaticRelations` and reused by every execution's
view — the synthesis inner loop visits hundreds of executions per test,
so this sharing dominates throughput.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import cached_property

from repro.litmus.events import DepKind, EventKind, FenceKind, Order
from repro.litmus.execution import Execution
from repro.litmus.test import LitmusTest
from repro.semantics.rel import Rel

__all__ = ["StaticRelations", "RelationView"]


class StaticRelations:
    """Execution-independent relations of one litmus test."""

    _cache: OrderedDict[LitmusTest, "StaticRelations"] = OrderedDict()
    _cache_max = 16384

    def __init__(self, test: LitmusTest):
        self.test = test
        self.n = test.num_events
        self._fence_rels: dict[tuple[FenceKind, ...], Rel] = {}

    @classmethod
    def of(cls, test: LitmusTest) -> StaticRelations:
        cached = cls._cache.get(test)
        if cached is not None:
            return cached
        static = cls(test)
        cls._cache[test] = static
        if len(cls._cache) > cls._cache_max:
            cls._cache.popitem(last=False)
        return static

    # -- event class masks -------------------------------------------------------

    @property
    def reads(self) -> int:
        return self.test.reads_mask

    @property
    def writes(self) -> int:
        return self.test.writes_mask

    @property
    def fences(self) -> int:
        return self.test.fences_mask

    @cached_property
    def acquires(self) -> int:
        """Reads annotated acquire-or-stronger."""
        return self.test.mask_of(lambda i: i.is_read and i.order.is_acquire)

    @cached_property
    def releases(self) -> int:
        """Writes annotated release-or-stronger."""
        return self.test.mask_of(lambda i: i.is_write and i.order.is_release)

    @cached_property
    def vmem(self) -> int:
        """Transistency events (ptwalk / remap / dirty-bit)."""
        return self.test.mask_of(lambda i: i.is_vmem)

    @cached_property
    def ptwalks(self) -> int:
        return self.test.mask_of(lambda i: i.kind is EventKind.PTWALK)

    @cached_property
    def remaps(self) -> int:
        return self.test.mask_of(lambda i: i.kind is EventKind.REMAP)

    @cached_property
    def dirties(self) -> int:
        return self.test.mask_of(lambda i: i.kind is EventKind.DIRTY)

    # -- structural relations ------------------------------------------------------

    @cached_property
    def po(self) -> Rel:
        """Program order: each event before all later events of its thread."""
        pairs = []
        for tid, thread in enumerate(self.test.threads):
            for i in range(len(thread)):
                for j in range(i + 1, len(thread)):
                    pairs.append((self.test.eid(tid, i), self.test.eid(tid, j)))
        return Rel.from_pairs(self.n, pairs)

    @cached_property
    def po_imm(self) -> Rel:
        """Immediate program order (``po - po.po``)."""
        return self.po - self.po.join(self.po)

    @cached_property
    def loc(self) -> Rel:
        """Same-location relation over memory accesses (aliased virtual
        addresses share a location, so they are ``loc``-related)."""
        pairs = []
        for addr in self.test.locations:
            events = self.test.accesses_to(addr)
            pairs += [(a, b) for a in events for b in events]
        return Rel.from_pairs(self.n, pairs)

    @cached_property
    def po_loc(self) -> Rel:
        return self.po & self.loc

    @cached_property
    def po_vmem(self) -> Rel:
        """Program-order edges touching a transistency event on either
        end — the ordering TransForm's translation axioms preserve."""
        return self.po.restrict_domain(self.vmem) | self.po.restrict_range(
            self.vmem
        )

    @cached_property
    def int_(self) -> Rel:
        """Same-thread (internal) pairs, excluding the diagonal."""
        pairs = []
        for tid, thread in enumerate(self.test.threads):
            eids = [self.test.eid(tid, i) for i in range(len(thread))]
            pairs += [(a, b) for a in eids for b in eids if a != b]
        return Rel.from_pairs(self.n, pairs)

    @cached_property
    def ext(self) -> Rel:
        """Different-thread (external) pairs."""
        return (Rel.full(self.n) - Rel.identity(self.n)) - self.int_

    @cached_property
    def rmw(self) -> Rel:
        return Rel.from_pairs(self.n, self.test.rmw)

    def dep(self, *kinds: DepKind) -> Rel:
        return Rel.from_pairs(
            self.n,
            ((d.src, d.dst) for d in self.test.deps if d.kind in kinds),
        )

    @cached_property
    def addr_dep(self) -> Rel:
        return self.dep(DepKind.ADDR)

    @cached_property
    def data_dep(self) -> Rel:
        return self.dep(DepKind.DATA)

    @cached_property
    def ctrl_dep(self) -> Rel:
        """Control dependencies (including ctrl+isync ones)."""
        return self.dep(DepKind.CTRL, DepKind.CTRLISYNC)

    @cached_property
    def ctrlisync_dep(self) -> Rel:
        return self.dep(DepKind.CTRLISYNC)

    @cached_property
    def all_deps(self) -> Rel:
        return self.dep(*DepKind)

    # -- helpers -------------------------------------------------------------------

    def fences_of(self, *kinds: FenceKind) -> int:
        return self.test.mask_of(lambda i: i.is_fence and i.fence in kinds)

    def fence_rel(self, *kinds: FenceKind) -> Rel:
        """``(po :> F).po`` — pairs separated by a fence of given strength."""
        cached = self._fence_rels.get(kinds)
        if cached is None:
            mask = self.fences_of(*kinds)
            cached = self.po.restrict_range(mask).join(self.po)
            self._fence_rels[kinds] = cached
        return cached

    @cached_property
    def W_R(self) -> Rel:
        return Rel.product(self.n, self.writes, self.reads)

    @cached_property
    def R_R(self) -> Rel:
        return Rel.product(self.n, self.reads, self.reads)

    @cached_property
    def R_W(self) -> Rel:
        return Rel.product(self.n, self.reads, self.writes)

    @cached_property
    def W_W(self) -> Rel:
        return Rel.product(self.n, self.writes, self.writes)


class RelationView:
    """Relations of one execution; static parts shared per test."""

    __slots__ = ("execution", "test", "static", "__dict__")

    def __init__(
        self, execution: Execution, static: StaticRelations | None = None
    ):
        self.execution = execution
        self.test = execution.test
        self.static = static if static is not None else StaticRelations.of(
            execution.test
        )

    @property
    def n(self) -> int:
        return self.static.n

    # -- delegated static accessors --------------------------------------------------

    @property
    def reads(self) -> int:
        return self.static.reads

    @property
    def writes(self) -> int:
        return self.static.writes

    @property
    def fences(self) -> int:
        return self.static.fences

    @property
    def acquires(self) -> int:
        return self.static.acquires

    @property
    def releases(self) -> int:
        return self.static.releases

    @property
    def vmem(self) -> int:
        return self.static.vmem

    @property
    def ptwalks(self) -> int:
        return self.static.ptwalks

    @property
    def remaps(self) -> int:
        return self.static.remaps

    @property
    def dirties(self) -> int:
        return self.static.dirties

    @property
    def po(self) -> Rel:
        return self.static.po

    @property
    def po_imm(self) -> Rel:
        return self.static.po_imm

    @property
    def po_vmem(self) -> Rel:
        return self.static.po_vmem

    @property
    def loc(self) -> Rel:
        return self.static.loc

    @property
    def po_loc(self) -> Rel:
        return self.static.po_loc

    @property
    def int_(self) -> Rel:
        return self.static.int_

    @property
    def ext(self) -> Rel:
        return self.static.ext

    @property
    def rmw(self) -> Rel:
        return self.static.rmw

    @property
    def addr_dep(self) -> Rel:
        return self.static.addr_dep

    @property
    def data_dep(self) -> Rel:
        return self.static.data_dep

    @property
    def ctrl_dep(self) -> Rel:
        return self.static.ctrl_dep

    @property
    def ctrlisync_dep(self) -> Rel:
        return self.static.ctrlisync_dep

    @property
    def all_deps(self) -> Rel:
        return self.static.all_deps

    @property
    def W_R(self) -> Rel:
        return self.static.W_R

    @property
    def R_R(self) -> Rel:
        return self.static.R_R

    @property
    def R_W(self) -> Rel:
        return self.static.R_W

    @property
    def W_W(self) -> Rel:
        return self.static.W_W

    def dep(self, *kinds: DepKind) -> Rel:
        return self.static.dep(*kinds)

    def fences_of(self, *kinds: FenceKind) -> int:
        return self.static.fences_of(*kinds)

    def fence_rel(self, *kinds: FenceKind) -> Rel:
        return self.static.fence_rel(*kinds)

    def accesses_with(self, pred) -> int:
        """Bitmask of memory accesses whose instruction satisfies ``pred``."""
        return self.test.mask_of(lambda i: not i.is_fence and pred(i))

    def orders_at_least(self, order: Order) -> int:
        """Accesses or fences whose annotation is >= ``order``."""
        return self.test.mask_of(lambda i: i.order >= order)

    # -- dynamic (per-execution) relations ---------------------------------------------

    @cached_property
    def rf(self) -> Rel:
        """Reads-from: sourcing write -> read."""
        return Rel.from_pairs(
            self.n,
            (
                (src, read)
                for read, src in self.execution.rf
                if src is not None
            ),
        )

    @cached_property
    def co(self) -> Rel:
        """Coherence: the per-address total orders, transitively closed."""
        rel = Rel.empty(self.n)
        for order in self.execution.co:
            rel = rel | Rel.total_order(self.n, order)
        return rel

    @cached_property
    def fr(self) -> Rel:
        """From-reads, accounting for reads of the initial state.

        A read sourced by write ``w`` is ``fr``-before every ``co``
        successor of ``w``; a read of the initial value is ``fr``-before
        every write to its address (the paper's Fig. 4 alternative
        definition of ``fr``).
        """
        pairs = []
        for read, src in self.execution.rf:
            addr = self.test.instruction(read).address
            assert addr is not None
            if src is None:
                pairs += [(read, w) for w in self.test.writes_to(addr)]
            else:
                after = self.co.rows[src]
                pairs += [(read, w) for w in _bits(after)]
        return Rel.from_pairs(self.n, pairs)

    @cached_property
    def com(self) -> Rel:
        """Communication: ``rf + co + fr``."""
        return self.rf | self.co | self.fr

    @cached_property
    def sc(self) -> Rel:
        """Total order over SC fences (SCC Fig. 17), empty if unused.

        Events that are no longer SC fences are dropped — a relaxation
        may have demoted a fence (Fig. 6's perturbed ``sc_p``), and the
        stale order entry must not keep constraining it.
        """
        events = [
            e
            for e in self.execution.sc
            if self.test.instruction(e).fence is FenceKind.FENCE_SC
        ]
        return Rel.total_order(self.n, events)

    # -- internal/external splits ----------------------------------------------------

    @cached_property
    def rfi(self) -> Rel:
        return self.rf & self.int_

    @cached_property
    def rfe(self) -> Rel:
        return self.rf & self.ext

    @cached_property
    def coi(self) -> Rel:
        return self.co & self.int_

    @cached_property
    def coe(self) -> Rel:
        return self.co & self.ext

    @cached_property
    def fri(self) -> Rel:
        return self.fr & self.int_

    @cached_property
    def fre(self) -> Rel:
        return self.fr & self.ext


def _bits(mask: int):
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
