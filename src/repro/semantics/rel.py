"""Bitmask-backed binary relations over small event universes.

Every litmus test the synthesis engine touches has at most a handful of
events (the paper never scales past 8 instructions), so a binary relation
over event ids ``0..n-1`` fits comfortably in ``n`` machine-word row masks.
All of the relational operators the axiomatic memory-model literature uses
(union, intersection, difference, composition, transpose, transitive
closure, domain/range restriction) then become a few integer bitwise
operations, which keeps the synthesis inner loop fast in pure Python.

The operator spelling deliberately mirrors the Alloy syntax key from the
paper (Table 3): ``+`` union, ``&`` intersection, ``-`` difference, ``~r``
transpose, ``r ^ None`` is not used — instead :meth:`Rel.plus` is ``^r``
(transitive closure) and :meth:`Rel.star` is ``*r`` (reflexive transitive
closure).  Composition (relational join ``.``) is :meth:`Rel.join` or the
``@`` operator.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["Rel"]


def _iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits in ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class Rel:
    """An immutable binary relation over the universe ``{0, .., n-1}``.

    Internally a tuple of ``n`` integers; bit ``j`` of ``rows[i]`` is set
    iff the pair ``(i, j)`` is in the relation.
    """

    __slots__ = ("n", "rows", "_hash")

    def __init__(self, n: int, rows: tuple[int, ...] | None = None):
        if rows is None:
            rows = (0,) * n
        if len(rows) != n:
            raise ValueError(f"expected {n} rows, got {len(rows)}")
        self.n = n
        self.rows = rows
        self._hash: int | None = None

    # -- constructors ---------------------------------------------------

    @classmethod
    def empty(cls, n: int) -> Rel:
        """The empty relation over a universe of size ``n``."""
        return cls(n)

    @classmethod
    def from_pairs(cls, n: int, pairs: Iterable[tuple[int, int]]) -> Rel:
        """Build a relation from an iterable of ``(src, dst)`` pairs."""
        rows = [0] * n
        for i, j in pairs:
            if not (0 <= i < n and 0 <= j < n):
                raise ValueError(f"pair ({i}, {j}) outside universe of size {n}")
            rows[i] |= 1 << j
        return cls(n, tuple(rows))

    @classmethod
    def identity(cls, n: int) -> Rel:
        """The identity relation ``iden``."""
        return cls(n, tuple(1 << i for i in range(n)))

    @classmethod
    def full(cls, n: int) -> Rel:
        """The complete relation ``univ -> univ``."""
        mask = (1 << n) - 1
        return cls(n, (mask,) * n)

    @classmethod
    def product(cls, n: int, src: int, dst: int) -> Rel:
        """Cross product of two sets given as bitmasks (``src -> dst``)."""
        return cls(n, tuple(dst if (src >> i) & 1 else 0 for i in range(n)))

    @classmethod
    def total_order(cls, n: int, order: Iterable[int]) -> Rel:
        """The strict total order relating each element of ``order`` to
        every later element."""
        seq = list(order)
        rows = [0] * n
        later = 0
        for i in reversed(seq):
            rows[i] = later
            later |= 1 << i
        return cls(n, tuple(rows))

    # -- set algebra -----------------------------------------------------

    def __or__(self, other: Rel) -> Rel:
        return Rel(self.n, tuple(a | b for a, b in zip(self.rows, other.rows)))

    __add__ = __or__  # Alloy spells union "+"

    def __and__(self, other: Rel) -> Rel:
        return Rel(self.n, tuple(a & b for a, b in zip(self.rows, other.rows)))

    def __sub__(self, other: Rel) -> Rel:
        return Rel(self.n, tuple(a & ~b for a, b in zip(self.rows, other.rows)))

    def __invert__(self) -> Rel:
        """Transpose (Alloy ``~r``)."""
        rows = [0] * self.n
        for i, row in enumerate(self.rows):
            for j in _iter_bits(row):
                rows[j] |= 1 << i
        return Rel(self.n, tuple(rows))

    transpose = __invert__

    # -- composition and closures ----------------------------------------

    def join(self, other: Rel) -> Rel:
        """Relational composition ``self ; other`` (Alloy ``.``)."""
        out = [0] * self.n
        orows = other.rows
        for i, row in enumerate(self.rows):
            acc = 0
            for j in _iter_bits(row):
                acc |= orows[j]
            out[i] = acc
        return Rel(self.n, tuple(out))

    __matmul__ = join

    def plus(self) -> Rel:
        """Transitive closure (Alloy ``^r``), via doubling."""
        cur = self
        while True:
            nxt = cur | cur.join(cur)
            if nxt.rows == cur.rows:
                return cur
            cur = nxt

    def star(self) -> Rel:
        """Reflexive transitive closure (Alloy ``*r``)."""
        return self.plus() | Rel.identity(self.n)

    def opt(self) -> Rel:
        """Reflexive closure ``r?`` = ``iden + r``."""
        return self | Rel.identity(self.n)

    # -- restrictions ------------------------------------------------------

    def restrict_domain(self, mask: int) -> Rel:
        """Alloy ``set <: rel``: keep pairs whose source is in ``mask``."""
        return Rel(
            self.n,
            tuple(row if (mask >> i) & 1 else 0 for i, row in enumerate(self.rows)),
        )

    def restrict_range(self, mask: int) -> Rel:
        """Alloy ``rel :> set``: keep pairs whose target is in ``mask``."""
        return Rel(self.n, tuple(row & mask for row in self.rows))

    # -- predicates --------------------------------------------------------

    def is_empty(self) -> bool:
        return not any(self.rows)

    def is_irreflexive(self) -> bool:
        return all(not (row >> i) & 1 for i, row in enumerate(self.rows))

    def is_acyclic(self) -> bool:
        """True iff the relation, viewed as a digraph, has no cycle."""
        return self.plus().is_irreflexive()

    def is_transitive(self) -> bool:
        return self.join(self).__sub__(self).is_empty()

    def __contains__(self, pair: tuple[int, int]) -> bool:
        i, j = pair
        return 0 <= i < self.n and bool((self.rows[i] >> j) & 1)

    def __bool__(self) -> bool:
        return not self.is_empty()

    # -- introspection -------------------------------------------------------

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate the pairs in the relation in row-major order."""
        for i, row in enumerate(self.rows):
            for j in _iter_bits(row):
                yield (i, j)

    def domain(self) -> int:
        """Bitmask of sources."""
        mask = 0
        for i, row in enumerate(self.rows):
            if row:
                mask |= 1 << i
        return mask

    def range(self) -> int:
        """Bitmask of targets."""
        mask = 0
        for row in self.rows:
            mask |= row
        return mask

    def image(self, src_mask: int) -> int:
        """Bitmask of elements reachable in one step from ``src_mask``."""
        acc = 0
        for i in _iter_bits(src_mask):
            acc |= self.rows[i]
        return acc

    def __len__(self) -> int:
        return sum(row.bit_count() for row in self.rows)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rel) and self.n == other.n and self.rows == other.rows
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.n, self.rows))
        return self._hash

    def __repr__(self) -> str:
        return f"Rel({self.n}, {{{', '.join(f'{i}->{j}' for i, j in self.pairs())}}})"
