"""The wire layer of the synthesis daemon.

One asyncio server (``asyncio.start_unix_server`` for ``--socket``,
``asyncio.start_server`` for ``--port``) speaking newline-delimited JSON:
each request line is a :class:`repro.obs.Report` envelope with the
``service-request`` schema and a payload of ``{"op": ..., ...}``; each
response line is an envelope whose schema names the answer
(``job-status``, ``job-result``, ``job-list``, ``service-metrics``,
``service-info``, or ``service-error``).

The server is a *thin adapter*: every operation maps 1:1 onto a
:class:`repro.service.jobs.JobManager` method.  The only blocking call
— ``result``'s wait-for-completion — is pushed onto the default
executor via :func:`asyncio.to_thread`, so one slow job never stalls
other clients' status polls.

Operations (request payload → response schema):

=========  =====================================  ====================
op         extra payload fields                   response schema
=========  =====================================  ====================
submit     ``request`` (synthesis-request          job-status
           payload), optional ``wait`` (bool),     (job-result if wait)
           ``stream`` (bool), ``client`` (str)
status     ``job_id``                              job-status
result     ``job_id``, optional ``timeout``        job-result
cancel     ``job_id``                              job-status
jobs       —                                       job-list
metrics    —                                       service-metrics
ping       —                                       service-info
shutdown   —                                       service-info
=========  =====================================  ====================

A submit with ``"stream": true`` is the one multi-envelope exchange:
the response is a *sequence* of lines on the same connection — one
``job-status`` (with ``deduped``), zero or more ``job-progress`` events
as the job runs, and a terminal ``job-result`` — so a client renders
live progress without polling.  ``client`` names the submitter for the
per-client queue quota; an over-quota submission answers with a
``service-error`` envelope whose ``code`` is ``"quota-exceeded"``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Callable

from repro.obs import Report, load_report
from repro.service.jobs import JobManager
from repro.service.protocol import (
    JOB_LIST_SCHEMA_NAME,
    SERVICE_INFO_SCHEMA_NAME,
    SERVICE_METRICS_SCHEMA_NAME,
    WIRE_SCHEMA_NAME,
    JobProgress,
    QuotaExceededError,
    SynthesisRequest,
    envelope,
    error_envelope,
)

__all__ = ["handle_request", "serve", "serve_async"]

#: maximum request line length (a synthesis request is tiny; anything
#: bigger is a confused client)
_LINE_LIMIT = 1 << 20


async def _op_submit(manager: JobManager, payload: dict[str, Any]) -> Report:
    raw = payload.get("request")
    if not isinstance(raw, dict):
        return error_envelope("submit needs a 'request' payload")
    request = SynthesisRequest.from_payload(raw)
    job, deduped = manager.submit(
        request, client=str(payload.get("client", "anonymous"))
    )
    if payload.get("wait"):
        result = await asyncio.to_thread(
            manager.result, job.job_id, payload.get("timeout")
        )
        assert result is not None  # the id came from this submit
        return result.to_report()
    status = manager.status(job.job_id)
    assert status is not None
    report = status.to_report()
    report.payload["deduped"] = deduped
    return report


async def _op_submit_stream(
    manager: JobManager, payload: dict[str, Any]
) -> AsyncIterator[Report]:
    """The streaming submit exchange: status, progress events, result."""
    raw = payload.get("request")
    if not isinstance(raw, dict):
        yield error_envelope("submit needs a 'request' payload")
        return
    try:
        request = SynthesisRequest.from_payload(raw)
        job, deduped = manager.submit(
            request, client=str(payload.get("client", "anonymous"))
        )
    except QuotaExceededError as exc:
        yield error_envelope(str(exc), code=exc.code)
        return
    except (ValueError, TypeError, RuntimeError) as exc:
        yield error_envelope(str(exc))
        return
    status = manager.status(job.job_id)
    assert status is not None
    head = status.to_report()
    head.payload["deduped"] = deduped
    yield head
    start = 0
    timeout = payload.get("timeout")
    while True:
        try:
            waited = await asyncio.to_thread(
                manager.wait_events, job.job_id, start, timeout
            )
        except TimeoutError as exc:
            yield error_envelope(str(exc))
            return
        assert waited is not None  # the id came from this submit
        events, terminal = waited
        for event in events:
            yield JobProgress(
                job_id=job.job_id, seq=start, event=event
            ).to_report()
            start += 1
        if terminal and not events:
            break
    result = await asyncio.to_thread(manager.result, job.job_id)
    assert result is not None
    yield result.to_report()


async def _op_status(manager: JobManager, payload: dict[str, Any]) -> Report:
    status = manager.status(str(payload.get("job_id")))
    if status is None:
        return error_envelope(f"unknown job {payload.get('job_id')!r}")
    return status.to_report()


async def _op_result(manager: JobManager, payload: dict[str, Any]) -> Report:
    job_id = str(payload.get("job_id"))
    try:
        result = await asyncio.to_thread(
            manager.result, job_id, payload.get("timeout")
        )
    except TimeoutError as exc:
        return error_envelope(str(exc))
    if result is None:
        return error_envelope(f"unknown job {job_id!r}")
    return result.to_report()


async def _op_cancel(manager: JobManager, payload: dict[str, Any]) -> Report:
    status = manager.cancel(str(payload.get("job_id")))
    if status is None:
        return error_envelope(f"unknown job {payload.get('job_id')!r}")
    return status.to_report()


async def _op_jobs(manager: JobManager, payload: dict[str, Any]) -> Report:
    return envelope(
        JOB_LIST_SCHEMA_NAME,
        1,
        {"jobs": [status.to_payload() for status in manager.jobs()]},
    )


async def _op_metrics(manager: JobManager, payload: dict[str, Any]) -> Report:
    return envelope(SERVICE_METRICS_SCHEMA_NAME, 1, {"metrics": manager.metrics()})


_OPS: dict[str, Callable[..., Any]] = {
    "submit": _op_submit,
    "status": _op_status,
    "result": _op_result,
    "cancel": _op_cancel,
    "jobs": _op_jobs,
    "metrics": _op_metrics,
}


async def handle_request(
    manager: JobManager,
    line: bytes,
    stop: asyncio.Event | None = None,
) -> Report:
    """Answer one wire request line with one response envelope.

    Never raises: malformed lines, unknown ops, and operation failures
    all come back as ``service-error`` envelopes, so one bad client
    cannot take a connection handler down.
    """
    try:
        document = json.loads(line.decode("utf-8"))
        report = load_report(document)
    except (UnicodeDecodeError, ValueError) as exc:
        return error_envelope(f"bad request envelope: {exc}")
    if report.schema_name != WIRE_SCHEMA_NAME:
        return error_envelope(
            f"expected a {WIRE_SCHEMA_NAME!r} envelope, got "
            f"{report.schema_name!r}"
        )
    payload = report.payload
    op = payload.get("op")
    if op == "ping":
        return envelope(SERVICE_INFO_SCHEMA_NAME, 1, {"ok": True, "op": "ping"})
    if op == "shutdown":
        if stop is not None:
            stop.set()
        return envelope(
            SERVICE_INFO_SCHEMA_NAME, 1, {"ok": True, "op": "shutdown"}
        )
    handler = _OPS.get(op)
    if handler is None:
        known = ", ".join(sorted([*_OPS, "ping", "shutdown"]))
        return error_envelope(f"unknown op {op!r} (known ops: {known})")
    try:
        return await handler(manager, payload)
    except (ValueError, TypeError) as exc:
        return error_envelope(str(exc))
    except QuotaExceededError as exc:
        return error_envelope(str(exc), code=exc.code)
    except RuntimeError as exc:  # manager closed mid-shutdown
        return error_envelope(str(exc))


def _stream_payload(line: bytes) -> dict[str, Any] | None:
    """The payload of a well-formed streaming-submit line, else None.

    Anything that is not exactly a streaming submit (bad JSON, wrong
    schema, other ops) falls through to :func:`handle_request`, which
    owns all the error reporting.
    """
    try:
        report = load_report(json.loads(line.decode("utf-8")))
    except (UnicodeDecodeError, ValueError):
        return None
    if report.schema_name != WIRE_SCHEMA_NAME:
        return None
    payload = report.payload
    if payload.get("op") == "submit" and payload.get("stream"):
        return payload
    return None


async def serve_async(
    manager: JobManager,
    socket_path: str | None = None,
    host: str = "127.0.0.1",
    port: int | None = None,
    ready: Callable[[str], None] | None = None,
    stop: asyncio.Event | None = None,
) -> None:
    """Run the daemon until ``stop`` is set (or forever).

    Exactly one of ``socket_path`` / ``port`` selects the transport.
    ``ready`` is called once with the bound address — the CLI prints it,
    tests use it as the started latch.
    """
    if (socket_path is None) == (port is None):
        raise ValueError("serve needs exactly one of socket_path or port")
    if stop is None:
        stop = asyncio.Event()

    handlers: set[asyncio.Task] = set()

    async def on_connect(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            handlers.add(task)
            task.add_done_callback(handlers.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        json.dumps(
                            error_envelope("request line too long").to_json_dict()
                        ).encode() + b"\n"
                    )
                    await writer.drain()
                    break
                if not line.strip():
                    break  # EOF or blank line = polite hangup
                streaming = _stream_payload(line)
                if streaming is not None:
                    async for response in _op_submit_stream(manager, streaming):
                        writer.write(
                            json.dumps(
                                response.to_json_dict(), sort_keys=True
                            ).encode("utf-8")
                            + b"\n"
                        )
                        await writer.drain()
                    continue
                response = await handle_request(manager, line, stop)
                writer.write(
                    json.dumps(
                        response.to_json_dict(), sort_keys=True
                    ).encode("utf-8")
                    + b"\n"
                )
                await writer.drain()
                if stop.is_set():
                    break  # this exchange asked for shutdown
        except ConnectionError:
            pass  # client vanished mid-reply; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    if socket_path is not None:
        server = await asyncio.start_unix_server(
            on_connect, path=socket_path, limit=_LINE_LIMIT
        )
        address = socket_path
    else:
        server = await asyncio.start_server(
            on_connect, host=host, port=port, limit=_LINE_LIMIT
        )
        bound = server.sockets[0].getsockname()
        address = f"{bound[0]}:{bound[1]}"
    async with server:
        if ready is not None:
            ready(address)
        await stop.wait()
        # Let in-flight handlers finish their exchange (the shutdown
        # client is still reading its response); anything slower than a
        # second is waiting on a job, which the exiting server cannot
        # answer anyway.
        if handlers:
            await asyncio.wait(handlers, timeout=1.0)
        for task in list(handlers):
            task.cancel()


def serve(
    manager: JobManager,
    socket_path: str | None = None,
    host: str = "127.0.0.1",
    port: int | None = None,
    ready: Callable[[str], None] | None = None,
) -> None:
    """Blocking entry point: run the daemon until interrupted."""
    try:
        asyncio.run(
            serve_async(
                manager, socket_path=socket_path, host=host, port=port, ready=ready
            )
        )
    except KeyboardInterrupt:
        pass
