"""Resident synthesis workers: warm oracle state across service jobs.

A one-shot ``synthesize`` call builds its :class:`MinimalityChecker`
(and with it the analysis memo, the incremental-solver session LRU, and
the CNF compilation cache), uses it for one run, and throws it away.
The daemon's whole point is to *not* do that: a :class:`ResidentWorker`
keeps one warm checker per oracle configuration alive across jobs, so a
repeated request answers out of session/analysis caches and a restarted
daemon re-reads compiled CNF from the disk cache instead of compiling.

Two deliberate behaviors:

* **Per-model CNF cache directories.**  When the pool has a cache base
  and a relational-incremental request left ``cnf_cache_dir`` unset, the
  worker fills in ``<base>/<model>`` — one directory per model, so a
  multi-model daemon never mixes fingerprints (the SAT008 lint's
  complaint) and the warm-entry count stays meaningful.
* **Delta metrics.**  A resident oracle's counters are cumulative by
  design, so per-job metrics are computed the same way
  :func:`repro.exec.worker.compute_shard` computes per-shard metrics:
  snapshot before, snapshot after, subtract.  ``compile_warm_entries``
  is re-injected as an absolute value (a constant minus itself is 0,
  which would hide exactly the warmth the SAT009 lint keys on).

Recycling (``recycle_after=N``) drops every warm checker after N jobs —
bounding memory growth of the session LRU and analysis memos, and, for
tests, forcing the next job through the disk CNF cache.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.minimality import CriterionMode, MinimalityChecker
from repro.core.synthesis import (
    SynthesisOptions,
    SynthesisResult,
    build_checker,
    run_sequential,
    synthesize,
)
from repro.models.registry import get_model
from repro.obs import derive_rates
from repro.service.protocol import SynthesisRequest, with_cnf_cache_dir

__all__ = ["ResidentWorker", "checker_key", "needs_sharded_runtime"]


def checker_key(model: str, opts: SynthesisOptions) -> tuple:
    """The oracle-configuration identity a warm checker can serve.

    Everything :func:`repro.core.synthesis.build_checker` consumes —
    two requests mapping to the same key are safe to answer with the
    same resident checker, whatever their bound/axioms/config."""
    mode = opts.mode if isinstance(opts.mode, CriterionMode) else CriterionMode(opts.mode)
    return (
        model,
        mode.value,
        opts.oracle,
        opts.incremental,
        opts.cnf_cache_dir,
        opts.prefilter,
    )


def needs_sharded_runtime(opts: SynthesisOptions) -> bool:
    """Mirror of ``synthesize``'s dispatch test: these options route
    through :mod:`repro.exec`, whose subprocess workers cannot use a
    resident checker."""
    return (
        opts.jobs > 1
        or opts.shards is not None
        or opts.checkpoint_dir is not None
        or opts.trace_dir is not None
    )


def _oracle_metrics(oracle: Any) -> dict[str, int | float]:
    as_metrics = getattr(oracle, "as_metrics", None)
    return dict(as_metrics()) if as_metrics is not None else {}


class ResidentWorker:
    """One worker slot of the service pool.

    Not thread-safe on its own — the :class:`repro.service.jobs.JobManager`
    runs each worker on a dedicated thread, so a worker only ever executes
    one job at a time.  ``as_metrics`` may race a running job by one
    counter; the manager snapshots under its own lock.
    """

    def __init__(
        self,
        index: int = 0,
        recycle_after: int = 0,
        cnf_cache_base: str | None = None,
    ):
        self.index = index
        #: drop warm checkers after this many jobs (0 = never)
        self.recycle_after = recycle_after
        self.cnf_cache_base = cnf_cache_base
        self._checkers: dict[tuple, MinimalityChecker] = {}
        self.jobs_done = 0
        self.recycles = 0
        self.warm_hits = 0
        self.warm_misses = 0
        self._lock = threading.Lock()

    # -- option resolution -------------------------------------------------

    def effective_request(self, request: SynthesisRequest) -> SynthesisRequest:
        """The request as this worker will actually run it.

        Fills in the pool's per-model CNF cache directory for
        relational-incremental requests that left ``cnf_cache_dir``
        unset; everything else passes through untouched."""
        opts = request.options
        if (
            self.cnf_cache_base is not None
            and opts.oracle == "relational"
            and opts.incremental
            and opts.cnf_cache_dir is None
        ):
            import os

            return with_cnf_cache_dir(
                request, os.path.join(self.cnf_cache_base, request.model)
            )
        return request

    def _checker_for(self, request: SynthesisRequest) -> MinimalityChecker:
        key = checker_key(request.model, request.options)
        checker = self._checkers.get(key)
        if checker is not None:
            self.warm_hits += 1
            return checker
        self.warm_misses += 1
        opts = request.options
        mode = opts.mode if isinstance(opts.mode, CriterionMode) else CriterionMode(opts.mode)
        checker = build_checker(
            get_model(request.model),
            mode,
            oracle=opts.oracle,
            incremental=opts.incremental,
            cnf_cache_dir=opts.cnf_cache_dir,
            prefilter=opts.prefilter,
        )
        self._checkers[key] = checker
        return checker

    def recycle(self) -> None:
        """Drop every warm checker (sessions, memos, in-memory CNF LRU).
        The disk CNF cache layer survives — that is what makes the next
        job's ``compile_hit_rate`` a restart-survival measurement."""
        with self._lock:
            self._checkers.clear()
            self.recycles += 1

    # -- job execution -----------------------------------------------------

    def run(
        self, request: SynthesisRequest
    ) -> tuple[SynthesisResult, dict[str, float]]:
        """Run one job; return the result plus this job's metric delta.

        Sharded-runtime options (``jobs > 1``, shards, checkpointing,
        tracing) dispatch through plain :func:`synthesize` — the
        subprocess workers there warm their own caches (and share the
        disk CNF cache directory), so the resident checker stays out of
        the way.  Everything else runs :func:`run_sequential` over the
        warm checker.
        """
        request = self.effective_request(request)
        opts = request.options
        if needs_sharded_runtime(opts):
            result = synthesize(get_model(request.model), opts)
            metrics = dict(result.oracle_stats)
        else:
            checker = self._checker_for(request)
            before = _oracle_metrics(checker.oracle)
            result = run_sequential(get_model(request.model), opts, checker=checker)
            after = _oracle_metrics(checker.oracle)
            delta = {
                key: value - before.get(key, 0) for key, value in after.items()
            }
            # warm_entries is a startup constant, not a counter; the
            # delta zeroes it, so restore the absolute value (SAT009
            # reads it).
            if "compile_warm_entries" in after:
                delta["compile_warm_entries"] = after["compile_warm_entries"]
            metrics = {**delta, **derive_rates(delta)}
            # The result of a resident run carries cumulative oracle
            # counters (see run_sequential); replace them with this
            # job's delta so the client sees per-job numbers.
            result.oracle_stats = dict(metrics)
        with self._lock:
            self.jobs_done += 1
            due = (
                self.recycle_after > 0
                and self.jobs_done % self.recycle_after == 0
            )
        if due:
            self.recycle()
        return result, metrics

    def as_metrics(self) -> dict[str, int | float]:
        """Raw worker counters, :class:`repro.obs.Stats` style."""
        return {
            "worker_jobs": self.jobs_done,
            "worker_recycles": self.recycles,
            "worker_warm_hits": self.warm_hits,
            "worker_warm_misses": self.warm_misses,
        }
