"""Resident synthesis workers: warm oracle state across service jobs.

A one-shot ``synthesize`` call builds its :class:`MinimalityChecker`
(and with it the analysis memo, the incremental-solver session LRU, and
the CNF compilation cache), uses it for one run, and throws it away.
The daemon's whole point is to *not* do that: a :class:`ResidentWorker`
keeps one warm checker per oracle configuration alive across jobs, so a
repeated request answers out of session/analysis caches and a restarted
daemon re-reads compiled CNF from the disk cache instead of compiling.

Two deliberate behaviors:

* **Per-model CNF cache directories.**  When the pool has a cache base
  and a relational-incremental request left ``cnf_cache_dir`` unset, the
  worker fills in ``<base>/<model>`` — one directory per model, so a
  multi-model daemon never mixes fingerprints (the SAT008 lint's
  complaint) and the warm-entry count stays meaningful.
* **Delta metrics.**  A resident oracle's counters are cumulative by
  design, so per-job metrics are computed the same way
  :func:`repro.exec.worker.compute_shard` computes per-shard metrics:
  snapshot before, snapshot after, subtract.  ``compile_warm_entries``
  is re-injected as an absolute value (a constant minus itself is 0,
  which would hide exactly the warmth the SAT009 lint keys on).

Recycling (``recycle_after=N``) drops every warm checker after N jobs —
bounding memory growth of the session LRU and analysis memos, and, for
tests, forcing the next job through the disk CNF cache.

Two worker species share one interface (``run(request, progress=...)``
/ ``recycle()`` / ``as_metrics()``):

* :class:`ResidentWorker` — in-process, checker warm in this
  interpreter.  CPU-bound jobs on sibling workers serialize on the GIL.
* :class:`ProcessResidentWorker` — the same worker hosted in one
  dedicated child process via :class:`repro.exec.fanout.ResidentProcess`.
  Sibling workers run truly in parallel; warm checkers live in the
  child, the disk CNF cache is shared, and recycling restarts the child
  (so recycled memory is *really* returned).  Progress events stream
  back over the pipe while the job runs.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import replace
from typing import Any

from repro.core.minimality import CriterionMode, MinimalityChecker
from repro.core.synthesis import (
    SynthesisOptions,
    SynthesisResult,
    build_checker,
    run_sequential,
    synthesize,
)
from repro.exec.fanout import ResidentProcess, ResidentTask
from repro.models.registry import get_model
from repro.obs import derive_rates
from repro.service.protocol import (
    SynthesisRequest,
    result_from_payload,
    result_to_payload,
    with_cnf_cache_dir,
)

__all__ = [
    "ProcessResidentWorker",
    "ResidentWorker",
    "checker_key",
    "needs_sharded_runtime",
]


def checker_key(model: str, opts: SynthesisOptions) -> tuple:
    """The oracle-configuration identity a warm checker can serve.

    Everything :func:`repro.core.synthesis.build_checker` consumes —
    two requests mapping to the same key are safe to answer with the
    same resident checker, whatever their bound/axioms/config."""
    mode = opts.mode if isinstance(opts.mode, CriterionMode) else CriterionMode(opts.mode)
    return (model, mode.value, opts.oracle_spec)


def needs_sharded_runtime(opts: SynthesisOptions) -> bool:
    """Mirror of ``synthesize``'s dispatch test: these options route
    through :mod:`repro.exec`, whose subprocess workers cannot use a
    resident checker."""
    return (
        opts.jobs > 1
        or opts.shards is not None
        or opts.checkpoint_dir is not None
        or opts.trace_dir is not None
    )


def _oracle_metrics(oracle: Any) -> dict[str, int | float]:
    as_metrics = getattr(oracle, "as_metrics", None)
    return dict(as_metrics()) if as_metrics is not None else {}


class ResidentWorker:
    """One worker slot of the service pool.

    Not thread-safe on its own — the :class:`repro.service.jobs.JobManager`
    runs each worker on a dedicated thread, so a worker only ever executes
    one job at a time.  ``as_metrics`` may race a running job by one
    counter; the manager snapshots under its own lock.
    """

    def __init__(
        self,
        index: int = 0,
        recycle_after: int = 0,
        cnf_cache_base: str | None = None,
    ):
        self.index = index
        #: drop warm checkers after this many jobs (0 = never)
        self.recycle_after = recycle_after
        self.cnf_cache_base = cnf_cache_base
        self._checkers: dict[tuple, MinimalityChecker] = {}
        self.jobs_done = 0
        self.recycles = 0
        self.warm_hits = 0
        self.warm_misses = 0
        self._lock = threading.Lock()

    # -- option resolution -------------------------------------------------

    def effective_request(self, request: SynthesisRequest) -> SynthesisRequest:
        """The request as this worker will actually run it.

        Fills in the pool's per-model CNF cache directory for
        relational-incremental requests that left ``cnf_cache_dir``
        unset; everything else passes through untouched."""
        spec = request.options.oracle_spec
        if (
            self.cnf_cache_base is not None
            and spec.oracle == "relational"
            and spec.incremental
            and spec.cnf_cache_dir is None
        ):
            import os

            return with_cnf_cache_dir(
                request, os.path.join(self.cnf_cache_base, request.model)
            )
        return request

    def _checker_for(self, request: SynthesisRequest) -> MinimalityChecker:
        key = checker_key(request.model, request.options)
        checker = self._checkers.get(key)
        if checker is not None:
            self.warm_hits += 1
            return checker
        self.warm_misses += 1
        opts = request.options
        mode = opts.mode if isinstance(opts.mode, CriterionMode) else CriterionMode(opts.mode)
        checker = build_checker(get_model(request.model), mode, opts.oracle_spec)
        self._checkers[key] = checker
        return checker

    def recycle(self) -> None:
        """Drop every warm checker (sessions, memos, in-memory CNF LRU).
        The disk CNF cache layer survives — that is what makes the next
        job's ``compile_hit_rate`` a restart-survival measurement."""
        with self._lock:
            self._checkers.clear()
            self.recycles += 1

    # -- job execution -----------------------------------------------------

    def run(
        self,
        request: SynthesisRequest,
        progress: Callable[[dict], None] | None = None,
    ) -> tuple[SynthesisResult, dict[str, float]]:
        """Run one job; return the result plus this job's metric delta.

        ``progress`` receives the job's structured progress events: one
        ``{"phase": "start", ...}`` up front, then whatever the
        synthesis loop emits through ``progress_events`` (periodic
        ``enumerate`` events and a terminal ``finish`` sequentially,
        per-shard ``shard`` events under the sharded runtime).

        Sharded-runtime options (``jobs > 1``, shards, checkpointing,
        tracing) dispatch through plain :func:`synthesize` — the
        subprocess workers there warm their own caches (and share the
        disk CNF cache directory), so the resident checker stays out of
        the way.  Everything else runs :func:`run_sequential` over the
        warm checker.
        """
        request = self.effective_request(request)
        opts = request.options
        if progress is not None:
            progress(
                {
                    "phase": "start",
                    "model": request.model,
                    "bound": opts.bound,
                }
            )
            opts = replace(opts, progress_events=progress)
        if needs_sharded_runtime(opts):
            result = synthesize(get_model(request.model), opts)
            metrics = dict(result.oracle_stats)
        else:
            checker = self._checker_for(request)
            before = _oracle_metrics(checker.oracle)
            result = run_sequential(get_model(request.model), opts, checker=checker)
            after = _oracle_metrics(checker.oracle)
            delta = {
                key: value - before.get(key, 0) for key, value in after.items()
            }
            # warm_entries is a startup constant, not a counter; the
            # delta zeroes it, so restore the absolute value (SAT009
            # reads it).
            if "compile_warm_entries" in after:
                delta["compile_warm_entries"] = after["compile_warm_entries"]
            metrics = {**delta, **derive_rates(delta)}
            # The result of a resident run carries cumulative oracle
            # counters (see run_sequential); replace them with this
            # job's delta so the client sees per-job numbers.
            result.oracle_stats = dict(metrics)
        with self._lock:
            self.jobs_done += 1
            due = (
                self.recycle_after > 0
                and self.jobs_done % self.recycle_after == 0
            )
        if due:
            self.recycle()
        return result, metrics

    def as_metrics(self) -> dict[str, int | float]:
        """Raw worker counters, :class:`repro.obs.Stats` style."""
        return {
            "worker_jobs": self.jobs_done,
            "worker_recycles": self.recycles,
            "worker_warm_hits": self.warm_hits,
            "worker_warm_misses": self.warm_misses,
        }


# -- the process-backed worker ------------------------------------------------
#
# The child process hosts a plain ResidentWorker (recycle_after=0 — the
# *parent* recycles by restarting the whole child, which is the stronger
# guarantee).  Both bridge functions are module-level so the ResidentTask
# pickles by reference under fork and spawn alike.


def _process_setup(payload: dict) -> ResidentWorker:
    return ResidentWorker(
        index=payload["index"],
        recycle_after=0,
        cnf_cache_base=payload["cnf_cache_base"],
    )


def _process_work(
    worker: ResidentWorker, job: dict, emit: Callable[[dict], None]
) -> tuple[dict, dict, dict]:
    request = SynthesisRequest.from_payload(job)
    result, metrics = worker.run(request, progress=emit)
    return result_to_payload(result), metrics, worker.as_metrics()


class ProcessResidentWorker:
    """A :class:`ResidentWorker` hosted in its own child process.

    Same interface and same per-model CNF cache policy (the child runs
    the exact same ``ResidentWorker`` code), but CPU-bound jobs on
    sibling workers no longer share a GIL.  Results cross the pipe in
    the wire form (:func:`repro.service.protocol.result_to_payload`),
    whose reconstruction is byte-identical by construction — the same
    marshalling every remote client already gets.

    ``recycle()`` restarts the child process; the on-disk CNF cache
    survives, everything in child memory is rebuilt.  A child killed
    mid-job raises :class:`repro.exec.fanout.WorkerDied` for that job;
    the next job spawns a fresh child.
    """

    def __init__(
        self,
        index: int = 0,
        recycle_after: int = 0,
        cnf_cache_base: str | None = None,
    ):
        self.index = index
        self.recycle_after = recycle_after
        self.cnf_cache_base = cnf_cache_base
        self.jobs_done = 0
        self.recycles = 0
        self._warm_hits = 0
        self._warm_misses = 0
        #: the child's counter snapshot at the end of its previous job —
        #: resets with the child, so parent-side totals survive restarts
        self._last_child: dict[str, int | float] = {}
        self._lock = threading.Lock()
        self._proc = ResidentProcess(
            ResidentTask(
                setup=_process_setup,
                work=_process_work,
                payload={"index": index, "cnf_cache_base": cnf_cache_base},
            )
        )

    @property
    def pid(self) -> int | None:
        """The live child's PID (None before the first job)."""
        return self._proc.pid

    def recycle(self) -> None:
        """Restart the child process (next job respawns it warm-free)."""
        with self._lock:
            self._proc.restart()
            self._last_child = {}
            self.recycles += 1

    def run(
        self,
        request: SynthesisRequest,
        progress: Callable[[dict], None] | None = None,
    ) -> tuple[SynthesisResult, dict[str, float]]:
        try:
            payload, metrics, child_counters = self._proc.run(
                request.to_payload(), on_event=progress
            )
        except Exception:
            with self._lock:
                self._last_child = {}  # whatever died took its counters
            raise
        with self._lock:
            self._warm_hits += child_counters.get(
                "worker_warm_hits", 0
            ) - self._last_child.get("worker_warm_hits", 0)
            self._warm_misses += child_counters.get(
                "worker_warm_misses", 0
            ) - self._last_child.get("worker_warm_misses", 0)
            self._last_child = dict(child_counters)
            self.jobs_done += 1
            due = (
                self.recycle_after > 0
                and self.jobs_done % self.recycle_after == 0
            )
        if due:
            self.recycle()
        return result_from_payload(payload), dict(metrics)

    def close(self) -> None:
        """Shut the child down for good (daemon shutdown path)."""
        self._proc.close()

    def as_metrics(self) -> dict[str, int | float]:
        return {
            "worker_jobs": self.jobs_done,
            "worker_recycles": self.recycles,
            "worker_warm_hits": self._warm_hits,
            "worker_warm_misses": self._warm_misses,
        }
