"""Synthesis-as-a-service: daemon, job queue, and thin client.

The package splits along the process boundary:

* :mod:`repro.service.protocol` — the typed request/response shapes
  (:class:`SynthesisRequest`, :class:`JobStatus`, :class:`JobResult`)
  and their :class:`repro.obs.Report` envelope serialization;
* :mod:`repro.service.pool` — resident workers keeping oracle caches
  warm across jobs;
* :mod:`repro.service.jobs` — the transport-free job queue with
  request-fingerprint deduplication;
* :mod:`repro.service.server` — the asyncio wire adapter behind
  ``repro serve``;
* :mod:`repro.service.client` — the synchronous client behind
  ``repro submit`` / ``repro jobs`` / ``synthesize --server``.

A daemon's answers are *byte-identical* to local runs: results cross
the wire entry-by-entry and are reassembled in candidate order, so
``synthesize --server ADDR --json-suite`` equals the local output.
"""

from repro.service.client import Client, ServiceError, parse_address
from repro.service.jobs import Job, JobManager
from repro.service.pool import ProcessResidentWorker, ResidentWorker
from repro.service.protocol import (
    JobProgress,
    JobResult,
    JobState,
    JobStatus,
    QuotaExceededError,
    SynthesisRequest,
    result_from_payload,
    result_to_payload,
)
from repro.service.server import serve, serve_async

__all__ = [
    "SynthesisRequest",
    "JobState",
    "JobStatus",
    "JobProgress",
    "JobResult",
    "QuotaExceededError",
    "result_to_payload",
    "result_from_payload",
    "Job",
    "JobManager",
    "ProcessResidentWorker",
    "ResidentWorker",
    "Client",
    "ServiceError",
    "parse_address",
    "serve",
    "serve_async",
]
