"""The typed request/response protocol of the synthesis service.

Every document that crosses the client/daemon boundary is a
:class:`repro.obs.Report` envelope — the same shape every ``--json``
CLI surface and ``BENCH_*.json`` artifact already uses — wrapping one
of three payload schemas:

``synthesis-request`` (v1)
    a :class:`SynthesisRequest`: a model *name* plus the wire-safe
    subset of :class:`repro.core.synthesis.SynthesisOptions` (oracle,
    prefilter, and cache knobs included).  Its :meth:`fingerprint
    <SynthesisRequest.fingerprint>` is the content digest the job queue
    dedups on: two clients submitting equal requests coalesce onto one
    job.
``job-status`` (v1)
    a :class:`JobStatus`: queue/run state, timings, dedup client count,
    and the per-job oracle metric delta.
``job-progress`` (v1)
    a :class:`JobProgress`: one streamed progress event — the structured
    dict a worker's ``progress_events`` callback emitted (enumeration /
    shard / oracle counters, always carrying a ``"phase"`` key) plus its
    per-job sequence number.  Only sent on streaming submissions
    (``"stream": true``), between the initial ``job-status`` and the
    terminal ``job-result``.
``job-result`` (v1)
    a :class:`JobResult`: terminal state plus the full
    :class:`~repro.core.synthesis.SynthesisResult` — suites serialized
    entry-by-entry so the client-side reconstruction is *byte-identical*
    to a local run's suites (same entries, same order, same JSON).

Requests carrying process-local values (an explicit ``candidates``
stream, a ``progress`` callback, a non-sentinel ``reject`` callable)
cannot cross the wire; :meth:`SynthesisRequest.to_payload` rejects them
with :class:`ValueError` instead of silently dropping them.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Mapping

from repro.core.enumerator import EnumerationConfig
from repro.core.minimality import CriterionMode
from repro.core.suite import TestSuite, entry_from_dict, entry_to_dict
from repro.core.synthesis import (
    EARLY_REJECT,
    OracleSpec,
    SynthesisOptions,
    SynthesisResult,
)
from repro.obs import Report

__all__ = [
    "REQUEST_SCHEMA_NAME",
    "REQUEST_SCHEMA_VERSION",
    "JOB_STATUS_SCHEMA_NAME",
    "JOB_STATUS_SCHEMA_VERSION",
    "JOB_PROGRESS_SCHEMA_NAME",
    "JOB_PROGRESS_SCHEMA_VERSION",
    "JOB_RESULT_SCHEMA_NAME",
    "JOB_RESULT_SCHEMA_VERSION",
    "JOB_LIST_SCHEMA_NAME",
    "SERVICE_METRICS_SCHEMA_NAME",
    "SERVICE_ERROR_SCHEMA_NAME",
    "SERVICE_INFO_SCHEMA_NAME",
    "WIRE_SCHEMA_NAME",
    "WIRE_SCHEMA_VERSION",
    "JobState",
    "QuotaExceededError",
    "SynthesisRequest",
    "JobStatus",
    "JobProgress",
    "JobResult",
    "envelope",
    "error_envelope",
    "result_to_payload",
    "result_from_payload",
]

REQUEST_SCHEMA_NAME = "synthesis-request"
REQUEST_SCHEMA_VERSION = 1
JOB_STATUS_SCHEMA_NAME = "job-status"
JOB_STATUS_SCHEMA_VERSION = 1
JOB_PROGRESS_SCHEMA_NAME = "job-progress"
JOB_PROGRESS_SCHEMA_VERSION = 1
JOB_RESULT_SCHEMA_NAME = "job-result"
JOB_RESULT_SCHEMA_VERSION = 1
JOB_LIST_SCHEMA_NAME = "job-list"
SERVICE_METRICS_SCHEMA_NAME = "service-metrics"
SERVICE_ERROR_SCHEMA_NAME = "service-error"
SERVICE_INFO_SCHEMA_NAME = "service-info"
#: the one request shape the daemon reads off a connection
WIRE_SCHEMA_NAME = "service-request"
WIRE_SCHEMA_VERSION = 1

#: SynthesisOptions fields that never serialize (process-local values)
_LOCAL_ONLY = ("candidates", "progress", "progress_events")


class QuotaExceededError(RuntimeError):
    """A submission was rejected by the per-client queue quota.

    Raised daemon-side by :meth:`repro.service.jobs.JobManager.submit`
    when the submitting client already has ``--max-queued-per-client``
    jobs queued; crosses the wire as a ``service-error`` envelope whose
    ``code`` is :attr:`code`, which the client surfaces as a
    :class:`repro.service.client.ServiceError` with that same code.
    """

    code = "quota-exceeded"


class JobState(str, enum.Enum):
    """Lifecycle of one service job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


def envelope(
    schema_name: str,
    schema_version: int,
    payload: dict[str, Any],
    command: str = "service",
) -> Report:
    """One service document in the unified Report envelope."""
    return Report(
        schema_name=schema_name,
        schema_version=schema_version,
        command=command,
        payload=payload,
    )


def error_envelope(
    message: str, command: str = "service", code: str | None = None
) -> Report:
    """The one failure shape the daemon answers with.

    ``code`` carries a machine-readable error class (today only
    ``"quota-exceeded"``) so clients can react without string-matching
    the message.
    """
    payload: dict[str, Any] = {"error": message}
    if code is not None:
        payload["code"] = code
    return envelope(SERVICE_ERROR_SCHEMA_NAME, 1, payload, command=command)


@dataclass(frozen=True)
class SynthesisRequest:
    """The single public entry shape of the synthesis pipeline.

    Wraps a model *name* (resolved via the registry on whichever side
    runs the work) and a :class:`SynthesisOptions`.  Accepted directly
    by :func:`repro.synthesize` and by the service daemon; the content
    :meth:`fingerprint` is what request deduplication keys on.
    """

    model: str
    options: SynthesisOptions

    @classmethod
    def build(cls, model: str, bound: int = 4, **knobs: Any) -> SynthesisRequest:
        """Convenience constructor: ``SynthesisRequest.build("tso",
        bound=4, oracle="relational", ...)``."""
        return cls(model=model, options=SynthesisOptions(bound=bound, **knobs))

    def to_payload(self) -> dict[str, Any]:
        """The wire form.  Raises :class:`ValueError` for requests
        carrying process-local values that cannot serialize."""
        opts = self.options
        for name in _LOCAL_ONLY:
            if getattr(opts, name) is not None:
                raise ValueError(
                    f"SynthesisOptions.{name} is process-local and cannot "
                    "be sent to a synthesis service"
                )
        reject = opts.reject
        if reject is not None and reject != EARLY_REJECT:
            raise ValueError(
                "only the EARLY_REJECT sentinel survives the wire; a "
                "custom reject callable cannot be sent to a synthesis "
                "service"
            )
        mode = opts.mode if isinstance(opts.mode, CriterionMode) else CriterionMode(opts.mode)
        return {
            "model": self.model,
            "options": {
                "bound": opts.bound,
                "axioms": list(opts.axioms) if opts.axioms is not None else None,
                "mode": mode.value,
                "config": asdict(opts.config) if opts.config is not None else None,
                "exact_symmetry": opts.exact_symmetry,
                "reject": reject,
                "jobs": opts.jobs,
                "checkpoint_dir": opts.checkpoint_dir,
                "shards": opts.shards,
                "oracle_spec": opts.oracle_spec.to_payload(),
                "trace_dir": opts.trace_dir,
            },
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> SynthesisRequest:
        model = payload.get("model")
        if not isinstance(model, str) or not model:
            raise ValueError("synthesis request needs a model name")
        raw = payload.get("options")
        if not isinstance(raw, Mapping):
            raise ValueError("synthesis request needs an options object")
        raw = dict(raw)
        config = raw.pop("config", None)
        mode = raw.pop("mode", CriterionMode.EXACT.value)
        known = {
            "bound",
            "axioms",
            "exact_symmetry",
            "reject",
            "jobs",
            "checkpoint_dir",
            "shards",
            "oracle_spec",
            "trace_dir",
        }
        # pre-1.2 clients sent the oracle knobs as loose option keys;
        # fold them into the nested oracle_spec object (mixing both
        # shapes in one payload is an error, not a merge)
        loose = {
            name: raw.pop(name)
            for name in ("oracle", "incremental", "cnf_cache_dir", "prefilter")
            if name in raw
        }
        spec_payload = raw.pop("oracle_spec", None)
        if loose and spec_payload is not None:
            raise ValueError(
                "synthesis request mixes the nested oracle_spec object "
                f"with loose oracle fields {sorted(loose)}"
            )
        unknown = set(raw) - known
        if unknown:
            raise ValueError(
                f"unknown synthesis option fields {sorted(unknown)}"
            )
        if spec_payload is not None:
            spec = OracleSpec.from_payload(dict(spec_payload))
        else:
            spec = OracleSpec(**loose)
        axioms = raw.pop("axioms", None)
        options = SynthesisOptions(
            mode=CriterionMode(mode),
            config=EnumerationConfig(**config) if config is not None else None,
            axioms=tuple(axioms) if axioms is not None else None,
            oracle_spec=spec,
            **raw,
        )
        return cls(model=model, options=options)

    def fingerprint(self) -> str:
        """Content digest of the wire form — the dedup key.  Stable
        across processes and runs (no salted ``hash()``)."""
        canonical = json.dumps(self.to_payload(), sort_keys=True)
        return hashlib.blake2b(
            canonical.encode(), digest_size=12
        ).hexdigest()

    def to_report(self) -> Report:
        return envelope(
            REQUEST_SCHEMA_NAME, REQUEST_SCHEMA_VERSION, self.to_payload()
        )


@dataclass(frozen=True)
class JobStatus:
    """A point-in-time snapshot of one job, safe to ship as JSON.

    ``clients`` counts the submissions coalesced onto this job
    (1 = no dedup).  ``queue_seconds`` is filled once the job starts;
    ``run_seconds`` once it finishes.  ``metrics`` is the per-job
    oracle counter *delta* plus derived rates (warm-cache hit rates,
    dedup-visible session reuse) — empty until the job completes.
    """

    job_id: str
    state: str
    fingerprint: str
    model: str
    bound: int
    clients: int = 1
    position: int | None = None
    queue_seconds: float | None = None
    run_seconds: float | None = None
    worker: int | None = None
    error: str | None = None
    progress_events: int = 0
    metrics: dict[str, float] = field(default_factory=dict)

    def to_payload(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "fingerprint": self.fingerprint,
            "model": self.model,
            "bound": self.bound,
            "clients": self.clients,
            "position": self.position,
            "queue_seconds": self.queue_seconds,
            "run_seconds": self.run_seconds,
            "worker": self.worker,
            "error": self.error,
            "progress_events": self.progress_events,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> JobStatus:
        return cls(
            job_id=str(payload["job_id"]),
            state=str(payload["state"]),
            fingerprint=str(payload.get("fingerprint", "")),
            model=str(payload.get("model", "")),
            bound=int(payload.get("bound", 0)),
            clients=int(payload.get("clients", 1)),
            position=payload.get("position"),
            queue_seconds=payload.get("queue_seconds"),
            run_seconds=payload.get("run_seconds"),
            worker=payload.get("worker"),
            error=payload.get("error"),
            progress_events=int(payload.get("progress_events", 0)),
            metrics=dict(payload.get("metrics", {})),
        )

    def to_report(self) -> Report:
        return envelope(
            JOB_STATUS_SCHEMA_NAME, JOB_STATUS_SCHEMA_VERSION, self.to_payload()
        )

    def summary(self) -> str:
        bits = [f"{self.job_id} {self.state}", f"{self.model} bound={self.bound}"]
        if self.clients > 1:
            bits.append(f"clients={self.clients}")
        if self.position is not None:
            bits.append(f"position={self.position}")
        if self.queue_seconds is not None:
            bits.append(f"queued={self.queue_seconds:.3f}s")
        if self.run_seconds is not None:
            bits.append(f"ran={self.run_seconds:.3f}s")
        if self.error:
            bits.append(f"error={self.error}")
        return "  ".join(bits)


@dataclass(frozen=True)
class JobProgress:
    """One streamed progress event of one running job.

    ``event`` is the structured dict the worker's ``progress_events``
    callback emitted — always carrying a ``"phase"`` key (``start`` /
    ``enumerate`` / ``shard`` / ``finish``) plus phase-specific
    counters.  ``seq`` is the 0-based position in the job's event
    stream, so a client resuming a dropped stream can dedup.
    """

    job_id: str
    seq: int
    event: dict[str, Any]

    def to_payload(self) -> dict[str, Any]:
        return {"job_id": self.job_id, "seq": self.seq, "event": dict(self.event)}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> JobProgress:
        return cls(
            job_id=str(payload["job_id"]),
            seq=int(payload["seq"]),
            event=dict(payload.get("event", {})),
        )

    def to_report(self) -> Report:
        return envelope(
            JOB_PROGRESS_SCHEMA_NAME,
            JOB_PROGRESS_SCHEMA_VERSION,
            self.to_payload(),
        )


# -- result marshalling ------------------------------------------------------------


def _suite_to_payload(suite: TestSuite) -> dict[str, Any]:
    """One suite, entry-by-entry in iteration order.

    Rebuilding a suite from this payload re-inserts canonical entries in
    the original order, so ``TestSuite.to_json`` of the reconstruction
    is byte-identical to the source suite's.
    """
    return {
        "model": suite.model_name,
        "label": suite.label,
        "exact_symmetry": suite.exact_symmetry,
        "tests": [entry_to_dict(entry) for entry in suite],
    }


def _suite_from_payload(payload: Mapping[str, Any]) -> TestSuite:
    suite = TestSuite(
        payload["model"],
        payload.get("label", "union"),
        payload.get("exact_symmetry", True),
    )
    for item in payload["tests"]:
        test, witness, axioms = entry_from_dict(item)
        suite.add(test, witness, axioms)
    return suite


def result_to_payload(result: SynthesisResult) -> dict[str, Any]:
    """Full wire form of a :class:`SynthesisResult` (suites included)."""
    return {
        "model": result.model_name,
        "bound": result.bound,
        "jobs": result.jobs,
        "shards": result.shard_count,
        "candidates": result.candidates,
        "unique_candidates": result.unique_candidates,
        "minimal_tests": result.minimal_tests,
        "wall_seconds": result.wall_seconds,
        "cpu_seconds": result.cpu_seconds,
        "axiom_seconds": dict(result.axiom_seconds),
        "oracle": dict(result.oracle_stats),
        "per_axiom": {
            name: _suite_to_payload(suite)
            for name, suite in result.per_axiom.items()
        },
        "union": _suite_to_payload(result.union),
    }


def result_from_payload(payload: Mapping[str, Any]) -> SynthesisResult:
    return SynthesisResult(
        model_name=payload["model"],
        bound=payload["bound"],
        per_axiom={
            name: _suite_from_payload(item)
            for name, item in payload["per_axiom"].items()
        },
        union=_suite_from_payload(payload["union"]),
        candidates=payload.get("candidates", 0),
        unique_candidates=payload.get("unique_candidates", 0),
        minimal_tests=payload.get("minimal_tests", 0),
        wall_seconds=payload.get("wall_seconds", 0.0),
        cpu_seconds=payload.get("cpu_seconds", 0.0),
        axiom_seconds=dict(payload.get("axiom_seconds", {})),
        jobs=payload.get("jobs", 1),
        shard_count=payload.get("shards", 0),
        oracle_stats=dict(payload.get("oracle", {})),
    )


@dataclass(frozen=True)
class JobResult:
    """The terminal answer for one job.

    ``result`` is populated only for :attr:`JobState.DONE`; failed and
    cancelled jobs carry ``error`` instead.
    """

    job_id: str
    state: str
    error: str | None = None
    result: SynthesisResult | None = None

    def to_payload(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "error": self.error,
            "result": (
                result_to_payload(self.result) if self.result is not None else None
            ),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> JobResult:
        raw = payload.get("result")
        return cls(
            job_id=str(payload["job_id"]),
            state=str(payload["state"]),
            error=payload.get("error"),
            result=result_from_payload(raw) if raw is not None else None,
        )

    def to_report(self) -> Report:
        return envelope(
            JOB_RESULT_SCHEMA_NAME, JOB_RESULT_SCHEMA_VERSION, self.to_payload()
        )


def with_cnf_cache_dir(
    request: SynthesisRequest, directory: str
) -> SynthesisRequest:
    """A copy of ``request`` with the daemon's default CNF cache
    directory filled in (only when the request left it unset)."""
    spec = request.options.oracle_spec
    if spec.cnf_cache_dir is not None:
        return request
    return SynthesisRequest(
        model=request.model,
        options=replace(
            request.options,
            oracle_spec=replace(spec, cnf_cache_dir=directory),
        ),
    )
