"""The thin synchronous client of the synthesis daemon.

One :class:`Client` per daemon address; one socket connection per call
(the protocol is a single request line / single response line exchange,
so holding connections open buys nothing and leaks file descriptors
into forked test runners).  Addresses are either a filesystem path (a
unix socket) or ``host:port``; :func:`parse_address` decides by shape.

Every method unwraps the daemon's :class:`repro.obs.Report` envelope
into the matching protocol type and converts ``service-error``
envelopes into :class:`ServiceError` — callers never see raw wire
documents unless they ask for them (``call``).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Callable, Iterator

from repro.core.synthesis import SynthesisOptions, SynthesisResult
from repro.obs import Report, load_report
from repro.service.protocol import (
    JOB_PROGRESS_SCHEMA_NAME,
    JOB_RESULT_SCHEMA_NAME,
    SERVICE_ERROR_SCHEMA_NAME,
    WIRE_SCHEMA_NAME,
    WIRE_SCHEMA_VERSION,
    JobProgress,
    JobResult,
    JobStatus,
    SynthesisRequest,
    envelope,
)

__all__ = ["Client", "ServiceError", "parse_address"]


class ServiceError(RuntimeError):
    """The daemon answered with a ``service-error`` envelope (or the
    transport failed).

    ``code`` carries the envelope's machine-readable error class when
    the daemon sent one (``"quota-exceeded"`` for per-client queue
    quota rejections), else None.
    """

    def __init__(self, message: str, code: str | None = None):
        super().__init__(message)
        self.code = code


def parse_address(address: str) -> tuple[str | None, str, int | None]:
    """Split an address into ``(socket_path, host, port)``.

    ``host:port`` shapes (exactly one colon, integer tail) are TCP;
    everything else is a unix socket path — which keeps bare paths like
    ``/tmp/repro.sock`` and relative ones like ``./daemon.sock`` working
    without a scheme prefix.
    """
    host, sep, tail = address.rpartition(":")
    if sep and host and "/" not in address:
        try:
            return None, host, int(tail)
        except ValueError:
            pass
    return address, "", None


class Client:
    """Talk to one daemon.  ``Client("host:8765")`` or
    ``Client("/tmp/repro.sock")``."""

    def __init__(self, address: str, timeout: float | None = 60.0):
        self.address = address
        self.timeout = timeout
        self._socket_path, self._host, self._port = parse_address(address)

    # -- transport ---------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            target: Any = self._socket_path
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            target = (self._host, self._port)
        sock.settimeout(self.timeout)
        try:
            sock.connect(target)
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"cannot reach synthesis service at {self.address}: {exc}"
            ) from exc
        return sock

    def call(self, op: str, **fields: Any) -> Report:
        """One request/response exchange; returns the raw envelope.

        Raises :class:`ServiceError` for transport failures and for
        ``service-error`` answers."""
        request = envelope(
            WIRE_SCHEMA_NAME, WIRE_SCHEMA_VERSION, {"op": op, **fields}
        )
        line = json.dumps(request.to_json_dict(), sort_keys=True) + "\n"
        sock = self._connect()
        try:
            sock.sendall(line.encode("utf-8"))
            chunks: list[bytes] = []
            while True:
                try:
                    chunk = sock.recv(65536)
                except TimeoutError as exc:
                    raise ServiceError(
                        f"timed out waiting for the service at {self.address}"
                    ) from exc
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
        finally:
            sock.close()
        raw = b"".join(chunks)
        if not raw.strip():
            raise ServiceError(
                f"the service at {self.address} closed the connection "
                "without answering"
            )
        try:
            report = load_report(json.loads(raw.decode("utf-8")))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"unparseable service response: {exc}") from exc
        if report.schema_name == SERVICE_ERROR_SCHEMA_NAME:
            raise ServiceError(
                str(report.payload.get("error", "unknown error")),
                code=report.payload.get("code"),
            )
        return report

    def stream(self, op: str, **fields: Any) -> Iterator[Report]:
        """One request, many response envelopes, on one connection.

        Yields each envelope as it arrives; the iterator ends after the
        terminal ``job-result``.  ``service-error`` envelopes raise
        :class:`ServiceError` (carrying the wire ``code``), exactly like
        :meth:`call`.
        """
        request = envelope(
            WIRE_SCHEMA_NAME, WIRE_SCHEMA_VERSION, {"op": op, **fields}
        )
        line = json.dumps(request.to_json_dict(), sort_keys=True) + "\n"
        sock = self._connect()
        try:
            sock.sendall(line.encode("utf-8"))
            buffer = b""
            closed = False
            while True:
                newline = buffer.find(b"\n")
                if newline < 0:
                    if closed:
                        if buffer.strip():
                            raise ServiceError(
                                f"the service at {self.address} closed the "
                                "stream mid-envelope"
                            )
                        return  # clean end without a job-result: hangup
                    try:
                        chunk = sock.recv(65536)
                    except TimeoutError as exc:
                        raise ServiceError(
                            "timed out waiting for the next streamed "
                            f"envelope from {self.address}"
                        ) from exc
                    if not chunk:
                        closed = True
                    buffer += chunk
                    continue
                raw, buffer = buffer[:newline], buffer[newline + 1 :]
                if not raw.strip():
                    continue
                try:
                    report = load_report(json.loads(raw.decode("utf-8")))
                except (UnicodeDecodeError, ValueError) as exc:
                    raise ServiceError(
                        f"unparseable streamed response: {exc}"
                    ) from exc
                if report.schema_name == SERVICE_ERROR_SCHEMA_NAME:
                    raise ServiceError(
                        str(report.payload.get("error", "unknown error")),
                        code=report.payload.get("code"),
                    )
                yield report
                if report.schema_name == JOB_RESULT_SCHEMA_NAME:
                    return
        finally:
            sock.close()

    # -- operations --------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call("ping").payload.get("ok"))

    def submit(
        self, request: SynthesisRequest, client: str = "anonymous"
    ) -> tuple[JobStatus, bool]:
        """Submit without waiting; returns ``(status, deduped)``."""
        report = self.call(
            "submit", request=request.to_payload(), client=client
        )
        return (
            JobStatus.from_payload(report.payload),
            bool(report.payload.get("deduped")),
        )

    def status(self, job_id: str) -> JobStatus:
        return JobStatus.from_payload(self.call("status", job_id=job_id).payload)

    def jobs(self) -> list[JobStatus]:
        report = self.call("jobs")
        return [
            JobStatus.from_payload(item) for item in report.payload.get("jobs", [])
        ]

    def result(self, job_id: str, timeout: float | None = None) -> JobResult:
        """Block (server-side) until the job finishes."""
        return JobResult.from_payload(
            self.call("result", job_id=job_id, timeout=timeout).payload
        )

    def cancel(self, job_id: str) -> JobStatus:
        return JobStatus.from_payload(self.call("cancel", job_id=job_id).payload)

    def metrics(self) -> dict[str, int | float]:
        return dict(self.call("metrics").payload.get("metrics", {}))

    def shutdown(self) -> bool:
        return bool(self.call("shutdown").payload.get("ok"))

    def synthesize(
        self,
        model: str,
        options: SynthesisOptions,
        timeout: float | None = None,
        on_progress: Callable[[dict], None] | None = None,
        client: str = "anonymous",
    ) -> SynthesisResult:
        """Submit, wait, and return the reconstructed result — the
        remote twin of :func:`repro.synthesize` (same suites, byte for
        byte).

        With ``on_progress`` the exchange switches to the streaming
        protocol: the callback receives each of the job's progress
        event dicts (``{"phase": "start", ...}`` and friends) live as
        the daemon emits them, and the final result is identical to the
        blocking exchange's.
        """
        request = SynthesisRequest(model=model, options=options)
        if on_progress is None:
            report = self.call(
                "submit",
                request=request.to_payload(),
                wait=True,
                timeout=timeout,
                client=client,
            )
            job = JobResult.from_payload(report.payload)
        else:
            job = None
            for report in self.stream(
                "submit",
                request=request.to_payload(),
                stream=True,
                timeout=timeout,
                client=client,
            ):
                if report.schema_name == JOB_PROGRESS_SCHEMA_NAME:
                    on_progress(JobProgress.from_payload(report.payload).event)
                elif report.schema_name == JOB_RESULT_SCHEMA_NAME:
                    job = JobResult.from_payload(report.payload)
            if job is None:
                raise ServiceError(
                    f"the service at {self.address} ended the stream "
                    "without a job-result"
                )
        if job.result is None:
            raise ServiceError(
                f"job {job.job_id} finished {job.state}: "
                f"{job.error or 'no result'}"
            )
        return job.result
