"""The service job queue: submit, dedup, run, report.

The :class:`JobManager` is the daemon's engine and is deliberately
transport-free — plain threads, a :class:`queue.Queue`, and per-job
:class:`threading.Event` completion latches.  The asyncio server in
:mod:`repro.service.server` is a thin wire adapter over it, and tests
drive it directly without any sockets.

**Request deduplication.**  Submissions are keyed by
:meth:`SynthesisRequest.fingerprint`.  While a job for a fingerprint is
*active* (queued or running), an identical submission coalesces onto it:
no new job, the client count bumps, and every waiter gets the same
result.  A fingerprint whose job already finished starts a *new* job —
re-running a warm request is exactly how cache warmth is measured, and
serving stale results from an unbounded memo is a retention policy this
daemon does not want.

**Tracing.**  With a ``trace_dir`` the manager writes a standard
:mod:`repro.obs` trace (``meta.json`` + ``service.jsonl``): one
``begin``/``span`` event pair plus a counters snapshot per finished job,
all emitted at completion time under the manager lock, because
:class:`repro.obs.Tracer` is single-threaded by design.  ``repro
report`` and the OBS lints read it like any other trace directory.
"""

from __future__ import annotations

import itertools
import json
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.synthesis import SynthesisResult
from repro.obs import Tracer, merge_metrics
from repro.obs.report import TOOL_NAME
from repro.obs.trace import TRACE_SCHEMA_NAME, TRACE_SCHEMA_VERSION
from repro.service.pool import ProcessResidentWorker, ResidentWorker
from repro.service.protocol import (
    JobResult,
    JobState,
    JobStatus,
    QuotaExceededError,
    SynthesisRequest,
)

__all__ = ["Job", "JobManager"]


@dataclass
class Job:
    """One unit of queued synthesis work (manager-internal, mutable)."""

    job_id: str
    seq: int
    request: SynthesisRequest
    fingerprint: str
    state: JobState = JobState.QUEUED
    clients: int = 1
    client: str = "anonymous"
    events: list[dict] = field(default_factory=list)
    submitted: float = field(default_factory=time.perf_counter)
    started: float | None = None
    finished: float | None = None
    worker: int | None = None
    error: str | None = None
    result: SynthesisResult | None = None
    metrics: dict[str, float] = field(default_factory=dict)
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def queue_seconds(self) -> float | None:
        if self.started is None:
            return None
        return self.started - self.submitted

    @property
    def run_seconds(self) -> float | None:
        if self.started is None or self.finished is None:
            return None
        return self.finished - self.started


class JobManager:
    """Thread pool + queue + dedup index; the daemon minus the sockets.

    Args:
        workers: resident worker count (threads or processes, per
            ``pool``).
        recycle_after: per-worker job count before its warm checkers are
            dropped (0 = keep forever).  Thread workers drop their
            checker dict; process workers restart their child process.
        cnf_cache_dir: base directory for the workers' per-model CNF
            compilation caches (see
            :meth:`repro.service.pool.ResidentWorker.effective_request`).
        trace_dir: optional :mod:`repro.obs` trace directory.
        pool: ``"thread"`` (workers share this interpreter — CPU-bound
            jobs serialize on the GIL) or ``"process"`` (each worker is
            a :class:`~repro.service.pool.ProcessResidentWorker` hosting
            its warm state in a dedicated child process — concurrent
            jobs run truly in parallel).  Suites are byte-identical
            either way.
        max_queued_per_client: reject a submission with
            :class:`~repro.service.protocol.QuotaExceededError` when the
            submitting client already has this many jobs *queued*
            (0 = unlimited).  Dedup-coalesced submissions never count —
            they add no queue entry.
        worker_factory: test hook — a callable ``(index) -> worker``
            returning anything with ``run(request, progress=...)`` and
            ``as_metrics()``; overrides ``pool``.
    """

    def __init__(
        self,
        workers: int = 1,
        recycle_after: int = 0,
        cnf_cache_dir: str | None = None,
        trace_dir: str | None = None,
        pool: str = "thread",
        max_queued_per_client: int = 0,
        worker_factory: Callable[[int], Any] | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if pool not in ("thread", "process"):
            raise ValueError(
                f"unknown pool kind {pool!r}; choose 'thread' or 'process'"
            )
        if max_queued_per_client < 0:
            raise ValueError(
                "max_queued_per_client must be >= 0, got "
                f"{max_queued_per_client}"
            )
        self.pool = pool
        self.max_queued_per_client = max_queued_per_client
        self._lock = threading.Lock()
        #: shares the manager lock; notified on every appended progress
        #: event and every terminal state transition
        self._events = threading.Condition(self._lock)
        self._queue: queue.Queue[Job | None] = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._active: dict[str, Job] = {}  # fingerprint -> queued/running job
        self._seq = itertools.count(1)
        self.dedup_hits = 0
        self.jobs_submitted = 0
        self.jobs_finished = 0
        self.quota_rejections = 0
        self._closed = False
        if worker_factory is None:
            worker_cls = (
                ResidentWorker if pool == "thread" else ProcessResidentWorker
            )
            worker_factory = lambda index: worker_cls(  # noqa: E731
                index,
                recycle_after=recycle_after,
                cnf_cache_base=cnf_cache_dir,
            )
        self.workers = [worker_factory(index) for index in range(workers)]
        self._tracer: Tracer | None = None
        self._trace_id = itertools.count(1)
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
            with open(
                os.path.join(trace_dir, "meta.json"), "w", encoding="utf-8"
            ) as handle:
                json.dump(
                    {
                        "schema": {
                            "name": TRACE_SCHEMA_NAME,
                            "version": TRACE_SCHEMA_VERSION,
                        },
                        "tool": TOOL_NAME,
                        "command": "serve",
                        "workers": workers,
                    },
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")
            self._tracer = Tracer(os.path.join(trace_dir, "service.jsonl"))
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(worker,),
                name=f"repro-service-worker-{worker.index}",
                daemon=True,
            )
            for worker in self.workers
        ]
        for thread in self._threads:
            thread.start()

    # -- client-facing operations ------------------------------------------

    def submit(
        self, request: SynthesisRequest, client: str = "anonymous"
    ) -> tuple[Job, bool]:
        """Enqueue a request; returns ``(job, deduped)``.

        ``deduped`` is True when the submission coalesced onto an
        already-active identical job instead of creating a new one.
        ``client`` is the submitter's self-declared identity the
        per-client queue quota counts against; a submission that would
        create a new job while the client already has
        ``max_queued_per_client`` jobs queued raises
        :class:`~repro.service.protocol.QuotaExceededError`.
        """
        fingerprint = request.fingerprint()
        with self._lock:
            if self._closed:
                raise RuntimeError("job manager is closed")
            active = self._active.get(fingerprint)
            if active is not None and not active.state.terminal:
                active.clients += 1
                self.dedup_hits += 1
                return active, True
            if self.max_queued_per_client > 0:
                queued = sum(
                    1
                    for other in self._jobs.values()
                    if other.state is JobState.QUEUED
                    and other.client == client
                )
                if queued >= self.max_queued_per_client:
                    self.quota_rejections += 1
                    raise QuotaExceededError(
                        f"client {client!r} already has {queued} jobs "
                        f"queued (limit {self.max_queued_per_client}); "
                        "wait for one to start or finish"
                    )
            seq = next(self._seq)
            job = Job(
                job_id=f"job-{seq:04d}",
                seq=seq,
                request=request,
                fingerprint=fingerprint,
                client=client,
            )
            self._jobs[job.job_id] = job
            self._active[fingerprint] = job
            self.jobs_submitted += 1
        self._queue.put(job)
        return job, False

    def status(self, job_id: str) -> JobStatus | None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            return self._status_locked(job)

    def jobs(self) -> list[JobStatus]:
        """Every known job, submission order."""
        with self._lock:
            return [
                self._status_locked(job)
                for job in sorted(self._jobs.values(), key=lambda j: j.seq)
            ]

    def result(self, job_id: str, timeout: float | None = None) -> JobResult | None:
        """Block until the job reaches a terminal state (or timeout).

        Returns ``None`` for unknown ids; raises :class:`TimeoutError`
        when the wait expires."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return None
        if not job.done.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.state.value}")
        with self._lock:
            return JobResult(
                job_id=job.job_id,
                state=job.state.value,
                error=job.error,
                result=job.result,
            )

    def wait_events(
        self, job_id: str, start: int = 0, timeout: float | None = None
    ) -> tuple[list[dict], bool] | None:
        """Block until job ``job_id`` has progress events past ``start``
        (or reaches a terminal state); return ``(new_events, terminal)``.

        The streaming server polls this in a loop, advancing ``start``
        by however many events each call returned; ``([], True)`` means
        the stream is over.  Returns ``None`` for unknown ids and raises
        :class:`TimeoutError` when ``timeout`` expires first.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._events:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            while True:
                if len(job.events) > start or job.state.terminal:
                    return list(job.events[start:]), job.state.terminal
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} produced no new events in time"
                    )
                self._events.wait(remaining)

    def cancel(self, job_id: str) -> JobStatus | None:
        """Cancel a *queued* job; running and finished jobs are left
        alone (the synthesis loop has no safe preemption point)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state is JobState.QUEUED:
                job.state = JobState.CANCELLED
                job.error = "cancelled while queued"
                job.finished = time.perf_counter()
                self._active.pop(job.fingerprint, None)
                job.done.set()
                self._events.notify_all()
            return self._status_locked(job)

    def metrics(self) -> dict[str, int | float]:
        """Service-level counters plus the summed worker counters."""
        with self._lock:
            queued = sum(
                1 for j in self._jobs.values() if j.state is JobState.QUEUED
            )
            running = sum(
                1 for j in self._jobs.values() if j.state is JobState.RUNNING
            )
            base: dict[str, int | float] = {
                "jobs_submitted": self.jobs_submitted,
                "jobs_finished": self.jobs_finished,
                "jobs_queued": queued,
                "jobs_running": running,
                "dedup_hits": self.dedup_hits,
                "quota_rejections": self.quota_rejections,
            }
            worker_totals = merge_metrics(
                *(worker.as_metrics() for worker in self.workers)
            )
        return {**base, **worker_totals}

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work, drain the worker threads, close the trace."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout)
        for worker in self.workers:
            close_worker = getattr(worker, "close", None)
            if close_worker is not None:
                close_worker()
        with self._lock:
            if self._tracer is not None:
                self._tracer.close()
                self._tracer = None

    def __enter__(self) -> JobManager:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ----------------------------------------------------------

    def _status_locked(self, job: Job) -> JobStatus:
        position = None
        if job.state is JobState.QUEUED:
            position = sum(
                1
                for other in self._jobs.values()
                if other.state is JobState.QUEUED and other.seq < job.seq
            )
        return JobStatus(
            job_id=job.job_id,
            state=job.state.value,
            fingerprint=job.fingerprint,
            model=job.request.model,
            bound=job.request.options.bound,
            clients=job.clients,
            position=position,
            queue_seconds=job.queue_seconds,
            run_seconds=job.run_seconds,
            worker=job.worker,
            error=job.error,
            progress_events=len(job.events),
            metrics=dict(job.metrics),
        )

    def _worker_loop(self, worker: Any) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            with self._lock:
                if job.state is not JobState.QUEUED:
                    continue  # cancelled while queued
                job.state = JobState.RUNNING
                job.started = time.perf_counter()
                job.worker = worker.index

            def emit(event: dict, job: Job = job) -> None:
                with self._events:
                    job.events.append(dict(event))
                    self._events.notify_all()

            try:
                result, metrics = worker.run(job.request, progress=emit)
                error = None
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                result, metrics, error = None, {}, f"{type(exc).__name__}: {exc}"
            with self._lock:
                job.finished = time.perf_counter()
                if error is None:
                    job.state = JobState.DONE
                    job.result = result
                    job.metrics = dict(metrics)
                else:
                    job.state = JobState.FAILED
                    job.error = error
                self._active.pop(job.fingerprint, None)
                self.jobs_finished += 1
                self._trace_job_locked(job)
                job.done.set()
                self._events.notify_all()

    def _trace_job_locked(self, job: Job) -> None:
        """Emit one complete begin/span pair (plus counters) per job.

        The tracer is not thread-safe and a job's duration is already
        known at completion, so both events are written here, under the
        manager lock — every ``begin`` has its ``span``, which is what
        the OBS001 lint checks.
        """
        tracer = self._tracer
        if tracer is None:
            return
        span_id = next(self._trace_id)
        tracer.event("begin", id=span_id, name="job", parent=None)
        attrs = {
            "job": job.job_id,
            "model": job.request.model,
            "bound": job.request.options.bound,
            "state": job.state.value,
            "clients": job.clients,
            "worker": job.worker,
            "progress_events": len(job.events),
            "queue_seconds": round(job.queue_seconds or 0.0, 6),
        }
        tracer.event(
            "span",
            id=span_id,
            name="job",
            parent=None,
            wall=round(job.run_seconds or 0.0, 6),
            attrs=attrs,
        )
        if job.metrics:
            raw = {
                key: value
                for key, value in job.metrics.items()
                if not key.endswith("_rate")
            }
            tracer.counters(raw, job=job.job_id)
