"""Alloy-style memory model formulas (paper Figs. 4 and 17).

These are the relational-logic twins of the axiom functions in
:mod:`repro.models` — same definitions, phrased over free ``rf``/``co``
(/``sc``) relations instead of a concrete execution.  The
cross-validation tests assert that, for every test in the catalog, the
set of executions satisfying these formulas equals the set the explicit
engine accepts.
"""

from __future__ import annotations

from repro.alloy.encoding import LitmusEncoding
from repro.relational import ast

__all__ = ["sc_formulas", "tso_formulas", "scc_formulas", "ALLOY_MODELS"]


def _common():
    rf, co = ast.Rel("rf"), ast.Rel("co")
    po, loc, ext = ast.Rel("po"), ast.Rel("loc"), ast.Rel("ext")
    fr = LitmusEncoding.fr()
    return rf, co, po, loc, ext, fr


def sc_formulas() -> dict[str, ast.Formula]:
    """Sequential consistency: one total order embeds everything."""
    rf, co, po, loc, ext, fr = _common()
    rmw = ast.Rel("rmw")
    return {
        "sequential_consistency": ast.Acyclic(po + rf + co + fr),
        "rmw_atomicity": ast.No(fr.join(co) & rmw),
    }


def tso_formulas() -> dict[str, ast.Formula]:
    """Fig. 4's three TSO axioms, verbatim."""
    rf, co, po, loc, ext, fr = _common()
    rmw = ast.Rel("rmw")
    read, write = ast.Rel("Read", 1), ast.Rel("Write", 1)
    fence_set = ast.Rel("Fence", 1)
    po_loc = po & loc
    ppo = po - write.product(read)
    fence = po.range_restrict(fence_set).join(po)
    rfe = rf & ext
    fre = fr & ext
    coe = co & ext
    return {
        "sc_per_loc": ast.Acyclic(rf + co + fr + po_loc),
        "rmw_atomicity": ast.No(fre.join(coe) & rmw),
        "causality": ast.Acyclic(rfe + co + fr + ppo + fence),
    }


def scc_formulas() -> dict[str, ast.Formula]:
    """Fig. 17's SCC axioms, verbatim."""
    rf, co, po, loc, ext, fr = _common()
    rmw, dep, sc = ast.Rel("rmw"), ast.Rel("dep"), ast.Rel("sc")
    acquire, release = ast.Rel("Acquire", 1), ast.Rel("Release", 1)
    fence_sync = ast.Rel("FenceAcqRel", 1) + ast.Rel("FenceSC", 1)
    iden = ast.Iden()
    po_loc = po & loc

    prefix = (
        iden
        + fence_sync.domain_restrict(po)
        + release.domain_restrict(po_loc)
    )
    suffix = (
        iden
        + po.range_restrict(fence_sync)
        + po_loc.range_restrict(acquire)
    )
    releasers = release + fence_sync
    acquirers = acquire + fence_sync
    chain = prefix.join((rf + rmw).closure()).join(suffix)
    sync = releasers.domain_restrict(chain).range_restrict(acquirers)
    # cause = *po . (sc + sync) . *po
    cause = po.rclosure().join(sc + sync).join(po.rclosure())
    com = rf + co + fr
    return {
        "sc_per_loc": ast.Acyclic(rf + co + fr + po_loc),
        "no_thin_air": ast.Acyclic(rf + dep),
        "rmw_atomicity": ast.No(fr.join(co) & rmw),
        "causality": ast.Irreflexive(
            com.rclosure().join(cause.closure())
        ),
    }


#: name -> (formula factory, needs an sc order)
ALLOY_MODELS: dict[str, tuple] = {
    "sc": (sc_formulas, False),
    "tso": (tso_formulas, False),
    "scc": (scc_formulas, True),
}
