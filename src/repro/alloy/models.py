"""Alloy-style memory model formulas (paper Figs. 4 and 17).

These are the relational-logic twins of the axiom functions in
:mod:`repro.models` — same definitions, phrased over free ``rf``/``co``
(/``sc``) relations instead of a concrete execution.  The
cross-validation tests assert that, for every test in the catalog, the
set of executions satisfying these formulas equals the set the explicit
engine accepts.
"""

from __future__ import annotations

from repro.alloy.encoding import LitmusEncoding
from repro.relational import ast

__all__ = [
    "sc_formulas",
    "tso_formulas",
    "scc_formulas",
    "armv8_formulas",
    "rvwmo_formulas",
    "sc_vmem_formulas",
    "tso_vmem_formulas",
    "ALLOY_MODELS",
]


def _common():
    rf, co = ast.Rel("rf"), ast.Rel("co")
    po, loc, ext = ast.Rel("po"), ast.Rel("loc"), ast.Rel("ext")
    fr = LitmusEncoding.fr()
    return rf, co, po, loc, ext, fr


def sc_formulas() -> dict[str, ast.Formula]:
    """Sequential consistency: one total order embeds everything."""
    rf, co, po, loc, ext, fr = _common()
    rmw = ast.Rel("rmw")
    return {
        "sequential_consistency": ast.Acyclic(po + rf + co + fr),
        "rmw_atomicity": ast.No(fr.join(co) & rmw),
    }


def tso_formulas() -> dict[str, ast.Formula]:
    """Fig. 4's three TSO axioms, verbatim."""
    rf, co, po, loc, ext, fr = _common()
    rmw = ast.Rel("rmw")
    read, write = ast.Rel("Read", 1), ast.Rel("Write", 1)
    fence_set = ast.Rel("Fence", 1)
    po_loc = po & loc
    ppo = po - write.product(read)
    fence = po.range_restrict(fence_set).join(po)
    rfe = rf & ext
    fre = fr & ext
    coe = co & ext
    return {
        "sc_per_loc": ast.Acyclic(rf + co + fr + po_loc),
        "rmw_atomicity": ast.No(fre.join(coe) & rmw),
        "causality": ast.Acyclic(rfe + co + fr + ppo + fence),
    }


def scc_formulas() -> dict[str, ast.Formula]:
    """Fig. 17's SCC axioms, verbatim."""
    rf, co, po, loc, ext, fr = _common()
    rmw, dep, sc = ast.Rel("rmw"), ast.Rel("dep"), ast.Rel("sc")
    acquire, release = ast.Rel("Acquire", 1), ast.Rel("Release", 1)
    fence_sync = ast.Rel("FenceAcqRel", 1) + ast.Rel("FenceSC", 1)
    iden = ast.Iden()
    po_loc = po & loc

    prefix = (
        iden
        + fence_sync.domain_restrict(po)
        + release.domain_restrict(po_loc)
    )
    suffix = (
        iden
        + po.range_restrict(fence_sync)
        + po_loc.range_restrict(acquire)
    )
    releasers = release + fence_sync
    acquirers = acquire + fence_sync
    chain = prefix.join((rf + rmw).closure()).join(suffix)
    sync = releasers.domain_restrict(chain).range_restrict(acquirers)
    # cause = *po . (sc + sync) . *po
    cause = po.rclosure().join(sc + sync).join(po.rclosure())
    com = rf + co + fr
    return {
        "sc_per_loc": ast.Acyclic(rf + co + fr + po_loc),
        "no_thin_air": ast.Acyclic(rf + dep),
        "rmw_atomicity": ast.No(fr.join(co) & rmw),
        "causality": ast.Irreflexive(
            com.rclosure().join(cause.closure())
        ),
    }


def _half_barriers(po: ast.Expr) -> ast.Expr:
    """Acquire/release half-barriers: ``Acq <: po`` and ``po :> Rel``."""
    acquire, release = ast.Rel("Acquire", 1), ast.Rel("Release", 1)
    return acquire.domain_restrict(po) + po.range_restrict(release)


def armv8_formulas() -> dict[str, ast.Formula]:
    """ARMv8 multi-copy-atomic external-visibility axioms (the
    relational twin of :mod:`repro.models.armv8`)."""
    rf, co, po, loc, ext, fr = _common()
    rmw, dep = ast.Rel("rmw"), ast.Rel("dep")
    po_loc = po & loc
    fence = po.range_restrict(ast.Rel("F_SYNC", 1)).join(po)
    bob = fence + _half_barriers(po)
    rfe, coe, fre = rf & ext, co & ext, fr & ext
    return {
        "sc_per_loc": ast.Acyclic(rf + co + fr + po_loc),
        "rmw_atomicity": ast.No(fre.join(coe) & rmw),
        "external": ast.Acyclic(rfe + coe + fre + dep + bob),
    }


def rvwmo_formulas() -> dict[str, ast.Formula]:
    """RVWMO global-memory-order axioms (the relational twin of
    :mod:`repro.models.rvwmo`)."""
    rf, co, po, loc, ext, fr = _common()
    rmw, dep = ast.Rel("rmw"), ast.Rel("dep")
    po_loc = po & loc
    fence = po.range_restrict(ast.Rel("F_SYNC", 1)).join(po)
    ppo = dep + fence + _half_barriers(po)
    rfe, coe, fre = rf & ext, co & ext, fr & ext
    return {
        "sc_per_loc": ast.Acyclic(rf + co + fr + po_loc),
        "rmw_atomicity": ast.No(fre.join(coe) & rmw),
        "ghb": ast.Acyclic(rfe + co + fr + ppo),
    }


def _translation_order() -> ast.Formula:
    """TransForm-style translation ordering over the ``Vmem`` events."""
    rf, co, po, loc, ext, fr = _common()
    vmem = ast.Rel("Vmem", 1)
    po_vmem = vmem.domain_restrict(po) + po.range_restrict(vmem)
    return ast.Acyclic(rf + co + fr + po_vmem)


def sc_vmem_formulas() -> dict[str, ast.Formula]:
    """``sc`` plus the transistency translation-order axiom."""
    return {**sc_formulas(), "translation_order": _translation_order()}


def tso_vmem_formulas() -> dict[str, ast.Formula]:
    """``tso`` plus the transistency translation-order axiom."""
    return {**tso_formulas(), "translation_order": _translation_order()}


#: name -> (formula factory, needs an sc order)
ALLOY_MODELS: dict[str, tuple] = {
    "sc": (sc_formulas, False),
    "tso": (tso_formulas, False),
    "scc": (scc_formulas, True),
    "armv8": (armv8_formulas, False),
    "rvwmo": (rvwmo_formulas, False),
    "sc_vmem": (sc_vmem_formulas, False),
    "tso_vmem": (tso_vmem_formulas, False),
}
