"""The paper's Fig. 5c / Fig. 6 encoding, verbatim: minimality as one
relational satisfiability query.

For a given litmus test, build a single bounded relational formula

    not axiom[no_r]                       -- the execution is forbidden
    and (for every applicable (r, e):     -- finite conjunction
         model[r -> e])                   -- perturbed model holds

over free ``rf``/``co`` and *derived perturbed relations* ``rf_p``,
``co_p``, ``po_p``, ``rmw_p``, ``fr_p`` (Fig. 6), with ``co_p`` repaired
by transitive closure before restriction (Fig. 8).  A satisfying
instance is an execution witnessing (Fig.-5c-)minimality; UNSAT means
the test fails the criterion.

This module covers the models with Alloy encodings (SC, TSO) and their
applicable relaxations (RI, DRMW — paper Table 2).  The explicit engine
(:class:`~repro.core.minimality.MinimalityChecker` in ``EXECUTION``
mode) implements the same semantics operationally; the test suite
asserts the two agree on the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloy.encoding import LitmusEncoding
from repro.litmus.test import LitmusTest
from repro.relational import ast
from repro.relational.solve import ModelFinder

__all__ = ["PerturbedRelations", "Fig5cEncoding"]


@dataclass(frozen=True)
class PerturbedRelations:
    """The ``_p`` view of one relaxation application (Fig. 6)."""

    rf: ast.Expr
    co: ast.Expr
    po: ast.Expr
    rmw: ast.Expr
    read: ast.Expr   # unary: surviving reads
    write: ast.Expr  # unary: surviving writes
    fence: ast.Expr  # unary: surviving fences
    loc: ast.Expr
    ext: ast.Expr

    @property
    def fr(self) -> ast.Expr:
        """Fig. 4's fr, over the perturbed relations."""
        candidates = self.read.domain_restrict(self.loc).range_restrict(
            self.write
        )
        no_later = (~self.rf).join(ast.Transpose(self.co).rclosure())
        return candidates - no_later

    @property
    def po_loc(self) -> ast.Expr:
        return self.po & self.loc


def _base_relations() -> PerturbedRelations:
    return PerturbedRelations(
        rf=ast.Rel("rf"),
        co=ast.Rel("co"),
        po=ast.Rel("po"),
        rmw=ast.Rel("rmw"),
        read=ast.Rel("Read", 1),
        write=ast.Rel("Write", 1),
        fence=ast.Rel("Fence", 1),
        loc=ast.Rel("loc"),
        ext=ast.Rel("ext"),
    )


# -- model axioms as functions of (possibly perturbed) relations -------------------


def _tso_axioms(p: PerturbedRelations) -> dict[str, ast.Formula]:
    po_loc = p.po_loc
    fr = p.fr
    rfe = p.rf & p.ext
    fre = fr & p.ext
    coe = p.co & p.ext
    ppo = p.po - p.write.product(p.read)
    fence = p.po.range_restrict(p.fence).join(p.po)
    return {
        "sc_per_loc": ast.Acyclic(p.rf + p.co + fr + po_loc),
        "rmw_atomicity": ast.No(fre.join(coe) & p.rmw),
        "causality": ast.Acyclic(rfe + p.co + fr + ppo + fence),
    }


def _sc_axioms(p: PerturbedRelations) -> dict[str, ast.Formula]:
    fr = p.fr
    return {
        "sequential_consistency": ast.Acyclic(p.po + p.rf + p.co + fr),
        "rmw_atomicity": ast.No(fr.join(p.co) & p.rmw),
    }


_AXIOMS = {"tso": _tso_axioms, "sc": _sc_axioms}


class Fig5cEncoding:
    """One-query minimality checking for a given test (Fig. 5c)."""

    def __init__(self, test: LitmusTest, model_name: str):
        if model_name not in _AXIOMS:
            raise KeyError(
                f"Fig. 5c encoding supports {sorted(_AXIOMS)}, not "
                f"{model_name!r}"
            )
        self.test = test
        self.model_name = model_name
        self.encoding = LitmusEncoding(test)
        self._axioms_fn = _AXIOMS[model_name]

    # -- perturbation (Fig. 6) --------------------------------------------------

    def _without(self, unary: ast.Expr, event: int) -> ast.Expr:
        return unary - self.encoding.atom_set(event)

    def perturb_ri(self, event: int) -> PerturbedRelations:
        """RI applied to ``event``: every relation restricted away from
        it; ``co`` transitively repaired first (Fig. 8)."""
        base = _base_relations()
        alive = self._alive_set(event)
        return PerturbedRelations(
            rf=alive.domain_restrict(base.rf).range_restrict(alive),
            co=alive.domain_restrict(base.co.closure()).range_restrict(
                alive
            ),
            po=alive.domain_restrict(base.po).range_restrict(alive),
            rmw=alive.domain_restrict(base.rmw).range_restrict(alive),
            read=base.read - self.encoding.atom_set(event),
            write=base.write - self.encoding.atom_set(event),
            fence=base.fence - self.encoding.atom_set(event),
            loc=base.loc,
            ext=base.ext,
        )

    def _alive_set(self, removed: int) -> ast.Expr:
        name = f"alive_{removed}"
        if name not in self.encoding.problem.declarations:
            self.encoding.problem.constant(
                name,
                {
                    (e,)
                    for e in range(self.test.num_events)
                    if e != removed
                },
                arity=1,
            )
        return ast.Rel(name, 1)

    def perturb_drmw(self, pair: tuple[int, int]) -> PerturbedRelations:
        """DRMW applied to one rmw pair: drop its pairing edge."""
        base = _base_relations()
        name = f"rmw_minus_{pair[0]}_{pair[1]}"
        if name not in self.encoding.problem.declarations:
            self.encoding.problem.constant(
                name, set(self.test.rmw) - {pair}
            )
        return PerturbedRelations(
            rf=base.rf,
            co=base.co,
            po=base.po,
            rmw=ast.Rel(name),
            read=base.read,
            write=base.write,
            fence=base.fence,
            loc=base.loc,
            ext=base.ext,
        )

    # -- the minimality query ----------------------------------------------------------

    def applications(self) -> list[PerturbedRelations]:
        perturbed = [
            self.perturb_ri(e) for e in range(self.test.num_events)
        ]
        perturbed += [
            self.perturb_drmw(pair) for pair in sorted(self.test.rmw)
        ]
        return perturbed

    def minimality_formula(self, axiom: str | None = None) -> ast.Formula:
        """Fig. 5c: forbidden under the (base) axiom, valid under the
        full perturbed model for every application."""
        base_axioms = self._axioms_fn(_base_relations())
        if axiom is None:
            violated: ast.Formula = ast.TRUE_F
            first = True
            for f in base_axioms.values():
                violated = ast.Not(f) if first else ast.Or(violated, ast.Not(f))
                first = False
        else:
            violated = ast.Not(base_axioms[axiom])
        formula = self.encoding.facts() & violated
        for perturbed in self.applications():
            for f in self._axioms_fn(perturbed).values():
                formula = formula & f
        return formula

    def check(self, axiom: str | None = None):
        """Solve the query; returns a witness Execution or None.

        The test has more than one instruction by assumption (RI must
        apply at least once, per Definition 1)."""
        if self.test.num_events <= 1:
            return None
        finder = ModelFinder(self.encoding.problem)
        instance = finder.solve(self.minimality_formula(axiom))
        if instance is None:
            return None
        return self.encoding.decode(instance)

    def is_minimal(self, axiom: str | None = None) -> bool:
        return self.check(axiom) is not None
