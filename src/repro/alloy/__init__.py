"""Alloy-style memory model encodings over the relational engine."""

from repro.alloy.cache import CNFCache
from repro.alloy.encoding import LitmusEncoding
from repro.alloy.models import ALLOY_MODELS, sc_formulas, scc_formulas, tso_formulas
from repro.alloy.oracle import AlloyOracle
from repro.alloy.perturb import Fig5cEncoding, PerturbedRelations

__all__ = [
    "CNFCache",
    "LitmusEncoding",
    "ALLOY_MODELS",
    "sc_formulas",
    "tso_formulas",
    "scc_formulas",
    "AlloyOracle",
    "Fig5cEncoding",
    "PerturbedRelations",
]
