"""Alloy-style relational encoding of litmus tests (paper Fig. 4).

Given a litmus test, this module builds a bounded relational
:class:`~repro.relational.problem.Problem` whose atoms are the test's
events:

* the *static* structure — event classes (``Read``, ``Write``, ``Fence``
  and the order-annotated subsets), ``po``, same-address ``loc``,
  ``dep``, ``rmw``, internal/external — becomes exact-bound constants
  (Kodkod partial instances);
* the *dynamic* relations — ``rf``, ``co`` (and ``sc`` for SCC) — become
  free relations bounded above by their well-formedness shape, with the
  Fig. 4 facts (each read reads at most one write; ``co`` totally orders
  each address's writes; ``sc`` totally orders SC fences) asserted as
  formulas.

Enumerating instances of the conjunction of the facts reproduces exactly
the executions the explicit engine enumerates — the cross-validation
tests assert equality.
"""

from __future__ import annotations

from repro.litmus.events import EventKind, FenceKind
from repro.litmus.execution import Execution
from repro.litmus.test import LitmusTest
from repro.relational import ast
from repro.relational.problem import Problem

__all__ = ["LitmusEncoding"]

# relation name constants
RF, CO, SC_REL = "rf", "co", "sc"


class LitmusEncoding:
    """The relational problem for one litmus test."""

    def __init__(self, test: LitmusTest, with_sc: bool = False):
        self.test = test
        self.with_sc = with_sc
        n = test.num_events
        self.problem = Problem(n)
        self._declare_static()
        self._declare_dynamic()

    # -- declarations ----------------------------------------------------------

    def _declare_static(self) -> None:
        test = self.test
        n = test.num_events
        insts = test.instructions

        def unary(mask_pred) -> set[tuple[int, ...]]:
            return {(e,) for e in range(n) if mask_pred(insts[e])}

        p = self.problem
        p.constant("Read", unary(lambda i: i.is_read), arity=1)
        p.constant("Write", unary(lambda i: i.is_write), arity=1)
        p.constant("Fence", unary(lambda i: i.is_fence), arity=1)
        p.constant(
            "Acquire",
            unary(lambda i: i.is_read and i.order.is_acquire),
            arity=1,
        )
        p.constant(
            "Release",
            unary(lambda i: i.is_write and i.order.is_release),
            arity=1,
        )
        p.constant("Vmem", unary(lambda i: i.is_vmem), arity=1)
        p.constant(
            "Ptwalk", unary(lambda i: i.kind is EventKind.PTWALK), arity=1
        )
        p.constant(
            "Remap", unary(lambda i: i.kind is EventKind.REMAP), arity=1
        )
        p.constant(
            "Dirty", unary(lambda i: i.kind is EventKind.DIRTY), arity=1
        )
        p.constant(
            "FenceSC",
            unary(lambda i: i.is_fence and i.fence is FenceKind.FENCE_SC),
            arity=1,
        )
        p.constant(
            "FenceAcqRel",
            unary(
                lambda i: i.is_fence
                and i.fence is FenceKind.FENCE_ACQ_REL
            ),
            arity=1,
        )
        for kind in FenceKind:
            p.constant(
                f"F_{kind.name}",
                unary(lambda i, k=kind: i.is_fence and i.fence is k),
                arity=1,
            )

        po = {
            (test.eid(t, i), test.eid(t, j))
            for t, thread in enumerate(test.threads)
            for i in range(len(thread))
            for j in range(i + 1, len(thread))
        }
        p.constant("po", po)
        loc = {
            (a, b)
            for addr in test.locations
            for a in test.accesses_to(addr)
            for b in test.accesses_to(addr)
        }
        p.constant("loc", loc)
        internal = {
            (test.eid(t, i), test.eid(t, j))
            for t, thread in enumerate(test.threads)
            for i in range(len(thread))
            for j in range(len(thread))
            if i != j
        }
        p.constant("int", internal)
        p.constant(
            "ext",
            {
                (a, b)
                for a in range(n)
                for b in range(n)
                if a != b and (a, b) not in internal
            },
        )
        p.constant("rmw", set(test.rmw))
        p.constant("dep", {(d.src, d.dst) for d in test.deps})

    def _declare_dynamic(self) -> None:
        test = self.test
        p = self.problem
        rf_upper = {
            (w, r)
            for r in test.read_eids
            for w in test.writes_to(test.instruction(r).address)
        }
        p.declare(RF, upper=rf_upper)
        co_upper = {
            (w1, w2)
            for addr in test.locations
            for w1 in test.writes_to(addr)
            for w2 in test.writes_to(addr)
            if w1 != w2
        }
        p.declare(CO, upper=co_upper)
        if self.with_sc:
            fences = [
                e
                for e, inst in enumerate(test.instructions)
                if inst.is_fence and inst.fence is FenceKind.FENCE_SC
            ]
            sc_upper = {
                (a, b) for a in fences for b in fences if a != b
            }
            p.declare(SC_REL, upper=sc_upper)

    # -- facts (well-formedness, Fig. 4) ------------------------------------------

    def atom_set(self, event: int) -> ast.Expr:
        """A singleton unary constant for one event."""
        name = f"atom_{event}"
        if name not in self.problem.declarations:
            self.problem.constant(name, {(event,)}, arity=1)
        return ast.Rel(name, 1)

    def facts(self) -> ast.Formula:
        """Well-formedness: rf functional per read; co and sc total."""
        test = self.test
        rf, co = ast.Rel(RF), ast.Rel(CO)
        formula: ast.Formula = ast.TRUE_F
        for r in test.read_eids:
            formula = formula & ast.Lone(
                rf.range_restrict(self.atom_set(r))
            )
        formula = formula & self._total_order(
            co,
            [
                tuple(test.writes_to(addr))
                for addr in test.locations
            ],
        )
        if self.with_sc:
            fences = [
                e
                for e, inst in enumerate(test.instructions)
                if inst.is_fence and inst.fence is FenceKind.FENCE_SC
            ]
            formula = formula & self._total_order(
                ast.Rel(SC_REL), [tuple(fences)]
            )
        return formula

    def _total_order(
        self, rel: ast.Expr, groups: list[tuple[int, ...]]
    ) -> ast.Formula:
        """The relation must totally order each group's atoms."""
        formula: ast.Formula = ast.Irreflexive(rel) & ast.Subset(
            rel.join(rel), rel
        )
        for group in groups:
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    pair = self._pair(a, b)
                    rpair = self._pair(b, a)
                    formula = formula & (
                        ast.Subset(pair, rel) | ast.Subset(rpair, rel)
                    )
        return formula

    def _pair(self, a: int, b: int) -> ast.Expr:
        name = f"pair_{a}_{b}"
        if name not in self.problem.declarations:
            self.problem.constant(name, {(a, b)})
        return ast.Rel(name)

    # -- derived expressions --------------------------------------------------------

    @staticmethod
    def fr() -> ast.Expr:
        """Fig. 4's ``fr``: same-address read->write pairs minus those
        reading a co-no-later write.  Handles initial reads."""
        read, write = ast.Rel("Read", 1), ast.Rel("Write", 1)
        loc, rf, co = ast.Rel("loc"), ast.Rel(RF), ast.Rel(CO)
        candidates = read.domain_restrict(loc).range_restrict(write)
        no_later = (~rf).join(ast.Transpose(co).rclosure())
        return candidates - no_later

    # -- instance decoding -------------------------------------------------------------

    def decode(self, instance) -> Execution:
        """Turn a relational instance into an Execution."""
        test = self.test
        rf_map = {r: None for r in test.read_eids}
        for w, r in instance[RF]:
            rf_map[r] = w
        rf = tuple((r, rf_map[r]) for r in test.read_eids)
        co_pairs = set(instance[CO])
        co = []
        for addr in test.locations:
            co.append(_order_by_predecessors(test.writes_to(addr), co_pairs))
        sc: tuple[int, ...] = ()
        if self.with_sc and SC_REL in instance:
            fences = tuple(
                e
                for e, inst in enumerate(test.instructions)
                if inst.is_fence and inst.fence is FenceKind.FENCE_SC
            )
            sc = _order_by_predecessors(fences, set(instance[SC_REL]))
        return Execution(test, rf, tuple(co), sc)


def _order_by_predecessors(
    atoms: tuple[int, ...], pairs: set[tuple[int, int]]
) -> tuple[int, ...]:
    """Linearize a total order given as a pair set (predecessor counts)."""
    preds = {
        a: sum(1 for b in atoms if (b, a) in pairs) for a in atoms
    }
    return tuple(sorted(atoms, key=preds.__getitem__))
