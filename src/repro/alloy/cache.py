"""Structural-hash CNF compilation cache for the SAT oracle.

Compiling a litmus test's relational problem to CNF (translator + Tseitin)
is the fixed cost the incremental oracle pays once per test.  Symmetric
and re-visited tests share that cost through this cache: compiled
problems (:class:`repro.relational.solve.CompiledProblem` snapshots) are
keyed by a structural hash of *(model fingerprint, exact test form)* and
served from a bounded in-memory LRU, optionally backed by an on-disk
directory so the cost amortizes across worker processes and across runs.

The key uses the test's **exact** structural form, not its canonical
form: the snapshot embeds per-event tuple-variable numbering, so loading
it for a merely-symmetric variant would decode executions against the
wrong events.  Within a synthesis run the enumerator dedups by canonical
form upstream, so exact keying loses nothing there; the disk layer wins
across runs and across shard workers that revisit equal forms.

Disk entries are self-describing JSON (``schema`` + ``model`` fields), so
the :mod:`repro.analysis` pipeline lints can detect directories that mix
incompatible model fingerprints or stale schema versions.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict

from repro.litmus.test import LitmusTest
from repro.relational.solve import CompiledProblem

__all__ = ["CNFCache", "CACHE_SCHEMA", "cache_key", "entry_to_dict", "entry_from_dict"]

#: bump when CompiledProblem's serialized shape changes
CACHE_SCHEMA = 2


def cache_key(model_fingerprint: str, test: LitmusTest, with_sc: bool) -> str:
    """Structural hash identifying one compiled problem.

    Content-derived (no salted ``hash()``), so keys agree across worker
    processes and across runs.  Deps sort under an explicit key:
    ``DepKind`` members are unordered, and two edges on the same
    (src, dst) pair differing only in kind would otherwise make
    ``sorted`` fall through to comparing kinds.  The address map is part
    of the key — the compiled ``loc``/``co`` constraints depend on it.
    """
    payload = repr(
        (
            CACHE_SCHEMA,
            model_fingerprint,
            test.threads,
            sorted(test.rmw),
            sorted(test.deps, key=lambda d: (d.src, d.dst, d.kind.value)),
            test.scopes,
            test.addr_map,
            with_sc,
        )
    )
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


def entry_to_dict(model_fingerprint: str, compiled: CompiledProblem) -> dict:
    """JSON-ready form of one cache entry (self-describing for lints)."""
    return {
        "schema": CACHE_SCHEMA,
        "model": model_fingerprint,
        "num_vars": compiled.num_vars,
        "units": list(compiled.units),
        "clauses": [list(c) for c in compiled.clauses],
        "tuple_vars": [
            [name, list(t), var] for name, t, var in compiled.tuple_vars
        ],
        "selectors": [[label, sel] for label, sel in compiled.selectors],
        "unsat": compiled.unsat,
    }


def entry_from_dict(data: dict) -> CompiledProblem:
    return CompiledProblem(
        num_vars=data["num_vars"],
        units=tuple(data["units"]),
        clauses=tuple(tuple(c) for c in data["clauses"]),
        tuple_vars=tuple(
            (name, tuple(t), var) for name, t, var in data["tuple_vars"]
        ),
        selectors=tuple((label, sel) for label, sel in data["selectors"]),
        unsat=data["unsat"],
    )


class CNFCache:
    """Bounded LRU of compiled problems, with an optional disk layer.

    ``capacity`` bounds the in-memory layer only; the disk layer (when
    ``disk_dir`` is set) is unbounded and shared — writes go through an
    atomic ``tmp + rename`` so concurrent workers never observe partial
    entries.  ``capacity=0`` disables the memory layer (every lookup goes
    to disk, or misses); the analysis lints flag configurations where
    that happens silently.
    """

    def __init__(
        self,
        model_fingerprint: str,
        capacity: int = 256,
        disk_dir: str | None = None,
    ):
        self.model_fingerprint = model_fingerprint
        self.capacity = capacity
        self.disk_dir = disk_dir
        self._memory: OrderedDict[str, CompiledProblem] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.stores = 0
        #: entries already present in the disk layer when this cache was
        #: built — a freshly (re)started process over a populated
        #: directory is *warm*, and the SAT009 lint flags warm runs
        #: whose compile_hit_rate still reads 0.0 (the signature of a
        #: mis-pointed or fingerprint-mismatched cache directory).
        self.warm_entries = 0
        if disk_dir is not None:
            os.makedirs(disk_dir, exist_ok=True)
            self.warm_entries = sum(
                1
                for name in os.listdir(disk_dir)
                if name.endswith(".json") and not name.startswith(".")
            )

    def key(self, test: LitmusTest, with_sc: bool) -> str:
        return cache_key(self.model_fingerprint, test, with_sc)

    def _path(self, key: str) -> str:
        assert self.disk_dir is not None
        return os.path.join(self.disk_dir, f"{key}.json")

    def get(self, key: str) -> CompiledProblem | None:
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            return cached
        if self.disk_dir is not None:
            try:
                with open(self._path(key), encoding="utf-8") as fh:
                    data = json.load(fh)
            except (OSError, ValueError):
                data = None
            if (
                data is not None
                and data.get("schema") == CACHE_SCHEMA
                and data.get("model") == self.model_fingerprint
            ):
                compiled = entry_from_dict(data)
                self._remember(key, compiled)
                self.disk_hits += 1
                self.hits += 1
                return compiled
        self.misses += 1
        return None

    def put(self, key: str, compiled: CompiledProblem) -> None:
        self._remember(key, compiled)
        self.stores += 1
        if self.disk_dir is not None:
            path = self._path(key)
            if not os.path.exists(path):
                payload = json.dumps(
                    entry_to_dict(self.model_fingerprint, compiled),
                    separators=(",", ":"),
                )
                fd, tmp = tempfile.mkstemp(
                    dir=self.disk_dir, prefix=".tmp-", suffix=".json"
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as fh:
                        fh.write(payload)
                    os.replace(tmp, path)
                except OSError:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass

    def _remember(self, key: str, compiled: CompiledProblem) -> None:
        if self.capacity <= 0:
            return
        self._memory[key] = compiled
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    def as_metrics(self) -> dict[str, int]:
        """The :class:`repro.obs.Stats` protocol: raw summable counters.

        ``compile_warm_entries`` sums per *cache instance* — each worker
        counts its own disk layer's pre-existing entries once — so a
        merged nonzero value means at least one worker started warm.
        """
        return {
            "compile_hits": self.hits,
            "compile_misses": self.misses,
            "compile_disk_hits": self.disk_hits,
            "compile_stores": self.stores,
            "compile_warm_entries": self.warm_entries,
        }

    def stats(self) -> dict[str, int]:
        return self.as_metrics()
