"""SAT-backed execution oracle — the paper's actual pipeline.

:class:`AlloyOracle` answers the same questions as
:class:`repro.core.oracle.ExplicitOracle` but by model finding instead of
explicit enumeration: well-formedness facts plus model formulas are
compiled to CNF and instances are enumerated through the CDCL solver.
It is the faithful reproduction of the Alloy/Kodkod/MiniSAT stack, and
the two oracles are cross-validated against each other in the test
suite.

Since the incremental rework, the oracle amortizes its SAT work the way
Kodkod does:

* **Sessions** — each litmus test gets one long-lived
  :class:`~repro.relational.solve.ModelFinder`; the well-formedness
  facts are asserted once, every model axiom compiles once behind a
  selector literal, and all queries for the test (full enumeration,
  per-axiom enumeration, concrete-execution validity) are assumption
  sets against that single warm solver.
* **Compilation cache** — compiled CNF snapshots are shared across
  structurally-equal tests through :class:`repro.alloy.cache.CNFCache`
  (in-memory LRU, optional on-disk layer), so re-visited forms skip the
  translator entirely.
* **Determinism** — enumerated executions are sorted by a canonical key
  before use, so incremental and cold runs produce identical results
  even though solver enumeration order differs with solver state.
* **Prefilter** (opt-in, ``prefilter=True``) — fully-pinned per-axiom
  queries are ground relational evaluations, so the polynomial
  pre-filter (:class:`repro.analysis.flow.prefilter.ExecutionPrefilter`)
  answers them before the solver is consulted; only undecided queries
  fall back to SAT.  Hit/fallback counters surface through
  :meth:`AlloyOracle.as_metrics` as ``prefilter_*`` and the derived
  ``prefilter_hit_rate``.  Verdicts agree with the pinned SAT query by
  construction and are cross-validated in the test suite and through
  the difftest harness.

``incremental=False`` restores the cold baseline: a fresh finder (and
fresh solver) per query, no session reuse, no compilation cache, no
prefilter — kept for A/B benchmarking and the equivalence test grid.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator

from collections import OrderedDict

from repro.alloy.cache import CNFCache
from repro.alloy.encoding import CO, RF, SC_REL, LitmusEncoding
from repro.alloy.models import ALLOY_MODELS
from repro.core.oracle import TestAnalysis
from repro.litmus.execution import Execution, Outcome
from repro.litmus.test import LitmusTest
from repro.obs import derive_rates
from repro.relational.solve import ModelFinder, compile_snapshot
from repro.sat.solver import SolverStats

__all__ = ["AlloyOracle"]

#: sentinel axiom label meaning "conjunction of all model axioms"
_FULL_MODEL = "*"


def _execution_key(ex: Execution):
    """Canonical sort key making enumeration order solver-independent."""
    return (
        tuple((r, -1 if src is None else src) for r, src in ex.rf),
        ex.co,
        ex.sc,
    )


class _Session:
    """One test's long-lived incremental finder plus its query cache."""

    def __init__(self, oracle: "AlloyOracle", test: LitmusTest):
        self.oracle = oracle
        self.encoding = LitmusEncoding(test, with_sc=oracle.with_sc)
        self.dyn_names = [RF, CO] + ([SC_REL] if oracle.with_sc else [])
        cache = oracle._cnf_cache
        key = cache.key(test, oracle.with_sc) if cache is not None else None
        compiled = cache.get(key) if cache is not None else None
        if compiled is not None:
            self.finder = ModelFinder(self.encoding.problem, compiled=compiled)
            self.selectors: dict[str, int | None] = {
                label: (sel or None) for label, sel in compiled.selectors
            }
        else:
            facts = self.encoding.facts()
            self.finder = ModelFinder(self.encoding.problem)
            self.finder.assert_formula(facts)
            self.selectors = {
                name: self.finder.selector_for(formula)
                for name, formula in oracle._formulas.items()
            }
            # Allocate every relation's variables before snapshotting so
            # the compiled form can answer pinned-execution queries too.
            for name in self.encoding.problem.declarations:
                self.finder.translator.relation_matrix(name)
            if cache is not None:
                cache.put(key, compile_snapshot(self.finder, self.selectors))
        self.prefilter = (
            oracle._prefilter_cls(self.encoding)
            if oracle._prefilter_cls is not None
            else None
        )
        self._enumerated: dict[str | None, tuple[Execution, ...]] = {}
        self._pins: dict[Execution, list[int]] = {}

    def _assumptions(self, axiom: str | None) -> list[int]:
        if axiom is None:
            return []
        if axiom == _FULL_MODEL:
            return [s for s in self.selectors.values() if s is not None]
        sel = self.selectors[axiom]
        return [sel] if sel is not None else []

    def executions_for(self, axiom: str | None) -> tuple[Execution, ...]:
        """Executions under the facts plus one axiom selection, sorted.

        ``axiom`` is None (facts only), an axiom name, or ``"*"`` for the
        whole model.  Each selection computes at most once per session.

        In incremental mode the execution space enumerates exactly once
        (the facts-only query); every axiom selection then *filters* that
        list with pinned-assumption queries — each is a single unit
        propagation against the warm solver, no model search, no blocking
        clauses.  Cold mode re-enumerates per selection, which is the
        baseline the paper's rebuilt-per-query pipeline pays.
        """
        cached = self._enumerated.get(axiom)
        if cached is not None:
            return cached
        if axiom is None or not self.oracle.incremental:
            decode = self.encoding.decode
            found = [
                decode(inst)
                for inst in self.finder.instances_assuming(
                    self._assumptions(axiom), project=self.dyn_names
                )
            ]
            found.sort(key=_execution_key)
            cached = tuple(found)
        else:
            cached = self._intersect_cached() if axiom == _FULL_MODEL else None
            if cached is None:
                cached = tuple(
                    ex
                    for ex in self.executions_for(None)
                    if self._selection_holds(ex, axiom)
                )
        self._enumerated[axiom] = cached
        return cached

    def _intersect_cached(self) -> tuple[Execution, ...] | None:
        """Full-model executions as the intersection of the per-axiom
        lists, when all of them are already filtered (the ``analyze``
        path guarantees that): set algebra instead of solver queries.
        Returns None when some axiom list is missing — then the direct
        pinned filter is cheaper than materializing every axiom."""
        lists = [self._enumerated.get(name) for name in self.oracle._formulas]
        if not lists or any(entry is None for entry in lists):
            return None
        member = set(lists[0])
        for entry in lists[1:]:
            member &= set(entry)
        return tuple(ex for ex in self.executions_for(None) if ex in member)

    def _selection_holds(self, execution: Execution, axiom: str) -> bool:
        """Does one execution satisfy one axiom selection (or ``"*"``)?

        With the prefilter on, the static evaluator answers first; every
        decided query skips the solver entirely.  Undecided queries (and
        all queries with the prefilter off) fall back to the pinned
        assumption query.  The two paths agree by construction — the
        static env pins exactly the tuples :meth:`_satisfies` assumes —
        and the agreement is cross-validated in the test grid.
        """
        if self.prefilter is not None:
            oracle = self.oracle
            oracle._prefilter_queries += 1
            if axiom == _FULL_MODEL:
                verdict = self.prefilter.model_verdict(
                    execution, oracle._formulas.values()
                )
            else:
                verdict = self.prefilter.axiom_verdict(
                    execution, oracle._formulas[axiom]
                )
            if verdict is not None:
                oracle._prefilter_hits += 1
                return verdict
            oracle._prefilter_fallbacks += 1
        return self._satisfies(execution, self._assumptions(axiom))

    def _satisfies(self, execution: Execution, selectors: list[int]) -> bool:
        """One pinned query: all free rf/co/sc variables assumed to the
        execution's values, plus the given axiom selectors."""
        pins = self._pins.get(execution)
        if pins is None:
            pinned = self._pinned_tuples(execution)
            pins = []
            for name in self.dyn_names:
                decl = self.encoding.problem.declarations[name]
                tuples = pinned[name]
                for t in sorted(decl.free):
                    var = self.finder.tuple_vars[(name, t)]
                    pins.append(var if t in tuples else -var)
            self._pins[execution] = pins
        return self.finder.check_assuming(selectors + pins)

    def check_execution(self, execution: Execution) -> bool:
        """Model-validity of one concrete execution, by pinning every
        free rf/co/sc variable through assumptions (no new constants, no
        new clauses)."""
        pinned = self._pinned_tuples(execution)
        for name in self.dyn_names:
            decl = self.encoding.problem.declarations[name]
            if not pinned[name] <= decl.upper or not decl.lower <= pinned[name]:
                return False
        return self._selection_holds(execution, _FULL_MODEL)

    def _pinned_tuples(self, execution: Execution) -> dict[str, set]:
        pinned: dict[str, set] = {
            RF: {(src, r) for r, src in execution.rf if src is not None}
        }
        co_tuples: set = set()
        for order in execution.co:
            for i, w1 in enumerate(order):
                for w2 in order[i + 1 :]:
                    co_tuples.add((w1, w2))
        pinned[CO] = co_tuples
        if self.oracle.with_sc:
            sc_tuples: set = set()
            seq = execution.sc
            for i, a in enumerate(seq):
                for b in seq[i + 1 :]:
                    sc_tuples.add((a, b))
            pinned[SC_REL] = sc_tuples
        return pinned

    @property
    def solver_stats(self) -> SolverStats:
        return self.finder.circuit.solver.stats


class AlloyOracle:
    """Execution-level queries answered via the relational model finder.

    Exposes the same ``analyze``/``observable`` surface as
    :class:`repro.core.oracle.ExplicitOracle`, so it can be plugged into
    :class:`repro.core.minimality.MinimalityChecker` — running the
    paper's criterion end-to-end through the SAT stack.

    Args:
        model_name: one of :data:`repro.alloy.models.ALLOY_MODELS`.
        analysis_cache: LRU capacity of the per-test analysis cache.
        incremental: reuse one warm solver per test (default).  False
            restores the cold baseline: fresh finder per query.
        session_cache: LRU capacity of live incremental sessions (each
            holds a solver with its learnt-clause database).
        compile_cache: in-memory capacity of the CNF compilation cache;
            0 disables it (the analysis lints flag that configuration).
        cnf_cache_dir: optional directory for the on-disk compilation
            cache layer, shared across processes and runs.
        prefilter: answer fully-pinned queries with the polynomial
            static evaluator before the solver (incremental mode only;
            the flag is inert in cold mode and the lints flag that).
    """

    def __init__(
        self,
        model_name: str,
        analysis_cache: int = 1024,
        incremental: bool = True,
        session_cache: int = 64,
        compile_cache: int = 256,
        cnf_cache_dir: str | None = None,
        prefilter: bool = False,
    ):
        if model_name not in ALLOY_MODELS:
            known = ", ".join(sorted(ALLOY_MODELS))
            raise KeyError(
                f"no Alloy encoding for {model_name!r}; available: {known} "
                "(Power's recursive ppo needs the explicit engine)"
            )
        self.model_name = model_name
        factory, with_sc = ALLOY_MODELS[model_name]
        self._formulas = factory()
        self.with_sc = with_sc
        self.incremental = incremental
        self._analysis: OrderedDict[LitmusTest, TestAnalysis] = OrderedDict()
        self._analysis_cache = analysis_cache
        self._analyses = 0
        self._analysis_hits = 0
        self._sessions: OrderedDict[LitmusTest, _Session] = OrderedDict()
        self._session_cache = max(1, session_cache)
        self._session_count = 0
        self._session_hits = 0
        self._sat_totals = SolverStats()
        self.prefilter = bool(prefilter) and incremental
        self._prefilter_cls = None
        if self.prefilter:
            # Runtime import: repro.analysis imports this module's package
            # siblings at its own init, so the top level must stay clean.
            from repro.analysis.flow.prefilter import ExecutionPrefilter

            self._prefilter_cls = ExecutionPrefilter
        self._prefilter_queries = 0
        self._prefilter_hits = 0
        self._prefilter_fallbacks = 0
        self._cnf_cache: CNFCache | None = None
        if incremental and (compile_cache > 0 or cnf_cache_dir is not None):
            self._cnf_cache = CNFCache(
                self.model_fingerprint(),
                capacity=compile_cache,
                disk_dir=cnf_cache_dir,
            )

    def model_fingerprint(self) -> str:
        """Content digest of the model's formulas — the cache-key
        component that keeps snapshots from one model out of another's."""
        payload = repr(
            (
                self.model_name,
                self.with_sc,
                sorted(self._formulas.items()),
            )
        )
        return hashlib.blake2b(payload.encode(), digest_size=12).hexdigest()

    # -- sessions -------------------------------------------------------------------

    def _session(self, test: LitmusTest) -> _Session:
        """The live session for a test (cold mode: always a fresh one)."""
        if not self.incremental:
            self._session_count += 1
            return _Session(self, test)
        session = self._sessions.get(test)
        if session is not None:
            self._sessions.move_to_end(test)
            self._session_hits += 1
            return session
        session = _Session(self, test)
        self._sessions[test] = session
        self._session_count += 1
        while len(self._sessions) > self._session_cache:
            _, evicted = self._sessions.popitem(last=False)
            self._sat_totals.add(evicted.solver_stats)
        return session

    def _finish(self, session: _Session) -> None:
        # cold-mode sessions are single-use; bank their counters before
        # they are dropped so telemetry covers both modes
        if not self.incremental:
            self._sat_totals.add(session.solver_stats)

    # -- queries -------------------------------------------------------------------

    def axiom_names(self) -> tuple[str, ...]:
        return tuple(self._formulas)

    def executions(self, test: LitmusTest) -> Iterator[Execution]:
        """All well-formed executions (the facts alone)."""
        session = self._session(test)
        found = session.executions_for(None)
        self._finish(session)
        yield from found

    def valid_executions(
        self, test: LitmusTest, axiom: str | None = None
    ) -> Iterator[Execution]:
        """Executions satisfying one axiom (or the whole model)."""
        label = _FULL_MODEL if axiom is None else axiom
        session = self._session(test)
        found = session.executions_for(label)
        self._finish(session)
        yield from found

    def valid_outcomes(self, test: LitmusTest) -> frozenset[Outcome]:
        return frozenset(
            ex.outcome for ex in self.valid_executions(test)
        )

    def analyze(self, test: LitmusTest) -> TestAnalysis:
        """Outcome landscape via model finding (one enumeration for the
        execution space, one per axiom) — all against one warm solver in
        incremental mode."""
        cached = self._analysis.get(test)
        if cached is not None:
            self._analysis_hits += 1
            return cached
        self._analyses += 1  # like ExplicitOracle: misses, not calls
        all_outcomes = frozenset(
            ex.outcome for ex in self.executions(test)
        )
        axiom_valid = {
            name: frozenset(
                ex.outcome for ex in self.valid_executions(test, name)
            )
            for name in self._formulas
        }
        model_valid = self.valid_outcomes(test)
        analysis = TestAnalysis(all_outcomes, model_valid, axiom_valid)
        self._analysis[test] = analysis
        if len(self._analysis) > self._analysis_cache:
            self._analysis.popitem(last=False)
        return analysis

    def observable(self, test: LitmusTest, constraint: Outcome) -> bool:
        """Does some model-valid execution produce the (partial) outcome?"""
        return self.analyze(test).admits(constraint)

    def is_valid(self, execution: Execution) -> bool:
        """Check one concrete execution by pinning rf/co/sc exactly."""
        session = self._session(execution.test)
        result = session.check_execution(execution)
        self._finish(session)
        return result

    # -- telemetry -----------------------------------------------------------------

    def solver_stats(self) -> SolverStats:
        """Aggregate CDCL counters across every solver this oracle ran
        (evicted sessions included)."""
        total = SolverStats()
        total.add(self._sat_totals)
        for session in self._sessions.values():
            total.add(session.solver_stats)
        return total

    def as_metrics(self) -> dict[str, int | float]:
        """The :class:`repro.obs.Stats` protocol: raw summable counters
        (analysis/session caches, CNF compilation, ``sat_``-prefixed
        CDCL totals) with no derived ratios."""
        sat = self.solver_stats()
        stats: dict[str, int | float] = {
            "analyses": self._analyses,
            "analysis_hits": self._analysis_hits,
            "sessions": self._session_count,
            "session_hits": self._session_hits,
        }
        if self.prefilter:
            stats["prefilter_queries"] = self._prefilter_queries
            stats["prefilter_hits"] = self._prefilter_hits
            stats["prefilter_fallbacks"] = self._prefilter_fallbacks
        if self._cnf_cache is not None:
            stats.update(self._cnf_cache.as_metrics())
        for name, value in sat.as_metrics().items():
            stats[f"sat_{name}"] = value
        return stats

    def cache_stats(self) -> dict[str, float]:
        """Counters plus derived rates for ``--json`` surfacing — an
        adapter over :meth:`as_metrics`; merging across shards sums the
        raw counters and recomputes the rates with
        :func:`repro.obs.derive_rates`."""
        metrics = self.as_metrics()
        return {**metrics, **derive_rates(metrics)}
