"""SAT-backed execution oracle — the paper's actual pipeline.

:class:`AlloyOracle` answers the same questions as
:class:`repro.core.oracle.ExplicitOracle` but by model finding instead of
explicit enumeration: well-formedness facts plus model formulas are
compiled to CNF and instances are enumerated through the CDCL solver.
It is slower (as the paper's runtime curves attest) but is the faithful
reproduction of the Alloy/Kodkod/MiniSAT stack, and the two oracles are
cross-validated against each other in the test suite.
"""

from __future__ import annotations

from collections.abc import Iterator

from collections import OrderedDict

from repro.alloy.encoding import LitmusEncoding
from repro.alloy.models import ALLOY_MODELS
from repro.core.oracle import TestAnalysis
from repro.litmus.execution import Execution, Outcome
from repro.litmus.test import LitmusTest
from repro.relational import ast
from repro.relational.solve import ModelFinder

__all__ = ["AlloyOracle"]


class AlloyOracle:
    """Execution-level queries answered via the relational model finder.

    Exposes the same ``analyze``/``observable`` surface as
    :class:`repro.core.oracle.ExplicitOracle`, so it can be plugged into
    :class:`repro.core.minimality.MinimalityChecker` — running the
    paper's criterion end-to-end through the SAT stack.
    """

    def __init__(self, model_name: str, analysis_cache: int = 1024):
        if model_name not in ALLOY_MODELS:
            known = ", ".join(sorted(ALLOY_MODELS))
            raise KeyError(
                f"no Alloy encoding for {model_name!r}; available: {known} "
                "(Power's recursive ppo needs the explicit engine)"
            )
        self.model_name = model_name
        factory, with_sc = ALLOY_MODELS[model_name]
        self._formulas = factory()
        self.with_sc = with_sc
        self._analysis: OrderedDict[LitmusTest, TestAnalysis] = OrderedDict()
        self._analysis_cache = analysis_cache

    # -- queries -------------------------------------------------------------------

    def axiom_names(self) -> tuple[str, ...]:
        return tuple(self._formulas)

    def _finder(
        self, test: LitmusTest
    ) -> tuple[LitmusEncoding, ModelFinder, ast.Formula]:
        encoding = LitmusEncoding(test, with_sc=self.with_sc)
        formula = encoding.facts()  # forces constant declarations
        finder = ModelFinder(encoding.problem)
        return encoding, finder, formula

    def executions(self, test: LitmusTest) -> Iterator[Execution]:
        """All well-formed executions (the facts alone)."""
        encoding, finder, facts = self._finder(test)
        for instance in finder.instances(facts):
            yield encoding.decode(instance)

    def valid_executions(
        self, test: LitmusTest, axiom: str | None = None
    ) -> Iterator[Execution]:
        """Executions satisfying one axiom (or the whole model)."""
        encoding, finder, facts = self._finder(test)
        formula = facts
        if axiom is None:
            for f in self._formulas.values():
                formula = formula & f
        else:
            formula = formula & self._formulas[axiom]
        for instance in finder.instances(formula):
            yield encoding.decode(instance)

    def valid_outcomes(self, test: LitmusTest) -> frozenset[Outcome]:
        return frozenset(
            ex.outcome for ex in self.valid_executions(test)
        )

    def analyze(self, test: LitmusTest) -> TestAnalysis:
        """Outcome landscape via model finding (one enumeration for the
        execution space, one per axiom)."""
        cached = self._analysis.get(test)
        if cached is not None:
            return cached
        all_outcomes = frozenset(
            ex.outcome for ex in self.executions(test)
        )
        axiom_valid = {
            name: frozenset(
                ex.outcome for ex in self.valid_executions(test, name)
            )
            for name in self._formulas
        }
        model_valid = self.valid_outcomes(test)
        analysis = TestAnalysis(all_outcomes, model_valid, axiom_valid)
        self._analysis[test] = analysis
        if len(self._analysis) > self._analysis_cache:
            self._analysis.popitem(last=False)
        return analysis

    def observable(self, test: LitmusTest, constraint: Outcome) -> bool:
        """Does some model-valid execution produce the (partial) outcome?"""
        return self.analyze(test).admits(constraint)

    def is_valid(self, execution: Execution) -> bool:
        """Check one concrete execution by pinning rf/co/sc exactly."""
        encoding, finder, facts = self._finder(execution.test)
        formula = facts
        for f in self._formulas.values():
            formula = formula & f
        formula = formula & self._pin(execution, encoding)
        return finder.check(formula)

    def _pin(
        self, execution: Execution, encoding: LitmusEncoding
    ) -> ast.Formula:
        test = execution.test
        rf_tuples = {
            (src, r) for r, src in execution.rf if src is not None
        }
        co_tuples = set()
        for order in execution.co:
            for i, w1 in enumerate(order):
                for w2 in order[i + 1 :]:
                    co_tuples.add((w1, w2))
        pin = self._exactly(encoding, "rf", rf_tuples)
        pin = pin & self._exactly(encoding, "co", co_tuples)
        if self.with_sc:
            sc_tuples = set()
            seq = execution.sc
            for i, a in enumerate(seq):
                for b in seq[i + 1 :]:
                    sc_tuples.add((a, b))
            pin = pin & self._exactly(encoding, "sc", sc_tuples)
        return pin

    @staticmethod
    def _exactly(
        encoding: LitmusEncoding, name: str, tuples: set
    ) -> ast.Formula:
        rel = ast.Rel(name)
        if not tuples:
            return ast.No(rel)
        const_name = f"pin_{name}"
        if const_name not in encoding.problem.declarations:
            encoding.problem.constant(const_name, tuples)
        return ast.Eq(rel, ast.Rel(const_name))
