"""Command-line interface.

::

    litmus-synth models
    litmus-synth table2
    litmus-synth synthesize --model tso --bound 4 [--axiom causality]
                            [--mode exact|execution|execution-wa]
                            [--jobs N] [--checkpoint-dir D] [--json]
                            [--oracle explicit|relational] [--cold-solver]
                            [--prefilter] [--cnf-cache-dir D]
                            [--trace-dir D] [--out suite.json]
                            [--server ADDR]
    litmus-synth check --model tso test.litmus
    litmus-synth show --name MP
    litmus-synth show --file test.litmus
    litmus-synth compare --model tso [--bound 5] [--suite suite.json]
                         [--reference owens|cambridge|suite.json] [--json]
    litmus-synth difftest --model tso [--seed 0] [--budget 100]
                          [--mutants TAG ...] [--corpus-dir D] [--jobs N]
                          [--prefilter] [--trace-dir D] [--json]
                          [--list-mutants]
    litmus-synth report TRACE_DIR [--json]
    litmus-synth serve (--socket PATH | --port N) [--pool-workers N]
                       [--pool thread|process] [--recycle-after N]
                       [--max-queued-per-client N] [--cnf-cache-dir D]
                       [--trace-dir D]
    litmus-synth submit --server ADDR --model tso --bound 4 [--wait]
                        [synthesis knobs ...] [--json]
    litmus-synth jobs --server ADDR [--status JOB | --cancel JOB |
                      --metrics | --shutdown] [--json]
    litmus-synth lint [--all-models] [--catalog] [--model tso]
                      [--corpus-dir D] [--trace-dir D] [--format text|json]
                      [--suppress ID[:GLOB]] [tests.litmus ...]

File errors are uniformly reported as ``error: <path>: <reason>`` on
stderr with exit status 2.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

from repro import analysis
from repro.analysis import selfcheck
from repro.core.compare import compare_suites
from repro.core.enumerator import EnumerationConfig
from repro.core.minimality import CriterionMode, MinimalityChecker
from repro.core.synthesis import (
    EARLY_REJECT,
    ORACLES,
    OracleSpec,
    SynthesisOptions,
    synthesize,
)
from repro.litmus.catalog import (
    CATALOG,
    cambridge_power_suite,
    owens_forbidden,
)
from repro.litmus.execution import Outcome
from repro.litmus.format import ParseError, format_test, parse_test
from repro.litmus.test import LitmusTest
from repro.models.registry import available_models, get_model
from repro.relax.applicability import format_table

__all__ = ["add_oracle_args", "main", "oracle_spec_from_args"]


class _CliError(Exception):
    """A user-facing CLI failure: message to stderr, exit status 2."""


def _file_error(path: str, reason: str) -> _CliError:
    """The one file-error shape every subcommand reports:
    ``error: <path>: <reason>`` (printed by :func:`main`, exit 2)."""
    return _CliError(f"{path}: {reason}")


def _read_file(path: str) -> str:
    try:
        with open(path) as fh:
            return fh.read()
    except OSError as exc:
        raise _file_error(path, f"cannot read: {exc.strerror or exc}") from exc


def _load_litmus(path: str) -> tuple[LitmusTest, Outcome | None]:
    """Read and parse a .litmus file, mapping failures to clean errors."""
    text = _read_file(path)
    try:
        return parse_test(text)
    except (ParseError, ValueError) as exc:
        raise _file_error(path, str(exc)) from exc


#: payload schema of ``repro models --json`` (a repro.obs.Report
#: envelope around the registry listing).
MODELS_SCHEMA_NAME = "model-list"
MODELS_SCHEMA_VERSION = 1


def _cmd_models(args) -> int:
    from repro.alloy.models import ALLOY_MODELS
    from repro.relax.instruction import relaxations_for

    names = available_models()
    only = getattr(args, "model", None)
    if only is not None:
        if only not in names:
            raise _CliError(
                f"{only}: unknown model (available: {', '.join(names)})"
            )
        names = (only,)
    rows = []
    for name in names:
        model = get_model(name)
        vocab = model.vocabulary
        axioms = model.axiom_names()
        relaxations = [r.name for r in relaxations_for(vocab)]
        rows.append(
            {
                "name": name,
                "full_name": model.full_name,
                "axioms": list(axioms),
                "axiom_count": len(axioms),
                "vmem": vocab.has_vmem,
                "relaxations": relaxations,
                "relaxation_count": len(relaxations),
                "relational": name in ALLOY_MODELS,
            }
        )
    if getattr(args, "json", False):
        from repro.obs import Report

        report = Report(
            schema_name=MODELS_SCHEMA_NAME,
            schema_version=MODELS_SCHEMA_VERSION,
            command="models",
            payload={"models": rows},
        )
        print(json.dumps(report.to_json_dict(), indent=2))
        return 0
    width = max(len(row["name"]) for row in rows) + 2
    print(
        "".ljust(width)
        + f"{'axioms':>6s} {'vmem':>5s} {'relax':>6s} {'sat':>4s}  name"
    )
    for row in rows:
        print(
            row["name"].ljust(width)
            + f"{row['axiom_count']:>6d} "
            + f"{'yes' if row['vmem'] else '-':>5s} "
            + f"{row['relaxation_count']:>6d} "
            + f"{'yes' if row['relational'] else '-':>4s}  "
            + row["full_name"]
        )
    return 0


def _cmd_table2(_args) -> int:
    print(format_table())
    return 0


def add_oracle_args(parser: argparse.ArgumentParser) -> None:
    """The four oracle-configuration flags, exactly one
    :class:`OracleSpec` worth.

    Every subcommand that builds a request adds these through this one
    helper and reads them back through :func:`oracle_spec_from_args`, so
    a daemon submission and a local run parse the same flags into the
    same spec — and therefore the same request fingerprint — by
    construction."""
    parser.add_argument(
        "--oracle",
        default="explicit",
        choices=list(ORACLES),
        help="criterion oracle: explicit enumeration (default) or the "
        "relational SAT pipeline (identical output, paper-faithful path)",
    )
    parser.add_argument(
        "--cold-solver",
        action="store_true",
        help="relational oracle only: fresh solver per query instead of "
        "the incremental engine (A/B baseline; much slower)",
    )
    parser.add_argument(
        "--prefilter",
        action="store_true",
        help="relational oracle only: answer fully-pinned per-axiom "
        "queries with the polynomial static evaluator before SAT "
        "(identical output; hit rate lands in the oracle stats)",
    )
    parser.add_argument(
        "--cnf-cache-dir",
        default=None,
        help="relational oracle only: on-disk CNF compilation cache "
        "shared across workers and runs",
    )


def oracle_spec_from_args(args) -> OracleSpec:
    """The :class:`OracleSpec` an :func:`add_oracle_args` flag set
    describes (the inverse of the parser half of the pair)."""
    return OracleSpec(
        oracle=args.oracle,
        incremental=not args.cold_solver,
        cnf_cache_dir=args.cnf_cache_dir,
        prefilter=args.prefilter,
    )


def _synthesis_options(args) -> SynthesisOptions:
    """Build the options a ``synthesize``-flavoured arg set describes.

    Shared by ``synthesize`` and ``submit`` so the same flags produce the
    same options — and therefore the same request fingerprint, which is
    what lets a local run and a daemon submission dedup-coalesce."""
    max_aliases = args.max_aliases
    if max_aliases is None:
        max_aliases = (
            1 if get_model(args.model).vocabulary.has_vmem else 0
        )
    config = EnumerationConfig(
        max_events=args.bound,
        max_threads=args.max_threads,
        max_addresses=args.max_addresses,
        max_deps=args.max_deps,
        max_rmws=args.max_rmws,
        max_aliases=max_aliases,
    )
    return SynthesisOptions(
        bound=args.bound,
        axioms=[args.axiom] if args.axiom else None,
        mode=CriterionMode(args.mode),
        config=config,
        reject=EARLY_REJECT if args.early_reject else None,
        jobs=args.jobs,
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        oracle_spec=oracle_spec_from_args(args),
        trace_dir=getattr(args, "trace_dir", None),
    )


def _warn_diagnostics(findings) -> None:
    for diag in findings:
        print(
            f"warning: {diag.subject}: {diag.message} [{diag.id}]",
            file=sys.stderr,
        )


def _cmd_synthesize(args) -> int:
    from repro.exec import CheckpointError

    model = get_model(args.model)
    options = _synthesis_options(args)
    findings = analysis.lint_oracle_options(options)
    if args.cnf_cache_dir:
        findings += analysis.lint_cnf_cache_dir(args.cnf_cache_dir)
    _warn_diagnostics(findings)
    if args.server:
        from repro.service import Client, ServiceError

        try:
            result = Client(args.server, timeout=args.timeout).synthesize(
                args.model, options
            )
        except ServiceError as exc:
            raise _file_error(args.server, str(exc)) from exc
    else:
        try:
            result = synthesize(model, options)
        except CheckpointError as exc:
            raise _CliError(str(exc)) from exc
    _warn_diagnostics(
        analysis.lint_warm_compile(result.oracle_stats, subject="oracle")
    )
    if args.json:
        print(json.dumps(result.to_json_dict(), indent=2))
    else:
        print(result.summary())
    if args.verbose and not args.json:
        for entry in result.union:
            print()
            print(entry.pretty())
    if args.out:
        result.union.save(args.out)
        if not args.json:
            print(f"union suite written to {args.out}")
    if args.litmus_dir:
        written = result.union.save_litmus_dir(args.litmus_dir)
        if not args.json:
            print(f"{len(written)} .litmus files written to {args.litmus_dir}")
    return 0


def _cmd_check(args) -> int:
    model = get_model(args.model)
    test, outcome = _load_litmus(args.test)
    checker = MinimalityChecker(model, CriterionMode(args.mode))
    print(test.pretty())
    if outcome is not None:
        observable = checker.oracle.observable(test, outcome)
        status = "ALLOWED" if observable else "FORBIDDEN"
        print(f"recorded outcome {outcome.pretty(test)}: {status}")
    result = checker.check(test)
    if result.is_minimal:
        assert result.witness is not None
        print(f"MINIMAL — witness {result.witness.pretty(test)}")
    else:
        print(
            "NOT MINIMAL "
            f"(forbidden outcomes: {result.forbidden_count}, "
            f"blocked by: {result.blocking})"
        )
    return 0


def _cmd_show(args) -> int:
    if args.file:
        test, outcome = _load_litmus(args.file)
        print(format_test(test, outcome))
        return 0
    if args.name:
        entry = CATALOG.get(args.name)
        if entry is None:
            print(f"unknown test {args.name!r}", file=sys.stderr)
            return 1
        print(format_test(entry.test, entry.forbidden))
        if entry.note:
            print(f"# {entry.note}")
        return 0
    for name, entry in sorted(CATALOG.items()):
        print(f"{name:16s} [{entry.model}] {entry.note}")
    return 0


_DISABLE_RE = re.compile(r"#\s*lint:\s*disable=([\w:*?,.\[\]-]+)")


def _file_suppressions(path: str, text: str) -> list[analysis.Suppression]:
    """``# lint: disable=ID[,ID...]`` comment lines, scoped to the file
    unless the spec carries its own subject glob."""
    out = []
    for match in _DISABLE_RE.finditer(text):
        for spec in match.group(1).split(","):
            spec = spec.strip()
            if not spec:
                continue
            sup = analysis.parse_suppression(
                spec, reason=f"file directive in {path}"
            )
            if sup.subject == "*":
                sup = analysis.Suppression(
                    sup.id, f"test:{path}*", sup.reason
                )
            out.append(sup)
    return out


def _cmd_lint(args) -> int:
    report = analysis.Report()
    try:
        suppressions = [
            analysis.parse_suppression(spec, reason="command line")
            for spec in args.suppress
        ]
    except ValueError as exc:
        raise _CliError(f"bad --suppress value: {exc}") from exc
    suppressions.extend(selfcheck.REGISTRY_SUPPRESSIONS)
    # With no explicit target, lint everything the repository ships.
    default_all = not (args.paths or args.all_models or args.catalog)
    probe = not args.no_probe
    if args.all_models or default_all:
        report.extend(selfcheck.lint_models(probe).diagnostics)
        report.extend(selfcheck.lint_encoding_smoke().diagnostics)
    if args.catalog or default_all:
        report.extend(selfcheck.lint_catalog().diagnostics)
    if default_all:
        report.extend(selfcheck.lint_obs_smoke().diagnostics)
        report.extend(analysis.lint_mutant_registry().diagnostics)
    if args.corpus_dir:
        report.extend(analysis.lint_corpus(args.corpus_dir))
    if args.trace_dir:
        report.extend(analysis.lint_trace_dir(args.trace_dir))
    model = get_model(args.model) if args.model else None
    named: list[tuple[str, LitmusTest]] = []
    for path in args.paths:
        try:
            text = _read_file(path)
            test, outcome = parse_test(text)
        except (_CliError, ParseError, ValueError) as exc:
            report.extend(
                [
                    analysis.Diagnostic(
                        "LIT006",
                        analysis.Severity.ERROR,
                        f"file:{path}",
                        f"cannot load litmus test: {exc}",
                        hint="fix the syntax (see `repro show --name MP` "
                        "for the format) or the path",
                    )
                ]
            )
            continue
        suppressions.extend(_file_suppressions(path, text))
        named.append((path, test))
        ctx = analysis.LitmusLintContext(path, test, outcome=outcome, model=model)
        report.extend(analysis.run_family("litmus", ctx))
    if len(named) > 1:
        report.extend(analysis.find_duplicate_tests(named))
    report = report.apply_suppressions(suppressions)
    if args.format == "json":
        print(analysis.render_json(report))
    else:
        print(analysis.render_text(report))
    return report.exit_code


def _load_suite(path: str):
    """Load a suite JSON file, mapping failures to clean CLI errors."""
    from repro.core.suite import TestSuite

    text = _read_file(path)
    try:
        return TestSuite.from_json(text)
    except (KeyError, TypeError, ValueError) as exc:
        raise _file_error(path, f"not a suite JSON file: {exc}") from exc


def _reference_entries(spec: str):
    """Resolve ``--reference``: a builtin name or a suite JSON path.

    A file-based reference has no per-test names, so entries are
    labelled by position.
    """
    import types

    if spec == "owens":
        return owens_forbidden()
    if spec == "cambridge":
        return cambridge_power_suite()
    suite = _load_suite(spec)
    return [
        types.SimpleNamespace(name=f"{spec}#{i}", test=entry.test)
        for i, entry in enumerate(suite)
    ]


def _cmd_compare(args) -> int:
    model = get_model(args.model)
    reference = _reference_entries(args.reference)
    result = None
    if args.suite:
        synthesized = _load_suite(args.suite)
    else:
        config = EnumerationConfig(
            max_events=args.bound, max_addresses=args.max_addresses
        )
        result = synthesize(
            model, SynthesisOptions(bound=args.bound, config=config)
        )
        synthesized = result.union
    comparison = compare_suites(reference, synthesized, model)
    if args.json:
        print(json.dumps(comparison.to_json_dict(), indent=2, sort_keys=True))
        return 0
    if result is not None:
        print(result.summary())
    print(comparison.summary())
    return 0


def _cmd_difftest(args) -> int:
    from repro.difftest import CampaignOptions, GeneratorConfig, run_campaign
    from repro.difftest.mutate import mutant_tags

    if args.list_mutants:
        for tag in mutant_tags(get_model(args.model)):
            print(tag)
        return 0
    mutants = tuple(args.mutants)
    findings = analysis.lint_mutant_tags(args.model, mutants)
    if findings:
        for diag in findings:
            print(
                f"error: {diag.subject}: {diag.message} [{diag.id}]",
                file=sys.stderr,
            )
        return 2
    try:
        options = CampaignOptions(
            model=args.model,
            seed=args.seed,
            budget=args.budget,
            mutants=mutants,
            corpus_dir=args.corpus_dir,
            jobs=args.jobs,
            oracle_spec=OracleSpec(prefilter=args.prefilter),
            trace_dir=args.trace_dir,
            generator=GeneratorConfig(
                max_events=args.max_events,
                max_threads=args.max_threads,
                max_addresses=args.max_addresses,
                max_deps=args.max_deps,
                max_rmws=args.max_rmws,
            ),
        )
    except ValueError as exc:
        raise _CliError(str(exc)) from exc
    report = run_campaign(options)
    if args.json:
        print(report.to_json())
    else:
        print(report.summary())
    return 0 if report.clean else 1


def _cmd_report(args) -> int:
    from repro.obs import (
        TRACE_REPORT_SCHEMA_NAME,
        TRACE_REPORT_SCHEMA_VERSION,
        Report,
        render_trace_text,
        summarize_trace_dir,
    )

    try:
        payload = summarize_trace_dir(args.trace_dir)
    except (OSError, ValueError) as exc:
        raise _file_error(args.trace_dir, str(exc)) from exc
    _warn_diagnostics(
        analysis.lint_warm_compile(
            payload.get("counters", {}), subject=f"trace:{args.trace_dir}"
        )
    )
    if args.json:
        envelope = Report(
            schema_name=TRACE_REPORT_SCHEMA_NAME,
            schema_version=TRACE_REPORT_SCHEMA_VERSION,
            command="report",
            payload=payload,
        )
        print(envelope.to_json())
    else:
        print(render_trace_text(payload), end="")
    return 0


def _cmd_serve(args) -> int:
    import os
    import tempfile

    from repro.service import JobManager, serve

    if (args.socket is None) == (args.port is None):
        raise _CliError("serve needs exactly one of --socket or --port")
    cnf_cache_dir = args.cnf_cache_dir
    if cnf_cache_dir is None and not args.no_cnf_cache:
        # A stable default so the disk cache layer survives daemon
        # restarts — that persistence is the warm-compile story the
        # compile_hit_rate metric (and the SAT009 lint) measures.  The
        # pool appends one subdirectory per model, so a multi-model
        # daemon never mixes fingerprints (SAT008).
        cnf_cache_dir = os.path.join(tempfile.gettempdir(), "repro-serve-cnf")
    if cnf_cache_dir is not None:
        _warn_diagnostics(analysis.lint_cnf_cache_dir(cnf_cache_dir))
    manager = JobManager(
        workers=args.pool_workers,
        recycle_after=args.recycle_after,
        cnf_cache_dir=cnf_cache_dir,
        trace_dir=args.trace_dir,
        pool=args.pool,
        max_queued_per_client=args.max_queued_per_client,
    )

    def ready(address: str) -> None:
        print(
            f"serving on {address} "
            f"({args.pool_workers} {args.pool} worker(s))",
            flush=True,
        )

    try:
        serve(
            manager,
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            ready=ready,
        )
    except OSError as exc:
        raise _file_error(
            args.socket or f"{args.host}:{args.port}",
            f"cannot bind: {exc.strerror or exc}",
        ) from exc
    finally:
        manager.close()
    return 0


def _service_client(args):
    from repro.service import Client

    return Client(args.server, timeout=args.timeout)


def _print_report(report) -> None:
    print(json.dumps(report.to_json_dict(), indent=2, sort_keys=True))


def _cmd_submit(args) -> int:
    from repro.service import ServiceError, SynthesisRequest

    options = _synthesis_options(args)
    _warn_diagnostics(analysis.lint_oracle_options(options))
    request = SynthesisRequest(model=args.model, options=options)
    client = _service_client(args)
    try:
        if args.wait:
            from repro.service.protocol import (
                JOB_PROGRESS_SCHEMA_NAME,
                JOB_RESULT_SCHEMA_NAME,
                JobProgress,
                JobResult,
            )

            if args.json:
                report = client.call(
                    "submit", request=request.to_payload(), wait=True
                )
                _print_report(report)
                return 0
            # Text mode rides the streamed exchange: progress events go
            # to stderr as they arrive, the result summary to stdout.
            job = None
            for report in client.stream(
                "submit", request=request.to_payload(), stream=True
            ):
                if report.schema_name == JOB_PROGRESS_SCHEMA_NAME:
                    event = JobProgress.from_payload(report.payload).event
                    detail = " ".join(
                        f"{key}={event[key]}"
                        for key in sorted(event)
                        if key != "phase"
                    )
                    print(
                        f"progress: {event.get('phase', '?')} "
                        f"{detail}".rstrip(),
                        file=sys.stderr,
                    )
                elif report.schema_name == JOB_RESULT_SCHEMA_NAME:
                    job = JobResult.from_payload(report.payload)
            if job is None:
                raise _CliError(
                    f"{args.server}: stream ended without a job-result"
                )
            if job.result is None:
                raise _CliError(
                    f"job {job.job_id} finished {job.state}: "
                    f"{job.error or 'no result'}"
                )
            print(job.result.summary())
            return 0
        status, deduped = client.submit(request)
    except ServiceError as exc:
        raise _file_error(args.server, str(exc)) from exc
    if args.json:
        report = status.to_report()
        report.payload["deduped"] = deduped
        _print_report(report)
    else:
        note = " (coalesced onto an identical active job)" if deduped else ""
        print(f"{status.summary()}{note}")
        print(
            f"poll with: repro jobs --server {args.server} "
            f"--status {status.job_id}"
        )
    return 0


def _cmd_jobs(args) -> int:
    from repro.service import ServiceError

    client = _service_client(args)
    try:
        if args.cancel:
            status = client.cancel(args.cancel)
            if args.json:
                _print_report(status.to_report())
            else:
                print(status.summary())
            return 0
        if args.status:
            status = client.status(args.status)
            if args.json:
                _print_report(status.to_report())
            else:
                print(status.summary())
                for key, value in sorted(status.metrics.items()):
                    print(f"  {key} = {value}")
            return 0
        if args.metrics:
            report = client.call("metrics")
            if args.json:
                _print_report(report)
            else:
                for key, value in sorted(
                    report.payload.get("metrics", {}).items()
                ):
                    print(f"{key} = {value}")
            return 0
        if args.shutdown:
            client.shutdown()
            if not args.json:
                print("shutdown requested")
            return 0
        statuses = client.jobs()
    except ServiceError as exc:
        raise _file_error(args.server, str(exc)) from exc
    if args.json:
        from repro.service.protocol import JOB_LIST_SCHEMA_NAME, envelope

        _print_report(
            envelope(
                JOB_LIST_SCHEMA_NAME,
                1,
                {"jobs": [status.to_payload() for status in statuses]},
            )
        )
    else:
        if not statuses:
            print("no jobs")
        for status in statuses:
            print(status.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="litmus-synth",
        description="Synthesize comprehensive memory model litmus test suites",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "models",
        help="list available memory models",
        description="Lists every registered memory model with its axiom "
        "count, transistency (vmem) support, applicable relaxation "
        "count, and whether the relational SAT oracle covers it.",
    )
    p.add_argument(
        "--model",
        default=None,
        help="show only this model (error if unknown)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable registry listing as a "
        "repro.obs.Report envelope (model-list v1)",
    )
    sub.add_parser("table2", help="print the relaxation applicability matrix")

    def add_request_flags(p: argparse.ArgumentParser) -> None:
        """Flags describing one synthesis request (shared between
        ``synthesize`` and ``submit``, so equal flags build equal
        fingerprints)."""
        p.add_argument("--model", required=True, choices=available_models())
        p.add_argument("--bound", type=int, default=4)
        p.add_argument("--axiom", default=None)
        p.add_argument(
            "--mode",
            default="exact",
            choices=[m.value for m in CriterionMode],
        )
        p.add_argument("--max-threads", type=int, default=4)
        p.add_argument("--max-addresses", type=int, default=3)
        p.add_argument("--max-deps", type=int, default=2)
        p.add_argument("--max-rmws", type=int, default=2)
        p.add_argument(
            "--max-aliases",
            type=int,
            default=None,
            help="virtual->physical alias merges per candidate (default: "
            "1 for models with transistency support, 0 otherwise)",
        )
        p.add_argument(
            "--early-reject",
            action="store_true",
            help="drop candidates with lint findings before any oracle call",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes; >1 runs the sharded parallel runtime "
            "(output is identical to --jobs 1)",
        )
        add_oracle_args(p)

    def add_server_flag(p: argparse.ArgumentParser, required: bool) -> None:
        p.add_argument(
            "--server",
            required=required,
            default=None,
            metavar="ADDR",
            help="synthesis daemon address: a unix socket path or host:port",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            help="seconds to wait on the daemon per exchange (default: "
            "no limit)",
        )

    p = sub.add_parser("synthesize", help="synthesize suites for a model")
    add_request_flags(p)
    p.add_argument("--out", default=None, help="write union suite JSON here")
    p.add_argument(
        "--litmus-dir",
        default=None,
        help="write one .litmus text file per synthesized test here",
    )
    p.add_argument(
        "--checkpoint-dir",
        default=None,
        help="persist per-shard results here; rerunning with the same "
        "options resumes from completed shards",
    )
    p.add_argument(
        "--trace-dir",
        default=None,
        help="write a repro.obs trace here (driver/shard span timings "
        "plus a deterministic merged stream); render with `repro report`",
    )
    add_server_flag(p, required=False)
    p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable result as a repro.obs.Report "
        "envelope (synthesis-result v3) instead of the text report",
    )
    p.add_argument("-v", "--verbose", action="store_true")

    p = sub.add_parser("check", help="check a .litmus file for minimality")
    p.add_argument("--model", required=True, choices=available_models())
    p.add_argument(
        "--mode",
        default="exact",
        choices=[m.value for m in CriterionMode],
    )
    p.add_argument("test", help="path to a litmus text file")

    p = sub.add_parser("show", help="print catalog tests")
    p.add_argument("--name", default=None)
    p.add_argument("--file", default=None, help="print a .litmus file instead")

    p = sub.add_parser(
        "compare",
        help="compare a suite against a published or saved reference",
        description="Synthesizes a suite (or loads one via --suite) and "
        "reports the Table 4-style subsumption comparison against the "
        "reference.",
    )
    p.add_argument("--model", required=True, choices=available_models())
    p.add_argument("--bound", type=int, default=5)
    p.add_argument("--max-addresses", type=int, default=3)
    p.add_argument(
        "--suite",
        default=None,
        help="compare this saved suite JSON instead of synthesizing one",
    )
    p.add_argument(
        "--reference",
        default="owens",
        help="builtin reference suite (owens, cambridge) or a path to a "
        "suite JSON file",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable comparison instead of text",
    )

    p = sub.add_parser(
        "difftest",
        help="run a differential-testing campaign over both oracles",
        description="Fuzzes seeded random litmus tests through the "
        "explicit and relational oracles plus the minimality criterion, "
        "optionally injecting known-buggy model mutants, and shrinks "
        "every disagreement to a minimal reproducer. Exit status: "
        "0 clean, 1 discrepancies/survivors/stale corpus entries, "
        "2 usage error.",
    )
    p.add_argument("--model", required=True, choices=available_models())
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--budget",
        type=int,
        default=100,
        help="number of random tests to generate and check",
    )
    p.add_argument(
        "--mutants",
        action="append",
        default=[],
        metavar="TAG",
        help="inject a known-buggy mutant (repeatable; see --list-mutants)",
    )
    p.add_argument(
        "--list-mutants",
        action="store_true",
        help="print the mutant tags the registry advertises and exit",
    )
    p.add_argument(
        "--corpus-dir",
        default=None,
        help="persist shrunken reproducers here and replay them first",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; output is byte-identical to --jobs 1",
    )
    p.add_argument(
        "--prefilter",
        action="store_true",
        help="route the campaign's relational oracle through the "
        "polynomial static prefilter (also exercises its agreement "
        "with the explicit oracle)",
    )
    p.add_argument("--max-events", type=int, default=4)
    p.add_argument("--max-threads", type=int, default=3)
    p.add_argument("--max-addresses", type=int, default=2)
    p.add_argument("--max-deps", type=int, default=1)
    p.add_argument("--max-rmws", type=int, default=1)
    p.add_argument(
        "--trace-dir",
        default=None,
        help="write a repro.obs trace of the campaign here; render "
        "with `repro report`",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable campaign report",
    )

    p = sub.add_parser(
        "report",
        help="render a --trace-dir directory into per-phase tables",
        description="Summarizes a repro.obs trace directory (written by "
        "`synthesize --trace-dir` or `difftest --trace-dir`) into "
        "per-phase and per-shard timing tables plus merged counters.",
    )
    p.add_argument("trace_dir", help="trace directory to render")
    p.add_argument(
        "--json",
        action="store_true",
        help="print the report as a repro.obs.Report envelope "
        "(trace-report v1) instead of text tables",
    )

    p = sub.add_parser(
        "serve",
        help="run the synthesis-as-a-service daemon",
        description="Starts a daemon answering synthesis requests over a "
        "unix socket (--socket) or TCP (--port). Resident workers keep "
        "oracle caches warm across jobs; identical concurrent "
        "submissions coalesce onto one job. Talk to it with "
        "`repro submit`, `repro jobs`, or `synthesize --server`.",
    )
    p.add_argument("--socket", default=None, help="unix socket path to bind")
    p.add_argument("--port", type=int, default=None, help="TCP port to bind")
    p.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    p.add_argument(
        "--pool-workers",
        "--workers",
        dest="pool_workers",
        type=int,
        default=1,
        help="resident workers (each keeps its own warm caches); "
        "--workers is the pre-1.2 spelling",
    )
    p.add_argument(
        "--pool",
        default="process",
        choices=["thread", "process"],
        help="worker species: process (default) runs each worker in its "
        "own interpreter for true parallelism; thread keeps the pre-1.2 "
        "in-process pool (output is byte-identical either way)",
    )
    p.add_argument(
        "--max-queued-per-client",
        type=int,
        default=0,
        metavar="N",
        help="reject a client's submission once it already has N jobs "
        "queued (0 = no quota; coalesced duplicates never count)",
    )
    p.add_argument(
        "--recycle-after",
        type=int,
        default=0,
        help="recycle a worker's warm caches after this many jobs "
        "(0 = keep forever); the disk CNF cache survives recycling",
    )
    p.add_argument(
        "--cnf-cache-dir",
        default=None,
        help="base directory for the per-model CNF compilation caches "
        "(default: a stable path under the system temp dir, so the "
        "cache survives daemon restarts)",
    )
    p.add_argument(
        "--no-cnf-cache",
        action="store_true",
        help="disable the default on-disk CNF cache",
    )
    p.add_argument(
        "--trace-dir",
        default=None,
        help="write a repro.obs trace of served jobs here (one span per "
        "job plus per-job oracle counters); render with `repro report`",
    )

    p = sub.add_parser(
        "submit",
        help="submit a synthesis request to a daemon",
        description="Sends one synthesis request to a `repro serve` "
        "daemon and prints the queued job (or, with --wait, the final "
        "result). Identical requests submitted while one is active "
        "coalesce onto the same job.",
    )
    add_request_flags(p)
    add_server_flag(p, required=True)
    p.add_argument(
        "--wait",
        action="store_true",
        help="block until the job finishes and print the result",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable job-status (or, with --wait, "
        "job-result) envelope",
    )

    p = sub.add_parser(
        "jobs",
        help="inspect a daemon's job queue",
        description="Lists a `repro serve` daemon's jobs, or inspects "
        "one (--status), cancels a queued one (--cancel), dumps service "
        "counters (--metrics), or stops the daemon (--shutdown).",
    )
    add_server_flag(p, required=True)
    group = p.add_mutually_exclusive_group()
    group.add_argument("--status", default=None, metavar="JOB", help="show one job")
    group.add_argument(
        "--cancel", default=None, metavar="JOB", help="cancel a queued job"
    )
    group.add_argument(
        "--metrics",
        action="store_true",
        help="print service counters (queue depth, dedup hits, worker "
        "warm-cache reuse)",
    )
    group.add_argument(
        "--shutdown", action="store_true", help="ask the daemon to exit"
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print machine-readable repro.obs.Report envelopes",
    )

    p = sub.add_parser(
        "lint",
        help="lint models, catalog tests, and .litmus files",
        description="With no target, lints every registered model plus "
        "the full catalog (the CI gate). Exit status: 0 clean, "
        "1 warnings, 2 errors.",
    )
    p.add_argument("paths", nargs="*", help=".litmus files to lint")
    p.add_argument(
        "--all-models",
        action="store_true",
        help="lint every registered memory model",
    )
    p.add_argument(
        "--catalog",
        action="store_true",
        help="lint every catalog litmus test",
    )
    p.add_argument(
        "--model",
        default=None,
        choices=available_models(),
        help="model vocabulary to lint the given files against",
    )
    p.add_argument("--format", default="text", choices=["text", "json"])
    p.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="ID[:GLOB]",
        help="silence a diagnostic id, optionally scoped by subject glob "
        "(repeatable)",
    )
    p.add_argument(
        "--no-probe",
        action="store_true",
        help="skip the tiny-bound axiom satisfiability probes",
    )
    p.add_argument(
        "--corpus-dir",
        default=None,
        help="also replay a difftest reproducer corpus and flag stale "
        "entries (DIF001/DIF002)",
    )
    p.add_argument(
        "--trace-dir",
        default=None,
        help="also lint a repro.obs trace directory for unclosed spans "
        "and mixed schemas (OBS001/OBS002)",
    )

    return parser


_COMMANDS = {
    "models": _cmd_models,
    "table2": _cmd_table2,
    "synthesize": _cmd_synthesize,
    "check": _cmd_check,
    "show": _cmd_show,
    "compare": _cmd_compare,
    "difftest": _cmd_difftest,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except _CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
