"""Command-line interface.

::

    litmus-synth models
    litmus-synth table2
    litmus-synth synthesize --model tso --bound 4 [--axiom causality]
                            [--mode exact|execution|execution-wa]
                            [--out suite.json]
    litmus-synth check --model tso test.litmus
    litmus-synth show --name MP
    litmus-synth compare --model tso --bound 5 --reference owens
"""

from __future__ import annotations

import argparse
import sys

from repro.core.compare import compare_suites
from repro.core.enumerator import EnumerationConfig
from repro.core.minimality import CriterionMode, MinimalityChecker
from repro.core.synthesis import synthesize
from repro.litmus.catalog import (
    CATALOG,
    cambridge_power_suite,
    owens_forbidden,
)
from repro.litmus.format import format_test, parse_test
from repro.models.registry import available_models, get_model
from repro.relax.applicability import format_table

__all__ = ["main"]


def _cmd_models(_args) -> int:
    for name in available_models():
        model = get_model(name)
        axioms = ", ".join(model.axiom_names())
        print(f"{name:8s} {model.full_name}  [axioms: {axioms}]")
    return 0


def _cmd_table2(_args) -> int:
    print(format_table())
    return 0


def _cmd_synthesize(args) -> int:
    model = get_model(args.model)
    config = EnumerationConfig(
        max_events=args.bound,
        max_threads=args.max_threads,
        max_addresses=args.max_addresses,
        max_deps=args.max_deps,
        max_rmws=args.max_rmws,
    )
    result = synthesize(
        model,
        args.bound,
        axioms=[args.axiom] if args.axiom else None,
        mode=CriterionMode(args.mode),
        config=config,
    )
    print(result.summary())
    if args.verbose:
        for entry in result.union:
            print()
            print(entry.pretty())
    if args.out:
        result.union.save(args.out)
        print(f"union suite written to {args.out}")
    if args.litmus_dir:
        written = result.union.save_litmus_dir(args.litmus_dir)
        print(f"{len(written)} .litmus files written to {args.litmus_dir}")
    return 0


def _cmd_check(args) -> int:
    model = get_model(args.model)
    with open(args.test) as fh:
        test, outcome = parse_test(fh.read())
    checker = MinimalityChecker(model, CriterionMode(args.mode))
    print(test.pretty())
    if outcome is not None:
        observable = checker.oracle.observable(test, outcome)
        status = "ALLOWED" if observable else "FORBIDDEN"
        print(f"recorded outcome {outcome.pretty(test)}: {status}")
    result = checker.check(test)
    if result.is_minimal:
        assert result.witness is not None
        print(f"MINIMAL — witness {result.witness.pretty(test)}")
    else:
        print(
            "NOT MINIMAL "
            f"(forbidden outcomes: {result.forbidden_count}, "
            f"blocked by: {result.blocking})"
        )
    return 0


def _cmd_show(args) -> int:
    if args.name:
        entry = CATALOG.get(args.name)
        if entry is None:
            print(f"unknown test {args.name!r}", file=sys.stderr)
            return 1
        print(format_test(entry.test, entry.forbidden))
        if entry.note:
            print(f"# {entry.note}")
        return 0
    for name, entry in sorted(CATALOG.items()):
        print(f"{name:16s} [{entry.model}] {entry.note}")
    return 0


def _cmd_compare(args) -> int:
    model = get_model(args.model)
    reference = (
        owens_forbidden() if args.reference == "owens" else cambridge_power_suite()
    )
    config = EnumerationConfig(
        max_events=args.bound, max_addresses=args.max_addresses
    )
    result = synthesize(model, args.bound, config=config)
    comparison = compare_suites(reference, result.union, model)
    print(result.summary())
    print(comparison.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="litmus-synth",
        description="Synthesize comprehensive memory model litmus test suites",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list available memory models")
    sub.add_parser("table2", help="print the relaxation applicability matrix")

    p = sub.add_parser("synthesize", help="synthesize suites for a model")
    p.add_argument("--model", required=True, choices=available_models())
    p.add_argument("--bound", type=int, default=4)
    p.add_argument("--axiom", default=None)
    p.add_argument(
        "--mode",
        default="exact",
        choices=[m.value for m in CriterionMode],
    )
    p.add_argument("--max-threads", type=int, default=4)
    p.add_argument("--max-addresses", type=int, default=3)
    p.add_argument("--max-deps", type=int, default=2)
    p.add_argument("--max-rmws", type=int, default=2)
    p.add_argument("--out", default=None, help="write union suite JSON here")
    p.add_argument(
        "--litmus-dir",
        default=None,
        help="write one .litmus text file per synthesized test here",
    )
    p.add_argument("-v", "--verbose", action="store_true")

    p = sub.add_parser("check", help="check a .litmus file for minimality")
    p.add_argument("--model", required=True, choices=available_models())
    p.add_argument(
        "--mode",
        default="exact",
        choices=[m.value for m in CriterionMode],
    )
    p.add_argument("test", help="path to a litmus text file")

    p = sub.add_parser("show", help="print catalog tests")
    p.add_argument("--name", default=None)

    p = sub.add_parser("compare", help="compare against a published suite")
    p.add_argument("--model", required=True, choices=available_models())
    p.add_argument("--bound", type=int, default=5)
    p.add_argument("--max-addresses", type=int, default=3)
    p.add_argument("--reference", default="owens", choices=["owens", "cambridge"])

    return parser


_COMMANDS = {
    "models": _cmd_models,
    "table2": _cmd_table2,
    "synthesize": _cmd_synthesize,
    "check": _cmd_check,
    "show": _cmd_show,
    "compare": _cmd_compare,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
