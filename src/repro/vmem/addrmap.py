"""The virtual -> physical aliasing layer of enhanced litmus tests.

An alias map is the :attr:`repro.litmus.test.LitmusTest.addr_map` value:
sorted ``(virtual, physical)`` pairs merging the virtual address into
the physical address's location.  Maps are anchored — every group's
representative is its minimal member and never itself appears as a key —
matching the canonicalizer's orientation so enumeration emits canonical
forms directly.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.litmus.test import LitmusTest

__all__ = ["alias_maps", "apply_alias_map"]


def alias_maps(
    num_addresses: int, max_aliases: int
) -> Iterator[tuple[tuple[int, int], ...]]:
    """Non-identity alias maps over canonical addresses ``0..n-1``.

    Each map partitions the addresses into location groups anchored at
    their minimal member, using at most ``max_aliases`` entries (one
    entry per merged address).  Enumerated as restricted growth strings,
    so the stream is deterministic and duplicate-free.
    """
    if num_addresses < 2 or max_aliases < 1:
        return

    def rec(acc: tuple[int, ...], max_used: int):
        if len(acc) == num_addresses:
            merges = num_addresses - (max_used + 1)
            if 0 < merges <= max_aliases:
                reps: dict[int, int] = {}
                entries: list[tuple[int, int]] = []
                for addr, g in enumerate(acc):
                    if g in reps:
                        entries.append((addr, reps[g]))
                    else:
                        reps[g] = addr
                yield tuple(entries)
            return
        for g in range(max_used + 2):
            yield from rec(acc + (g,), max(max_used, g))

    yield from rec((0,), 0)


def apply_alias_map(
    test: LitmusTest, addr_map: tuple[tuple[int, int], ...] | None
) -> LitmusTest:
    """Copy of ``test`` with the given aliasing layer (validated by the
    :class:`LitmusTest` constructor)."""
    return LitmusTest(
        test.threads, test.rmw, test.deps, test.scopes, test.name, addr_map
    )
