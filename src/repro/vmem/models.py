"""Transistency-enhanced model variants (TransForm-style).

``sc_vmem`` and ``tso_vmem`` extend the base consistency models with the
transistency vocabulary (``ptwalk``/``remap``/``dirty`` events, alias
maps) and one additional axiom:

* ``translation_order``: ``acyclic(rf + co + fr + po_vmem)`` — the
  communication relations must embed into an order that respects program
  order *around translation events*.  This is the load-bearing fragment
  of TransForm's transistency axioms: a page-table walk cannot be
  reordered with the accesses that depend on its translation, and a
  remap/dirty-bit update is ordered with the surrounding accesses of its
  thread.

Because ``po_vmem`` is empty for any test without vmem events, the
variants decide plain tests exactly as their base models do — the
enhanced suites are a strict extension.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import replace

from repro.litmus.events import EventKind
from repro.models.base import Axiom, Vocabulary
from repro.models.sc import SC
from repro.models.tso import TSO
from repro.semantics.relations import RelationView

__all__ = ["SCVmem", "TSOVmem", "translation_order", "VMEM_VOCAB_KINDS"]

#: The kinds the enhanced variants generate, in enumeration order.
VMEM_VOCAB_KINDS: tuple[EventKind, ...] = (
    EventKind.PTWALK,
    EventKind.REMAP,
    EventKind.DIRTY,
)


def translation_order(v: RelationView) -> bool:
    """``acyclic(rf + co + fr + po_vmem)``."""
    return (v.rf | v.co | v.fr | v.po_vmem).is_acyclic()


class SCVmem(SC):
    """Sequential consistency over transistency-enhanced tests."""

    name = "sc_vmem"
    full_name = "Sequential Consistency + transistency (TransForm-style)"

    @property
    def vocabulary(self) -> Vocabulary:
        return replace(super().vocabulary, vmem_kinds=VMEM_VOCAB_KINDS)

    def axioms(self) -> Mapping[str, Axiom]:
        return {**super().axioms(), "translation_order": translation_order}


class TSOVmem(TSO):
    """x86-TSO over transistency-enhanced tests."""

    name = "tso_vmem"
    full_name = "Total Store Order + transistency (TransForm-style)"

    @property
    def vocabulary(self) -> Vocabulary:
        return replace(super().vocabulary, vmem_kinds=VMEM_VOCAB_KINDS)

    def axioms(self) -> Mapping[str, Axiom]:
        return {**super().axioms(), "translation_order": translation_order}
