"""Transistency-enhanced litmus tests (TransForm, ISCA 2020).

Memory *transistency* extends consistency with virtual-memory effects:
address translation (page-table walks), remapping, and dirty-bit
updates.  This subsystem provides the pieces the synthesis pipeline
needs to cover that dimension:

* :mod:`repro.vmem.addrmap` — the virtual->physical aliasing layer:
  enumeration of alias maps and application to plain tests;
* :mod:`repro.vmem.enhanced` — predicates and lowering for enhanced
  tests (tests using ``ptwalk``/``remap``/``dirty`` events or an alias
  map);
* :mod:`repro.vmem.models` — transistency-enhanced model variants
  (``sc_vmem``, ``tso_vmem``) adding the ``translation_order`` axiom.

The extension is strictly opt-in: models whose vocabulary declares no
``vmem_kinds`` never see enhanced candidates, and a test without an
alias map or vmem event behaves exactly as before the subsystem existed.
"""

from repro.vmem.addrmap import alias_maps, apply_alias_map
from repro.vmem.enhanced import is_enhanced, lower_test, vmem_events
from repro.vmem.models import SCVmem, TSOVmem, translation_order

__all__ = [
    "alias_maps",
    "apply_alias_map",
    "is_enhanced",
    "lower_test",
    "vmem_events",
    "SCVmem",
    "TSOVmem",
    "translation_order",
]
