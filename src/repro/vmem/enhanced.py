"""Predicates and lowering for transistency-enhanced tests.

An *enhanced* test (TransForm's terminology) is a litmus test that uses
the transistency extension: a virtual->physical alias map, a ``ptwalk``
/ ``remap`` / ``dirty`` event, or both.  ``lower_test`` strips the
extension — demoting every vmem event to its base read/write kind and
dropping the alias map — which is both a debugging aid and the engine of
the DV/UA relaxations in :mod:`repro.relax.transistency`.
"""

from __future__ import annotations

from repro.litmus.events import EventKind, Instruction
from repro.litmus.test import LitmusTest

__all__ = ["is_enhanced", "vmem_events", "lower_test", "demote_instruction"]


def is_enhanced(test: LitmusTest) -> bool:
    """Does the test use the transistency extension at all?"""
    return test.addr_map is not None or bool(vmem_events(test))


def vmem_events(test: LitmusTest) -> tuple[int, ...]:
    """Event ids of transistency events, in event-id order."""
    return tuple(
        e for e, inst in enumerate(test.instructions) if inst.is_vmem
    )


def demote_instruction(inst: Instruction) -> Instruction:
    """The base-kind twin of a vmem instruction (identity otherwise).

    ``ptwalk`` demotes to a plain read; ``remap`` and ``dirty`` demote
    to plain writes — the access shape is preserved exactly, only the
    event class changes.
    """
    if not inst.is_vmem:
        return inst
    kind = EventKind.READ if inst.is_read else EventKind.WRITE
    return Instruction(
        kind, inst.address, inst.order, inst.fence, inst.value, inst.scope
    )


def lower_test(test: LitmusTest) -> LitmusTest:
    """Strip the transistency extension from a test entirely: every vmem
    event becomes its base read/write and the alias map is dropped."""
    threads = tuple(
        tuple(demote_instruction(inst) for inst in thread)
        for thread in test.threads
    )
    return LitmusTest(threads, test.rmw, test.deps, test.scopes, test.name)
