"""Fig. 5c / Fig. 6 one-query SAT encoding tests."""

import pytest

from repro.alloy.perturb import _AXIOMS, Fig5cEncoding
from repro.core.minimality import CriterionMode, MinimalityChecker
from repro.litmus.catalog import CATALOG
from repro.litmus.events import read, write
from repro.litmus.test import LitmusTest
from repro.models.registry import available_models, get_model


class TestFig5cEncoding:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("MP", True),
            ("LB", True),
            ("S", True),
            ("2+2W", True),
            ("CoRW", True),
            ("CoWW", True),
            ("CoRR", True),
            ("SB", False),
            ("n5", False),
            ("n4", False),
        ],
    )
    def test_verdicts(self, name, expected):
        enc = Fig5cEncoding(CATALOG[name].test, "tso")
        assert enc.is_minimal() == expected

    @pytest.mark.parametrize(
        "name", ["MP", "SB", "CoRW", "CoWR", "n5", "CoWW"]
    )
    def test_agrees_with_explicit_execution_mode(self, name):
        """The single-query SAT encoding and the operational Fig. 5c
        checker implement the same semantics."""
        test = CATALOG[name].test
        sat = Fig5cEncoding(test, "tso").is_minimal()
        explicit = MinimalityChecker(
            get_model("tso"), CriterionMode.EXECUTION
        ).check(test)
        assert sat == explicit.is_minimal

    def test_cowr_false_negative(self):
        """A reproduction finding: CoWR is a Fig. 5c false negative.

        Under RI of the externally-observed store, the orphaned read
        becomes an initial read whose fr edge re-forbids the pinned
        outcome; the exact (Fig. 5b) criterion re-projects the outcome
        and keeps the test.  Consistently, the paper's Table 4 lists
        only CoRR and CoRW — not CoWR — at 3 instructions."""
        test = CATALOG["CoWR"].test
        assert not Fig5cEncoding(test, "tso").is_minimal()
        exact = MinimalityChecker(get_model("tso"), CriterionMode.EXACT)
        assert exact.check(test).is_minimal

    def test_witness_is_forbidden_execution(self):
        test = CATALOG["MP"].test
        witness = Fig5cEncoding(test, "tso").check()
        assert witness is not None
        assert not get_model("tso").is_valid(witness)

    def test_per_axiom_query(self):
        corr = CATALOG["CoRR"].test
        enc = Fig5cEncoding(corr, "tso")
        assert enc.is_minimal("sc_per_loc")
        assert not Fig5cEncoding(corr, "tso").is_minimal("rmw_atomicity")

    def test_drmw_application_included(self):
        rmw_w = LitmusTest(
            ((read(0), write(0)), (write(0, 9),)),
            rmw=frozenset({(0, 1)}),
        )
        enc = Fig5cEncoding(rmw_w, "tso")
        assert len(enc.applications()) == 4  # 3 RI + 1 DRMW
        assert enc.is_minimal("rmw_atomicity")

    def test_sc_model(self):
        assert Fig5cEncoding(CATALOG["SB"].test, "sc").is_minimal()
        assert Fig5cEncoding(CATALOG["MP"].test, "sc").is_minimal()

    def test_single_event_never_minimal(self):
        t = LitmusTest(((write(0, 1),),))
        assert not Fig5cEncoding(t, "tso").is_minimal()

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            Fig5cEncoding(CATALOG["MP"].test, "power")


class TestPerturbationGrid:
    """Every registered model either supports the Fig. 5c perturbations
    or is skipped with a clean KeyError — never a half-built encoding."""

    @pytest.mark.parametrize("model_name", available_models())
    def test_applicable_or_skipped(self, model_name):
        test = CATALOG["MP"].test
        if model_name not in _AXIOMS:
            with pytest.raises(KeyError):
                Fig5cEncoding(test, model_name)
            return
        enc = Fig5cEncoding(test, model_name)
        apps = enc.applications()
        assert apps, "MP always admits RI perturbations"
        for p in apps:
            # every application yields a complete perturbed view whose
            # derived relations build without error
            assert p.fr is not None
            assert p.po_loc is not None
        assert isinstance(enc.is_minimal(), bool)

    @pytest.mark.parametrize("model_name", available_models())
    def test_mutant_fingerprints_differ_from_stock(self, model_name):
        from repro.difftest.mutate import (
            model_fingerprint,
            mutant_tags,
            resolve_mutant,
        )

        model = get_model(model_name)
        stock = model_fingerprint(model)
        tags = mutant_tags(model)
        assert tags, "every model must advertise at least one mutant"
        fingerprints = {stock}
        for tag in tags:
            mutant = resolve_mutant(model, tag)
            fp = model_fingerprint(mutant, tag)
            assert fp != stock, tag
            fingerprints.add(fp)
        # distinct tags are pairwise distinguishable, too
        assert len(fingerprints) == len(tags) + 1
