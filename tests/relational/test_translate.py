"""Relational engine tests: operators, formulas, model finding."""

import pytest

from repro.relational import ast
from repro.relational.problem import Problem
from repro.relational.solve import ModelFinder


def finder(n=3):
    return ModelFinder(Problem(n))


class TestConstantEvaluation:
    """Operators over constant relations: solved instances must match
    set-level semantics."""

    def setup_method(self):
        self.problem = Problem(4)
        self.problem.constant("a", {(0, 1), (1, 2)})
        self.problem.constant("b", {(1, 2), (2, 3)})
        self.problem.constant("s", {(0,), (1,)}, arity=1)

    def check(self, formula, expect_sat=True):
        mf = ModelFinder(self.problem)
        assert mf.check(formula) == expect_sat

    def test_union(self):
        self.problem.constant("u", {(0, 1), (1, 2), (2, 3)})
        a, b, u = ast.Rel("a"), ast.Rel("b"), ast.Rel("u")
        self.check(ast.Eq(a + b, u))

    def test_intersection(self):
        self.problem.constant("i", {(1, 2)})
        self.check(ast.Eq(ast.Rel("a") & ast.Rel("b"), ast.Rel("i")))

    def test_difference(self):
        self.problem.constant("d", {(0, 1)})
        self.check(ast.Eq(ast.Rel("a") - ast.Rel("b"), ast.Rel("d")))

    def test_join(self):
        self.problem.constant("j", {(0, 2), (1, 3)})
        self.check(
            ast.Eq(ast.Rel("a").join(ast.Rel("b")), ast.Rel("j"))
        )

    def test_transpose(self):
        self.problem.constant("t", {(1, 0), (2, 1)})
        self.check(ast.Eq(~ast.Rel("a"), ast.Rel("t")))

    def test_closure(self):
        self.problem.constant("c", {(0, 1), (1, 2), (0, 2)})
        self.check(ast.Eq(ast.Rel("a").closure(), ast.Rel("c")))

    def test_rclosure_includes_iden(self):
        self.check(ast.Subset(ast.Iden(), ast.Rel("a").rclosure()))

    def test_domain_restrict(self):
        self.problem.constant("dr", {(0, 1), (1, 2)})
        self.check(
            ast.Eq(
                ast.Rel("s", 1).domain_restrict(ast.Rel("a")),
                ast.Rel("dr"),
            )
        )

    def test_range_restrict(self):
        self.problem.constant("rr", {(0, 1)})
        self.check(
            ast.Eq(
                ast.Rel("a").range_restrict(ast.Rel("s", 1)),
                ast.Rel("rr"),
            )
        )

    def test_product(self):
        self.problem.constant("s2", {(2,), (3,)}, arity=1)
        self.problem.constant(
            "p", {(0, 2), (0, 3), (1, 2), (1, 3)}
        )
        self.check(
            ast.Eq(
                ast.Rel("s", 1).product(ast.Rel("s2", 1)),
                ast.Rel("p"),
            )
        )

    def test_acyclic_true(self):
        self.check(ast.Acyclic(ast.Rel("a")))

    def test_acyclic_false(self):
        self.problem.constant("cyc", {(0, 1), (1, 0)})
        self.check(ast.Acyclic(ast.Rel("cyc")), expect_sat=False)

    def test_irreflexive(self):
        self.problem.constant("refl", {(0, 0)})
        self.check(ast.Irreflexive(ast.Rel("a")))
        self.check(ast.Irreflexive(ast.Rel("refl")), expect_sat=False)

    def test_some_no(self):
        self.problem.constant("empty", set())
        self.check(ast.Some(ast.Rel("a")))
        self.check(ast.No(ast.Rel("empty")))
        self.check(ast.No(ast.Rel("a")), expect_sat=False)


class TestFreeRelations:
    def test_solve_finds_instance(self):
        problem = Problem(2)
        problem.declare("r")
        mf = ModelFinder(problem)
        instance = mf.solve(ast.Some(ast.Rel("r")))
        assert instance is not None
        assert instance["r"]

    def test_unsat_returns_none(self):
        problem = Problem(2)
        problem.declare("r")
        mf = ModelFinder(problem)
        assert mf.solve(
            ast.Some(ast.Rel("r")) & ast.No(ast.Rel("r"))
        ) is None

    def test_lower_bound_respected(self):
        problem = Problem(2)
        problem.declare("r", lower={(0, 1)}, upper={(0, 1), (1, 0)})
        mf = ModelFinder(problem)
        for instance in mf.instances(ast.TRUE_F):
            assert (0, 1) in instance["r"]

    def test_instance_count(self):
        problem = Problem(2)
        problem.declare("r", upper={(0, 1), (1, 0)})
        mf = ModelFinder(problem)
        instances = list(mf.instances(ast.TRUE_F))
        assert len(instances) == 4  # 2 free tuples

    def test_enumeration_distinct(self):
        problem = Problem(3)
        problem.declare("r", upper={(0, 1), (1, 2), (2, 0)})
        mf = ModelFinder(problem)
        instances = list(mf.instances(ast.Acyclic(ast.Rel("r"))))
        assert len(instances) == len(set(instances)) == 7  # all but full cycle

    def test_projection(self):
        problem = Problem(2)
        problem.declare("r", upper={(0, 1)})
        problem.declare("q", upper={(1, 0)})
        mf = ModelFinder(problem)
        instances = list(
            mf.instances(ast.TRUE_F, project=["r"])
        )
        assert len(instances) == 2

    def test_one_and_lone(self):
        problem = Problem(2)
        problem.declare("r", upper={(0, 1), (1, 0)})
        mf = ModelFinder(problem)
        instances = list(mf.instances(ast.One(ast.Rel("r"))))
        assert len(instances) == 2
        assert all(len(i["r"]) == 1 for i in instances)

    def test_total_order_count(self):
        # free relation forced to totally order 3 atoms -> 3! instances
        problem = Problem(3)
        problem.declare(
            "r",
            upper={(a, b) for a in range(3) for b in range(3) if a != b},
        )
        r = ast.Rel("r")
        formula = ast.Irreflexive(r) & ast.Subset(r.join(r), r)
        for a in range(3):
            for b in range(a + 1, 3):
                problem.constant(f"p{a}{b}", {(a, b)})
                problem.constant(f"p{b}{a}", {(b, a)})
                formula = formula & (
                    ast.Subset(ast.Rel(f"p{a}{b}"), r)
                    | ast.Subset(ast.Rel(f"p{b}{a}"), r)
                )
        mf = ModelFinder(problem)
        assert len(list(mf.instances(formula))) == 6


class TestErrors:
    def test_bad_bounds(self):
        problem = Problem(2)
        with pytest.raises(ValueError):
            problem.declare("r", lower={(0, 1)}, upper=set())

    def test_duplicate_declaration(self):
        problem = Problem(2)
        problem.declare("r")
        with pytest.raises(ValueError):
            problem.declare("r")

    def test_unknown_relation(self):
        mf = finder()
        with pytest.raises(KeyError):
            mf.solve(ast.Some(ast.Rel("nope")))

    def test_arity_mismatch(self):
        problem = Problem(2)
        problem.constant("r", {(0, 1)})
        problem.constant("s", {(0,)}, arity=1)
        mf = ModelFinder(problem)
        with pytest.raises(TypeError):
            mf.solve(ast.Some(ast.Rel("r") + ast.Rel("s", 1)))

    def test_bad_arity_tuple(self):
        problem = Problem(2)
        with pytest.raises(ValueError):
            problem.constant("r", {(0, 1, 2)})
