"""Cross-validation: the Alloy/SAT stack vs the explicit engine.

This is the key trust anchor of the repository: two independently
implemented pipelines (explicit enumeration vs relational logic compiled
to CNF and solved by our CDCL solver) must agree on every execution-level
question for every model with an Alloy encoding."""

import pytest

from repro.alloy import AlloyOracle
from repro.core.oracle import ExplicitOracle
from repro.litmus.catalog import CATALOG
from repro.litmus.events import FenceKind, Order, fence, read, write
from repro.litmus.test import LitmusTest
from repro.models.registry import get_model
from repro.semantics.enumerate import enumerate_executions


def exec_key(e):
    return (tuple(e.rf), e.co, e.sc)


@pytest.fixture(scope="module")
def tso_alloy():
    return AlloyOracle("tso")


@pytest.fixture(scope="module")
def scc_alloy():
    return AlloyOracle("scc")


class TestExecutionSpaceAgreement:
    @pytest.mark.parametrize(
        "name", ["MP", "SB", "LB", "S", "CoRW", "CoWW", "CoRR", "n5", "n3"]
    )
    def test_tso_same_execution_space(self, tso_alloy, name):
        test = CATALOG[name].test
        alloy = {exec_key(e) for e in tso_alloy.executions(test)}
        explicit = {exec_key(e) for e in enumerate_executions(test)}
        assert alloy == explicit

    @pytest.mark.parametrize("name", ["MP", "SB", "LB", "CoRW", "n5"])
    def test_tso_same_valid_outcomes(self, tso_alloy, name):
        test = CATALOG[name].test
        explicit = ExplicitOracle(get_model("tso"))
        assert (
            tso_alloy.valid_outcomes(test)
            == explicit.analyze(test).model_valid
        )

    @pytest.mark.parametrize("name", ["MP", "SB", "2+2W"])
    def test_sc_same_valid_outcomes(self, name):
        alloy = AlloyOracle("sc")
        test = CATALOG[name].test
        explicit = ExplicitOracle(get_model("sc"))
        assert (
            alloy.valid_outcomes(test)
            == explicit.analyze(test).model_valid
        )

    def test_scc_with_sc_order(self, scc_alloy):
        f = fence(FenceKind.FENCE_SC)
        sb = LitmusTest(
            ((write(0, 1), f, read(1)), (write(1, 1), f, read(0)))
        )
        alloy = {exec_key(e) for e in scc_alloy.executions(sb)}
        explicit = {
            exec_key(e) for e in enumerate_executions(sb, with_sc=True)
        }
        assert alloy == explicit
        exp_oracle = ExplicitOracle(get_model("scc"))
        assert (
            scc_alloy.valid_outcomes(sb)
            == exp_oracle.analyze(sb).model_valid
        )

    def test_scc_release_acquire(self, scc_alloy):
        mp = LitmusTest(
            (
                (write(0, 1), write(1, 1, Order.REL)),
                (read(1, Order.ACQ), read(0)),
            )
        )
        exp_oracle = ExplicitOracle(get_model("scc"))
        assert (
            scc_alloy.valid_outcomes(mp)
            == exp_oracle.analyze(mp).model_valid
        )


class TestObservability:
    def test_mp_forbidden_via_sat(self, tso_alloy):
        entry = CATALOG["MP"]
        assert not tso_alloy.observable(entry.test, entry.forbidden)

    def test_sb_allowed_via_sat(self, tso_alloy):
        entry = CATALOG["SB"]
        assert tso_alloy.observable(entry.test, entry.forbidden)

    def test_per_axiom_enumeration(self, tso_alloy):
        test = CATALOG["CoRR"].test
        all_execs = sum(1 for _ in tso_alloy.executions(test))
        sc_ok = sum(
            1 for _ in tso_alloy.valid_executions(test, "sc_per_loc")
        )
        assert 0 < sc_ok < all_execs


class TestExecutionPinning:
    def test_is_valid_matches_explicit(self, tso_alloy):
        test = CATALOG["MP"].test
        model = get_model("tso")
        for execution in enumerate_executions(test):
            assert tso_alloy.is_valid(execution) == model.is_valid(
                execution
            )

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            AlloyOracle("power")

    def test_axiom_names(self, tso_alloy):
        assert set(tso_alloy.axiom_names()) == {
            "sc_per_loc",
            "rmw_atomicity",
            "causality",
        }
