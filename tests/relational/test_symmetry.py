"""Symmetry-breaking predicate tests."""

from repro.relational import ast
from repro.relational.problem import Problem
from repro.relational.solve import ModelFinder
from repro.relational.symmetry import SymmetryBreaker


def count_instances(n_atoms, formula_fn, broken, atoms=None):
    problem = Problem(n_atoms)
    problem.declare(
        "edge",
        upper={
            (a, b)
            for a in range(n_atoms)
            for b in range(n_atoms)
            if a != b
        },
    )
    finder = ModelFinder(problem)
    if broken:
        breaker = SymmetryBreaker(finder.translator)
        breaker.break_atoms(atoms or list(range(n_atoms)), ["edge"])
    return len(list(finder.instances(formula_fn())))


class TestSymmetryBreaking:
    def test_reduces_instance_count(self):
        # directed graphs on 3 interchangeable atoms with exactly one edge:
        # 6 raw instances, at most 3 after breaking (orbits of size 2)
        raw = count_instances(3, lambda: ast.One(ast.Rel("edge")), False)
        broken = count_instances(3, lambda: ast.One(ast.Rel("edge")), True)
        assert raw == 6
        assert broken < raw

    def test_preserves_satisfiability(self):
        # every orbit keeps at least one representative: a nonempty
        # acyclic graph still exists after breaking
        broken = count_instances(
            3, lambda: ast.Some(ast.Rel("edge")) & ast.Acyclic(ast.Rel("edge")), True
        )
        assert broken > 0

    def test_unsat_stays_unsat(self):
        broken = count_instances(
            2,
            lambda: ast.Some(ast.Rel("edge")) & ast.No(ast.Rel("edge")),
            True,
        )
        assert broken == 0

    def test_partial_atom_set(self):
        # only atoms 0 and 1 interchangeable; atom 2 pinned
        raw = count_instances(3, lambda: ast.One(ast.Rel("edge")), False)
        broken = count_instances(
            3, lambda: ast.One(ast.Rel("edge")), True, atoms=[0, 1]
        )
        assert raw == 6
        assert broken < raw

    def test_orbit_representatives_distinct(self):
        """Graph census: instances after breaking must still cover every
        isomorphism class of 1-edge digraphs on 3 atoms (there is exactly
        one class; with transpositions 01 and 12 only, a few symmetric
        copies may survive, but far fewer than 6)."""
        broken = count_instances(3, lambda: ast.One(ast.Rel("edge")), True)
        assert 1 <= broken <= 3
