"""Incremental oracle: equivalence with the cold baseline, CNF cache.

The contract under test is the PR's acceptance bar: every
assumption-based query the incremental engine answers must return the
same verdict as a cold solver per query, and synthesis through the
incremental oracle must emit byte-identical suites.
"""

import pytest

from repro.alloy import AlloyOracle, CNFCache, LitmusEncoding
from repro.alloy.cache import cache_key, entry_from_dict, entry_to_dict
from repro.core.enumerator import EnumerationConfig, enumerate_tests
from repro.core.synthesis import (
    OracleSpec,
    SynthesisOptions,
    build_checker,
    synthesize,
)
from repro.litmus.catalog import CATALOG
from repro.models.registry import get_model
from repro.relational.solve import ModelFinder, compile_snapshot

GRID = [("sc", 3), ("tso", 3), ("tso", 4), ("scc", 3)]


def sample_tests(model_name, bound, limit=25):
    model = get_model(model_name)
    config = EnumerationConfig(
        max_events=bound, max_addresses=2, max_deps=0, max_rmws=0
    )
    out = []
    for test in enumerate_tests(model.vocabulary, config):
        out.append(test)
        if len(out) >= limit:
            break
    return out


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("model_name,bound", GRID)
    def test_analyze_grid_matches_cold(self, model_name, bound):
        """Property grid: per-test outcome landscapes agree between the
        warm incremental engine and a cold solver per query."""
        warm = AlloyOracle(model_name)
        cold = AlloyOracle(model_name, incremental=False)
        for test in sample_tests(model_name, bound):
            assert warm.analyze(test) == cold.analyze(test), test

    @pytest.mark.parametrize("model_name,bound", GRID)
    def test_execution_order_identical(self, model_name, bound):
        warm = AlloyOracle(model_name)
        cold = AlloyOracle(model_name, incremental=False)
        for test in sample_tests(model_name, bound, limit=10):
            assert list(warm.executions(test)) == list(cold.executions(test))
            assert list(warm.valid_executions(test)) == list(
                cold.valid_executions(test)
            )

    def test_is_valid_matches_cold(self):
        warm = AlloyOracle("tso")
        cold = AlloyOracle("tso", incremental=False)
        for name in ("MP", "SB", "LB", "CoRW"):
            test = CATALOG[name].test
            for ex in warm.executions(test):
                assert warm.is_valid(ex) == cold.is_valid(ex), (name, ex)

    @pytest.mark.parametrize("model_name", ["sc", "tso"])
    def test_synthesized_suites_byte_identical(self, model_name):
        model = get_model(model_name)
        config = EnumerationConfig(
            max_events=3, max_addresses=2, max_deps=0, max_rmws=0
        )

        def run(**kw):
            return synthesize(
                model,
                SynthesisOptions(
                    bound=3,
                    config=config,
                    oracle_spec=OracleSpec(oracle="relational", **kw),
                ),
            )

        warm = run(incremental=True)
        cold = run(incremental=False)
        explicit = synthesize(
            model, SynthesisOptions(bound=3, config=config)
        )
        assert warm.union.to_json() == cold.union.to_json()
        assert warm.union.to_json() == explicit.union.to_json()
        for axiom in warm.per_axiom:
            assert (
                warm.per_axiom[axiom].to_json()
                == cold.per_axiom[axiom].to_json()
            )

    def test_repeated_queries_do_not_pollute(self):
        """Enumerations on one warm session are independent queries."""
        oracle = AlloyOracle("tso")
        test = CATALOG["MP"].test
        first = list(oracle.executions(test))
        valid = list(oracle.valid_executions(test))
        again = list(oracle.executions(test))
        assert first == again
        assert set(valid) <= set(first)


class TestModelFinderIncremental:
    def _finder(self, name="MP"):
        encoding = LitmusEncoding(CATALOG[name].test)
        return encoding, ModelFinder(encoding.problem)

    def test_selector_for_caches(self):
        from repro.alloy.models import tso_formulas

        encoding, finder = self._finder()
        finder.assert_formula(encoding.facts())
        formula = tso_formulas()["causality"]
        sel = finder.selector_for(formula)
        assert finder.selector_for(formula) == sel

    def test_instances_repeatable_and_independent(self):
        encoding, finder = self._finder()
        facts = encoding.facts()
        first = list(finder.instances(facts))
        second = list(finder.instances(facts))
        assert sorted(map(hash, first)) == sorted(map(hash, second))

    def test_check_assuming_matches_fresh_check(self):
        from repro.alloy.models import tso_formulas

        formulas = tso_formulas()
        encoding, finder = self._finder("SB")
        finder.assert_formula(encoding.facts())
        sels = [
            s
            for s in (finder.selector_for(f) for f in formulas.values())
            if s is not None
        ]
        warm_verdict = finder.check_assuming(sels)

        encoding2 = LitmusEncoding(CATALOG["SB"].test)
        fresh = ModelFinder(encoding2.problem)
        conj = encoding2.facts()
        for f in formulas.values():
            conj = conj & f
        assert warm_verdict == fresh.check(conj)

    def test_compiled_problem_roundtrip(self):
        from repro.alloy.models import tso_formulas

        encoding, finder = self._finder()
        finder.assert_formula(encoding.facts())
        selectors = {
            name: finder.selector_for(f)
            for name, f in tso_formulas().items()
        }
        for name in encoding.problem.declarations:
            finder.translator.relation_matrix(name)
        snapshot = compile_snapshot(finder, selectors)

        rebuilt = ModelFinder(encoding.problem, compiled=snapshot)
        sels = [sel for _, sel in snapshot.selectors if sel]
        assert rebuilt.check_assuming(sels) == finder.check_assuming(
            [s for s in selectors.values() if s is not None]
        )
        base = sorted(map(hash, finder.instances_assuming([])))
        again = sorted(map(hash, rebuilt.instances_assuming([])))
        assert base == again
        with pytest.raises(RuntimeError):
            rebuilt.assert_formula(encoding.facts())

    def test_snapshot_serializes(self):
        encoding, finder = self._finder()
        finder.assert_formula(encoding.facts())
        for name in encoding.problem.declarations:
            finder.translator.relation_matrix(name)
        snapshot = compile_snapshot(finder)
        assert entry_from_dict(entry_to_dict("fp", snapshot)) == snapshot


class TestCNFCache:
    def test_memory_hits(self, tmp_path):
        oracle = AlloyOracle("tso", session_cache=1)
        a, b = CATALOG["MP"].test, CATALOG["SB"].test
        oracle.analyze(a)
        oracle.analyze(b)  # evicts a's session (capacity 1)
        oracle._analysis.clear()  # force a fresh session for a
        oracle.analyze(a)
        stats = oracle.cache_stats()
        assert stats["compile_hits"] >= 1
        assert stats["sessions"] >= 3

    def test_disk_layer_shared_across_oracles(self, tmp_path):
        cache_dir = str(tmp_path / "cnf")
        first = AlloyOracle("tso", cnf_cache_dir=cache_dir)
        first.analyze(CATALOG["MP"].test)
        assert first.cache_stats()["compile_stores"] >= 1

        second = AlloyOracle("tso", cnf_cache_dir=cache_dir)
        second.analyze(CATALOG["MP"].test)
        stats = second.cache_stats()
        assert stats["compile_disk_hits"] >= 1
        assert second.analyze(CATALOG["MP"].test) == first.analyze(
            CATALOG["MP"].test
        )

    def test_model_fingerprints_do_not_collide(self, tmp_path):
        cache_dir = str(tmp_path / "cnf")
        tso = AlloyOracle("tso", cnf_cache_dir=cache_dir)
        sc = AlloyOracle("sc", cnf_cache_dir=cache_dir)
        test = CATALOG["MP"].test
        tso.analyze(test)
        sc_analysis = sc.analyze(test)
        # sc must not have loaded tso's compiled axioms
        assert sc.cache_stats()["compile_disk_hits"] == 0
        assert sc_analysis == AlloyOracle("sc").analyze(test)

    def test_cache_key_distinguishes_structure(self):
        a = cache_key("fp", CATALOG["MP"].test, False)
        b = cache_key("fp", CATALOG["SB"].test, False)
        c = cache_key("other", CATALOG["MP"].test, False)
        d = cache_key("fp", CATALOG["MP"].test, True)
        assert len({a, b, c, d}) == 4

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = CNFCache("fp", disk_dir=str(tmp_path))
        key = cache.key(CATALOG["MP"].test, False)
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None
        assert cache.stats()["compile_misses"] == 1


class TestStatsSurface:
    def test_oracle_stats_reach_result_json(self):
        model = get_model("tso")
        config = EnumerationConfig(
            max_events=3, max_addresses=2, max_deps=0, max_rmws=0
        )
        result = synthesize(
            model,
            SynthesisOptions(
                bound=3,
                config=config,
                oracle_spec=OracleSpec(oracle="relational"),
            ),
        )
        doc = result.to_json_dict()["payload"]["oracle"]
        for key in (
            "sat_conflicts",
            "sat_propagations",
            "sat_decisions",
            "sat_queries",
            "sat_reuse_hits",
            "sat_learned",
            "sat_restarts",
            "compile_hits",
            "compile_misses",
            "sessions",
            "analysis_hit_rate",
            "sat_reuse_rate",
        ):
            assert key in doc, key
        assert doc["sat_queries"] > 0
        assert doc["sat_reuse_rate"] > 0

    def test_build_checker_rejects_wa_with_relational(self):
        from repro.core.minimality import CriterionMode

        with pytest.raises(ValueError):
            build_checker(
                get_model("scc"),
                CriterionMode.EXECUTION_WA,
                OracleSpec(oracle="relational"),
            )

    def test_options_validation(self):
        with pytest.raises(ValueError):
            OracleSpec(oracle="quantum")
