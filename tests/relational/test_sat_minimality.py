"""End-to-end: the minimality criterion through the SAT pipeline.

This is the closest configuration to the paper's actual experiments:
Alloy-style encodings, a relational model finder, and a CDCL solver
answering every consistency query the criterion asks."""

import pytest

from repro.alloy import AlloyOracle
from repro.core.minimality import MinimalityChecker
from repro.litmus.catalog import CATALOG
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def sat_checker():
    tso = get_model("tso")
    return MinimalityChecker(tso, oracle=AlloyOracle("tso"))


@pytest.fixture(scope="module")
def explicit_checker():
    return MinimalityChecker(get_model("tso"))


class TestSatMinimality:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("MP", True),
            ("LB", True),
            ("CoRW", True),
            ("CoWW", True),
            ("SB", False),   # allowed -> nothing forbidden
            ("n5", False),   # forbidden but not minimal
            ("n4", False),
        ],
    )
    def test_verdicts_match_paper(self, sat_checker, name, expected):
        assert sat_checker.check(CATALOG[name].test).is_minimal == expected

    @pytest.mark.parametrize("name", ["MP", "SB", "CoRW", "n5"])
    def test_agrees_with_explicit_engine(
        self, sat_checker, explicit_checker, name
    ):
        test = CATALOG[name].test
        sat = sat_checker.check(test)
        explicit = explicit_checker.check(test)
        assert sat.is_minimal == explicit.is_minimal
        assert sat.forbidden_count == explicit.forbidden_count

    def test_per_axiom_through_sat(self, sat_checker):
        corr = CATALOG["CoRR"].test
        assert sat_checker.check(corr, "sc_per_loc").is_minimal
        assert not sat_checker.check(corr, "rmw_atomicity").is_minimal

    def test_witness_identical(self, sat_checker, explicit_checker):
        test = CATALOG["MP"].test
        assert (
            sat_checker.check(test).witness
            == explicit_checker.check(test).witness
        )


class TestSatSynthesis:
    def test_tiny_synthesis_through_sat(self):
        """Full synthesis with the SAT oracle on a tiny bound: must
        produce exactly the explicit engine's suite."""
        from repro.core.enumerator import EnumerationConfig
        from repro.core.synthesis import SynthesisOptions, synthesize

        tso = get_model("tso")
        config = EnumerationConfig(
            max_events=3, max_addresses=1, max_rmws=0
        )
        explicit = synthesize(tso, SynthesisOptions(bound=3, config=config))

        candidates = None
        sat_union = set()
        checker = MinimalityChecker(tso, oracle=AlloyOracle("tso"))
        from repro.core.canonical import canonical_form
        from repro.core.enumerator import enumerate_tests

        seen = set()
        for test in enumerate_tests(tso.vocabulary, config):
            canon = canonical_form(test)
            if canon in seen:
                continue
            seen.add(canon)
            if checker.check(test).is_minimal:
                sat_union.add(canon)
        assert sat_union == {
            canonical_form(t) for t in explicit.union.tests()
        }
