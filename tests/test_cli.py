"""CLI smoke tests."""

import pytest

from repro.cli import main
from repro.litmus.catalog import CATALOG
from repro.litmus.format import format_test


class TestCLI:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "tso" in out and "scc" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "RI" in capsys.readouterr().out

    def test_show_all(self, capsys):
        assert main(["show"]) == 0
        assert "MP" in capsys.readouterr().out

    def test_show_one(self, capsys):
        assert main(["show", "--name", "IRIW"]) == 0
        assert "thread" in capsys.readouterr().out

    def test_show_unknown(self, capsys):
        assert main(["show", "--name", "nope"]) == 1

    def test_synthesize(self, capsys, tmp_path):
        out_path = tmp_path / "suite.json"
        code = main(
            [
                "synthesize",
                "--model",
                "tso",
                "--bound",
                "3",
                "--max-addresses",
                "1",
                "--out",
                str(out_path),
                "-v",
            ]
        )
        assert code == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "union" in out and "Forbidden" in out

    def test_synthesize_single_axiom(self, capsys):
        code = main(
            [
                "synthesize",
                "--model",
                "sc",
                "--bound",
                "2",
                "--axiom",
                "sequential_consistency",
            ]
        )
        assert code == 0

    def test_check_minimal(self, capsys, tmp_path):
        path = tmp_path / "mp.litmus"
        entry = CATALOG["MP"]
        path.write_text(format_test(entry.test, entry.forbidden))
        assert main(["check", "--model", "tso", str(path)]) == 0
        out = capsys.readouterr().out
        assert "FORBIDDEN" in out
        assert "MINIMAL" in out

    def test_check_not_minimal(self, capsys, tmp_path):
        path = tmp_path / "n5.litmus"
        entry = CATALOG["n5"]
        path.write_text(format_test(entry.test, entry.forbidden))
        assert main(["check", "--model", "tso", str(path)]) == 0
        assert "NOT MINIMAL" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            [
                "compare",
                "--model",
                "tso",
                "--bound",
                "3",
                "--max-addresses",
                "1",
            ]
        )
        assert code == 0
        assert "REF-ONLY" in capsys.readouterr().out

    def test_bad_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["synthesize", "--model", "bogus"])
