"""CLI smoke tests."""

import pytest

from repro.cli import main
from repro.litmus.catalog import CATALOG
from repro.litmus.format import format_test


class TestCLI:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "tso" in out and "scc" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "RI" in capsys.readouterr().out

    def test_show_all(self, capsys):
        assert main(["show"]) == 0
        assert "MP" in capsys.readouterr().out

    def test_show_one(self, capsys):
        assert main(["show", "--name", "IRIW"]) == 0
        assert "thread" in capsys.readouterr().out

    def test_show_unknown(self, capsys):
        assert main(["show", "--name", "nope"]) == 1

    def test_synthesize(self, capsys, tmp_path):
        out_path = tmp_path / "suite.json"
        code = main(
            [
                "synthesize",
                "--model",
                "tso",
                "--bound",
                "3",
                "--max-addresses",
                "1",
                "--out",
                str(out_path),
                "-v",
            ]
        )
        assert code == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "union" in out and "Forbidden" in out

    def test_synthesize_single_axiom(self, capsys):
        code = main(
            [
                "synthesize",
                "--model",
                "sc",
                "--bound",
                "2",
                "--axiom",
                "sequential_consistency",
            ]
        )
        assert code == 0

    def test_check_minimal(self, capsys, tmp_path):
        path = tmp_path / "mp.litmus"
        entry = CATALOG["MP"]
        path.write_text(format_test(entry.test, entry.forbidden))
        assert main(["check", "--model", "tso", str(path)]) == 0
        out = capsys.readouterr().out
        assert "FORBIDDEN" in out
        assert "MINIMAL" in out

    def test_check_not_minimal(self, capsys, tmp_path):
        path = tmp_path / "n5.litmus"
        entry = CATALOG["n5"]
        path.write_text(format_test(entry.test, entry.forbidden))
        assert main(["check", "--model", "tso", str(path)]) == 0
        assert "NOT MINIMAL" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            [
                "compare",
                "--model",
                "tso",
                "--bound",
                "3",
                "--max-addresses",
                "1",
            ]
        )
        assert code == 0
        assert "REF-ONLY" in capsys.readouterr().out

    def test_bad_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["synthesize", "--model", "bogus"])


class TestCLIFileErrors:
    """check/show/compare fail cleanly and uniformly: one
    ``error: <path>: <reason>`` line on stderr, exit status 2."""

    def test_check_missing_file(self, capsys):
        assert main(["check", "--model", "tso", "/nonexistent.litmus"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "cannot read" in err
        assert "error: /nonexistent.litmus: cannot read:" in err

    def test_check_unparsable_file(self, capsys, tmp_path):
        path = tmp_path / "bad.litmus"
        path.write_text("thread\nnot a real instruction\n")
        assert main(["check", "--model", "tso", str(path)]) == 2
        assert f"error: {path}: " in capsys.readouterr().err

    def test_show_missing_file(self, capsys):
        assert main(["show", "--file", "/nonexistent.litmus"]) == 2
        err = capsys.readouterr().err
        assert "error: /nonexistent.litmus: cannot read:" in err

    def test_compare_missing_suite_shares_the_format(self, capsys):
        code = main(
            ["compare", "--model", "tso", "--suite", "/nonexistent.json"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error: /nonexistent.json: cannot read:" in err

    def test_report_missing_dir_shares_the_format(self, capsys):
        assert main(["report", "/nonexistent-trace"]) == 2
        err = capsys.readouterr().err
        assert "error: /nonexistent-trace: cannot read trace dir" in err

    def test_show_file_roundtrip(self, capsys, tmp_path):
        path = tmp_path / "mp.litmus"
        entry = CATALOG["MP"]
        path.write_text(format_test(entry.test, entry.forbidden))
        assert main(["show", "--file", str(path)]) == 0
        assert "thread" in capsys.readouterr().out


class TestCLILint:
    def test_registry_lint_clean_exit_0(self, capsys):
        assert main(["lint"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_json_schema_stable(self, capsys):
        import json

        from repro.analysis import JSON_SCHEMA_VERSION

        assert main(["lint", "--all-models", "--catalog", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert set(payload) == {
            "version",
            "exit_code",
            "summary",
            "diagnostics",
            "suppressed",
        }
        assert set(payload["summary"]) == {
            "errors",
            "warnings",
            "infos",
            "suppressed",
        }
        assert all(
            set(d) == {"id", "severity", "subject", "message", "hint"}
            for d in payload["suppressed"]
        )

    def test_lint_warning_exit_1(self, capsys, tmp_path):
        # A read from a never-written location is a warning finding.
        path = tmp_path / "warn.litmus"
        path.write_text("thread P0:\nW x 1\nR y\nthread P1:\nR x\n")
        assert main(["lint", str(path)]) == 1
        assert "LIT001" in capsys.readouterr().out

    def test_lint_error_exit_2(self, capsys):
        assert main(["lint", "/nonexistent.litmus"]) == 2
        assert "LIT006" in capsys.readouterr().out

    def test_lint_suppress_flag(self, capsys, tmp_path):
        path = tmp_path / "warn.litmus"
        path.write_text("thread P0:\nW x 1\nR y\nthread P1:\nR x\n")
        assert main(["lint", str(path), "--suppress", "LIT001"]) == 0
        assert "1 suppressed" in capsys.readouterr().out

    def test_lint_file_directive(self, capsys, tmp_path):
        path = tmp_path / "warn.litmus"
        path.write_text(
            "# lint: disable=LIT001\nthread P0:\nW x 1\nR y\nthread P1:\nR x\n"
        )
        assert main(["lint", str(path)]) == 0
        assert "suppressed" in capsys.readouterr().out

    def test_lint_dead_sync_against_model(self, capsys, tmp_path):
        path = tmp_path / "dead.litmus"
        path.write_text(
            "thread P0:\nW x 1\nF.sync\nW y 1\nthread P1:\nR y\nR x\n"
        )
        assert main(["lint", str(path), "--model", "tso"]) == 1
        assert "LIT003" in capsys.readouterr().out

    def test_synthesize_early_reject_flag(self, capsys):
        code = main(
            [
                "synthesize",
                "--model",
                "tso",
                "--bound",
                "3",
                "--max-addresses",
                "1",
                "--early-reject",
            ]
        )
        assert code == 0


class TestCLIDifftest:
    def test_clean_campaign_exit_0(self, capsys):
        code = main(
            [
                "difftest",
                "--model",
                "sc",
                "--seed",
                "17",
                "--budget",
                "25",
                "--mutants",
                "drop:sequential_consistency",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "KILLED" in out and "verdict: CLEAN" in out

    def test_json_report_deterministic_across_jobs(self, capsys):
        argv = [
            "difftest",
            "--model",
            "tso",
            "--seed",
            "8",
            "--budget",
            "25",
            "--mutants",
            "drop:sc_per_loc",
            "--json",
        ]
        assert main(argv) == 0
        sequential = capsys.readouterr().out
        assert main([*argv, "--jobs", "4"]) == 0
        assert capsys.readouterr().out == sequential
        import json

        envelope = json.loads(sequential)
        assert envelope["schema"] == {"name": "difftest-campaign", "version": 2}
        doc = envelope["payload"]
        assert doc["clean"] is True
        assert doc["mutant_kills"]["drop:sc_per_loc"]["events"] <= (
            doc["mutant_kills"]["drop:sc_per_loc"]["original_events"]
        )

    def test_list_mutants(self, capsys):
        assert main(["difftest", "--model", "tso", "--list-mutants"]) == 0
        out = capsys.readouterr().out
        assert "drop:sc_per_loc" in out and "empty:fr" in out

    def test_unknown_mutant_exit_2(self, capsys):
        code = main(
            ["difftest", "--model", "tso", "--mutants", "bogus:tag"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "DIF002" in err and "bogus:tag" in err

    def test_surviving_mutant_exit_1(self, capsys):
        """With budget 0 no test can kill the mutant: verdict FAILED."""
        code = main(
            [
                "difftest",
                "--model",
                "sc",
                "--budget",
                "0",
                "--mutants",
                "drop:sequential_consistency",
            ]
        )
        assert code == 1
        assert "SURVIVED" in capsys.readouterr().out

    def test_corpus_roundtrip_and_lint(self, capsys, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        argv = [
            "difftest",
            "--model",
            "sc",
            "--seed",
            "17",
            "--budget",
            "25",
            "--mutants",
            "drop:sequential_consistency",
            "--corpus-dir",
            corpus_dir,
        ]
        assert main(argv) == 0
        assert "corpus" not in capsys.readouterr().err
        assert main(argv) == 0
        assert "replay: 1 confirmed, 0 stale" in capsys.readouterr().out
        assert main(["lint", "--corpus-dir", corpus_dir]) == 0


class TestCLIReport:
    def _trace(self, tmp_path, *extra):
        trace_dir = str(tmp_path / "trace")
        argv = [
            "synthesize",
            "--model",
            "tso",
            "--bound",
            "3",
            "--max-addresses",
            "2",
            "--trace-dir",
            trace_dir,
            *extra,
        ]
        assert main(argv) == 0
        return trace_dir

    def test_report_renders_phases_and_counters(self, capsys, tmp_path):
        trace_dir = self._trace(tmp_path)
        capsys.readouterr()
        assert main(["report", trace_dir]) == 0
        out = capsys.readouterr().out
        for phase in ("plan", "shards", "merge"):
            assert phase in out
        assert "candidates" in out
        assert "merged:" in out

    def test_report_json_is_an_envelope(self, capsys, tmp_path):
        import json

        trace_dir = self._trace(tmp_path, "--jobs", "2")
        capsys.readouterr()
        assert main(["report", trace_dir, "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["schema"] == {"name": "trace-report", "version": 1}
        assert envelope["tool"] == "litmus-synth"
        assert envelope["command"] == "report"
        payload = envelope["payload"]
        assert [p["name"] for p in payload["phases"]] == [
            "plan",
            "replay",
            "shards",
            "merge",
        ]
        assert payload["meta"]["model"] == "tso"
        assert len(payload["shards"]) >= 1

    def test_lint_trace_dir_clean_on_real_trace(self, capsys, tmp_path):
        trace_dir = self._trace(tmp_path)
        capsys.readouterr()
        assert main(["lint", "--catalog", "--trace-dir", trace_dir]) == 0

    def test_lint_trace_dir_flags_unclosed_span(self, capsys, tmp_path):
        from repro.obs import format_event, header_event

        trace_dir = tmp_path / "trace"
        trace_dir.mkdir()
        (trace_dir / "shard-0000.jsonl").write_text(
            format_event(header_event())
            + format_event(
                {"ev": "begin", "id": 1, "name": "shard", "parent": None}
            )
        )
        assert main(["lint", "--catalog", "--trace-dir", str(trace_dir)]) == 1
        assert "OBS001" in capsys.readouterr().out

    def test_difftest_trace_dir(self, capsys, tmp_path):
        trace_dir = str(tmp_path / "dtrace")
        argv = [
            "difftest",
            "--model",
            "sc",
            "--seed",
            "3",
            "--budget",
            "20",
            "--trace-dir",
            trace_dir,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["report", trace_dir]) == 0
        out = capsys.readouterr().out
        assert "replay" in out and "fuzz" in out


class TestCLICompareExtended:
    def test_compare_json(self, capsys):
        import json

        code = main(
            [
                "compare",
                "--model",
                "tso",
                "--bound",
                "3",
                "--max-addresses",
                "1",
                "--json",
            ]
        )
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["schema"] == {"name": "suite-comparison", "version": 2}
        assert envelope["tool"] == "litmus-synth"
        assert envelope["command"] == "compare"
        doc = envelope["payload"]
        assert doc["model"] == "tso"
        assert set(doc) == {
            "model",
            "both",
            "reference_only",
            "synthesized_only",
            "fully_subsumed",
        }

    def test_compare_saved_suite(self, capsys, tmp_path):
        suite_path = tmp_path / "suite.json"
        assert (
            main(
                [
                    "synthesize",
                    "--model",
                    "tso",
                    "--bound",
                    "3",
                    "--max-addresses",
                    "1",
                    "--out",
                    str(suite_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            ["compare", "--model", "tso", "--suite", str(suite_path)]
        )
        assert code == 0
        assert "REF-ONLY" in capsys.readouterr().out

    def test_compare_suite_as_reference(self, capsys, tmp_path):
        suite_path = tmp_path / "suite.json"
        main(
            [
                "synthesize",
                "--model",
                "tso",
                "--bound",
                "3",
                "--max-addresses",
                "1",
                "--out",
                str(suite_path),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "compare",
                "--model",
                "tso",
                "--suite",
                str(suite_path),
                "--reference",
                str(suite_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "REF-ONLY" not in out  # a suite always subsumes itself

    def test_compare_missing_suite_file(self, capsys):
        code = main(
            ["compare", "--model", "tso", "--suite", "/nonexistent.json"]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_compare_bad_reference_file(self, capsys, tmp_path):
        path = tmp_path / "notasuite.json"
        path.write_text("{\"hello\": 1}")
        code = main(
            ["compare", "--model", "tso", "--reference", str(path)]
        )
        assert code == 2
        assert "not a suite JSON" in capsys.readouterr().err
