"""Catalog integrity tests."""

import pytest

from repro.litmus.catalog import (
    CATALOG,
    cambridge_power_suite,
    entries_for_model,
    get_entry,
    outcome_from_values,
    owens_forbidden,
    owens_suite,
)


class TestCatalogIntegrity:
    def test_unique_names(self):
        assert len(CATALOG) == len({e.name for e in CATALOG.values()})

    def test_entries_well_formed(self):
        for entry in CATALOG.values():
            assert entry.test.num_events >= 2
            # every outcome constraint references real events
            for eid, src in entry.forbidden.rf_sources:
                assert entry.test.instruction(eid).is_read
                if src is not None:
                    assert entry.test.instruction(src).is_write
            for addr, w in entry.forbidden.finals:
                assert addr in entry.test.addresses
                if w is not None:
                    assert entry.test.instruction(w).address == addr

    def test_tests_carry_names(self):
        for name, entry in CATALOG.items():
            assert entry.test.name == name

    def test_get_entry(self):
        assert get_entry("MP").name == "MP"
        with pytest.raises(KeyError):
            get_entry("nonexistent")

    def test_owens_forbidden_has_15_tests(self):
        # the paper: "The complete suite contains 24 tests, and 15
        # specify forbidden outcomes"
        assert len(owens_forbidden()) == 15

    def test_owens_suite_superset(self):
        assert len(owens_suite()) > len(owens_forbidden())

    def test_cambridge_suite_is_power(self):
        suite = cambridge_power_suite()
        assert suite
        assert all(e.model == "power" for e in suite)

    def test_entries_for_model(self):
        assert entries_for_model("power") == cambridge_power_suite()

    def test_classic_shapes(self):
        assert get_entry("MP").test.num_events == 4
        assert get_entry("IRIW").test.num_events == 6
        assert get_entry("CoWW").test.num_events == 2
        assert len(get_entry("WRC").test.threads) == 3

    def test_reconstructed_flagged(self):
        assert get_entry("n3").reconstructed
        assert not get_entry("MP").reconstructed


class TestOutcomeFromValues:
    def test_initial_value(self):
        mp = get_entry("MP").test
        out = outcome_from_values(mp, reads={2: 0})
        assert out.rf_sources == ((2, None),)

    def test_written_value_resolves_event(self):
        mp = get_entry("MP").test
        out = outcome_from_values(mp, reads={2: 1})
        assert out.rf_sources == ((2, 1),)

    def test_final_values(self):
        coww = get_entry("CoWW").test
        out = outcome_from_values(coww, finals={0: 2})
        assert out.finals == ((0, 1),)

    def test_unknown_value_raises(self):
        mp = get_entry("MP").test
        with pytest.raises(ValueError):
            outcome_from_values(mp, reads={2: 42})

    def test_non_read_event_rejected(self):
        mp = get_entry("MP").test
        with pytest.raises(ValueError):
            outcome_from_values(mp, reads={0: 1})
