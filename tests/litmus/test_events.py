"""Unit tests for the instruction vocabulary."""

import pytest

from repro.litmus.events import (
    EventKind,
    FenceKind,
    Instruction,
    Order,
    Scope,
    fence,
    read,
    write,
)


class TestOrder:
    def test_acquire_classification(self):
        assert Order.ACQ.is_acquire
        assert Order.ACQ_REL.is_acquire
        assert Order.SC.is_acquire
        assert Order.CON.is_acquire
        assert not Order.RLX.is_acquire
        assert not Order.REL.is_acquire

    def test_release_classification(self):
        assert Order.REL.is_release
        assert Order.ACQ_REL.is_release
        assert Order.SC.is_release
        assert not Order.ACQ.is_release
        assert not Order.PLAIN.is_release

    def test_atomicity(self):
        assert not Order.PLAIN.is_atomic
        assert Order.RLX.is_atomic
        assert Order.SC.is_atomic

    def test_strength_ordering(self):
        assert Order.PLAIN < Order.RLX < Order.ACQ < Order.SC


class TestInstructionConstruction:
    def test_read(self):
        r = read(0)
        assert r.is_read and not r.is_write and not r.is_fence
        assert r.address == 0
        assert r.order is Order.PLAIN

    def test_write_with_value(self):
        w = write(1, 7, Order.REL)
        assert w.is_write
        assert w.value == 7
        assert w.order is Order.REL

    def test_fence(self):
        f = fence(FenceKind.SYNC)
        assert f.is_fence
        assert f.address is None

    def test_fence_requires_kind(self):
        with pytest.raises(ValueError):
            Instruction(EventKind.FENCE)

    def test_fence_rejects_address(self):
        with pytest.raises(ValueError):
            Instruction(EventKind.FENCE, address=0, fence=FenceKind.SYNC)

    def test_access_requires_address(self):
        with pytest.raises(ValueError):
            Instruction(EventKind.READ)

    def test_access_rejects_fence_kind(self):
        with pytest.raises(ValueError):
            Instruction(EventKind.WRITE, address=0, fence=FenceKind.SYNC)

    def test_read_rejects_value(self):
        with pytest.raises(ValueError):
            Instruction(EventKind.READ, address=0, value=1)


class TestInstructionTransforms:
    def test_with_order(self):
        r = read(0).with_order(Order.ACQ)
        assert r.order is Order.ACQ
        assert r.address == 0

    def test_with_order_preserves_scope(self):
        r = read(0, scope=Scope.DEVICE).with_order(Order.ACQ)
        assert r.scope is Scope.DEVICE

    def test_with_fence(self):
        f = fence(FenceKind.SYNC).with_fence(FenceKind.LWSYNC)
        assert f.fence is FenceKind.LWSYNC

    def test_with_fence_on_access_raises(self):
        with pytest.raises(ValueError):
            read(0).with_fence(FenceKind.SYNC)

    def test_with_scope(self):
        w = write(0).with_scope(Scope.WORKGROUP)
        assert w.scope is Scope.WORKGROUP
        assert w.with_scope(None).scope is None


class TestMnemonics:
    def test_plain_read(self):
        assert read(0).mnemonic() == "Ld [a0]"

    def test_ordered_write(self):
        assert write(0, 1, Order.REL).mnemonic() == "St.rel [a0], 1"

    def test_named_addresses(self):
        assert read(5).mnemonic({5: "x"}) == "Ld [x]"

    def test_fence_mnemonic(self):
        assert fence(FenceKind.LWSYNC).mnemonic() == "Fence.lwsync"

    def test_scoped_mnemonic(self):
        text = read(0, Order.ACQ, Scope.WORKGROUP).mnemonic()
        assert "workgroup" in text

    def test_unvalued_write(self):
        assert "?" in write(0).mnemonic()
