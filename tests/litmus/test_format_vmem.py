"""Text-format round trips for transistency-enhanced tests."""

import pytest

from repro.litmus.events import EventKind
from repro.litmus.format import ParseError, format_test, parse_test

VMEM_MP = """\
name: vmem-mp
thread P0:
  MAP x 1
  DRT y 1
thread P1:
  r2 = PTW x
  r3 = R y
map: x=y
forbidden: r2=1 r3=0
"""


class TestParseVmem:
    def test_parses_kinds(self):
        test, outcome = parse_test(VMEM_MP)
        kinds = [i.kind for i in test.instructions]
        assert kinds == [
            EventKind.REMAP,
            EventKind.DIRTY,
            EventKind.PTWALK,
            EventKind.READ,
        ]
        assert outcome is not None

    def test_parses_map_clause(self):
        test, _ = parse_test(VMEM_MP)
        assert test.addr_map == ((0, 1),)
        assert test.locations == (1,)

    def test_round_trip(self):
        test, outcome = parse_test(VMEM_MP)
        rendered = format_test(test, outcome)
        again, outcome_again = parse_test(rendered)
        assert again == test
        assert outcome_again == outcome

    def test_round_trip_is_stable(self):
        test, outcome = parse_test(VMEM_MP)
        rendered = format_test(test, outcome)
        assert format_test(*parse_test(rendered)) == rendered

    def test_map_requires_used_addresses(self):
        bad = "thread P0:\n  W x 1\nmap: y=x\n"
        with pytest.raises(ParseError):
            parse_test(bad)

    def test_map_entry_needs_equals(self):
        bad = "thread P0:\n  W x 1\n  R y\nmap: y\n"
        with pytest.raises(ParseError):
            parse_test(bad)

    def test_ptwalk_rejects_scope(self):
        bad = "thread P0:\n  r0 = PTW@wg x\n"
        with pytest.raises(ParseError):
            parse_test(bad)
