"""Unit tests for the LitmusTest representation."""

import pytest

from repro.litmus.events import DepKind, FenceKind, fence, read, write
from repro.litmus.test import Dep, LitmusTest


def mp():
    return LitmusTest(
        ((write(0, 1), write(1, 1)), (read(1), read(0))), name="MP"
    )


class TestGeometry:
    def test_num_events(self):
        assert mp().num_events == 4

    def test_eid(self):
        t = mp()
        assert t.eid(0, 0) == 0
        assert t.eid(0, 1) == 1
        assert t.eid(1, 0) == 2

    def test_tid_of(self):
        t = mp()
        assert [t.tid_of(e) for e in range(4)] == [0, 0, 1, 1]

    def test_index_of(self):
        t = mp()
        assert [t.index_of(e) for e in range(4)] == [0, 1, 0, 1]

    def test_tid_out_of_range(self):
        with pytest.raises(ValueError):
            mp().tid_of(10)

    def test_instructions_flat(self):
        t = mp()
        assert len(t.instructions) == 4
        assert t.instruction(2).is_read


class TestMasks:
    def test_reads_writes_masks(self):
        t = mp()
        assert t.reads_mask == 0b1100
        assert t.writes_mask == 0b0011
        assert t.fences_mask == 0

    def test_fence_mask(self):
        t = LitmusTest(((write(0, 1), fence(FenceKind.MFENCE), read(1)),))
        assert t.fences_mask == 0b010

    def test_read_write_eids(self):
        t = mp()
        assert t.read_eids == (2, 3)
        assert t.write_eids == (0, 1)


class TestAddressesAndValues:
    def test_addresses_first_use_order(self):
        t = LitmusTest(((read(5), write(2, 1)), (write(5, 1),)))
        assert t.addresses == (5, 2)

    def test_writes_to(self):
        t = mp()
        assert t.writes_to(0) == (0,)
        assert t.writes_to(1) == (1,)

    def test_accesses_to(self):
        t = mp()
        assert t.accesses_to(0) == (0, 3)

    def test_auto_values_distinct_per_address(self):
        t = LitmusTest(((write(0), write(0)), (write(0),)))
        assert sorted(t.write_values.values()) == [1, 2, 3]

    def test_explicit_values_kept(self):
        t = LitmusTest(((write(0, 7), write(0)),))
        assert t.write_values[0] == 7
        assert t.write_values[1] == 1

    def test_auto_values_skip_explicit(self):
        t = LitmusTest(((write(0, 1), write(0)),))
        assert t.write_values == {0: 1, 1: 2}


class TestValidation:
    def test_empty_test_rejected(self):
        with pytest.raises(ValueError):
            LitmusTest(())
        with pytest.raises(ValueError):
            LitmusTest(((),))

    def test_rmw_must_be_adjacent(self):
        with pytest.raises(ValueError):
            LitmusTest(
                ((read(0), write(1, 1), write(0, 1)),),
                rmw=frozenset({(0, 2)}),
            )

    def test_rmw_must_share_address(self):
        with pytest.raises(ValueError):
            LitmusTest(
                ((read(0), write(1, 1)),), rmw=frozenset({(0, 1)})
            )

    def test_rmw_read_then_write(self):
        with pytest.raises(ValueError):
            LitmusTest(
                ((write(0, 1), read(0)),), rmw=frozenset({(0, 1)})
            )

    def test_valid_rmw(self):
        t = LitmusTest(((read(0), write(0)),), rmw=frozenset({(0, 1)}))
        assert t.rmw_reads == {0}
        assert t.rmw_writes == {1}

    def test_dep_from_read_only(self):
        with pytest.raises(ValueError):
            LitmusTest(
                ((write(0, 1), write(1, 1)),),
                deps=frozenset({Dep(0, 1, DepKind.ADDR)}),
            )

    def test_dep_targets_later_same_thread(self):
        with pytest.raises(ValueError):
            LitmusTest(
                ((read(0),), (write(1, 1),)),
                deps=frozenset({Dep(0, 1, DepKind.ADDR)}),
            )

    def test_data_dep_targets_write(self):
        with pytest.raises(ValueError):
            LitmusTest(
                ((read(0), read(1)),),
                deps=frozenset({Dep(0, 1, DepKind.DATA)}),
            )

    def test_addr_dep_not_to_fence(self):
        with pytest.raises(ValueError):
            LitmusTest(
                ((read(0), fence(FenceKind.SYNC)),),
                deps=frozenset({Dep(0, 1, DepKind.ADDR)}),
            )

    def test_scopes_length_checked(self):
        with pytest.raises(ValueError):
            LitmusTest(((read(0),), (write(0, 1),)), scopes=(0,))

    def test_deps_of_kind(self):
        t = LitmusTest(
            ((read(0), write(1, 1), read(2)),),
            deps=frozenset(
                {Dep(0, 1, DepKind.DATA), Dep(0, 2, DepKind.ADDR)}
            ),
        )
        assert len(t.deps_of_kind(DepKind.DATA)) == 1
        assert len(t.deps_of_kind(DepKind.DATA, DepKind.ADDR)) == 2


class TestRendering:
    def test_pretty_contains_threads(self):
        text = mp().pretty()
        assert "Thread 0" in text and "Thread 1" in text
        assert "MP" in text

    def test_pretty_marks_rmw_and_deps(self):
        t = LitmusTest(
            ((read(0), write(0)),),
            rmw=frozenset({(0, 1)}),
            deps=frozenset({Dep(0, 1, DepKind.DATA)}),
        )
        text = t.pretty()
        assert "rmw" in text
        assert "data" in text

    def test_with_name(self):
        assert mp().with_name("other").name == "other"

    def test_repr(self):
        assert "MP" in repr(mp())

    def test_equality_ignores_name(self):
        a = mp()
        b = mp().with_name("different")
        assert a == b
        assert hash(a) == hash(b)
