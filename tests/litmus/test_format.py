"""Litmus text format tests."""

import pytest

from repro.litmus.catalog import CATALOG
from repro.litmus.events import DepKind, FenceKind, Order, Scope
from repro.litmus.format import ParseError, format_test, parse_test
from repro.litmus.test import Dep

MP_TEXT = """
name: MP
thread P0:
  W x 1
  W y 1
thread P1:
  r0 = R y
  r1 = R x
forbidden: r0=1 r1=0
"""


class TestParsing:
    def test_mp(self):
        test, outcome = parse_test(MP_TEXT)
        assert test.name == "MP"
        assert test.num_events == 4
        assert outcome is not None
        assert outcome.rf_sources == ((2, 1), (3, None))

    def test_matches_catalog_mp(self):
        from repro.core.canonical import canonical_form

        test, outcome = parse_test(MP_TEXT)
        assert canonical_form(test) == canonical_form(CATALOG["MP"].test)

    def test_orders_and_fences(self):
        text = """
thread P0:
  W.rel x 1
  F.sync
  r0 = R.acq y
"""
        test, _ = parse_test(text)
        assert test.instruction(0).order is Order.REL
        assert test.instruction(1).fence is FenceKind.SYNC
        assert test.instruction(2).order is Order.ACQ

    def test_scopes(self):
        text = """
thread P0:
  W@dev x 1
thread P1:
  r0 = R@wg x
scope: P0=0 P1=1
"""
        test, _ = parse_test(text)
        assert test.instruction(0).scope is Scope.DEVICE
        assert test.instruction(1).scope is Scope.WORKGROUP
        assert test.scopes == (0, 1)

    def test_rmw_and_deps(self):
        text = """
thread P0:
  r0 = R x
  W x
thread P1:
  r1 = R y
  W x 9
rmw: P0:0 P0:1
dep: P1:0 data P1:1
"""
        test, _ = parse_test(text)
        assert (0, 1) in test.rmw
        assert Dep(2, 3, DepKind.DATA) in test.deps

    def test_final_constraints(self):
        text = """
thread P0:
  W x 1
thread P1:
  W x 2
forbidden: x=1
"""
        _, outcome = parse_test(text)
        assert outcome is not None
        assert outcome.finals == ((0, 0),)

    def test_comments_ignored(self):
        text = MP_TEXT.replace("W y 1", "W y 1  # the flag")
        test, _ = parse_test(text)
        assert test.num_events == 4

    @pytest.mark.parametrize(
        "bad",
        [
            "W x 1",                      # instruction outside a thread
            "thread P0:\n  Q x",          # unknown opcode
            "thread P0:\n  F.bogus",      # unknown fence
            "thread P0:\n  r = W x 1",    # writes bind no register
            "thread P0:\n  R x y z",      # arity
            "thread P0:\n  W.wat x 1",    # unknown order
            "thread P0:\n  W@zz x 1",     # unknown scope
            "thread P0:\n  W x 1\nrmw: P0:0",  # rmw arity
            "thread P0:\n  W x 1\nforbidden: q0=1",  # unknown register
            "thread P0:\n  r0 = R x\n  r0 = R x",    # register reuse
            "thread P0:\n  W x 1\nthread P0:\n  W x 1",  # dup thread
            "",
        ],
    )
    def test_errors(self, bad):
        with pytest.raises(ParseError):
            parse_test(bad)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "name",
        ["MP", "SB+mfences", "IRIW", "LB+addrs", "n3", "WWC", "PPOAA"],
    )
    def test_catalog_roundtrip(self, name):
        from repro.core.canonical import canonical_form

        entry = CATALOG[name]
        text = format_test(entry.test, entry.forbidden)
        reparsed, outcome = parse_test(text)
        assert canonical_form(reparsed) == canonical_form(entry.test)
        assert outcome is not None

    def test_scoped_roundtrip(self):
        text = """
thread P0:
  W@sys x 1
thread P1:
  r1 = R@wg x
scope: P0=0 P1=1
forbidden: r1=0
"""
        test, outcome = parse_test(text)
        again, outcome2 = parse_test(format_test(test, outcome))
        assert again == test
        assert outcome2 == outcome
