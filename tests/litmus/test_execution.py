"""Unit tests for executions, outcomes, and outcome projection."""

from repro.litmus.events import read, write
from repro.litmus.execution import (
    Execution,
    Outcome,
    project_outcome,
    remap_outcome,
)
from repro.litmus.test import LitmusTest


def mp():
    return LitmusTest(((write(0, 1), write(1, 1)), (read(1), read(0))))


def mp_execution(r_y, r_x):
    """MP execution; r_y/r_x are the sourcing writes (None = initial)."""
    test = mp()
    return Execution(test, ((2, r_y), (3, r_x)), ((0,), (1,)))


class TestExecution:
    def test_rf_map(self):
        ex = mp_execution(1, None)
        assert ex.rf_map == {2: 1, 3: None}

    def test_read_value(self):
        ex = mp_execution(1, 0)
        assert ex.read_value(2) == 1
        assert ex.read_value(3) == 1  # value of write event 0

    def test_read_value_initial(self):
        assert mp_execution(None, None).read_value(2) == 0

    def test_outcome_finals(self):
        ex = mp_execution(1, 0)
        assert dict(ex.outcome.finals) == {0: 0, 1: 1}

    def test_co_position(self):
        test = LitmusTest(((write(0, 1), write(0, 2)),))
        ex = Execution(test, (), ((1, 0),))
        assert ex.co_position == {1: 0, 0: 1}

    def test_pretty(self):
        text = mp_execution(1, None).pretty()
        assert "r2=1" in text and "r3=0" in text


class TestOutcome:
    def test_read_value_lookup(self):
        out = mp_execution(1, None).outcome
        assert out.read_value(mp(), 2) == 1
        assert out.read_value(mp(), 3) == 0

    def test_final_value_lookup(self):
        out = mp_execution(1, None).outcome
        assert out.final_value(mp(), 0) == 1

    def test_missing_read_raises(self):
        out = mp_execution(1, None).outcome
        try:
            out.read_value(mp(), 0)
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyError")

    def test_outcomes_hashable_and_comparable(self):
        a = mp_execution(1, None).outcome
        b = mp_execution(1, None).outcome
        assert a == b
        assert hash(a) == hash(b)
        assert a != mp_execution(None, None).outcome


class TestProjection:
    def test_identity_projection(self):
        out = mp_execution(1, None).outcome
        emap = {e: e for e in range(4)}
        assert project_outcome(out, emap) == out

    def test_removed_read_drops_entry(self):
        out = mp_execution(1, None).outcome
        emap = {0: 0, 1: 1, 2: None, 3: 2}
        projected = project_outcome(out, emap)
        assert projected.rf_sources == ((2, None),)

    def test_removed_source_unconstrains_read(self):
        # paper Fig. 3d: removing the store to [flag] leaves the flag read
        # unconstrained rather than retargeted.
        out = mp_execution(1, None).outcome
        emap = {0: 0, 1: None, 2: 1, 3: 2}
        projected = project_outcome(out, emap)
        # the read of y (orig 2) had source 1 (removed) -> dropped;
        # the read of x (orig 3) read initial -> kept.
        assert projected.rf_sources == ((2, None),)

    def test_removed_final_write_drops_constraint(self):
        out = mp_execution(1, None).outcome
        emap = {0: None, 1: 0, 2: 1, 3: 2}
        projected = project_outcome(out, emap)
        finals = dict(projected.finals)
        assert 0 not in finals  # x's only write removed
        assert finals[1] == 0  # y's final write survives (renumbered)

    def test_initial_final_kept(self):
        test = LitmusTest(((read(0),), (write(1, 1),)))
        out = Outcome(((0, None),), ((0, None), (1, 1)))
        emap = {0: 0, 1: 1}
        assert project_outcome(out, emap) == out


class TestRemap:
    def test_total_remap(self):
        out = mp_execution(1, 0).outcome
        emap = {0: 2, 1: 3, 2: 0, 3: 1}
        amap = {0: 1, 1: 0}
        remapped = remap_outcome(out, emap, amap)
        assert dict(remapped.rf_sources) == {0: 3, 1: 2}
        assert dict(remapped.finals) == {1: 2, 0: 3}
