"""Diagnostics core: severities, suppressions, reports, renderers."""

import json

import pytest

from repro.analysis.diagnostics import (
    JSON_SCHEMA_VERSION,
    Diagnostic,
    Report,
    Severity,
    Suppression,
    parse_suppression,
    render_json,
    render_text,
)


def diag(id="MDL001", sev=Severity.ERROR, subject="model:x:y", msg="m"):
    return Diagnostic(id, sev, subject, msg)


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_labels(self):
        assert Severity.WARNING.label == "warning"


class TestDiagnostic:
    def test_format_includes_id_subject_severity(self):
        text = diag().format()
        assert "error[MDL001]" in text and "model:x:y" in text

    def test_hint_rendered_when_present(self):
        d = Diagnostic("LIT001", Severity.WARNING, "t", "msg", hint="fix it")
        assert "fix it" in d.format()
        assert "hint" not in diag().format()

    def test_as_dict_keys(self):
        assert set(diag().as_dict()) == {
            "id",
            "severity",
            "subject",
            "message",
            "hint",
        }


class TestSuppression:
    def test_exact_id_match(self):
        assert Suppression("MDL001").matches(diag())
        assert not Suppression("MDL002").matches(diag())

    def test_subject_glob(self):
        sup = Suppression("MDL001", "model:x:*")
        assert sup.matches(diag(subject="model:x:anything"))
        assert not sup.matches(diag(subject="model:y:anything"))

    def test_parse_plain_and_scoped(self):
        assert parse_suppression("LIT001") == Suppression("LIT001")
        scoped = parse_suppression("LIT001:test:PPOAA*")
        assert scoped.subject == "test:PPOAA*"

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_suppression("   ")


class TestReport:
    def test_exit_codes(self):
        assert Report().exit_code == 0
        assert Report([diag(sev=Severity.INFO)]).exit_code == 0
        assert Report([diag(sev=Severity.WARNING)]).exit_code == 1
        assert Report(
            [diag(sev=Severity.WARNING), diag(sev=Severity.ERROR)]
        ).exit_code == 2

    def test_apply_suppressions_partitions(self):
        report = Report([diag(), diag(id="LIT001", sev=Severity.WARNING)])
        filtered = report.apply_suppressions([Suppression("MDL001")])
        assert [d.id for d in filtered.diagnostics] == ["LIT001"]
        assert [d.id for d in filtered.suppressed] == ["MDL001"]
        assert filtered.exit_code == 1

    def test_sorted_most_severe_first(self):
        report = Report(
            [diag(sev=Severity.INFO), diag(id="SAT003", sev=Severity.ERROR)]
        )
        assert report.sorted().diagnostics[0].id == "SAT003"


class TestRenderers:
    def test_text_has_summary_line(self):
        out = render_text(Report([diag()]))
        assert "1 error(s), 0 warning(s), 0 info(s)" in out

    def test_json_schema(self):
        report = Report([diag()]).apply_suppressions([])
        payload = json.loads(render_json(report))
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert set(payload) == {
            "version",
            "exit_code",
            "summary",
            "diagnostics",
            "suppressed",
        }
        assert set(payload["summary"]) == {
            "errors",
            "warnings",
            "infos",
            "suppressed",
        }
        assert payload["exit_code"] == 2
        assert payload["diagnostics"][0]["id"] == "MDL001"
