"""The static-analysis layer (:mod:`repro.analysis.flow`).

Four angles, mirroring the package's contract:

* the interval abstract domain's transfer rules and Kleene formula
  evaluation on hand-built ASTs (emptiness/acyclicity propagation);
* the closed-form applicability counts against the real relaxation
  generators (a property test over the enumerator and the catalog);
* the execution prefilter's agreement with *both* oracles — exact on
  pinned environments, byte-identical synthesized suites across the
  model zoo at bounds 2-4;
* the MDL01x/LIT01x passes, the ``empty:fr`` campaign skip, and the
  diagnostic-id registry bookkeeping.
"""

import itertools

import pytest

from repro.alloy import AlloyOracle
from repro.alloy.encoding import LitmusEncoding
from repro.alloy.models import ALLOY_MODELS
from repro.analysis.diagnostics import Severity, parse_suppression
from repro.analysis.flow import (
    AbstractEnv,
    ExecutionPrefilter,
    Interval,
    Tri,
    UnboundRelation,
    application_counts,
    dynamic_intervals,
    env_from_problem,
    eval_expr,
    eval_formula,
    exact,
    fr_statically_empty,
    render_expr,
    render_formula,
)
from repro.analysis.litmus_lint import early_reject
from repro.analysis.model_lint import alloy_context, lint_model_context
from repro.analysis.probes import PROBE_BATTERY
from repro.analysis.registry import LitmusLintContext, run_family
from repro.analysis.selfcheck import id_registry_problems
from repro.core.enumerator import EnumerationConfig, enumerate_tests
from repro.core.oracle import ExplicitOracle
from repro.core.synthesis import OracleSpec, SynthesisOptions, synthesize
from repro.litmus.catalog import CATALOG
from repro.litmus.events import read, write
from repro.litmus.test import LitmusTest
from repro.models.registry import available_models, get_model
from repro.relax.instruction import relaxations_for
from repro.relational import ast

# -- the abstract domain ----------------------------------------------------------


def fs(*tuples):
    return frozenset(tuples)


def env(universe=3, **bindings):
    return AbstractEnv(universe, bindings)


class TestInterval:
    def test_invariant_lower_within_upper(self):
        with pytest.raises(ValueError, match="lower bound exceeds"):
            Interval(fs((0, 1)), frozenset())

    def test_exact_and_emptiness_predicates(self):
        iv = exact([(0, 1)])
        assert iv.is_exact and iv.definitely_nonempty
        assert Interval(frozenset(), frozenset()).definitely_empty
        straddle = Interval(frozenset(), fs((0, 1)))
        assert not straddle.is_exact
        assert not straddle.definitely_empty
        assert not straddle.definitely_nonempty


class TestTransferRules:
    """Each operator's interval rule on hand-built environments."""

    R = Interval(fs((0, 1), (1, 2)), fs((0, 1), (1, 2), (2, 0)))
    S = Interval(fs((1, 2)), fs((1, 2), (2, 0)))

    def test_union_and_inter_are_pointwise(self):
        e = env(r=self.R, s=self.S)
        u = eval_expr(ast.Union(ast.Rel("r"), ast.Rel("s")), e)
        assert u == Interval(self.R.lower | self.S.lower, self.R.upper | self.S.upper)
        i = eval_expr(ast.Inter(ast.Rel("r"), ast.Rel("s")), e)
        assert i == Interval(self.R.lower & self.S.lower, self.R.upper & self.S.upper)

    def test_diff_bounds_cross_over(self):
        # [l1 - u2, u1 - l2]: subtract at most the certain tuples from
        # the upper bound, at least the possible ones from the lower
        d = eval_expr(ast.Diff(ast.Rel("r"), ast.Rel("s")), env(r=self.R, s=self.S))
        assert d == Interval(fs((0, 1)), fs((0, 1), (2, 0)))

    def test_join_product_transpose(self):
        e = env(r=exact([(0, 1), (1, 2)]), t=exact([(2, 0)]))
        assert eval_expr(ast.Join(ast.Rel("r"), ast.Rel("t")), e) == exact([(1, 0)])
        assert eval_expr(
            ast.Product(ast.Rel("t"), ast.Rel("t")), e
        ) == exact([(2, 0, 2, 0)])
        assert eval_expr(ast.Transpose(ast.Rel("t")), e) == exact([(0, 2)])

    def test_closures(self):
        e = env(r=exact([(0, 1), (1, 2)]))
        assert eval_expr(ast.Closure(ast.Rel("r")), e) == exact(
            [(0, 1), (1, 2), (0, 2)]
        )
        reflexive = eval_expr(ast.RClosure(ast.Rel("r")), e)
        assert (0, 0) in reflexive.lower and (0, 2) in reflexive.lower

    def test_restrictions_filter_by_endpoint(self):
        e = env(r=self.R, dom=exact([(0,)]))
        restricted = eval_expr(
            ast.DomRestrict(ast.Rel("dom"), ast.Rel("r")), e
        )
        assert restricted == Interval(fs((0, 1)), fs((0, 1)))
        ranged = eval_expr(ast.RanRestrict(ast.Rel("r"), ast.Rel("dom")), e)
        assert ranged == Interval(frozenset(), fs((2, 0)))

    def test_constants_are_exact(self):
        e = env(universe=2)
        assert eval_expr(ast.Iden(), e) == exact([(0, 0), (1, 1)])
        assert eval_expr(ast.NoneExpr(), e) == exact([])
        assert eval_expr(ast.UnivExpr(), e) == exact(
            [(0, 0), (0, 1), (1, 0), (1, 1)]
        )

    def test_unbound_relation_and_foreign_nodes(self):
        with pytest.raises(UnboundRelation):
            eval_expr(ast.Rel("nope"), env())
        with pytest.raises(TypeError):
            eval_expr(ast.TRUE_F, env())  # a Formula is not an Expr
        with pytest.raises(TypeError):
            eval_formula(ast.Rel("r"), env(r=exact([])))


class TestKleeneFormulas:
    def test_emptiness_propagates_through_dead_join(self):
        # r.t has no matching middle column: No() is decided TRUE even
        # though both operands are nonempty
        e = env(r=exact([(0, 1)]), t=exact([(2, 0)]))
        dead = ast.Join(ast.Rel("r"), ast.Rel("t"))
        assert eval_formula(ast.No(dead), e) is Tri.TRUE
        assert eval_formula(ast.Some(dead), e) is Tri.FALSE

    def test_some_no_on_abstract_intervals(self):
        e = env(
            may=Interval(frozenset(), fs((0, 1))),
            must=Interval(fs((0, 1)), fs((0, 1), (1, 2))),
        )
        assert eval_formula(ast.Some(ast.Rel("may")), e) is Tri.UNKNOWN
        assert eval_formula(ast.Some(ast.Rel("must")), e) is Tri.TRUE
        assert eval_formula(ast.No(ast.NoneExpr()), e) is Tri.TRUE

    def test_subset_three_ways(self):
        e = env(
            small=exact([(0, 1)]),
            big=exact([(0, 1), (1, 2)]),
            may=Interval(frozenset(), fs((0, 1), (2, 2))),
        )
        assert eval_formula(ast.Subset(ast.Rel("small"), ast.Rel("big")), e) is Tri.TRUE
        assert eval_formula(ast.Subset(ast.Rel("big"), ast.Rel("small")), e) is Tri.FALSE
        assert (
            eval_formula(ast.Subset(ast.Rel("may"), ast.Rel("small")), e)
            is Tri.UNKNOWN
        )

    def test_acyclicity_propagation(self):
        cyclic = exact([(0, 1), (1, 0)])
        acyclic = exact([(0, 1), (1, 2)])
        straddle = Interval(frozenset(), fs((0, 1), (1, 0)))
        e = env(c=cyclic, a=acyclic, s=straddle)
        assert eval_formula(ast.Acyclic(ast.Rel("a")), e) is Tri.TRUE
        assert eval_formula(ast.Acyclic(ast.Rel("c")), e) is Tri.FALSE
        assert eval_formula(ast.Acyclic(ast.Rel("s")), e) is Tri.UNKNOWN
        # the cycle survives a union: lower bounds are monotone
        grown = ast.Acyclic(ast.Union(ast.Rel("c"), ast.Rel("s")))
        assert eval_formula(grown, e) is Tri.FALSE
        assert eval_formula(ast.Irreflexive(ast.Rel("a")), e) is Tri.TRUE

    def test_kleene_connectives(self):
        e = env(may=Interval(frozenset(), fs((0, 1))))
        unknown = ast.Some(ast.Rel("may"))
        false = ast.Some(ast.NoneExpr())
        assert eval_formula(ast.Not(unknown), e) is Tri.UNKNOWN
        assert eval_formula(ast.And(unknown, false), e) is Tri.FALSE
        assert eval_formula(ast.Or(unknown, ast.Not(false)), e) is Tri.TRUE
        assert eval_formula(ast.Implies(false, unknown), e) is Tri.TRUE
        assert eval_formula(ast.TRUE_F, e) is Tri.TRUE

    def test_cardinality_quantifiers(self):
        e = env(
            one=exact([(0, 1)]),
            two=exact([(0, 1), (1, 2)]),
            may=Interval(frozenset(), fs((0, 1))),
        )
        assert eval_formula(ast.Lone(ast.Rel("one")), e) is Tri.TRUE
        assert eval_formula(ast.Lone(ast.Rel("two")), e) is Tri.FALSE
        assert eval_formula(ast.One(ast.Rel("may")), e) is Tri.UNKNOWN
        assert eval_formula(ast.One(ast.NoneExpr()), e) is Tri.FALSE


class TestRendering:
    def test_expressions(self):
        expr = ast.Inter(ast.Rel("po"), ast.Transpose(ast.Rel("po")))
        assert render_expr(expr) == "(po & ~po)"
        assert render_expr(ast.RClosure(ast.NoneExpr())) == "*none"

    def test_formulas(self):
        f = ast.Implies(
            ast.Some(ast.Rel("rf")), ast.Acyclic(ast.Union(ast.Rel("rf"), ast.Rel("co")))
        )
        assert render_formula(f) == "(some rf => acyclic((rf + co)))"


# -- environments from encodings --------------------------------------------------


class TestEncodingEnvironments:
    def test_constants_exact_dynamic_abstract(self):
        problem = LitmusEncoding(CATALOG["MP"].test).problem
        environment = env_from_problem(problem)
        po = environment.lookup("po")
        assert po.is_exact and po.definitely_nonempty
        rf = environment.lookup("rf")
        assert not rf.lower and rf.upper  # genuinely abstract

    def test_dynamic_intervals_reads_only(self):
        reads_only = LitmusTest(((read(0), read(1)), (read(0),)))
        intervals = dynamic_intervals(reads_only)
        assert set(intervals) == {"rf", "co"}
        assert all(iv.definitely_empty for iv in intervals.values())

    def test_fr_statically_empty_is_exact(self):
        # disjoint addresses: no (read, write) same-address pair exists
        assert fr_statically_empty(LitmusTest(((write(0, 1), read(1)),)))
        assert not fr_statically_empty(CATALOG["MP"].test)


# -- applicability closed forms ---------------------------------------------------


class TestApplicationCounts:
    """The closed forms must equal the generators, relaxation by
    relaxation (the module docstring's advertised property)."""

    def check(self, test, vocab):
        expected = {
            r.name: len(list(r.applications(test, vocab)))
            for r in relaxations_for(vocab)
        }
        assert application_counts(test, vocab) == expected

    @pytest.mark.parametrize("model_name", available_models())
    def test_enumerated_candidates(self, model_name):
        vocab = get_model(model_name).vocabulary
        config = EnumerationConfig(
            max_events=3, max_addresses=2, max_deps=1, max_rmws=1
        )
        for test in itertools.islice(enumerate_tests(vocab, config), 60):
            self.check(test, vocab)

    def test_catalog(self):
        for entry in CATALOG.values():
            self.check(entry.test, get_model(entry.model).vocabulary)


# -- the execution prefilter vs both oracles --------------------------------------


ZOO = tuple(sorted(ALLOY_MODELS))


class TestPrefilterExactness:
    @pytest.mark.parametrize("model_name", ZOO)
    def test_every_pinned_verdict_matches_the_sat_oracle(self, model_name):
        """On pinned executions the environment is exact, so the filter
        must decide *every* per-axiom query, agreeing with the SAT path."""
        factory, needs_sc = ALLOY_MODELS[model_name]
        formulas = factory()
        sat = AlloyOracle(model_name)  # prefilter off: pure SAT ground truth
        for test in PROBE_BATTERY[:3]:
            prefilter = ExecutionPrefilter(
                LitmusEncoding(test, with_sc=needs_sc)
            )
            executions = list(sat.executions(test))
            assert executions
            model_valid = set(sat.valid_executions(test, None))
            for axiom, formula in formulas.items():
                axiom_valid = set(sat.valid_executions(test, axiom))
                for ex in executions:
                    verdict = prefilter.axiom_verdict(ex, formula)
                    assert verdict is not None, (model_name, axiom)
                    assert verdict == (ex in axiom_valid), (model_name, axiom)
            for ex in executions:
                verdict = prefilter.model_verdict(ex, formulas.values())
                assert verdict == (ex in model_valid), model_name

    @pytest.mark.parametrize("model_name", ZOO)
    def test_analyze_agrees_with_the_explicit_oracle(self, model_name):
        explicit = ExplicitOracle(get_model(model_name))
        filtered = AlloyOracle(model_name, prefilter=True)
        for test in PROBE_BATTERY[:3]:
            assert (
                filtered.analyze(test).model_valid
                == explicit.analyze(test).model_valid
            ), (model_name, test.name)
        metrics = filtered.as_metrics()
        assert metrics["prefilter_queries"] > 0
        assert metrics["prefilter_hits"] > 0
        assert metrics["prefilter_fallbacks"] == 0


def _synth(model_name, bound, config, oracle, prefilter=False):
    return synthesize(
        get_model(model_name),
        SynthesisOptions(
            bound=bound,
            config=config,
            oracle_spec=OracleSpec(oracle=oracle, prefilter=prefilter),
        ),
    )


class TestPrefilterSuiteGrid:
    """Synthesized suites must be byte-identical with and without the
    prefilter — and equal to the explicit oracle's — across the zoo."""

    @pytest.mark.parametrize("model_name", ZOO)
    @pytest.mark.parametrize("bound", (2, 3))
    def test_grid_agrees_with_both_oracles(self, model_name, bound):
        config = EnumerationConfig(
            max_events=bound, max_addresses=2, max_deps=0, max_rmws=0
        )
        filtered = _synth(model_name, bound, config, "relational", prefilter=True)
        plain = _synth(model_name, bound, config, "relational")
        explicit = _synth(model_name, bound, config, "explicit")
        assert filtered.union.to_json() == plain.union.to_json()
        assert filtered.union.to_json() == explicit.union.to_json()
        for axiom, suite in filtered.per_axiom.items():
            assert suite.to_json() == plain.per_axiom[axiom].to_json(), axiom
        assert filtered.oracle_stats["prefilter_queries"] > 0
        assert filtered.oracle_stats["prefilter_hits"] > 0

    def test_tso_bound_four_byte_identical(self):
        config = EnumerationConfig(
            max_events=4, max_addresses=2, max_deps=0, max_rmws=0
        )
        filtered = _synth("tso", 4, config, "relational", prefilter=True)
        plain = _synth("tso", 4, config, "relational")
        assert filtered.union.to_json() == plain.union.to_json()
        stats = filtered.oracle_stats
        assert stats["prefilter_hits"] == stats["prefilter_queries"] > 0


# -- the MDL01x passes ------------------------------------------------------------


def model_lint(formulas):
    # probe=False: only the static passes run — MDL01x must not need SAT
    ctx = alloy_context("seeded", formulas, False, False)
    return list(lint_model_context(ctx))


class TestModelFlowPasses:
    def test_statically_vacuous_axiom_mdl010(self):
        report = model_lint(
            {
                "triv": ast.Acyclic(ast.NoneExpr()),
                "uses": ast.Acyclic(ast.Union(ast.Rel("rf"), ast.Rel("co"))),
            }
        )
        hits = [d for d in report if d.id == "MDL010"]
        assert hits and all("triv" in d.subject for d in hits)

    def test_abstractly_false_axiom_mdl011(self):
        report = model_lint(
            {
                "bad": ast.Some(ast.NoneExpr()),
                "uses": ast.Acyclic(ast.Union(ast.Rel("rf"), ast.Rel("co"))),
            }
        )
        hits = [d for d in report if d.id == "MDL011"]
        assert hits and hits[0].severity is Severity.ERROR

    def test_dead_subexpression_mdl012(self):
        dead = ast.Inter(ast.Rel("po"), ast.Transpose(ast.Rel("po")))
        report = model_lint(
            {
                "weird": ast.Acyclic(
                    ast.Union(ast.Union(ast.Rel("rf"), ast.Rel("co")), dead)
                )
            }
        )
        hits = [d for d in report if d.id == "MDL012"]
        assert hits and "(po & ~po)" in hits[0].message

    def test_shipped_alloy_models_are_clean(self):
        for name, (factory, needs_sc) in sorted(ALLOY_MODELS.items()):
            ctx = alloy_context(f"{name}.alloy", factory(), needs_sc, False)
            flow_ids = {
                d.id
                for d in lint_model_context(ctx)
                if d.id in ("MDL010", "MDL011", "MDL012")
            }
            assert flow_ids == set(), name


# -- the LIT01x passes and the early-reject hook ----------------------------------


def litmus_lint(test, model=None):
    ctx = LitmusLintContext("seeded", test, model=model)
    return list(run_family("litmus", ctx))


class TestLitmusFlowPasses:
    def test_degenerate_candidate_lit010(self):
        lone_write = LitmusTest(((write(0, 1),),))
        report = litmus_lint(lone_write, model=get_model("sc"))
        hits = [d for d in report if d.id == "LIT010"]
        assert hits and hits[0].severity is Severity.WARNING

    def test_lit010_needs_a_model(self):
        lone_write = LitmusTest(((write(0, 1),),))
        assert not [d for d in litmus_lint(lone_write) if d.id == "LIT010"]

    def test_singleton_execution_lit011_is_informational(self):
        reads_only = LitmusTest(((read(0),), (read(1),)))
        hits = [d for d in litmus_lint(reads_only) if d.id == "LIT011"]
        assert hits and hits[0].severity is Severity.INFO

    def test_catalog_has_no_flow_findings(self):
        for entry in CATALOG.values():
            report = litmus_lint(entry.test, model=get_model(entry.model))
            assert not [d for d in report if d.id == "LIT010"], entry.name

    def test_early_reject_drops_degenerate_candidates(self):
        reject = early_reject(get_model("sc"))
        assert reject(LitmusTest(((write(0, 1),),)))
        assert not reject(CATALOG["MP"].test)


# -- the empty:fr campaign skip ---------------------------------------------------


class TestEmptyFrSkip:
    def test_statically_vacuous_mutant_is_skipped(self):
        from repro.difftest.harness import DiffHarness

        harness = DiffHarness("tso", mutants=("empty:fr",))
        no_fr = LitmusTest(((write(0, 1),), (write(1, 1),)))
        assert fr_statically_empty(no_fr)
        assert harness._check_mutant(no_fr, "empty:fr", seed=0, index=0) == []
        assert harness.mutant_skips == 1

    def test_live_fr_is_still_checked(self):
        from repro.difftest.harness import DiffHarness

        harness = DiffHarness("tso", mutants=("empty:fr",))
        harness._check_mutant(CATALOG["MP"].test, "empty:fr", seed=0, index=0)
        assert harness.mutant_skips == 0

    def test_campaign_reports_skips_and_still_kills(self):
        from repro.difftest import CampaignOptions, run_campaign

        report = run_campaign(
            CampaignOptions(
                model="tso",
                seed=0,
                budget=30,
                mutants=("empty:fr",),
                oracle_spec=OracleSpec(prefilter=True),
            )
        )
        assert report.mutant_skips > 0
        assert "empty:fr" in report.kills  # skips never mask real kills
        payload = report.to_json_dict()["payload"]
        assert payload["mutant_skips"] == report.mutant_skips
        assert f"SKIPPED  {report.mutant_skips}" in report.summary()


# -- diagnostic-id bookkeeping ----------------------------------------------------


class TestIdRegistry:
    def test_registry_is_consistent(self):
        assert id_registry_problems() == []

    def test_new_ids_are_suppressible(self):
        for diag_id in ("MDL010", "MDL011", "MDL012", "LIT010", "LIT011"):
            suppression = parse_suppression(f"{diag_id}:seeded*")
            assert suppression.id == diag_id

    def test_unknown_id_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic id"):
            parse_suppression("MDL999")
