"""Pipeline lint: degenerate CNF must be flagged, real encodings not."""

from repro.analysis.pipeline_lint import (
    context_from_dimacs,
    context_from_solver,
    lint_clause_context,
)
from repro.analysis.registry import ClauseLintContext
from repro.sat.dimacs import parse_dimacs
from repro.sat.solver import Solver


def lint(num_vars, clauses, referenced=()):
    ctx = ClauseLintContext(
        "seeded",
        num_vars=num_vars,
        clauses=clauses,
        referenced_vars=set(referenced),
    )
    return list(lint_clause_context(ctx))


def ids(diagnostics):
    return sorted(d.id for d in diagnostics)


class TestClauseShapes:
    def test_orphan_variable_sat001(self):
        # Variable 3 is allocated but no clause mentions it: the classic
        # orphan Tseitin variable.
        report = lint(3, [[1, -2], [2]])
        assert any(d.id == "SAT001" and ":v3" in d.subject for d in report)

    def test_orphan_suppressed_by_referenced_vars(self):
        report = lint(3, [[1, -2], [2]], referenced={3})
        assert not any(d.id == "SAT001" for d in report)

    def test_tautology_sat002(self):
        report = lint(2, [[1, -1, 2]])
        assert any(d.id == "SAT002" for d in report)

    def test_empty_clause_sat003(self):
        report = lint(1, [[1], []])
        assert any(d.id == "SAT003" for d in report)

    def test_duplicate_literal_sat004(self):
        report = lint(2, [[1, 1, 2]])
        assert any(d.id == "SAT004" for d in report)

    def test_out_of_range_literal_sat005(self):
        report = lint(2, [[1, -5], [2]])
        assert any(d.id == "SAT005" for d in report)

    def test_unit_clause_sat006_is_info(self):
        report = lint(2, [[1], [1, 2]])
        hits = [d for d in report if d.id == "SAT006"]
        assert hits and all(d.severity.label == "info" for d in hits)

    def test_clean_cnf(self):
        report = lint(3, [[1, -2], [2, 3], [-1, -3]])
        assert report == []


class TestContextBuilders:
    def test_from_solver_marks_trail_referenced(self):
        solver = Solver()
        for _ in range(3):
            solver.new_var()
        solver.add_clause([1])  # consumed at level 0: trail, not clauses
        solver.add_clause([2, 3])
        ctx = context_from_solver("s", solver)
        report = list(lint_clause_context(ctx))
        assert not any(d.id == "SAT001" for d in report)

    def test_from_dimacs(self):
        num_vars, clauses = parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n")
        ctx = context_from_dimacs("d", num_vars, clauses)
        assert list(lint_clause_context(ctx)) == []
