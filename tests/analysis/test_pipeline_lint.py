"""Pipeline lint: degenerate CNF must be flagged, real encodings not."""

from repro.analysis.pipeline_lint import (
    context_from_dimacs,
    context_from_solver,
    lint_clause_context,
)
from repro.analysis.registry import ClauseLintContext
from repro.sat.dimacs import parse_dimacs
from repro.sat.solver import Solver


def lint(num_vars, clauses, referenced=()):
    ctx = ClauseLintContext(
        "seeded",
        num_vars=num_vars,
        clauses=clauses,
        referenced_vars=set(referenced),
    )
    return list(lint_clause_context(ctx))


def ids(diagnostics):
    return sorted(d.id for d in diagnostics)


class TestClauseShapes:
    def test_orphan_variable_sat001(self):
        # Variable 3 is allocated but no clause mentions it: the classic
        # orphan Tseitin variable.
        report = lint(3, [[1, -2], [2]])
        assert any(d.id == "SAT001" and ":v3" in d.subject for d in report)

    def test_orphan_suppressed_by_referenced_vars(self):
        report = lint(3, [[1, -2], [2]], referenced={3})
        assert not any(d.id == "SAT001" for d in report)

    def test_tautology_sat002(self):
        report = lint(2, [[1, -1, 2]])
        assert any(d.id == "SAT002" for d in report)

    def test_empty_clause_sat003(self):
        report = lint(1, [[1], []])
        assert any(d.id == "SAT003" for d in report)

    def test_duplicate_literal_sat004(self):
        report = lint(2, [[1, 1, 2]])
        assert any(d.id == "SAT004" for d in report)

    def test_out_of_range_literal_sat005(self):
        report = lint(2, [[1, -5], [2]])
        assert any(d.id == "SAT005" for d in report)

    def test_unit_clause_sat006_is_info(self):
        report = lint(2, [[1], [1, 2]])
        hits = [d for d in report if d.id == "SAT006"]
        assert hits and all(d.severity.label == "info" for d in hits)

    def test_clean_cnf(self):
        report = lint(3, [[1, -2], [2, 3], [-1, -3]])
        assert report == []


class TestContextBuilders:
    def test_from_solver_marks_trail_referenced(self):
        solver = Solver()
        for _ in range(3):
            solver.new_var()
        solver.add_clause([1])  # consumed at level 0: trail, not clauses
        solver.add_clause([2, 3])
        ctx = context_from_solver("s", solver)
        report = list(lint_clause_context(ctx))
        assert not any(d.id == "SAT001" for d in report)

    def test_from_dimacs(self):
        num_vars, clauses = parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n")
        ctx = context_from_dimacs("d", num_vars, clauses)
        assert list(lint_clause_context(ctx)) == []


class TestOracleOptionsLint:
    def _opts(self, **kw):
        from repro.core.synthesis import OracleSpec, SynthesisOptions

        return SynthesisOptions(bound=3, oracle_spec=OracleSpec(**kw))

    def test_effective_configs_are_clean(self):
        from repro.analysis import lint_oracle_options

        assert lint_oracle_options(self._opts()) == []
        assert (
            lint_oracle_options(self._opts(oracle="relational")) == []
        )
        assert (
            lint_oracle_options(
                self._opts(oracle="relational", cnf_cache_dir="/tmp/c")
            )
            == []
        )

    def test_cold_solver_drops_cache_dir_sat007(self):
        from repro.analysis import lint_oracle_options

        report = lint_oracle_options(
            self._opts(
                oracle="relational",
                incremental=False,
                cnf_cache_dir="/tmp/c",
            )
        )
        assert ids(report) == ["SAT007"]
        assert "cnf_cache_dir" in report[0].subject

    def test_explicit_oracle_ignores_knobs_sat007(self):
        from repro.analysis import lint_oracle_options

        report = lint_oracle_options(
            self._opts(incremental=False, cnf_cache_dir="/tmp/c")
        )
        assert ids(report) == ["SAT007", "SAT007"]


class TestCnfCacheDirLint:
    def _seed(self, tmp_path, model="tso"):
        from repro.alloy import AlloyOracle
        from repro.litmus.catalog import CATALOG

        oracle = AlloyOracle(model, cnf_cache_dir=str(tmp_path))
        oracle.analyze(CATALOG["MP"].test)

    def test_clean_directory(self, tmp_path):
        from repro.analysis import lint_cnf_cache_dir

        self._seed(tmp_path)
        assert lint_cnf_cache_dir(str(tmp_path)) == []
        assert lint_cnf_cache_dir(str(tmp_path / "missing")) == []

    def test_mixed_fingerprints_sat008(self, tmp_path):
        from repro.analysis import lint_cnf_cache_dir

        self._seed(tmp_path, "tso")
        self._seed(tmp_path, "sc")
        report = lint_cnf_cache_dir(str(tmp_path))
        assert any(
            d.id == "SAT008" and "fingerprint" in d.message
            for d in report
        )

    def test_stale_schema_sat008(self, tmp_path):
        import json

        from repro.analysis import lint_cnf_cache_dir

        (tmp_path / "old.json").write_text(
            json.dumps({"schema": 0, "model": "x"})
        )
        report = lint_cnf_cache_dir(str(tmp_path))
        assert any(
            d.id == "SAT008" and "stale" in d.message for d in report
        )

    def test_corrupt_entry_sat008(self, tmp_path):
        from repro.analysis import lint_cnf_cache_dir

        (tmp_path / "junk.json").write_text("{nope")
        report = lint_cnf_cache_dir(str(tmp_path))
        assert any(
            d.id == "SAT008" and "unreadable" in d.message
            for d in report
        )


class TestWarmCompileLint:
    def test_warm_run_with_zero_hits_sat009(self):
        from repro.analysis import lint_warm_compile

        report = lint_warm_compile(
            {
                "compile_warm_entries": 8,
                "compile_hits": 0,
                "compile_misses": 8,
            },
            subject="oracle",
        )
        assert [d.id for d in report] == ["SAT009"]
        assert "compile_hit_rate 0.0" in report[0].message

    def test_cold_run_is_clean(self):
        from repro.analysis import lint_warm_compile

        # No warm entries at start: a 0.0 hit rate is expected, not a
        # finding.
        assert (
            lint_warm_compile(
                {
                    "compile_warm_entries": 0,
                    "compile_hits": 0,
                    "compile_misses": 8,
                }
            )
            == []
        )

    def test_warm_run_with_hits_is_clean(self):
        from repro.analysis import lint_warm_compile

        assert (
            lint_warm_compile(
                {
                    "compile_warm_entries": 8,
                    "compile_hits": 8,
                    "compile_misses": 0,
                }
            )
            == []
        )

    def test_warm_idle_run_is_clean(self):
        from repro.analysis import lint_warm_compile

        # Warm cache but nothing compiled (analysis cache answered
        # everything): no lookups, so no silent misses to report.
        assert (
            lint_warm_compile(
                {
                    "compile_warm_entries": 8,
                    "compile_hits": 0,
                    "compile_misses": 0,
                }
            )
            == []
        )
