"""The registry-wide self-check must run clean on the shipped repo."""

from repro.analysis.diagnostics import Severity
from repro.analysis.registry import all_passes, passes_for
from repro.analysis.selfcheck import (
    REGISTRY_SUPPRESSIONS,
    lint_catalog,
    lint_encoding_smoke,
    lint_models,
    lint_registry,
)


class TestRegistrySelfCheck:
    def test_registry_lint_is_clean(self):
        report = lint_registry()
        assert report.exit_code == 0
        assert report.diagnostics == []

    def test_intentional_findings_are_suppressed_not_dropped(self):
        # The PPOAA dependency-sink reads are real findings; they must
        # survive into the suppressed list so they cannot rot silently.
        report = lint_registry()
        assert any(
            d.id == "LIT001" and "PPOAA" in d.subject
            for d in report.suppressed
        )

    def test_every_registry_suppression_documents_a_reason(self):
        assert REGISTRY_SUPPRESSIONS
        assert all(s.reason for s in REGISTRY_SUPPRESSIONS)

    def test_models_lint_clean(self):
        assert [
            d for d in lint_models().diagnostics
            if d.severity >= Severity.WARNING
        ] == []

    def test_catalog_lint_only_expected_findings(self):
        unexpected = [
            d
            for d in lint_catalog().diagnostics
            if not any(s.matches(d) for s in REGISTRY_SUPPRESSIONS)
        ]
        assert unexpected == []

    def test_encoding_smoke_clean(self):
        assert lint_encoding_smoke().diagnostics == []


class TestPassRegistry:
    def test_families_populated(self):
        assert passes_for("model")
        assert passes_for("litmus")
        assert passes_for("pipeline")

    def test_pass_names_unique(self):
        names = [p.name for p in all_passes()]
        assert len(names) == len(set(names))
