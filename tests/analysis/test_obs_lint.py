"""OBS001/OBS002: unclosed spans and mixed-schema trace directories."""

from repro.analysis import lint_trace_dir, lint_trace_events, lint_trace_file
from repro.analysis.selfcheck import lint_obs_smoke
from repro.obs import Tracer, format_event, header_event


def _healthy_trace(path):
    with Tracer(path) as tracer:
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.counters({"n": 1})


class TestUnclosedSpans:
    def test_healthy_file_is_clean(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _healthy_trace(path)
        assert lint_trace_file(path) == []

    def test_begin_without_close_is_obs001(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            format_event(header_event())
            + format_event(
                {"ev": "begin", "id": 1, "name": "shard", "parent": None}
            )
        )
        diags = lint_trace_file(str(path))
        assert [d.id for d in diags] == ["OBS001"]
        assert "shard" in diags[0].message
        assert diags[0].severity.name == "WARNING"

    def test_events_level_api(self):
        events = [
            header_event(),
            {"ev": "begin", "id": 1, "name": "a", "parent": None},
            {"ev": "begin", "id": 2, "name": "b", "parent": 1},
            {"ev": "span", "id": 2, "name": "b", "parent": 1, "wall": 0.1},
        ]
        diags = lint_trace_events("stream", events)
        assert [d.id for d in diags] == ["OBS001"]
        assert "span#1" in diags[0].subject


class TestTraceDirSchemas:
    def test_healthy_dir_is_clean(self, tmp_path):
        _healthy_trace(str(tmp_path / "driver.jsonl"))
        _healthy_trace(str(tmp_path / "shard-0000.jsonl"))
        assert lint_trace_dir(str(tmp_path)) == []

    def test_missing_dir_is_obs002_error(self, tmp_path):
        diags = lint_trace_dir(str(tmp_path / "nope"))
        assert [d.id for d in diags] == ["OBS002"]
        assert diags[0].severity.name == "ERROR"

    def test_headerless_file_is_obs002(self, tmp_path):
        (tmp_path / "weird.jsonl").write_text(
            format_event({"ev": "span", "id": 1, "name": "x", "wall": 0.1})
        )
        diags = lint_trace_dir(str(tmp_path))
        assert [d.id for d in diags] == ["OBS002"]
        assert "no header" in diags[0].message

    def test_mixed_schemas_are_obs002(self, tmp_path):
        _healthy_trace(str(tmp_path / "driver.jsonl"))
        (tmp_path / "old.jsonl").write_text(
            format_event(
                {"ev": "header", "schema": {"name": "repro-trace", "version": 0}}
            )
        )
        diags = lint_trace_dir(str(tmp_path))
        assert any(
            d.id == "OBS002" and "mixes trace schemas" in d.message
            for d in diags
        )

    def test_foreign_schema_is_obs002(self, tmp_path):
        (tmp_path / "t.jsonl").write_text(
            format_event(
                {"ev": "header", "schema": {"name": "other-tool", "version": 9}}
            )
        )
        diags = lint_trace_dir(str(tmp_path))
        assert any(
            d.id == "OBS002" and "other-tool" in d.message for d in diags
        )

    def test_unclosed_spans_surface_through_dir_lint(self, tmp_path):
        (tmp_path / "shard-0000.jsonl").write_text(
            format_event(header_event())
            + format_event(
                {"ev": "begin", "id": 1, "name": "shard", "parent": None}
            )
        )
        diags = lint_trace_dir(str(tmp_path))
        assert [d.id for d in diags] == ["OBS001"]

    def test_real_synthesis_trace_is_clean(self, tmp_path):
        from repro.core.enumerator import EnumerationConfig
        from repro.core.synthesis import SynthesisOptions, synthesize
        from repro.models.registry import get_model

        trace_dir = str(tmp_path / "t")
        synthesize(
            get_model("sc"),
            SynthesisOptions(
                bound=3,
                config=EnumerationConfig(
                    max_events=3, max_addresses=1, max_deps=0, max_rmws=0
                ),
                trace_dir=trace_dir,
            ),
        )
        assert lint_trace_dir(trace_dir) == []


class TestRegistrySelfCheck:
    def test_obs_smoke_is_clean(self):
        report = lint_obs_smoke()
        assert report.diagnostics == []

    def test_obs_smoke_runs_in_lint_registry(self, monkeypatch):
        # lint_registry must invoke the obs tracer smoke; verify by
        # making it the only contributor of a sentinel diagnostic.
        from repro.analysis import selfcheck
        from repro.analysis.diagnostics import Diagnostic, Report, Severity

        sentinel = Report()
        sentinel.extend(
            [
                Diagnostic(
                    "OBS001",
                    Severity.WARNING,
                    "obs:sentinel",
                    "sentinel",
                )
            ]
        )
        monkeypatch.setattr(selfcheck, "lint_obs_smoke", lambda: sentinel)
        full = selfcheck.lint_registry(probe=False)
        assert any(d.subject == "obs:sentinel" for d in full.diagnostics)
