"""DIF001/DIF002: corpus staleness and mutant-tag config lints."""

from repro.analysis import (
    Severity,
    lint_corpus,
    lint_mutant_registry,
    lint_mutant_tags,
)
from repro.difftest.campaign import CampaignOptions, run_campaign
from repro.difftest.corpus import Corpus
from repro.difftest.discrepancy import Discrepancy
from repro.litmus.catalog import CATALOG


class TestLintCorpus:
    def test_clean_corpus(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        report = run_campaign(
            CampaignOptions(
                model="sc",
                seed=17,
                budget=30,
                mutants=("drop:sequential_consistency",),
                corpus_dir=corpus_dir,
            )
        )
        assert report.corpus_added >= 1
        assert lint_corpus(corpus_dir) == []

    def test_missing_directory_is_clean(self, tmp_path):
        assert lint_corpus(str(tmp_path / "never")) == []

    def test_stale_entry_flagged(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        ghost = Discrepancy(
            "outcome-set", "sc", CATALOG["MP"].test, "fabricated"
        )
        Corpus(corpus_dir).append("sc", [ghost])
        findings = lint_corpus(corpus_dir)
        assert [d.id for d in findings] == ["DIF001"]
        assert findings[0].severity is Severity.WARNING
        assert "no longer reproduces" in findings[0].message

    def test_unknown_mutant_entry_flagged(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        ghost = Discrepancy(
            "mutant", "tso", CATALOG["CoRW"].test, "gone",
            mutant="drop:removed_axiom",
        )
        Corpus(corpus_dir).append("tso", [ghost])
        findings = lint_corpus(corpus_dir)
        assert [d.id for d in findings] == ["DIF002"]
        assert findings[0].severity is Severity.ERROR

    def test_unregistered_model_file_flagged(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        ghost = Discrepancy("outcome-set", "sc", CATALOG["MP"].test, "x")
        Corpus(corpus_dir).append("not_a_model", [ghost])
        findings = lint_corpus(corpus_dir)
        assert [d.id for d in findings] == ["DIF001"]
        assert "unregistered model" in findings[0].message


class TestLintMutantTags:
    def test_known_tags_clean(self):
        assert lint_mutant_tags("tso", ("drop:sc_per_loc", "empty:fr")) == []

    def test_unknown_tag_flagged(self):
        findings = lint_mutant_tags("tso", ("drop:sc_per_loc", "bogus:x"))
        assert [d.id for d in findings] == ["DIF002"]
        assert findings[0].severity is Severity.ERROR
        assert "bogus:x" in findings[0].message

    def test_unknown_model_flagged(self):
        findings = lint_mutant_tags("not_a_model", ())
        assert [d.id for d in findings] == ["DIF002"]


class TestMutantRegistrySelfCheck:
    def test_shipped_registry_is_clean(self):
        assert lint_mutant_registry().diagnostics == []
