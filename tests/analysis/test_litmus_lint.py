"""Litmus lint: seeded defects must fire, catalog entries must not."""

from repro.analysis.litmus_lint import early_reject, find_duplicate_tests
from repro.analysis.registry import LitmusLintContext, run_family
from repro.core.enumerator import EnumerationConfig, enumerate_tests
from repro.litmus.catalog import CATALOG
from repro.litmus.events import FenceKind, Order, fence, read, write
from repro.litmus.execution import Outcome
from repro.litmus.test import LitmusTest
from repro.models.registry import get_model


def lint(test, outcome=None, model=None, name="seeded"):
    ctx = LitmusLintContext(name, test, outcome=outcome, model=model)
    return list(run_family("litmus", ctx))


def ids(diagnostics):
    return sorted(d.id for d in diagnostics)


class TestUnwrittenRead:
    def test_lit001_fires(self):
        test = LitmusTest(((write(0, 1), read(1)), (read(0),)))
        report = lint(test)
        assert any(d.id == "LIT001" and ":e1" in d.subject for d in report)

    def test_written_locations_clean(self):
        assert lint(CATALOG["MP"].test) == []


class TestOutcomeEvents:
    def test_uninitialized_register_lit002(self):
        test = CATALOG["MP"].test
        # Constrain register r99: no such read exists in the test.
        bad = Outcome(rf_sources=((99, None),), finals=())
        report = lint(test, outcome=bad)
        assert any(d.id == "LIT002" for d in report)

    def test_rf_source_not_a_write_lit002(self):
        test = CATALOG["MP"].test  # e2 is a read, not a write
        bad = Outcome(rf_sources=((2, 3),), finals=())
        report = lint(test, outcome=bad)
        assert any(d.id == "LIT002" for d in report)

    def test_rf_address_mismatch_lit005(self):
        test = CATALOG["MP"].test  # e3 reads x; e1 writes y
        bad = Outcome(rf_sources=((3, 1),), finals=())
        report = lint(test, outcome=bad)
        assert any(d.id == "LIT005" for d in report)

    def test_final_value_unknown_address_lit002(self):
        test = CATALOG["MP"].test
        bad = Outcome(rf_sources=(), finals=((7, None),))
        report = lint(test, outcome=bad)
        assert any(d.id == "LIT002" for d in report)

    def test_recorded_catalog_outcomes_clean(self):
        for entry in CATALOG.values():
            assert not [
                d
                for d in lint(entry.test, outcome=entry.forbidden)
                if d.id in ("LIT002", "LIT005")
            ], entry.name


class TestDeadSync:
    def test_dead_fence_lit003(self):
        # An x86 MFENCE means nothing to Power: no Power relaxation can
        # weaken it, so it is dead synchronization there.
        test = LitmusTest(
            (
                (write(0, 1), fence(FenceKind.MFENCE), write(1, 1)),
                (read(1), read(0)),
            )
        )
        report = lint(test, model=get_model("power"))
        assert any(d.id == "LIT003" and ":e1" in d.subject for d in report)

    def test_dead_order_lit003(self):
        test = LitmusTest(((write(0, 1),), (read(0, Order.ACQ),)))
        report = lint(test, model=get_model("tso"))
        assert any(d.id == "LIT003" for d in report)

    def test_vocabulary_annotations_clean(self):
        test = LitmusTest(
            (
                (write(0, 1), fence(FenceKind.SYNC), write(1, 1)),
                (read(1), read(0)),
            )
        )
        assert lint(test, model=get_model("power")) == []

    def test_no_model_no_dead_sync_check(self):
        test = LitmusTest(((write(0, 1),), (read(0, Order.ACQ),)))
        assert lint(test) == []


class TestDuplicateTests:
    def test_lit004_on_thread_permutation(self):
        mp = CATALOG["MP"].test
        swapped = LitmusTest(tuple(reversed(mp.threads)))
        report = list(
            find_duplicate_tests([("MP", mp), ("MP-swapped", swapped)])
        )
        assert [d.id for d in report] == ["LIT004"]
        assert "MP-swapped" in report[0].subject

    def test_catalog_has_no_duplicates(self):
        report = list(
            find_duplicate_tests(
                (e.name, e.test) for e in CATALOG.values()
            )
        )
        assert report == []


class TestEarlyReject:
    def test_rejects_unwritten_read_candidate(self):
        reject = early_reject()
        bad = LitmusTest(((write(0, 1), read(1)), (read(0),)))
        assert reject(bad)
        assert not reject(CATALOG["MP"].test)

    def test_enumerator_honours_reject_hook(self):
        vocab = get_model("tso").vocabulary
        config = EnumerationConfig(
            max_events=3, max_addresses=2, require_communication=False
        )
        baseline = list(enumerate_tests(vocab, config))
        filtered = list(
            enumerate_tests(vocab, config, reject=early_reject())
        )
        assert 0 < len(filtered) < len(baseline)
        reject = early_reject()
        assert all(not reject(t) for t in filtered)
