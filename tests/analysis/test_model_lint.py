"""Model lint: seeded defects must fire, shipped models must not."""

from repro.analysis.model_lint import (
    alloy_context,
    lint_model_context,
    model_context,
    referenced_relations,
)
from repro.litmus.events import Order
from repro.models.base import MemoryModel, Vocabulary
from repro.models.registry import available_models, get_model
from repro.relational import ast


def ids(diagnostics):
    return sorted(d.id for d in diagnostics)


def run(formulas):
    return list(lint_model_context(alloy_context("seeded", formulas)))


class TestAstWalker:
    def test_collects_all_relation_names(self):
        f = ast.Acyclic(ast.Rel("rf") + ast.Rel("co").join(ast.Rel("po")))
        assert referenced_relations(f) == {"rf", "co", "po"}


class TestSeededAstDefects:
    def test_unused_free_relation_mdl001(self):
        # co is a free relation of every encoding; an axiom set that only
        # constrains rf leaves it dangling.
        report = run({"only_rf": ast.Acyclic(ast.Rel("rf") + ast.Rel("po"))})
        unused = [d for d in report if d.id == "MDL001"]
        assert unused and any("co" in d.subject for d in unused)

    def test_vacuous_axiom_mdl002(self):
        # rf alone is acyclic in every well-formed execution.
        report = run(
            {
                "vacuous": ast.Acyclic(ast.Rel("rf")),
                "uses_co": ast.Acyclic(ast.Rel("co") + ast.Rel("rf")),
            }
        )
        assert any(
            d.id == "MDL002" and "vacuous" in d.subject for d in report
        )

    def test_unsat_axiom_mdl003(self):
        # Every probe has a multi-event thread, so po is never empty.
        report = run(
            {
                "unsat": ast.No(ast.Rel("po")),
                "uses_free": ast.Acyclic(ast.Rel("rf") + ast.Rel("co")),
            }
        )
        assert any(d.id == "MDL003" and "unsat" in d.subject for d in report)

    def test_closure_misuse_mdl004(self):
        report = run(
            {
                "warn": ast.Acyclic(ast.Closure(ast.Rel("po"))),
                "err": ast.Irreflexive(ast.RClosure(ast.Rel("po"))),
                "uses_free": ast.Acyclic(ast.Rel("rf") + ast.Rel("co")),
            }
        )
        hits = [d for d in report if d.id == "MDL004"]
        assert {d.severity.label for d in hits} == {"warning", "error"}

    def test_duplicate_axiom_mdl005(self):
        body = ast.Acyclic(ast.Rel("rf") + ast.Rel("co"))
        report = run({"a": body, "b": body})
        assert any(d.id == "MDL005" for d in report)


class _BrokenModel(MemoryModel):
    """Executable model seeded with a vacuous and an unsat axiom, plus a
    workaround set that drifted out of sync."""

    name = "broken"
    full_name = "seeded-defect model"

    @property
    def vocabulary(self) -> Vocabulary:
        return Vocabulary(
            read_orders=(Order.PLAIN,), write_orders=(Order.PLAIN,)
        )

    def axioms(self):
        return {"always": lambda v: True, "never": lambda v: False}

    def wa_axioms(self):
        return {"always": lambda v: True}


class TestSeededCallableDefects:
    def test_vacuous_unsat_and_wa_drift(self):
        report = list(lint_model_context(model_context(_BrokenModel())))
        found = ids(report)
        assert "MDL002" in found  # 'always' never rejects
        assert "MDL003" in found  # 'never' rejects everything
        assert "MDL006" in found  # wa_axioms key drift


class TestShippedModelsClean:
    def test_every_registered_model_is_clean(self):
        for name in available_models():
            ctx = model_context(get_model(name))
            assert list(lint_model_context(ctx)) == [], name
