"""Canonicalization over enhanced tests: idempotence and invariance.

The canonicalizer treats the alias map as part of the symmetry class:
renaming addresses re-anchors each alias group at its minimal renamed
member, so both orientations of a merge land on one canonical form.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import canonical_form
from repro.litmus.events import (
    Instruction,
    dirty,
    ptwalk,
    read,
    remap,
    write,
)
from repro.litmus.test import LitmusTest


def _instruction():
    addr = st.integers(0, 2)
    return st.one_of(
        st.builds(read, addr),
        st.builds(write, addr, st.none()),
        st.builds(ptwalk, addr),
        st.builds(remap, addr, st.none()),
        st.builds(dirty, addr, st.none()),
    )


_base = (
    st.lists(
        st.lists(_instruction(), min_size=1, max_size=3).map(tuple),
        min_size=1,
        max_size=3,
    )
    .map(tuple)
    .filter(lambda ts: 2 <= sum(len(t) for t in ts) <= 5)
    .map(LitmusTest)
)


@st.composite
def enhanced_tests(draw):
    test = draw(_base)
    addrs = sorted(test.addresses)
    if len(addrs) >= 2 and draw(st.booleans()):
        pairs = [(a, b) for a in addrs for b in addrs if a != b]
        v, p = draw(st.sampled_from(pairs))
        test = LitmusTest(
            test.threads,
            test.rmw,
            test.deps,
            test.scopes,
            None,
            ((v, p),),
        )
    return test


def permute_threads(test, seed):
    rng = random.Random(seed)
    order = list(range(len(test.threads)))
    rng.shuffle(order)
    return LitmusTest(
        tuple(test.threads[t] for t in order),
        test.rmw,
        test.deps,
        test.scopes,
        None,
        test.addr_map,
    )


def rename_addresses(test, seed):
    rng = random.Random(seed)
    addrs = list(test.addresses)
    renamed = addrs[:]
    rng.shuffle(renamed)
    mapping = dict(zip(addrs, renamed))
    threads = tuple(
        tuple(
            inst
            if inst.address is None
            else Instruction(
                inst.kind,
                mapping[inst.address],
                inst.order,
                inst.fence,
                inst.value,
                inst.scope,
            )
            for inst in thread
        )
        for thread in test.threads
    )
    addr_map = test.addr_map
    if addr_map is not None:
        addr_map = tuple(
            sorted((mapping[v], mapping[p]) for v, p in addr_map)
        )
    return LitmusTest(
        threads, test.rmw, test.deps, test.scopes, None, addr_map
    )


@given(enhanced_tests())
@settings(max_examples=80, deadline=None)
def test_idempotent(test):
    once = canonical_form(test)
    assert canonical_form(once) == once


@given(enhanced_tests(), st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_thread_permutation_invariant(test, seed):
    assert canonical_form(test) == canonical_form(
        permute_threads(test, seed)
    )


@given(enhanced_tests(), st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_alias_orientation_is_a_symmetry(test, seed):
    # flipping one entry's orientation (v<->p) names the same merged
    # location, so both spellings canonicalize identically
    if test.addr_map is None:
        return
    ((v, p),) = test.addr_map
    flipped = LitmusTest(
        test.threads,
        test.rmw,
        test.deps,
        test.scopes,
        None,
        ((p, v),),
    )
    assert canonical_form(test) == canonical_form(flipped)


@given(enhanced_tests())
@settings(max_examples=60, deadline=None)
def test_canonical_preserves_vmem_shape(test):
    canon = canonical_form(test)
    assert canon.num_events == test.num_events
    assert sorted(i.kind.value for i in canon.instructions) == sorted(
        i.kind.value for i in test.instructions
    )
    assert (canon.addr_map is None) == (test.addr_map is None)
