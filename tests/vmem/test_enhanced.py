"""Enhanced-test helpers: demotion, lowering, and outcome pruning."""

import pytest

from repro.litmus.events import (
    EventKind,
    dirty,
    ptwalk,
    read,
    remap,
    write,
)
from repro.litmus.execution import Outcome, prune_outcome
from repro.litmus.test import LitmusTest
from repro.models.registry import get_model
from repro.relax.base import remove_event
from repro.relax.transistency import DemoteVmemEvent, UnaliasAddress
from repro.vmem.enhanced import (
    demote_instruction,
    is_enhanced,
    lower_test,
    vmem_events,
)


ENHANCED = LitmusTest(
    ((remap(0, 1), dirty(1, 1)), (ptwalk(0), read(1))),
    name="enhanced",
)

ALIASED = LitmusTest(
    ((write(1, 1), read(0)), (write(0, 2),)),
    addr_map=((1, 0),),
    name="aliased",
)


class TestEnhancedPredicates:
    def test_is_enhanced(self):
        assert is_enhanced(ENHANCED)
        assert is_enhanced(ALIASED)
        assert not is_enhanced(LitmusTest(((write(0, 1),), (read(0),))))

    def test_vmem_events(self):
        assert vmem_events(ENHANCED) == (0, 1, 2)

    def test_demote_instruction(self):
        assert demote_instruction(ptwalk(0)).kind is EventKind.READ
        assert demote_instruction(remap(0, 1)).kind is EventKind.WRITE
        assert demote_instruction(dirty(0, 1)).kind is EventKind.WRITE
        # addresses and values survive the demotion
        assert demote_instruction(remap(2, 7)).address == 2
        assert demote_instruction(remap(2, 7)).value == 7

    def test_lower_test(self):
        lowered = lower_test(ENHANCED)
        assert not is_enhanced(lowered)
        assert lowered.num_events == ENHANCED.num_events
        lowered_aliased = lower_test(ALIASED)
        assert lowered_aliased.addr_map is None


class TestPruneOutcome:
    def test_noop_on_well_formed(self):
        t = LitmusTest(((write(0, 1),), (read(0),)))
        outcome = Outcome(((1, 0),), ((0, 0),))
        assert prune_outcome(t, outcome) == outcome

    def test_drops_cross_location_rf_after_unalias(self):
        vocab = get_model("sc_vmem").vocabulary
        ua = UnaliasAddress()
        (app,) = ua.applications(ALIASED, vocab)
        split = ua.apply(ALIASED, app, vocab).test
        assert split.addr_map is None
        # the read of 0 can no longer observe the write to 1
        outcome = Outcome(((1, 0),), ())
        assert prune_outcome(split, outcome) == Outcome((), ())

    def test_keeps_initial_value_constraints(self):
        t = LitmusTest(((write(0, 1),), (read(0),)))
        outcome = Outcome(((1, None),), ((0, None),))
        assert prune_outcome(t, outcome) == outcome


class TestTransistencyRelaxations:
    def test_dv_applications_cover_all_vmem_events(self):
        vocab = get_model("sc_vmem").vocabulary
        apps = list(DemoteVmemEvent().applications(ENHANCED, vocab))
        assert [a.target for a in apps] == [0, 1, 2]

    def test_dv_apply_demotes_exactly_one(self):
        vocab = get_model("sc_vmem").vocabulary
        dv = DemoteVmemEvent()
        apps = list(dv.applications(ENHANCED, vocab))
        relaxed = dv.apply(ENHANCED, apps[0], vocab).test
        assert relaxed.instruction(0).kind is EventKind.WRITE
        assert relaxed.instruction(1).kind is EventKind.DIRTY
        assert relaxed.instruction(2).kind is EventKind.PTWALK

    def test_ua_splits_the_location(self):
        vocab = get_model("sc_vmem").vocabulary
        ua = UnaliasAddress()
        (app,) = ua.applications(ALIASED, vocab)
        split = ua.apply(ALIASED, app, vocab).test
        assert split.addr_map is None
        assert set(split.locations) == {0, 1}

    def test_not_applicable_without_vmem(self):
        vocab = get_model("sc").vocabulary
        assert not DemoteVmemEvent().applies_to(vocab)
        assert not UnaliasAddress().applies_to(vocab)


class TestRemoveEventAddrMap:
    def test_map_survives_unrelated_removal(self):
        relaxed = remove_event(ALIASED, 1)  # drop the plain read
        assert relaxed.test.addr_map == ((1, 0),)

    def test_map_dissolves_when_alias_loses_access(self):
        relaxed = remove_event(ALIASED, 0)  # drop the write to virtual 1
        assert relaxed.test.addr_map is None
