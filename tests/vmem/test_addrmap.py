"""Alias-map enumeration and application."""

import pytest

from repro.litmus.events import read, write
from repro.litmus.test import LitmusTest
from repro.vmem.addrmap import alias_maps, apply_alias_map


class TestAliasMaps:
    def test_zero_budget_yields_nothing(self):
        assert list(alias_maps(3, 0)) == []

    def test_single_address_cannot_alias(self):
        assert list(alias_maps(1, 2)) == []

    def test_two_addresses_one_merge(self):
        assert list(alias_maps(2, 1)) == [((1, 0),)]

    def test_three_addresses_budget_one(self):
        maps = list(alias_maps(3, 1))
        assert ((1, 0),) in maps
        assert ((2, 0),) in maps
        assert ((2, 1),) in maps
        assert len(maps) == 3

    def test_budget_two_includes_full_merge(self):
        maps = list(alias_maps(3, 2))
        assert ((1, 0), (2, 0)) in maps
        assert len(maps) == 4  # three single merges + the triple group

    def test_maps_are_canonical(self):
        # every group is anchored at its minimal member and entries sort
        for amap in alias_maps(4, 3):
            assert amap == tuple(sorted(amap))
            reps = {p for _, p in amap}
            keys = {v for v, _ in amap}
            assert not reps & keys, "no chains"
            for v, p in amap:
                assert p < v, "groups anchor at their minimal member"


class TestApplyAliasMap:
    def test_merges_locations(self):
        t = LitmusTest(((write(0, 1),), (read(1),)))
        aliased = apply_alias_map(t, ((1, 0),))
        assert aliased.addr_map == ((1, 0),)
        assert aliased.locations == (0,)
        assert aliased.location_of(1) == 0
        assert set(aliased.aliases_of(0)) == {0, 1}

    def test_identity_preserved(self):
        t = LitmusTest(((write(0, 1),), (read(1),)))
        aliased = apply_alias_map(t, ((1, 0),))
        assert aliased.threads == t.threads
        assert aliased.rmw == t.rmw
        assert aliased.deps == t.deps

    def test_rejects_unused_address(self):
        t = LitmusTest(((write(0, 1),), (read(1),)))
        with pytest.raises(ValueError):
            apply_alias_map(t, ((2, 0),))
