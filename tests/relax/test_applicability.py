"""Table 2 reproduction tests."""

from repro.relax.applicability import (
    RELAXATION_COLUMNS,
    Applicability,
    applicability_row,
    applicability_table,
    format_table,
)
from repro.models.registry import get_model


class TestTable2:
    def test_all_models_present(self):
        table = applicability_table()
        for name in (
            "sc",
            "tso",
            "power",
            "armv7",
            "armv8",
            "itanium",
            "scc",
            "hsa",
            "c11",
            "opencl",
        ):
            assert name in table

    def test_every_row_has_all_columns(self):
        for row in applicability_table().values():
            assert set(row) == set(RELAXATION_COLUMNS)

    def test_ri_applies_everywhere(self):
        for row in applicability_table().values():
            assert row["RI"] is Applicability.YES

    def test_tso_row(self):
        row = applicability_table()["tso"]
        assert row["DRMW"] is Applicability.YES
        assert row["DF"] is Applicability.NO
        assert row["DMO"] is Applicability.NO
        assert row["RD"] is Applicability.NO
        assert row["DS"] is Applicability.NO

    def test_power_row(self):
        row = applicability_table()["power"]
        assert row["DF"] is Applicability.YES
        assert row["RD"] is Applicability.YES
        assert row["DMO"] is Applicability.NO

    def test_scc_rd_is_thin_air_only(self):
        # paper Table 2 footnote 2
        row = applicability_table()["scc"]
        assert row["RD"] is Applicability.THIN_AIR_ONLY
        assert bool(row["RD"])

    def test_c11_row(self):
        row = applicability_table()["c11"]
        assert row["DMO"] is Applicability.YES
        assert row["DF"] is Applicability.YES
        assert row["RD"] is Applicability.THIN_AIR_ONLY
        assert row["DS"] is Applicability.NO

    def test_scoped_models_have_ds(self):
        table = applicability_table()
        assert table["hsa"]["DS"] is Applicability.YES
        assert table["opencl"]["DS"] is Applicability.YES

    def test_armv8_footnote_1(self):
        # paper: DF "would apply if model formalizations filled in the
        # missing features"
        row = applicability_table()["armv8"]
        assert row["DF"] is Applicability.MISSING_FEATURE
        assert not bool(row["DF"])

    def test_derived_rows_match_vocabulary(self):
        for name in ("sc", "tso", "power", "armv7", "scc", "c11"):
            vocab = get_model(name).vocabulary
            row = applicability_row(vocab)
            assert bool(row["DRMW"]) == vocab.allows_rmw
            assert bool(row["DF"]) == vocab.has_fence_demotions
            assert bool(row["DMO"]) == vocab.has_orders
            assert bool(row["RD"]) == vocab.has_deps
            assert bool(row["DS"]) == vocab.has_scopes

    def test_format_table_renders(self):
        text = format_table()
        assert "RI" in text and "tso" in text and "footnote" not in text
        assert "no-thin-air" in text
