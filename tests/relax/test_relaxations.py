"""Unit tests for the six instruction relaxations."""

import pytest

from repro.litmus.events import (
    DepKind,
    FenceKind,
    Order,
    Scope,
    fence,
    read,
    write,
)
from repro.litmus.test import Dep, LitmusTest
from repro.models.registry import get_model
from repro.relax.instruction import (
    ALL_RELAXATIONS,
    DecomposeRMW,
    DemoteFence,
    DemoteMemoryOrder,
    DemoteScope,
    RemoveDependency,
    RemoveInstruction,
    relaxations_for,
)

TSO_VOCAB = get_model("tso").vocabulary
POWER_VOCAB = get_model("power").vocabulary
SCC_VOCAB = get_model("scc").vocabulary
C11_VOCAB = get_model("c11").vocabulary


def mp():
    return LitmusTest(((write(0, 1), write(1, 1)), (read(1), read(0))))


class TestRemoveInstruction:
    def test_applies_to_every_event(self):
        apps = list(RemoveInstruction().applications(mp(), TSO_VOCAB))
        assert [a.target for a in apps] == [0, 1, 2, 3]

    def test_not_applicable_to_singleton(self):
        t = LitmusTest(((write(0, 1),),))
        assert not list(RemoveInstruction().applications(t, TSO_VOCAB))

    def test_event_map(self):
        ri = RemoveInstruction()
        app = list(ri.applications(mp(), TSO_VOCAB))[1]
        relaxed = ri.apply(mp(), app, TSO_VOCAB)
        assert relaxed.event_map == {0: 0, 1: None, 2: 1, 3: 2}
        assert relaxed.test.num_events == 3

    def test_empty_thread_dropped(self):
        t = LitmusTest(((write(0, 1),), (read(0),)))
        ri = RemoveInstruction()
        app = list(ri.applications(t, TSO_VOCAB))[0]
        relaxed = ri.apply(t, app, TSO_VOCAB)
        assert len(relaxed.test.threads) == 1
        assert relaxed.event_map == {0: None, 1: 0}

    def test_scope_groups_follow_threads(self):
        t = LitmusTest(
            ((write(0, 1),), (read(0),)), scopes=(0, 1)
        )
        ri = RemoveInstruction()
        app = list(ri.applications(t, TSO_VOCAB))[0]
        relaxed = ri.apply(t, app, TSO_VOCAB)
        assert relaxed.test.scopes == (1,)

    def test_rmw_pair_dropped_with_half(self):
        t = LitmusTest(
            ((read(0), write(0)), (write(0, 9),)),
            rmw=frozenset({(0, 1)}),
        )
        ri = RemoveInstruction()
        app = list(ri.applications(t, TSO_VOCAB))[0]
        relaxed = ri.apply(t, app, TSO_VOCAB)
        assert relaxed.test.rmw == frozenset()

    def test_deps_dropped_with_endpoint(self):
        t = LitmusTest(
            ((read(0), write(1, 1)),),
            deps=frozenset({Dep(0, 1, DepKind.DATA)}),
        )
        ri = RemoveInstruction()
        app = list(ri.applications(t, POWER_VOCAB))[1]
        relaxed = ri.apply(t, app, POWER_VOCAB)
        assert relaxed.test.deps == frozenset()

    def test_renumbering_preserves_rmw(self):
        t = LitmusTest(
            ((write(1, 5),), (read(0), write(0)),),
            rmw=frozenset({(1, 2)}),
        )
        ri = RemoveInstruction()
        app = list(ri.applications(t, TSO_VOCAB))[0]
        relaxed = ri.apply(t, app, TSO_VOCAB)
        assert relaxed.test.rmw == frozenset({(0, 1)})


class TestDemoteMemoryOrder:
    def test_applications_follow_lattice(self):
        t = LitmusTest(((read(0, Order.ACQ), write(0, 1, Order.REL)),))
        apps = list(DemoteMemoryOrder().applications(t, SCC_VOCAB))
        assert {(a.target, a.detail) for a in apps} == {
            (0, "PLAIN"),
            (1, "PLAIN"),
        }

    def test_sc_has_two_variants_in_c11(self):
        t = LitmusTest(((write(0, 1, Order.SC),),))
        apps = list(DemoteMemoryOrder().applications(t, C11_VOCAB))
        assert {a.detail for a in apps} == {"ACQ", "REL"}

    def test_apply(self):
        t = LitmusTest(((read(0, Order.ACQ),), (write(0, 1),)))
        dmo = DemoteMemoryOrder()
        app = list(dmo.applications(t, SCC_VOCAB))[0]
        relaxed = dmo.apply(t, app, SCC_VOCAB)
        assert relaxed.test.instruction(0).order is Order.PLAIN
        assert relaxed.event_map == {0: 0, 1: 1}

    def test_no_applications_for_plain(self):
        assert not list(DemoteMemoryOrder().applications(mp(), SCC_VOCAB))

    def test_not_applicable_to_tso(self):
        assert not DemoteMemoryOrder().applies_to(TSO_VOCAB)


class TestDemoteFence:
    def test_sync_demotes_to_lwsync(self):
        t = LitmusTest(((write(0, 1), fence(FenceKind.SYNC), read(1)),))
        df = DemoteFence()
        apps = list(df.applications(t, POWER_VOCAB))
        assert len(apps) == 1
        relaxed = df.apply(t, apps[0], POWER_VOCAB)
        assert relaxed.test.instruction(1).fence is FenceKind.LWSYNC

    def test_lwsync_has_no_demotion(self):
        t = LitmusTest(
            ((write(0, 1), fence(FenceKind.LWSYNC), read(1)),)
        )
        assert not list(DemoteFence().applications(t, POWER_VOCAB))

    def test_not_applicable_to_tso(self):
        assert not DemoteFence().applies_to(TSO_VOCAB)


class TestDecomposeRMW:
    def rmw_test(self):
        return LitmusTest(
            ((read(0), write(0)), (write(0, 9),)),
            rmw=frozenset({(0, 1)}),
        )

    def test_removes_pairing(self):
        drmw = DecomposeRMW()
        t = self.rmw_test()
        app = list(drmw.applications(t, TSO_VOCAB))[0]
        relaxed = drmw.apply(t, app, TSO_VOCAB)
        assert relaxed.test.rmw == frozenset()
        assert relaxed.test.deps == frozenset()  # TSO has no data deps

    def test_keeps_data_dep_when_model_has_them(self):
        drmw = DecomposeRMW()
        t = self.rmw_test()
        app = list(drmw.applications(t, POWER_VOCAB))[0]
        relaxed = drmw.apply(t, app, POWER_VOCAB)
        assert Dep(0, 1, DepKind.DATA) in relaxed.test.deps

    def test_bad_target_raises(self):
        from repro.relax.base import Application

        with pytest.raises(ValueError):
            DecomposeRMW().apply(
                self.rmw_test(), Application("DRMW", 2), TSO_VOCAB
            )


class TestRemoveDependency:
    def test_removes_all_deps_from_source(self):
        t = LitmusTest(
            ((read(0), write(1, 1), write(2, 1)),),
            deps=frozenset(
                {Dep(0, 1, DepKind.DATA), Dep(0, 2, DepKind.ADDR)}
            ),
        )
        rd = RemoveDependency()
        apps = list(rd.applications(t, POWER_VOCAB))
        assert len(apps) == 1
        relaxed = rd.apply(t, apps[0], POWER_VOCAB)
        assert relaxed.test.deps == frozenset()

    def test_rmw_read_also_targeted(self):
        # paper Fig. 6: rmw_p excludes pairs whose load was RD'ed.
        t = LitmusTest(
            ((read(0), write(0)),), rmw=frozenset({(0, 1)})
        )
        rd = RemoveDependency()
        apps = list(rd.applications(t, POWER_VOCAB))
        assert [a.target for a in apps] == [0]
        relaxed = rd.apply(t, apps[0], POWER_VOCAB)
        assert relaxed.test.rmw == frozenset()

    def test_silent_for_depless_vocab(self):
        t = LitmusTest(
            ((read(0), write(0)),), rmw=frozenset({(0, 1)})
        )
        assert not list(RemoveDependency().applications(t, TSO_VOCAB))


class TestDemoteScope:
    def scoped_vocab(self):
        from repro.models.base import Vocabulary

        return Vocabulary(
            scopes=(Scope.WORKGROUP, Scope.DEVICE, Scope.SYSTEM)
        )

    def test_demotes_one_level(self):
        vocab = self.scoped_vocab()
        t = LitmusTest(
            ((write(0, 1, scope=Scope.SYSTEM),), (read(0),)),
            scopes=(0, 1),
        )
        ds = DemoteScope()
        apps = list(ds.applications(t, vocab))
        assert len(apps) == 1
        relaxed = ds.apply(t, apps[0], vocab)
        assert relaxed.test.instruction(0).scope is Scope.DEVICE

    def test_lowest_scope_not_demotable(self):
        vocab = self.scoped_vocab()
        t = LitmusTest(
            ((write(0, 1, scope=Scope.WORKGROUP),), (read(0),)),
            scopes=(0, 1),
        )
        assert not list(DemoteScope().applications(t, vocab))

    def test_unscoped_models_skip(self):
        assert not DemoteScope().applies_to(TSO_VOCAB)


class TestRelaxationsFor:
    def test_tso_row(self):
        names = {r.name for r in relaxations_for(TSO_VOCAB)}
        assert names == {"RI", "DRMW"}

    def test_power_row(self):
        names = {r.name for r in relaxations_for(POWER_VOCAB)}
        assert names == {"RI", "DRMW", "DF", "RD"}

    def test_scc_row(self):
        names = {r.name for r in relaxations_for(SCC_VOCAB)}
        assert names == {"RI", "DRMW", "DF", "DMO", "RD"}

    def test_all_relaxations_distinct_names(self):
        # the paper's six plus the transistency pair (DV, UA)
        names = [r.name for r in ALL_RELAXATIONS]
        assert len(names) == len(set(names)) == 8

    def test_describe(self):
        ri = RemoveInstruction()
        app = list(ri.applications(mp(), TSO_VOCAB))[0]
        assert "RI" in app.describe(mp())
