"""Integration self-check: emitted suites satisfy Definition 1 verbatim.

For every test a synthesis run emits, re-verify from first principles
that (a) the recorded witness outcome is forbidden, and (b) applying
*each* relaxation application makes the projected witness observable.
This closes the loop between the synthesis engine and the definition it
claims to implement."""

import pytest

from repro.core.enumerator import EnumerationConfig
from repro.core.minimality import MinimalityChecker
from repro.core.oracle import ExplicitOracle
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.litmus.execution import project_outcome
from repro.models.registry import get_model


@pytest.mark.parametrize(
    "model_name,bound,config_kwargs",
    [
        ("tso", 4, dict(max_addresses=2)),
        ("sc", 3, dict(max_addresses=2)),
        ("scc", 3, dict(max_addresses=2, max_deps=1, max_rmws=1)),
    ],
)
def test_emitted_suites_satisfy_definition_1(model_name, bound, config_kwargs):
    model = get_model(model_name)
    result = synthesize(
        model,
        SynthesisOptions(
            bound=bound,
            config=EnumerationConfig(max_events=bound, **config_kwargs),
        ),
    )
    assert len(result.union) > 0
    oracle = ExplicitOracle(model)
    checker = MinimalityChecker(model)
    vocab = model.vocabulary
    for entry in result.union:
        test, witness = entry.test, entry.witness
        # (a) the witness is genuinely forbidden
        assert not oracle.observable(test, witness), (
            f"{test!r}: witness {witness} is observable"
        )
        # (b) every relaxation application re-enables it
        apps = checker.applications(test)
        assert apps, f"{test!r}: no relaxation applications"
        for relax, app in apps:
            relaxed = relax.apply(test, app, vocab)
            projected = project_outcome(witness, relaxed.event_map)
            assert oracle.observable(relaxed.test, projected), (
                f"{test!r}: {app.describe(test)} does not re-enable "
                f"{witness}"
            )


def test_per_axiom_suites_are_subsets_of_union():
    model = get_model("tso")
    result = synthesize(
        model,
        SynthesisOptions(
            bound=4,
            config=EnumerationConfig(max_events=4, max_addresses=2),
        ),
    )
    union_tests = set(result.union.tests())
    for suite in result.per_axiom.values():
        for test in suite.tests():
            assert test in union_tests
