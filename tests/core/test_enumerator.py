"""Candidate enumeration tests."""

from repro.core.enumerator import (
    EnumerationConfig,
    count_tests,
    enumerate_tests,
    thread_units,
)
from repro.core.canonical import canonical_form
from repro.litmus.catalog import CATALOG
from repro.models.registry import get_model

TSO = get_model("tso").vocabulary
SCC = get_model("scc").vocabulary
POWER = get_model("power").vocabulary


def cfg(**kw):
    kw.setdefault("max_events", 4)
    return EnumerationConfig(**kw)


class TestThreadUnits:
    def test_single_slot(self):
        units = thread_units(1, TSO, cfg(max_addresses=1))
        # R x, W x (no boundary fences allowed at size 1)
        assert len(units) == 2

    def test_boundary_fences_pruned(self):
        units = thread_units(2, TSO, cfg(max_addresses=1))
        assert all(
            not u.instructions[0].is_fence
            and not u.instructions[-1].is_fence
            for u in units
        )

    def test_boundary_fences_allowed_when_configured(self):
        units = thread_units(
            2, TSO, cfg(max_addresses=1, allow_boundary_fences=True)
        )
        assert any(u.instructions[0].is_fence for u in units)

    def test_rmw_overlays_generated(self):
        units = thread_units(2, TSO, cfg(max_addresses=1))
        assert any(u.rmw for u in units)

    def test_dep_overlays_generated(self):
        units = thread_units(2, POWER, cfg(max_addresses=1))
        assert any(u.deps for u in units)

    def test_no_dep_duplicating_rmw(self):
        from repro.litmus.events import DepKind

        units = thread_units(2, POWER, cfg(max_addresses=1))
        for u in units:
            for s, d, k in u.deps:
                if k is DepKind.DATA:
                    assert (s, d) not in set(u.rmw)

    def test_units_sorted(self):
        units = thread_units(2, TSO, cfg(max_addresses=2))
        keys = [u.sort_key() for u in units]
        assert keys == sorted(keys)


class TestEnumerateTests:
    def test_all_within_bounds(self):
        config = cfg(max_events=3, max_addresses=2)
        for t in enumerate_tests(TSO, config):
            assert 2 <= t.num_events <= 3
            assert len(t.addresses) <= 2

    def test_addresses_canonical_order(self):
        config = cfg(max_events=3, max_addresses=3)
        for t in enumerate_tests(TSO, config):
            # first-use order must be 0, 1, 2...
            assert list(t.addresses) == sorted(t.addresses)
            assert t.addresses == tuple(range(len(t.addresses)))

    def test_communication_prune(self):
        config = cfg(max_events=3, max_addresses=3)
        for t in enumerate_tests(TSO, config):
            for addr in t.addresses:
                assert len(t.accesses_to(addr)) >= 2
                assert len(t.writes_to(addr)) >= 1

    def test_communication_prune_disabled(self):
        config = cfg(
            max_events=2, max_addresses=2, require_communication=False
        )
        tests = list(enumerate_tests(TSO, config))
        assert any(
            len(t.writes_to(a)) == 0 for t in tests for a in t.addresses
        )

    def test_mp_shape_generated(self):
        config = cfg(max_events=4, max_addresses=2)
        mp_canon = canonical_form(CATALOG["MP"].test)
        assert any(
            canonical_form(t) == mp_canon
            for t in enumerate_tests(TSO, config)
        )

    def test_coww_generated(self):
        config = cfg(max_events=2, max_addresses=1)
        coww = canonical_form(CATALOG["CoWW"].test)
        assert any(
            canonical_form(t) == coww
            for t in enumerate_tests(TSO, config)
        )

    def test_rmw_counts_capped(self):
        config = cfg(max_events=4, max_rmws=1)
        for t in enumerate_tests(TSO, config):
            assert len(t.rmw) <= 1

    def test_dep_counts_capped(self):
        config = cfg(max_events=4, max_deps=1)
        for t in enumerate_tests(POWER, config):
            assert len(t.deps) <= 1

    def test_max_threads_respected(self):
        config = cfg(max_events=4, max_threads=2)
        for t in enumerate_tests(TSO, config):
            assert len(t.threads) <= 2

    def test_scc_orders_enumerated(self):
        from repro.litmus.events import Order

        config = cfg(max_events=2, max_addresses=1)
        orders = {
            inst.order
            for t in enumerate_tests(SCC, config)
            for inst in t.instructions
        }
        assert Order.ACQ in orders and Order.REL in orders

    def test_count_matches_stream(self):
        config = cfg(max_events=3, max_addresses=2)
        assert count_tests(TSO, config) == sum(
            1 for _ in enumerate_tests(TSO, config)
        )

    def test_growth_with_bound(self):
        c3 = count_tests(TSO, cfg(max_events=3))
        c4 = count_tests(TSO, cfg(max_events=4))
        assert c4 > c3 > 0
